#!/usr/bin/env python3
"""One address to serve them all (§5): a full CDN on a single /32.

Builds a two-region anycast CDN hosting thousands of hostnames, switches
the live policy's pool through the deployment's §4.2 timetable
(/20 → /24 → /32) with zero socket or routing changes, and shows the §5
payoff: connection coalescing rises when everything shares one address.

Run:  python examples/one_address_cdn.py
"""

import random

from repro.clock import Clock
from repro.core import AddressPool, AgilityController, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns.resolver import ResolveError
from repro.edge import CDN, ListenMode
from repro.netsim import build_regional_topology, parse_prefix
from repro.workload import (
    ClientPopulation,
    HostnameUniverse,
    PopulationConfig,
    SessionGenerator,
    UniverseConfig,
)

ADVERTISED = parse_prefix("192.0.0.0/20")
TIMETABLE = [
    ("2020-07  one /20 (4096 addresses)", ADVERTISED),
    ("2021-01  one /24 (256 addresses)", parse_prefix("192.0.2.0/24")),
    ("2021-06  one /32 (a single address)", parse_prefix("192.0.2.1/32")),
]


def browse(population, generator, sessions, seed, clock):
    """Run browsing sessions; returns mean requests-per-connection."""
    rng = random.Random(seed)
    rpc = []
    for session in generator.sessions(sessions, seed=seed):
        client = rng.choice(population.clients)
        for page in session.pages:
            for hostname, path in page.resources:
                try:
                    client.fetch(hostname, path)
                except (ResolveError, ConnectionRefusedError):
                    continue
        rpc.extend(c.requests for c in client.open_connections() if c.requests)
        client.close_all()
        clock.advance(20.0)
    return sum(rpc) / len(rpc) if rpc else 0.0


def main() -> None:
    clock = Clock()
    universe = HostnameUniverse(UniverseConfig(num_hostnames=400, assets_per_site=3))
    network = build_regional_topology(
        {"us": ["ashburn", "chicago"], "eu": ["london", "frankfurt"]},
        clients_per_region=4,
    )
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=3)
    cdn.provision_certificates()
    cdn.announce_pool(ADVERTISED, mode=ListenMode.SK_LOOKUP)

    engine = PolicyEngine(random.Random(1))
    pool = AddressPool(ADVERTISED, name="live-pool")
    engine.add(Policy("everything", pool, ttl=60))
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))
    controller = AgilityController(engine, clock)

    eyeballs = [a for a in network.client_ases() if str(a).startswith("eyeball")]
    population = ClientPopulation(cdn, clock, eyeballs,
                                  PopulationConfig(clients_per_resolver=3))
    generator = SessionGenerator(universe)

    print(f"CDN: {len(cdn.pop_names())} PoPs, "
          f"{universe.num_hostnames} hostnames, "
          f"{len(population)} clients behind {len(population.resolvers)} resolvers\n")

    for i, (label, active) in enumerate(TIMETABLE):
        op = controller.set_active("everything", active)
        population.flush_dns()  # fast-forward past the TTL horizon
        clock.advance(60)
        mean_rpc = browse(population, generator, sessions=60, seed=100 + i, clock=clock)
        dcs = cdn.datacenters.values()
        addresses_seen = set()
        for dc in dcs:
            addresses_seen |= {a for a in dc.traffic.addresses_seen() if a in active}
        print(f"{label}")
        print(f"  active addresses: {pool.size:>5}   "
              f"distinct addresses carrying traffic this phase: {len(addresses_seen)}")
        print(f"  mean requests/connection: {mean_rpc:.2f}   "
              f"cache hit rate: {sum(dc.cache.total_hit_rate() for dc in dcs)/len(list(dcs)):.1%}")
        print(f"  change executed at t={op.at:.0f}s, fully propagated by "
              f"t={op.propagation_horizon:.0f}s (one TTL)\n")
        for dc in cdn.datacenters.values():
            dc.traffic.clear()

    print("All three phases served the same hostnames through the same "
          "sockets and routes;\nonly the DNS policy's active set changed.")


if __name__ == "__main__":
    main()
