#!/usr/bin/env python3
"""Quickstart: the two halves of addressing agility in ~80 lines.

1. Policy-first DNS (§3.1–3.2): answer A queries for *any* hostname with a
   fresh random address drawn from a policy's pool — no name→IP table.
2. sk_lookup (§3.3): one listening socket terminates connections for the
   whole pool, and can be re-pointed to a different prefix at runtime.

Run:  python examples/quickstart.py
"""

import random

from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns import AuthoritativeServer, Message, QueryContext, RRType
from repro.edge import AccountType, Customer, CustomerRegistry
from repro.netsim import FiveTuple, Packet, Protocol, parse_address, parse_prefix
from repro.sockets import LookupPath, MatchRule, SkLookupProgram, SockArray, SocketTable, Verdict


def main() -> None:
    # ------------------------------------------------------------------ DNS
    pool_prefix = parse_prefix("192.0.2.0/24")
    pool = AddressPool(pool_prefix, name="quickstart-pool")

    registry = CustomerRegistry()
    registry.add(Customer("demo", AccountType.FREE,
                          {f"site{i}.example.com" for i in range(1000)}))

    engine = PolicyEngine(random.Random(42))
    engine.add(Policy("randomize-free", pool,
                      match={"account_type": {"free"}}, ttl=30))
    server = AuthoritativeServer(PolicyAnswerSource(engine, registry))
    context = QueryContext(pop="demo-pop")

    print("== policy-first DNS: same question, fresh address every time ==")
    for i in range(5):
        query = Message.query(i, "site7.example.com", RRType.A)
        response = Message.decode(server.handle_wire(query.encode(), context))
        print(f"  site7.example.com -> {response.answers[0].rdata.address}"
              f"  (ttl={response.answers[0].ttl})")

    print("\n== different hostnames share the same pool ==")
    for name in ("site1", "site2", "site999"):
        query = Message.query(99, f"{name}.example.com", RRType.A)
        response = Message.decode(server.handle_wire(query.encode(), context))
        print(f"  {name}.example.com -> {response.answers[0].rdata.address}")

    # -------------------------------------------------------------- sockets
    print("\n== sk_lookup: one socket for 256 addresses x any port ==")
    table = SocketTable()
    service = table.bind_listen(Protocol.TCP, parse_address("198.18.0.1"), 443,
                                owner="https")
    sock_map = SockArray(1)
    sock_map.update(0, service)
    program = SkLookupProgram("steer-pool", sock_map, [
        MatchRule(Verdict.PASS, Protocol.TCP, (pool_prefix,), 443, 443, map_key=0),
    ])
    path = LookupPath(table)
    path.attach(program)

    rng = random.Random(7)
    for _ in range(3):
        dst = pool_prefix.random_address(rng)
        packet = Packet(FiveTuple(Protocol.TCP, parse_address("100.64.9.9"),
                                  50000, dst, 443), syn=True)
        result = path.dispatch(packet)
        print(f"  SYN to {dst}:443 -> socket fd={result.socket.fd} "
              f"(stage={result.stage.value}); sockets in table: "
              f"{len(table.sockets())}")

    print("\n== runtime re-point: same socket, new prefix ==")
    new_prefix = parse_prefix("203.0.113.0/24")
    program.remove_rules("")
    program.add_rule(MatchRule(Verdict.PASS, Protocol.TCP, (new_prefix,),
                               443, 443, map_key=0))
    moved = Packet(FiveTuple(Protocol.TCP, parse_address("100.64.9.9"),
                             50001, new_prefix.address_at(5), 443), syn=True)
    print(f"  SYN to {new_prefix.address_at(5)}:443 -> "
          f"delivered={path.dispatch(moved).delivered} (no rebind, no restart)")


if __name__ == "__main__":
    main()
