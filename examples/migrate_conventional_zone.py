#!/usr/bin/env python3
"""Migrating a conventional deployment to addressing agility (§3.4).

The paper's transferable domain is "any service operator that manages its
own authoritative DNS and connection termination" — a university web
service as much as a CDN.  This example plays that operator:

1. load an existing RFC 1035 zone file (the Figure 3a world);
2. serve it conventionally and observe the per-IP imbalance;
3. write a *declarative policy spec*, statically verify it against the
   advertised space (§4.3's "safe and verifiable policy expression");
4. swap the answer source — one call — and watch the same hostnames ride
   the whole pool.

Run:  python examples/migrate_conventional_zone.py
"""


from repro.core import PolicyAnswerSource
from repro.core.spec import AttributeDomain, compile_and_verify
from repro.dns import AuthoritativeServer, Message, QueryContext, RRType, ZoneAnswerSource
from repro.dns.zonefile import load_zone
from repro.netsim import parse_prefix

ZONE_FILE = """\
$ORIGIN campus.example.
$TTL 300
@        IN SOA ns1 hostmaster ( 2021061501 7200 900 1209600 300 )
         IN NS  ns1
ns1      IN A   192.0.2.53
www      IN A   192.0.2.10
www      IN A   192.0.2.11
mail     IN A   192.0.2.20
library  IN A   192.0.2.10     ; co-hosted with www — by hand
portal   IN A   192.0.2.30
labs     IN A   192.0.2.30
printing IN A   192.0.2.30     ; three services, one box
"""

POOL = parse_prefix("192.0.2.0/24")
HOSTS = ["www", "mail", "library", "portal", "labs", "printing"]


def addresses_seen(server, label):
    context = QueryContext(pop="campus-dc")
    print(f"\n== {label} ==")
    used = set()
    for i, host in enumerate(HOSTS):
        fqdn = f"{host}.campus.example"
        answers = []
        for j in range(3):
            reply = Message.decode(server.handle_wire(
                Message.query(i * 10 + j, fqdn, RRType.A).encode(), context))
            answers.append(str(reply.answers[0].rdata.address))
        used.update(answers)
        print(f"  {fqdn:28s} -> {', '.join(answers)}")
    print(f"  distinct addresses in use: {len(used)}")
    return used


def main() -> None:
    # Step 1+2: the conventional deployment, straight from the zone file.
    zone = load_zone(ZONE_FILE, "campus.example")
    conventional = AuthoritativeServer(ZoneAnswerSource([zone]))
    addresses_seen(conventional, "conventional zone (static name->IP table)")

    # Step 3: declare and verify the agile policy.
    specs = [{
        "name": "campus-agile",
        "pool": {"advertised": str(POOL)},
        "match": {},          # every query, every hostname
        "strategy": "random",
        "ttl": 300,
    }]
    domain = AttributeDomain(pops=frozenset({"campus-dc"}))
    engine = compile_and_verify(specs, domain, advertised_space=[POOL])
    print("\npolicy spec verified: pools inside advertised space, "
          "no shadowing, full coverage of A queries")

    # Step 4: swap.  The registry maps hostnames to the account; the zone
    # stays as the fallback for anything the policy does not cover (NS,
    # SOA, TXT, unregistered names) — "resolved as normal".
    from repro.edge import AccountType, Customer, CustomerRegistry
    registry = CustomerRegistry()
    registry.add(Customer("campus", AccountType.ENTERPRISE,
                          {f"{h}.campus.example" for h in HOSTS}))
    agile = AuthoritativeServer(
        PolicyAnswerSource(engine, registry, fallback=ZoneAnswerSource([zone]))
    )
    used = addresses_seen(agile, "agile policy (per-query random over the /24)")

    reply = Message.decode(agile.handle_wire(
        Message.query(99, "campus.example", RRType.NS).encode(),
        QueryContext(pop="campus-dc")))
    print(f"\nNS query still served from the zone fallback: "
          f"{reply.answers[0].rdata.rdata_text()}")
    print(f"\nSame six services; address usage went from a hand-managed "
          f"handful to the full pool\n({len(used)} distinct addresses "
          f"observed in this tiny sample), with nothing rebound by hand "
          f"ever again.")


if __name__ == "__main__":
    main()
