#!/usr/bin/env python3
"""Load equalization (Figure 7): 'shared fate benefit, shared load'.

Drives a heavy-tailed request stream through the real authoritative
serving path under four bindings — static over two /20s, random /20,
random /24, one /32 — and prints the Figure 7 summary plus a sideways
ASCII rendering of each panel's sorted per-address load curve.

Run:  python examples/load_equalization.py
"""

import math

from repro.experiments.fig7 import Fig7Config, render_fig7_table, run_fig7


def sparkline(dist, width: int = 64) -> str:
    """Log-scale downsampled load curve, most- to least-loaded address."""
    values = [v for v in dist.sorted_desc if v > 0]
    if not values:
        return "(no traffic)"
    blocks = " ▁▂▃▄▅▆▇█"
    top = math.log10(values[0] + 1)
    step = max(1, len(values) // width)
    chars = []
    for i in range(0, len(values), step):
        level = math.log10(values[i] + 1) / top if top else 0
        chars.append(blocks[max(1, round(level * (len(blocks) - 1)))])
    return "".join(chars)


def main() -> None:
    config = Fig7Config(num_sites=6_000, requests=120_000)
    print(f"workload: {config.num_sites} sites, {config.requests} requests, "
          f"zipf s={config.zipf_s}\n")
    results = run_fig7(config)
    print(render_fig7_table(results))
    print("\nper-address load, sorted (log scale, left = hottest):")
    for key in ("7a", "7b", "7c", "one"):
        dist = results[key].requests_dist
        print(f"  {key:>4} |{sparkline(dist)}|  "
              f"spread {dist.spread_orders_of_magnitude:.1f} o.o.m.")
    print("\nReading: static binding (7a) inherits hostname popularity — a "
          "cliff.\nPer-query randomization (7b, 7c) flattens it with no "
          "planning at all;\nthe equalization 'emerges without a priori "
          "engineering' (§4.3).")


if __name__ == "__main__":
    main()
