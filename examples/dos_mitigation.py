#!/usr/bin/env python3
"""DoS mitigation at the speed of TTLs (§6): the k-ary search, narrated.

10 000 services sit behind one address.  An attack begins.  Is it a named
(L7) target or a volumetric (L3/4) flood?  The k-ary search answers both
questions by re-binding DNS slices and watching where the attack follows.

Run:  python examples/dos_mitigation.py
"""

from repro.agility.dos import isolation_time_bound
from repro.experiments.dos import render_dos_table, run_dos_case, run_dos_sweep

N = 10_000
K = 16
PROBE_TTL = 5
INITIAL_TTL = 300


def main() -> None:
    bound = isolation_time_bound(N, K, INITIAL_TTL, PROBE_TTL)
    print(f"{N} services behind one address; k={K}, probe TTL={PROBE_TTL}s, "
          f"pre-attack TTL={INITIAL_TTL}s")
    print(f"paper worst case: TTL + t·⌈log_k n⌉ = {bound:.0f}s\n")

    print("case 1 — application-layer attack on one hostname:")
    l7 = run_dos_case(n_services=N, k=K, probe_ttl=PROBE_TTL,
                      initial_ttl=INITIAL_TTL, attack="l7")
    verdict = l7.verdict
    print(f"  verdict: {verdict.kind}; isolated {sorted(verdict.isolated)}")
    print(f"  {verdict.rounds} rounds, {verdict.elapsed:.0f}s elapsed "
          f"(bound {l7.bound:.0f}s, within={verdict.within_bound})\n")

    print("case 2 — volumetric flood pinned to an address:")
    l34 = run_dos_case(n_services=N, k=K, attack="l34",
                       probe_ttl=PROBE_TTL, initial_ttl=INITIAL_TTL)
    print(f"  verdict: {l34.verdict.kind} in {l34.verdict.rounds} round "
          f"(the attack never followed a DNS slice)\n")

    print("how k trades addresses for rounds:")
    print(render_dos_table(run_dos_sweep(n_services=N, ks=(2, 8, 32, 128),
                                         probe_ttl=PROBE_TTL,
                                         initial_ttl=INITIAL_TTL)))


if __name__ == "__main__":
    main()
