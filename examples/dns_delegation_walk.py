#!/usr/bin/env python3
"""The whole DNS, end to end: root hints to per-query random answers.

Builds a miniature copy of the public DNS — a root zone delegating
``com.``, a TLD zone delegating ``example.com.`` to the CDN — with the
paper's policy engine serving the leaf.  An iterative resolver then walks
the delegation chain cold, caches it, and shows that the addressing
agility at the bottom is invisible to everything above it: the referral
machinery neither knows nor cares that the final answer is random.

Run:  python examples/dns_delegation_walk.py
"""

import random

from repro.clock import Clock
from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns import (
    A,
    AuthoritativeServer,
    DomainName,
    IterativeResolver,
    NS,
    QueryContext,
    ResourceRecord,
    ServerDirectory,
    Zone,
    ZoneAnswerSource,
)
from repro.edge import AccountType, Customer, CustomerRegistry
from repro.netsim import parse_address, parse_prefix

POOL = parse_prefix("192.0.2.0/24")
ROOT_IP = parse_address("198.41.0.4")      # a.root-servers.net, in spirit
TLD_IP = parse_address("192.5.6.30")       # a.gtld-servers.net, in spirit
CDN_IP = parse_address("198.51.100.53")
CTX = QueryContext(pop="demo-pop")


def rr(name, rdata, ttl):
    return ResourceRecord(DomainName.from_text(name), rdata, ttl)


def main() -> None:
    directory = ServerDirectory()

    root = Zone(".")
    root.add_record(rr("com", NS(DomainName.from_text("a.gtld-servers.net")), 172800))
    root.add_record(rr("net", NS(DomainName.from_text("a.gtld-servers.net")), 172800))
    root.add_record(rr("a.gtld-servers.net", A(TLD_IP), 172800))
    directory.register(ROOT_IP, lambda w: AuthoritativeServer(
        ZoneAnswerSource([root]), "root").handle_wire(w, CTX))

    com = Zone("com")
    com.add_record(rr("example.com", NS(DomainName.from_text("ns1.cdn.example.com")), 86400))
    com.add_record(rr("ns1.cdn.example.com", A(CDN_IP), 86400))
    net = Zone("net")
    net.add_record(rr("a.gtld-servers.net", A(TLD_IP), 86400))
    directory.register(TLD_IP, lambda w: AuthoritativeServer(
        ZoneAnswerSource([com, net]), "gtld").handle_wire(w, CTX))

    registry = CustomerRegistry()
    registry.add(Customer("acme", AccountType.FREE,
                          {f"www{i}.example.com" for i in range(100)} | {"www.example.com"}))
    engine = PolicyEngine(random.Random(4))
    engine.add(Policy("agile", AddressPool(POOL), ttl=30))
    cdn_glue = Zone("example.com")
    cdn_glue.add_record(rr("ns1.cdn.example.com", A(CDN_IP), 300))
    directory.register(CDN_IP, lambda w: AuthoritativeServer(
        PolicyAnswerSource(engine, registry, fallback=ZoneAnswerSource([cdn_glue])),
        "cdn-auth").handle_wire(w, CTX))

    resolver = IterativeResolver("walker", Clock(), directory, [ROOT_IP],
                                 rng=random.Random(1))

    print("cold resolution of www.example.com (full walk):")
    addresses = resolver.resolve_addresses("www.example.com")
    print(f"  answer: {addresses[0]}   (inside pool {POOL})")
    print(f"  queries sent: {resolver.stats.queries_sent}  "
          f"referrals followed: {resolver.stats.referrals_followed}\n")

    print("warm resolutions (delegations cached, leaf TTL expired each time):")
    for i in range(4):
        resolver.cache.flush(DomainName.from_text("www.example.com"))
        before = resolver.stats.queries_sent
        addresses = resolver.resolve_addresses("www.example.com")
        print(f"  www.example.com -> {addresses[0]}  "
              f"({resolver.stats.queries_sent - before} query)")

    print("\nThe root and TLD served identical referrals throughout; only the"
          "\nCDN's answer generation changed per query.  Addressing agility"
          "\nneeds nothing from the DNS hierarchy above the operator (§3.4).")


if __name__ == "__main__":
    main()
