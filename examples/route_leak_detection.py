#!/usr/bin/env python3
"""Route-leak detection and mitigation for anycast (§6, Figure 9).

Walks through the paper's incident as a timeline: a healthy two-region
anycast deployment with per-PoP unique addresses; a multihomed customer
leaks the prefix to its other provider; the wrong PoP starts seeing
requests on the victim PoP's address; mitigation swaps the policy onto an
already-advertised backup prefix — all at DNS-TTL timescales.

Run:  python examples/route_leak_detection.py
"""

from repro.experiments.fig9 import Fig9Config, render_fig9_table, run_fig9


def main() -> None:
    config = Fig9Config(ttl=30, clients_per_region=6, requests_per_phase=60)
    print("Scenario (Figure 9):")
    print("  * one /24 anycast from PoPs {ashburn, london}")
    print("  * DNS policy: each PoP answers with its own unique address")
    print("  * backup /24 advertised everywhere, idle")
    print("  * leaker AS: customer of both transit:eu:0 and transit:us:0\n")

    outcome = run_fig9(config)
    print(render_fig9_table(outcome))

    print("\nTimeline reading:")
    print(f"  t=0        leak injected (valley-free violation at the leaker)")
    print(f"  t≤{config.ttl:<8} pre-leak cached answers drain (one TTL)")
    print(f"  t={outcome.detection_time:<8.0f} london's counters show ashburn's address "
          f"-> alert raised")
    print(f"  t+{outcome.mitigation_horizon:<7.0f} mitigation complete: every cache has "
          f"re-resolved into the backup prefix")
    print("\nThe policy itself never changed — only the prefix behind it. "
          "\"Keep the policy, change the prefix.\"")


if __name__ == "__main__":
    main()
