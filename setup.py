"""Legacy setup shim: this environment lacks the `wheel` package, so PEP 660
editable installs fail; `setup.py develop` (via pip's fallback below) works.
Configuration lives in pyproject.toml.
"""
from setuptools import setup

setup()
