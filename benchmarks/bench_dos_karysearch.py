"""E9: §6 DoS mitigation — k-ary search isolation within the TTL bound.

Claims checked:

* an L7 attack on one of n=1000 co-hosted services is isolated to the
  named target in ≤ TTL + t·⌈log_k n⌉ simulated seconds;
* an address-pinned (L3/4) flood is classified in a single round;
* rounds grow logarithmically in n.
"""

import math

from repro.experiments.dos import render_dos_table, run_dos_case


def test_l7_isolation_within_bound(benchmark, save_table):
    run = benchmark.pedantic(
        run_dos_case,
        kwargs=dict(n_services=1000, k=8, probe_ttl=5, initial_ttl=300, attack="l7"),
        rounds=1, iterations=1,
    )
    assert run.verdict.kind == "L7"
    assert len(run.verdict.isolated) == 1
    assert run.verdict.within_bound
    save_table("dos_l7_isolation", render_dos_table([run]))


def test_l34_classified_first_round(benchmark):
    run = benchmark.pedantic(
        run_dos_case,
        kwargs=dict(n_services=1000, k=8, attack="l34"),
        rounds=1, iterations=1,
    )
    assert run.verdict.kind == "L3/4"
    assert run.verdict.rounds == 1


def test_rounds_logarithmic_in_n(benchmark, save_table):
    runs = []
    for n in (100, 1_000, 10_000):
        run = run_dos_case(n_services=n, k=8, attack="l7", seed=n)
        assert run.verdict.rounds <= math.ceil(math.log(n, 8)) + 1
        runs.append(run)
    save_table("dos_n_sweep", render_dos_table(runs))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
