#!/usr/bin/env python3
"""Perf-regression gate: fresh ``BENCH_*.json`` vs committed baselines.

CI machines differ wildly in raw speed, so gating on absolute
packets-per-second would flap on every runner change.  Dimensionless
*ratios* measured within one run don't have that problem — both sides of
the ratio ran on the same machine seconds apart — so the gate reads only
those:

``sklookup_perf``
    ``speedup``        — compiled / interpreter dispatch throughput,
                         64-rule program (the tentpole claim; hard floor 3×)
    ``batch_speedup``  — batched-compiled / interpreter throughput

``dns_qps``
    ``policy_vs_zone`` — randomized answering / static zone serving

``flow_hash`` / ``flow_resolve`` / ``flow_connect`` / ``flow_dispatch`` /
``flow_serve`` / ``flow_end_to_end``
    ``batch_speedup``  — columnar flow-engine stage throughput over the
                         loop-of-scalars reference (``bench_flow_engine``;
                         floors sit below the measured ratios so a stage
                         silently regressing to slower-than-scalar fails)

``readdressing``
    ``drill_vs_soak``  — fetch throughput with a staged-shrink campaign
                         running / the same world under plain chaos
                         (``bench_readdressing``; the engine's per-tick
                         bookkeeping must stay nearly free)

A metric fails the gate when it drops more than its tolerance (default
``--tolerance``, 20 %; noisy metrics carry a wider per-metric override in
``GATED``) below its committed baseline in ``benchmarks/baselines/``, or
below its absolute floor.  Refresh a baseline deliberately by re-running the
bench and copying the fresh snapshot over the committed one::

    PYTHONPATH=src python -m pytest benchmarks/bench_sklookup_perf.py -q
    cp benchmarks/results/BENCH_sklookup_perf.json benchmarks/baselines/

Exit status: 0 = all gates pass, 1 = regression or missing snapshot.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

BENCH_DIR = pathlib.Path(__file__).parent

#: bench -> {ratio metric -> gate spec}.  ``floor`` is the absolute
#: minimum regardless of baseline; ``tolerance`` (optional) overrides the
#: CLI drop allowance for metrics whose run-to-run variance exceeds it
#: (policy_vs_zone swings ±15 % between runs of the short DNS bench, so a
#: 20 % band around a ~1.0 baseline would flap — the 0.5 floor is the
#: actual claim being defended).
GATED: dict[str, dict[str, dict[str, float]]] = {
    "sklookup_perf": {"speedup": {"floor": 3.0}, "batch_speedup": {"floor": 3.0}},
    "dns_qps": {"policy_vs_zone": {"floor": 0.5, "tolerance": 0.45}},
    # Flow-engine stage ratios (batched / scalar, measured back to back on
    # one machine).  Stages close to 1.0 (serve is origin-bound) get wider
    # tolerances so runner noise doesn't flap the gate; the floors defend
    # the real claim — batching must never lose to the scalar loop.
    "flow_hash": {"batch_speedup": {"floor": 1.0, "tolerance": 0.30}},
    "flow_resolve": {"batch_speedup": {"floor": 0.9, "tolerance": 0.25}},
    "flow_connect": {"batch_speedup": {"floor": 0.9, "tolerance": 0.25}},
    "flow_dispatch": {"batch_speedup": {"floor": 1.2, "tolerance": 0.30}},
    "flow_serve": {"batch_speedup": {"floor": 0.8, "tolerance": 0.25}},
    "flow_end_to_end": {"batch_speedup": {"floor": 0.95, "tolerance": 0.25}},
    # Real-socket pool (bench_serve_qps): multi-worker / single-worker UDP
    # throughput.  On multi-core runners SO_REUSEPORT spreads load and the
    # ratio exceeds 1; on a single-core container the arms tie (measured
    # 0.95-1.17 run to run).  The floor defends against pool *collapse* —
    # a drain bug serializing workers or a dead worker timing out its
    # share — not against missing parallelism the hardware can't give.
    "serve_qps": {"multi_vs_single": {"floor": 0.6, "tolerance": 0.45}},
    # Re-addressing drill (bench_readdressing): fetch throughput while a
    # staged shrink campaign runs / the same world running plain chaos.
    # Both arms are one-round wall-clock samples, so the ratio is noisy
    # (measured 0.9-1.4 run to run); the 0.5 floor defends the claim that
    # matters — the campaign engine's per-tick bookkeeping must never
    # come close to doubling the cost of serving.
    "readdressing": {"drill_vs_soak": {"floor": 0.5, "tolerance": 0.50}},
}
DEFAULT_TOLERANCE = 0.20


def load_results(path: pathlib.Path) -> dict[str, float]:
    payload = json.loads(path.read_text())
    results = payload.get("results")
    if not isinstance(results, dict):
        raise ValueError(f"{path}: no 'results' section")
    return results


def run_gate(results_dir: pathlib.Path, baselines_dir: pathlib.Path,
             tolerance: float, only: list[str] | None = None) -> list[str]:
    """Returns a list of failure descriptions (empty = gate passes)."""
    failures: list[str] = []
    gated = GATED
    if only:
        unknown = sorted(set(only) - set(GATED))
        if unknown:
            return [f"--only: unknown bench(es) {unknown}; "
                    f"gated benches: {sorted(GATED)}"]
        gated = {bench: GATED[bench] for bench in only}
    width = max(len(f"{b}.{m}") for b, ms in gated.items() for m in ms)
    print(f"perf gate: tolerance {tolerance:.0%} below baseline")
    for bench, metrics in sorted(gated.items()):
        fresh_path = results_dir / f"BENCH_{bench}.json"
        base_path = baselines_dir / f"BENCH_{bench}.json"
        if not fresh_path.exists():
            failures.append(f"{bench}: fresh snapshot missing ({fresh_path}) "
                            "— did the bench run?")
            continue
        if not base_path.exists():
            failures.append(f"{bench}: no committed baseline ({base_path})")
            continue
        fresh = load_results(fresh_path)
        base = load_results(base_path)
        for metric, spec in metrics.items():
            name = f"{bench}.{metric}"
            if metric not in fresh or metric not in base:
                failures.append(f"{name}: metric missing from snapshot")
                continue
            floor = spec.get("floor")
            allowed_drop = spec.get("tolerance", tolerance)
            current, reference = fresh[metric], base[metric]
            minimum = reference * (1.0 - allowed_drop)
            if floor is not None:
                minimum = max(minimum, floor)
            ok = current >= minimum
            print(f"  {name:<{width}}  current {current:8.2f}  "
                  f"baseline {reference:8.2f}  min {minimum:8.2f}  "
                  f"{'ok' if ok else 'REGRESSED'}")
            if not ok:
                failures.append(
                    f"{name}: {current:.2f} < {minimum:.2f} "
                    f"(baseline {reference:.2f}, tolerance {allowed_drop:.0%}"
                    + (f", floor {floor:.2f})" if floor is not None else ")")
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=pathlib.Path,
                        default=BENCH_DIR / "results",
                        help="directory with fresh BENCH_*.json (default: results/)")
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=BENCH_DIR / "baselines",
                        help="directory with committed baselines (default: baselines/)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional drop below baseline (default: 0.20)")
    parser.add_argument("--only", action="append", default=None, metavar="BENCH",
                        help="gate only the named bench(es); jobs that run a "
                             "subset of the suite skip the other snapshots")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    failures = run_gate(args.results, args.baselines, args.tolerance, only=args.only)
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
