"""E17: failover recovery — detect → rebind → recover at TTL timescales.

Claims checked:

* with the health-monitor loop enabled, client success rate recovers
  within ``TTL + probe_interval`` of a total PoP outage (§4.4's
  ``max(conn lifetime, TTL)`` bound plus detection latency);
* the no-agility negative control stays blackholed until the prefix is
  re-originated after "BGP reconvergence" — an order of magnitude longer;
* recovery time scales with the TTL knob, not with BGP timers;
* the whole chaos scenario is deterministic given its seed.
"""

from repro.analysis.reporting import TextTable
from repro.experiments.failover import (
    FailoverConfig,
    render_failover_table,
    run_failover,
    run_failover_pair,
)


def test_failover_recovery_bounded_by_ttl(benchmark, save_table, save_bench):
    pair = benchmark.pedantic(run_failover_pair, args=(FailoverConfig(),),
                              rounds=1, iterations=1)
    agile, control = pair["agile"], pair["control"]
    config = agile.config

    # Detection: the monitor notices within one probe interval.
    assert agile.detection_time <= config.probe_interval
    # Recovery: within TTL + probe interval of the outage.
    assert agile.recovered_within_bound
    # Negative control: blackholed at the bound, only BGP saves it.
    assert not control.recovered_within_bound
    assert control.success_rate_between(
        config.fail_at, config.fail_at + config.recovery_bound) == 0.0
    assert control.recovery_time >= config.bgp_reconverge_s - 1.0
    # Both end healthy (the run outlives both recovery paths).
    assert agile.ticks[-1].failures == 0
    assert control.ticks[-1].failures == 0
    save_table("failover_recovery", render_failover_table(pair))
    save_bench(
        "failover_recovery",
        metrics=agile.registry,
        detection_s=agile.detection_time,
        recovery_s=agile.recovery_time,
        control_recovery_s=control.recovery_time,
        phase_durations_s=agile.tracer.phase_durations(),
        span_count=len(agile.tracer),
    )


def test_failover_recovery_tracks_ttl(benchmark, save_table):
    """The recovery bound is a TTL property: halve the TTL, recover
    roughly twice as fast, while the control's exit never moves."""
    rows = []
    for ttl in (10, 20, 40):
        outcome = run_failover(FailoverConfig(ttl=ttl, seed=2021 + ttl))
        assert outcome.recovered_within_bound
        rows.append((ttl, outcome.detection_time, outcome.recovery_time,
                     outcome.config.recovery_bound))
    table = TextTable("E17 ablation — recovery time vs DNS TTL",
                      ["TTL (s)", "detection (s)", "recovery (s)", "bound (s)"])
    for ttl, detect, recover, bound in rows:
        table.add_row(ttl, f"{detect:.0f}", f"{recover:.0f}", f"{bound:.0f}")
    save_table("failover_ttl_sweep", table.render())
    assert rows[0][2] <= rows[-1][2]  # shorter TTL, no slower recovery
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_failover_scenario_is_deterministic(benchmark):
    """Same seed ⇒ identical chaos: tick series, detection, recovery."""
    a = run_failover(FailoverConfig())
    b = run_failover(FailoverConfig())
    assert a.ticks == b.ticks
    assert a.detection_time == b.detection_time
    assert a.recovery_time == b.recovery_time
    assert [(e.at, e.kind, e.phase) for e in a.timeline] == \
           [(e.at, e.kind, e.phase) for e in b.timeline]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
