"""E12: §6 — traffic tuning across anycast datacenters by map colouring.

Claims checked:

* a world-scale PoP set can be isolated with a small number of prefixes
  (colours ≪ PoPs) across a sweep of conflict radii;
* every colouring produced verifies (no conflicting pair shares a prefix);
* colours needed grow monotonically with the conflict radius.
"""

from repro.experiments.coloring import (
    WORLD_REGIONS,
    build_world,
    render_coloring_table,
    run_coloring_sweep,
)


def test_coloring_sweep(benchmark, save_table):
    network = build_world()
    runs = benchmark.pedantic(
        run_coloring_sweep, kwargs=dict(network=network), rounds=1, iterations=1
    )
    save_table("map_coloring", render_coloring_table(runs))
    total_pops = sum(len(v) for v in WORLD_REGIONS.values())
    for run in runs:
        assert run.isolated
        assert run.colors_needed <= total_pops
    assert all(a.colors_needed <= b.colors_needed for a, b in zip(runs, runs[1:]))
    # The economical end: regional isolation at 500-2000km costs only a
    # handful of prefixes for 20 PoPs.
    assert runs[0].colors_needed <= 5


def test_far_pops_share_prefixes(benchmark):
    network = build_world()
    runs = benchmark.pedantic(
        run_coloring_sweep, kwargs=dict(radii_km=(2000,), network=network),
        rounds=1, iterations=1,
    )
    result = runs[0].result
    # Some colour is reused across continents — the whole point.
    shared = [result.datacenters_of_color(c) for c in range(result.num_colors)]
    assert any(len(group) >= 2 for group in shared)
