"""E13: §4.2 — per-query randomized answering rate.

The deployment answered ~5–6K queries/s; the reproduction's claim is that
policy-randomized answering sustains the same order of throughput as
conventional zone serving in the same harness (the randomization is not
the bottleneck), and comfortably exceeds "1000s per second" even in pure
Python through the full wire codec.
"""

import pytest

from repro.analysis.reporting import TextTable
from repro.experiments.dnsqps import (
    answer_all,
    build_policy_server,
    build_zone_server,
    make_queries,
)

N_QUERIES = 4_000
N_HOSTNAMES = 5_000


@pytest.fixture(scope="module")
def queries():
    return make_queries(N_QUERIES, num_hostnames=N_HOSTNAMES)


@pytest.fixture(scope="module")
def rates():
    return {}


def test_policy_random_answering_rate(benchmark, queries, rates):
    setup = build_policy_server(num_hostnames=N_HOSTNAMES)
    ok = benchmark(answer_all, setup, queries)
    assert ok == N_QUERIES
    rates["policy"] = N_QUERIES / benchmark.stats["mean"]


def test_zone_static_answering_rate(benchmark, queries, rates):
    setup = build_zone_server(num_hostnames=N_HOSTNAMES)
    ok = benchmark(answer_all, setup, queries)
    assert ok == N_QUERIES
    rates["zone"] = N_QUERIES / benchmark.stats["mean"]


def test_rates_comparable_and_sufficient(benchmark, rates, save_table, save_bench):
    assert {"policy", "zone"} <= set(rates)
    table = TextTable(
        "§4.2 authoritative answering rate (wire-level, pure Python; "
        "deployment served 5-6K qps)",
        ["answer source", "queries/s"],
    )
    for label, rate in sorted(rates.items()):
        table.add_row(label, f"{rate:,.0f}")
    save_table("dns_qps", table.render())
    # "random per-query addresses can be generated at rates of 1000s/sec".
    assert rates["policy"] > 1_000
    # Randomization is not the bottleneck vs conventional serving.
    assert rates["policy"] > 0.5 * rates["zone"]
    save_bench(
        "dns_qps",
        policy_qps=rates["policy"],
        zone_qps=rates["zone"],
        policy_vs_zone=rates["policy"] / rates["zone"],
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
