"""E14: real-socket serving throughput, single- vs multi-worker.

The deployment answered ~5–6K queries/s per host; :mod:`repro.serve` puts
the same answering stack behind real UDP sockets and a pre-fork
``SO_REUSEPORT`` pool.  Two arms, measured back to back on one machine:

* one worker process;
* ``max(2, min(4, cpu))`` workers sharing the port.

The gated ratio is ``multi_vs_single``.  On multi-core runners it should
exceed 1 (the kernel spreads queries across workers); on a single-core
container the arms tie — extra workers only add scheduler churn — so the
gate floor defends against *collapse* (a repoint/drain bug serializing the
pool, a worker crashing and timing out its share of queries), not against
the absence of parallel speedup the hardware cannot provide.
"""

import os
import random
import threading

import pytest

from repro.analysis.reporting import TextTable
from repro.serve import LoopbackClient, build_pool
from repro.serve.app import AGILE_HOSTNAME

N_QUERIES = 2_000
CLIENT_THREADS = 4
MULTI_WORKERS = max(2, min(4, os.cpu_count() or 1))


def _drive(address, total: int, threads: int = CLIENT_THREADS) -> int:
    """Resolve ``total`` queries across ``threads`` concurrent clients."""
    per = [total // threads] * threads
    per[0] += total - sum(per)
    failures: list[BaseException] = []

    def work(count: int, seed: int) -> None:
        client = LoopbackClient(address, timeout_s=5.0, retries=3,
                                rng=random.Random(seed))
        try:
            for _ in range(count):
                client.query(AGILE_HOSTNAME)
        except BaseException as exc:  # timeouts must fail the bench, not hang it
            failures.append(exc)

    workers = [
        threading.Thread(target=work, args=(count, 0xBE7 + i))
        for i, count in enumerate(per)
    ]
    for t in workers:
        t.start()
    for t in workers:
        t.join()
    if failures:
        raise failures[0]
    return total


@pytest.fixture(scope="module")
def rates():
    return {}


def test_single_worker_qps(benchmark, rates):
    with build_pool(workers=1) as pool:
        ok = benchmark.pedantic(
            _drive, args=(pool.address, N_QUERIES), rounds=2, iterations=1
        )
        assert ok == N_QUERIES
        assert pool.snapshot()["malformed"] == 0
    rates["single"] = N_QUERIES / benchmark.stats.stats.mean


def test_multi_worker_qps(benchmark, rates):
    with build_pool(workers=MULTI_WORKERS) as pool:
        ok = benchmark.pedantic(
            _drive, args=(pool.address, N_QUERIES), rounds=2, iterations=1
        )
        assert ok == N_QUERIES
        snapshot = pool.snapshot()
        assert snapshot["malformed"] == 0
        # SO_REUSEPORT actually spread the load: no worker served everything.
        busy = [w["queries"] for w in pool.worker_snapshots() if w["queries"]]
        assert len(busy) > 1, "kernel delivered every query to one worker"
    rates["multi"] = N_QUERIES / benchmark.stats.stats.mean


def test_multi_vs_single_gate(benchmark, rates, save_table, save_bench):
    assert {"single", "multi"} <= set(rates)
    ratio = rates["multi"] / rates["single"]
    table = TextTable(
        f"real-socket serving rate, UDP loopback ({CLIENT_THREADS} client "
        f"threads; deployment served 5-6K qps)",
        ["workers", "queries/s"],
    )
    table.add_row("1", f"{rates['single']:,.0f}")
    table.add_row(str(MULTI_WORKERS), f"{rates['multi']:,.0f}")
    table.add_row("multi/single", f"{ratio:.2f}")
    save_table("serve_qps", table.render())
    save_bench(
        "serve_qps",
        single_qps=rates["single"],
        multi_qps=rates["multi"],
        multi_vs_single=ratio,
        multi_workers=MULTI_WORKERS,
        cpus=os.cpu_count() or 1,
    )
    # Real-socket serving still clears the paper's "1000s per second".
    assert rates["single"] > 1_000
