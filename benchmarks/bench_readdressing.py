"""E20: live re-addressing — campaign-engine cost and drill timings.

Claims checked:

* running the full §4.2 staged shrink **while serving** costs almost
  nothing: the drill's fetch throughput stays within a small factor of
  the identical world running plain chaos (``drill_vs_soak``, the gated
  dimensionless ratio — both arms run back to back on one machine);
* drains complete inside the old TTL (p99 of per-connection drain
  latency, simulated seconds);
* a rollback is bounded: settle + ``max_holds`` re-checks, not an
  open-ended bleed (``rollback_cost_s``, simulated seconds);
* the whole drill is deterministic: same seed, byte-identical reports.
"""

import json
import time

from repro.campaign import default_readdressing_spec, run_readdressing
from repro.chaos import Campaign, FaultSpec, run_campaign


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.999999))
    return ordered[idx]


def test_readdressing_drill_vs_soak(benchmark, save_table, save_bench):
    spec = default_readdressing_spec()

    # Arm 1: the drill — staged shrink + cadence change under traffic.
    start = time.perf_counter()
    drill = benchmark.pedantic(run_readdressing, args=(spec,),
                               kwargs={"seed": 7}, rounds=1, iterations=1)
    drill_elapsed = time.perf_counter() - start
    assert drill.ok and drill.readdressing["state"] == "complete"

    # Arm 2: the same world, same horizon, nothing changing — the cost
    # baseline the engine's bookkeeping is judged against.
    soak = Campaign(name="soak", seed=7, faults=(),
                    overrides=dict(spec.overrides))
    start = time.perf_counter()
    plain = run_campaign(soak)
    soak_elapsed = time.perf_counter() - start
    assert plain.ok

    drill_fps = len(drill.fetches) / drill_elapsed
    soak_fps = len(plain.fetches) / soak_elapsed
    steps = drill.readdressing["steps"]
    drains = [lat for s in steps for lat in s.get("drain_latencies", [])]

    # Arm 3: the rollback drill — how long a failed step bleeds before
    # the world is restored (simulated seconds, so machine-independent).
    outage = FaultSpec(when=42.0, kind="pop_outage", duration=15.0,
                       params={"pop": "ashburn"})
    rolled = run_readdressing(spec, seed=7, faults=(outage,))
    assert rolled.readdressing["state"] == "rolled_back"
    failed_step = rolled.readdressing["steps"][0]
    rollback_cost = failed_step["completed_at"] - failed_step["started_at"]

    lines = [
        "E20 bench — live re-addressing drill vs plain soak (seed 7)",
        f"  drill:  {len(drill.fetches)} fetches, {len(steps)} steps, "
        f"availability {drill.availability:.4f}",
        f"  soak:   {len(plain.fetches)} fetches, "
        f"availability {plain.availability:.4f}",
        f"  drill_vs_soak throughput ratio: {drill_fps / soak_fps:.3f}",
        f"  drain p99 (sim s):              {_percentile(drains, 0.99):.3f}",
        f"  rollback cost (sim s):          {rollback_cost:.1f}",
    ]
    save_table("readdressing", "\n".join(lines))
    save_bench(
        "readdressing",
        drill_vs_soak=drill_fps / soak_fps,
        drill_fetches_per_sec=drill_fps,
        steps_per_sec=len(steps) / drill_elapsed,
        drain_p99_s=_percentile(drains, 0.99),
        drain_count=len(drains),
        dropped_total=sum(len(s["dropped"]) for s in steps),
        rollback_cost_s=rollback_cost,
        availability=drill.availability,
    )


def test_readdressing_is_deterministic(benchmark):
    spec = default_readdressing_spec()
    a = run_readdressing(spec, seed=11)
    b = run_readdressing(spec, seed=11)
    assert (json.dumps(a.report(), sort_keys=True)
            == json.dumps(b.report(), sort_keys=True))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
