"""E4: Figure 8 — connection coalescing under one-address vs rest-of-world.

Paper claims checked:

* requests-per-connection is higher at the one-IP datacenter than under
  standard (here: per-query random) addressing;
* QUIC (h3) is insensitive — its coalescing never required the IP match;
* a 2-sample Anderson–Darling test rejects the same-population hypothesis
  at 99.9 % (paper: AD = 3532.4 vs ADcrit = 6.546).
"""

import pytest

from repro.experiments.fig8 import (
    Fig8Config,
    ONE_IP_POOL,
    REST_OF_WORLD_POOL,
    render_fig8_table,
    run_fig8_arm,
)
from repro.analysis.stats import anderson_darling_2sample

CONFIG = Fig8Config(num_sites=250, sessions=220)


@pytest.fixture(scope="module")
def arms():
    return {}


def test_fig8_one_ip_arm(benchmark, arms):
    arms["one"] = benchmark.pedantic(
        run_fig8_arm, args=("one-ip", ONE_IP_POOL, CONFIG), rounds=1, iterations=1
    )
    assert arms["one"].tcp_rpc and arms["one"].quic_rpc


def test_fig8_rest_of_world_arm(benchmark, arms):
    arms["rest"] = benchmark.pedantic(
        run_fig8_arm, args=("rest-of-world", REST_OF_WORLD_POOL, CONFIG),
        rounds=1, iterations=1,
    )
    assert arms["rest"].tcp_rpc


def test_fig8_shape_and_significance(benchmark, arms, save_table):
    one, rest = arms["one"], arms["rest"]

    # TCP (h2): the IP-match condition bites under randomization.
    assert one.mean(one.tcp_rpc) > 1.5 * rest.mean(rest.tcp_rpc)

    # QUIC (h3): coalescing needs no IP match, so both arms look alike —
    # §4.4's "HTTP/3 does not require IP address matching".
    q_one, q_rest = one.mean(one.quic_rpc), rest.mean(rest.quic_rpc)
    assert abs(q_one - q_rest) < 0.5 * max(q_one, q_rest)

    ad_all = anderson_darling_2sample(one.all_rpc(), rest.all_rpc())
    assert ad_all.rejects_same_population(0.001)
    assert ad_all.critical_at(0.001) == pytest.approx(6.546, abs=0.01)

    from repro.experiments.fig8 import Fig8Result
    ad_tcp = anderson_darling_2sample(one.tcp_rpc, rest.tcp_rpc)
    result = Fig8Result(one_ip=one, rest_of_world=rest, ad_tcp=ad_tcp, ad_all=ad_all)
    save_table("fig8_coalescing", render_fig8_table(result))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
