"""E1–E3: Figure 7 — per-IP load under static vs randomized addressing.

Paper claims being checked (shape, not absolute values):

* 7a (static, two /20s): per-IP requests and bytes span several orders of
  magnitude (paper: ~4–6 with 20M hostnames over 24 h);
* 7b (random /20): spread collapses to a small residue (paper: ≲2–3
  orders — sampling noise over 4096 addresses);
* 7c (random /24): near-uniform; max/min factor < 2 in absolute terms;
* one-address: degenerate — exactly one loaded address.

The ordering 7a ≫ 7b > 7c is the reproducible invariant and is asserted.
"""

import pytest

from repro.core.pool import AddressPool
from repro.core.strategies import RandomSelection, StaticAssignment
from repro.experiments.fig7 import (
    AGILE_SLASH20,
    AGILE_SLASH24,
    AGILE_SLASH32,
    Fig7Config,
    render_fig7_table,
    run_fig7_panel,
)

CONFIG = Fig7Config(num_sites=8_000, requests=120_000, zipf_s=1.1)


@pytest.fixture(scope="module")
def results():
    return {}


def test_fig7a_static_two_slash20s(benchmark, results):
    pool = AddressPool(
        __import__("repro.netsim.addr", fromlist=["parse_prefix"]).parse_prefix("10.0.0.0/19"),
        name="two /20s static",
    )
    result = benchmark.pedantic(
        run_fig7_panel,
        args=("7a", pool, StaticAssignment(per_address=CONFIG.hostnames_per_address_static), CONFIG),
        rounds=1, iterations=1,
    )
    results["7a"] = result
    # Static binding inherits popularity skew: multi-order spread.
    assert result.request_spread_orders > 2.0
    assert result.requests_dist.gini > 0.8


def test_fig7b_random_slash20(benchmark, results):
    pool = AddressPool(AGILE_SLASH20, name="random /20")
    result = benchmark.pedantic(
        run_fig7_panel, args=("7b", pool, RandomSelection(), CONFIG), rounds=1, iterations=1
    )
    results["7b"] = result
    assert result.request_spread_orders < 2.0
    assert result.requests_dist.gini < 0.4


def test_fig7c_random_slash24(benchmark, results):
    pool = AddressPool(AGILE_SLASH24, name="random /24")
    result = benchmark.pedantic(
        run_fig7_panel, args=("7c", pool, RandomSelection(), CONFIG), rounds=1, iterations=1
    )
    results["7c"] = result
    # The paper's /24 panel: "factor of less than 2 in absolute terms".
    assert result.requests_dist.max_min_factor < 2.0
    assert result.requests_dist.loaded_addresses == 256


def test_fig7_one_address(benchmark, results):
    pool = AddressPool(AGILE_SLASH32, name="one /32")
    result = benchmark.pedantic(
        run_fig7_panel, args=("one", pool, RandomSelection(), CONFIG), rounds=1, iterations=1
    )
    results["one"] = result
    assert result.requests_dist.loaded_addresses == 1
    assert result.requests_dist.max_min_factor == 1.0


def test_fig7_shape_ordering_and_report(benchmark, results, save_table):
    """The cross-panel invariant: agility monotonically flattens load."""
    assert set(results) >= {"7a", "7b", "7c", "one"}, "run the panel benches first"
    spread = {k: results[k].request_spread_orders for k in ("7a", "7b", "7c")}
    assert spread["7a"] > spread["7b"] > spread["7c"]
    gini = {k: results[k].requests_dist.gini for k in ("7a", "7b", "7c")}
    assert gini["7a"] > gini["7b"] > gini["7c"]
    save_table("fig7_load_distribution", render_fig7_table(results))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # report-only test
