"""A3 ablation: DoS k-ary search — k and probe-TTL tradeoffs.

k trades addresses-consumed-per-round against rounds: large k isolates in
fewer rounds but needs k+1 addresses live at once; a /24 caps k at 255.
The probe TTL trades isolation latency against cache churn.  Both bounds
come from the paper's formula TTL + t·⌈log_k n⌉.
"""

import pytest

from repro.experiments.dos import render_dos_table, run_dos_case, run_dos_sweep


def test_k_sweep(benchmark, save_table):
    runs = benchmark.pedantic(
        run_dos_sweep,
        kwargs=dict(n_services=2_000, ks=(2, 4, 8, 16, 32, 64)),
        rounds=1, iterations=1,
    )
    save_table("ablation_dos_k", render_dos_table(runs))
    rounds = [run.verdict.rounds for run in runs]
    assert rounds == sorted(rounds, reverse=True)  # more slices, fewer rounds
    for run in runs:
        assert run.verdict.within_bound


@pytest.mark.parametrize("probe_ttl", [1, 5, 30])
def test_probe_ttl_drives_latency(benchmark, probe_ttl):
    run = benchmark.pedantic(
        run_dos_case,
        kwargs=dict(n_services=500, k=8, probe_ttl=probe_ttl, initial_ttl=60),
        rounds=1, iterations=1,
    )
    assert run.verdict.within_bound
    # Elapsed = initial drain + rounds × probe_ttl exactly, by construction
    # of the simulated clock — the formula is the mechanism, not a fit.
    expected = 60 + run.verdict.rounds * probe_ttl
    assert run.verdict.elapsed == pytest.approx(expected)
