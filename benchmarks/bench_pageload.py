"""E16 (extension): §5.2 — client-side latency wins of one-address.

Claims checked:

* connection-setup share of page-load time falls under one-address (more
  coalescing ⇒ fewer handshakes);
* DNS share falls too (long TTLs keep caches warm);
* mean per-fetch latency improves overall.
"""

from repro.experiments.pageload import render_pageload_table, run_pageload


def test_one_address_reduces_avoidable_latency(benchmark, save_table):
    runs = benchmark.pedantic(run_pageload, kwargs=dict(sessions=100),
                              rounds=1, iterations=1)
    save_table("pageload_decomposition", render_pageload_table(runs))
    random_arm = next(r for r in runs if r.label.startswith("random"))
    one_arm = next(r for r in runs if r.label.startswith("one-ip"))

    assert one_arm.account.share("setup") < random_arm.account.share("setup")
    assert one_arm.account.share("dns") < random_arm.account.share("dns")
    assert one_arm.mean_fetch_ms < random_arm.mean_fetch_ms
    # Identical workload in both arms: same fetch count.
    assert one_arm.account.fetches == random_arm.account.fetches
