"""A2 ablation: popularity skew drives the pre-agility spread of Fig. 7a.

The paper attributes the 4–6 orders-of-magnitude per-IP spread to
hostname-to-address binding under real (heavy-tailed) popularity.  The
sweep shows the causal chain: as Zipf skew rises, static-binding spread
explodes while per-query randomization stays flat — randomization is
insensitive to the popularity distribution (it never consults the name).
"""

import pytest

from repro.analysis.reporting import TextTable
from repro.core.pool import AddressPool
from repro.core.strategies import HashedAssignment, RandomSelection
from repro.experiments.fig7 import AGILE_SLASH24, Fig7Config, run_fig7_panel
from repro.netsim.addr import parse_prefix

SKEWS = (0.6, 1.0, 1.4)


@pytest.fixture(scope="module")
def outcomes():
    return {}


@pytest.mark.parametrize("skew", SKEWS)
def test_static_spread_vs_skew(benchmark, skew, outcomes):
    config = Fig7Config(num_sites=3_000, requests=60_000, zipf_s=skew)
    pool = AddressPool(parse_prefix("10.0.0.0/22"), name=f"static-s{skew}")
    result = benchmark.pedantic(
        run_fig7_panel, args=(f"static-{skew}", pool, HashedAssignment(), config),
        rounds=1, iterations=1,
    )
    outcomes[("static", skew)] = result


@pytest.mark.parametrize("skew", SKEWS)
def test_random_spread_vs_skew(benchmark, skew, outcomes):
    config = Fig7Config(num_sites=3_000, requests=60_000, zipf_s=skew)
    pool = AddressPool(AGILE_SLASH24, name=f"random-s{skew}")
    result = benchmark.pedantic(
        run_fig7_panel, args=(f"random-{skew}", pool, RandomSelection(), config),
        rounds=1, iterations=1,
    )
    outcomes[("random", skew)] = result


def test_skew_sensitivity_report(benchmark, outcomes, save_table):
    table = TextTable(
        "A2 — Zipf skew vs per-IP spread: static binding inherits skew, "
        "randomization is immune",
        ["zipf s", "static spread (o.o.m.)", "static gini",
         "random spread (o.o.m.)", "random gini"],
    )
    static_spreads, random_spreads = [], []
    for skew in SKEWS:
        s = outcomes[("static", skew)].requests_dist
        r = outcomes[("random", skew)].requests_dist
        table.add_row(skew, f"{s.spread_orders_of_magnitude:.2f}", f"{s.gini:.3f}",
                      f"{r.spread_orders_of_magnitude:.2f}", f"{r.gini:.3f}")
        static_spreads.append(s.spread_orders_of_magnitude)
        random_spreads.append(r.spread_orders_of_magnitude)
    save_table("ablation_zipf", table.render())
    assert static_spreads == sorted(static_spreads)          # grows with skew
    assert max(random_spreads) - min(random_spreads) < 0.3   # flat
    assert all(s > r for s, r in zip(static_spreads, random_spreads))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
