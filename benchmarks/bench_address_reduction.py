"""E7: §4.2 — address-usage reduction: 18 /20s → /20 → /24 → /32.

Claims checked exactly (these are arithmetic, so the numbers must match
the paper, not just the shape): 94.4 % reduction for the /20 and 99.7 %
for the /24 versus 18 /20s; 20M+ hostnames per single address at /32.
"""

import pytest

from repro.experiments.reduction import (
    render_reduction_table,
    run_reduction_table,
)


def test_reduction_numbers_match_paper(benchmark, save_table):
    rows = benchmark.pedantic(run_reduction_table, rounds=1, iterations=1)
    by_label = {row.label.split(" (")[0]: row for row in rows}
    assert by_label["one /20"].reduction_pct == pytest.approx(94.4, abs=0.05)
    assert by_label["one /24"].reduction_pct == pytest.approx(99.7, abs=0.05)
    assert by_label["one /32"].hostnames_per_address == 20_000_000
    save_table("address_reduction", render_reduction_table(rows))


def test_one_address_serves_full_universe(benchmark):
    """The ratio claim end-to-end at simulation scale: every hostname in a
    universe resolves to the single active address."""
    import random
    from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
    from repro.dns.records import RRType
    from repro.dns.server import AuthoritativeServer, QueryContext
    from repro.dns.wire import Message, Rcode
    from repro.edge.customers import AccountType, Customer, CustomerRegistry
    from repro.netsim.addr import parse_prefix

    hostnames = [f"h{i:05d}.example" for i in range(5_000)]
    registry = CustomerRegistry()
    registry.add(Customer("all", AccountType.FREE, set(hostnames)))
    engine = PolicyEngine(random.Random(0))
    pool = AddressPool(parse_prefix("192.0.0.0/20"),
                       active=parse_prefix("192.0.2.1/32"))
    engine.add(Policy("one", pool, ttl=30))
    server = AuthoritativeServer(PolicyAnswerSource(engine, registry))
    context = QueryContext(pop="dc1")

    def serve_all() -> int:
        ok = 0
        for i, hostname in enumerate(hostnames):
            response = server.handle_query(
                Message.query(i & 0xFFFF, hostname, RRType.A), context
            )
            if (response.flags.rcode == Rcode.NOERROR
                    and str(response.answers[0].rdata.address) == "192.0.2.1"):
                ok += 1
        return ok

    assert benchmark(serve_all) == len(hostnames)
