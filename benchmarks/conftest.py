"""Benchmark-suite plumbing: result artefacts and shared knobs.

Every bench regenerates one paper artefact.  Besides pytest-benchmark's
timing table, each bench writes its paper-shaped text table into
``benchmarks/results/<name>.txt`` so the run leaves inspectable artefacts
even when pytest captures stdout.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """save(name, text): persist a rendered table and echo it to stdout."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save
