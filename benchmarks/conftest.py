"""Benchmark-suite plumbing: result artefacts and shared knobs.

Every bench regenerates one paper artefact.  Besides pytest-benchmark's
timing table, each bench writes its paper-shaped text table into
``benchmarks/results/<name>.txt`` so the run leaves inspectable artefacts
even when pytest captures stdout.

Benches with a :mod:`repro.obs` hookup additionally save a
``benchmarks/results/BENCH_<name>.json`` snapshot (the ``save_bench``
fixture): a metrics-registry snapshot plus any scalars the bench adds,
with wall-clock timing folded in from pytest-benchmark when available.
These are the perf-trajectory data points CI uploads as artifacts;
``python -m repro metrics --diff`` compares any two of them.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """save(name, text): persist a rendered table and echo it to stdout."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save


@pytest.fixture
def save_bench(results_dir, benchmark):
    """save(name, metrics=None, **scalars): persist BENCH_<name>.json.

    ``metrics`` is a :class:`repro.obs.MetricsRegistry` snapshot dict (or a
    registry, which is snapshotted here).  Real-time stats from the
    ``benchmark`` fixture ride along under ``"timing"`` when the bench ran
    one, keyed so successive CI runs chart the perf trajectory.
    """

    def save(name: str, metrics=None, **scalars) -> pathlib.Path:
        payload: dict = {"bench": name}
        if metrics is not None:
            snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
            payload["metrics"] = snapshot
        if scalars:
            payload["results"] = scalars
        stats = getattr(benchmark, "stats", None)
        if stats is not None:
            payload["timing"] = {
                "mean_s": stats.stats.mean,
                "stddev_s": stats.stats.stddev,
                "rounds": stats.stats.rounds,
            }
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[bench snapshot saved to {path}]")
        return path

    return save
