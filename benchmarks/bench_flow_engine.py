"""E-flow: columnar flow-engine throughput, batched versus scalar, per stage.

ROADMAP item 1 (keep the request path fast at CDN scale): PR 4 batched the
sk_lookup dispatch stage; the flow engine batches the rest of the
pipeline.  Each test here times one stage both ways on the *same* world
and workload — the columnar ``FlowEngine`` stage against the
loop-of-scalars seams ``FlowEngine.run_scalar`` uses — and persists a
``BENCH_flow_<stage>.json`` snapshot whose ``batch_speedup`` ratio the CI
perf gate (``benchmarks/perf_gate.py``) pins against committed baselines.

Both arms are timed with the same best-of-``REPEATS`` harness so the
ratio is apples-to-apples; absolute flows/s are machine-bound and stay
ungated.  The differential suite (``tests/test_flow_differential.py``)
separately proves the two arms produce identical verdicts and counters —
these benches only measure them.
"""

import itertools
import time

import pytest

from repro.analysis.reporting import TextTable
from repro.dns.records import DomainName, Question, RRType
from repro.experiments.flow_perf import build_flow_world
from repro.flow import FlowBatch
from repro.netsim.addr import IPAddress
from repro.netsim.packet import Packet
from repro.obs import MetricsRegistry
from repro.obs.adapters import watch_flow_engine
from repro.sockets.lookup import flow_hash_tuple
from repro.web.http import Request

N_HOSTNAMES = 128
N_FLOWS = 1024
REPEATS = 3  # best-of, absorbing warm-up and scheduler noise

#: Globally unique client sources (10.0.0.0/8) so no benchmark round ever
#: replays a live 5-tuple — a client cannot reconnect on a bound port.
_src_counter = itertools.count(1)


@pytest.fixture(scope="module")
def rates():
    return {}


@pytest.fixture(scope="module")
def world():
    w = build_flow_world(num_hostnames=N_HOSTNAMES, num_servers=8)
    # Prime the resolver cache: stage benches measure the steady state
    # (every hostname already bound), not first-contact minting.
    primer = FlowBatch(*_columns(w, N_HOSTNAMES))
    w.engine.resolve_batch(primer)
    assert all(a is not None for a in primer.addresses)
    return w


def _columns(world, n):
    """``n`` flows cycling the universe's hostnames, fresh sources each call."""
    sites = world.universe.sites
    hostnames = [sites[i % len(sites)] for i in range(n)]
    src_addrs = [IPAddress.v4(0x0A000000 + next(_src_counter)) for _ in range(n)]
    return hostnames, src_addrs, [33_333] * n


def _resolved_batch(world, n):
    batch = FlowBatch(*_columns(world, n))
    world.engine.resolve_batch(batch)
    return batch


def _connected_batch(world, n):
    batch = _resolved_batch(world, n)
    world.engine.connect_stage(batch)
    return batch


def _rate(fn, n_items, fresh=None):
    """Best-of-``REPEATS`` items/s; ``fresh`` builds per-round arguments
    outside the timed region (stages that consume 5-tuples need new ones)."""
    best = float("inf")
    for _ in range(REPEATS):
        args = fresh() if fresh is not None else ()
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return n_items / best


def _save_stage(save_bench, rates, stage, batched_fps, scalar_fps, **extra):
    rates[f"{stage}-batched"] = batched_fps
    rates[f"{stage}-scalar"] = scalar_fps
    speedup = batched_fps / scalar_fps
    rates[f"{stage}-speedup"] = speedup
    save_bench(
        f"flow_{stage}",
        batched_fps=batched_fps,
        scalar_fps=scalar_fps,
        batch_speedup=speedup,
        **extra,
    )


def test_hash_stage(world, rates, save_bench, benchmark):
    """The flow-hash column: one vectorised pass versus a per-tuple loop."""
    tuples = _connected_batch(world, N_FLOWS).tuple5s
    loops = 8
    backend = world.engine.backend

    def batched():
        for _ in range(loops):
            backend.hash_tuples(tuples)

    def scalar():
        for _ in range(loops):
            for t in tuples:
                flow_hash_tuple(t)

    batched_fps = _rate(batched, loops * N_FLOWS)
    scalar_fps = _rate(scalar, loops * N_FLOWS)
    _save_stage(save_bench, rates, "hash", batched_fps, scalar_fps,
                backend=1.0 if backend.name == "numpy" else 0.0)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_resolve_stage(world, rates, save_bench, benchmark):
    """Warm-cache resolve: one ``lookup_batch`` versus per-flow lookups."""
    engine = world.engine
    sites = world.universe.sites
    loops = 16
    addrs = [IPAddress.v4(0x0A000000)] * len(sites)
    ports = [33_333] * len(sites)

    def batched():
        for _ in range(loops):
            engine.resolve_batch(FlowBatch(list(sites), addrs, ports))

    def scalar():
        for _ in range(loops):
            for hostname in sites:
                engine._resolve_one(
                    Question(DomainName.from_text(hostname), RRType.A)
                )

    batched_fps = _rate(batched, loops * len(sites))
    scalar_fps = _rate(scalar, loops * len(sites))
    _save_stage(save_bench, rates, "resolve", batched_fps, scalar_fps)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_connect_stage(world, rates, save_bench, benchmark):
    """ECMP → L4LB → handshake: ``connect_batch`` versus ``connect`` loops.

    Every round consumes fresh 5-tuples (built outside the timed region):
    a handshake binds its tuple for good."""
    from repro.netsim.packet import FiveTuple
    from repro.web.tls import ClientHello

    engine = world.engine
    dc = world.dc
    transport = engine.version.transport

    def batched():
        return (_resolved_batch(world, N_FLOWS),)

    def scalar_args():
        return (_resolved_batch(world, N_FLOWS),)

    def scalar(batch):
        for i in batch.resolved_indices():
            t5 = FiveTuple(
                transport, batch.src_addrs[i], batch.src_ports[i],
                batch.addresses[i], engine.port,
            )
            conn = dc.connect(
                t5, ClientHello(sni=batch.hostnames[i]), engine.version
            )
            dc.connection_owner(conn.conn_id)

    batched_fps = _rate(engine.connect_stage, N_FLOWS, fresh=batched)
    scalar_fps = _rate(scalar, N_FLOWS, fresh=scalar_args)
    _save_stage(save_bench, rates, "connect", batched_fps, scalar_fps)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_dispatch_stage(world, rates, save_bench, benchmark):
    """Request-packet dispatch on established flows, grouped by owner."""
    engine = world.engine
    servers = world.dc.servers
    batch = _connected_batch(world, N_FLOWS)
    loops = 8

    def batched():
        for _ in range(loops):
            engine.dispatch_stage(batch)

    def scalar():
        for _ in range(loops):
            for i in range(len(batch)):
                servers[batch.servers[i]].dispatch(
                    Packet(batch.tuple5s[i]),
                    deliver=False,
                    flow_hash=batch.flow_hashes[i],
                )

    batched_fps = _rate(batched, loops * N_FLOWS)
    scalar_fps = _rate(scalar, loops * N_FLOWS)
    _save_stage(save_bench, rates, "dispatch", batched_fps, scalar_fps)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_serve_stage(world, rates, save_bench, benchmark):
    """HTTP serving on established flows: ``serve_batch`` versus a loop."""
    engine = world.engine
    dc = world.dc
    batch = _connected_batch(world, N_FLOWS)
    loops = 4

    def batched():
        for _ in range(loops):
            engine.serve_stage(batch)

    def scalar():
        for _ in range(loops):
            for i in range(len(batch)):
                dc.serve(batch.connections[i], Request(authority=batch.hostnames[i]))

    batched_fps = _rate(batched, loops * N_FLOWS)
    scalar_fps = _rate(scalar, loops * N_FLOWS)
    _save_stage(save_bench, rates, "serve", batched_fps, scalar_fps)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_end_to_end(world, rates, save_bench, benchmark):
    """The whole pipeline: ``run_batch`` versus ``run_scalar``."""
    engine = world.engine

    def fresh():
        return (_columns(world, N_FLOWS),)

    def batched(columns):
        batch = engine.run_batch(FlowBatch(*columns))
        assert all(status == 200 for status in batch.statuses)

    def scalar(columns):
        batch = engine.run_scalar(*columns)
        assert all(status == 200 for status in batch.statuses)

    batched_fps = _rate(batched, N_FLOWS, fresh=fresh)
    scalar_fps = _rate(scalar, N_FLOWS, fresh=fresh)
    _save_stage(save_bench, rates, "end_to_end", batched_fps, scalar_fps)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_flow_throughput_report(world, rates, save_table, save_bench, benchmark):
    stages = ("hash", "resolve", "connect", "dispatch", "serve", "end_to_end")
    assert {f"{stage}-speedup" for stage in stages} <= set(rates)
    table = TextTable(
        "Columnar flow engine: batched vs scalar throughput "
        f"(hash backend: {world.engine.backend.name})",
        ["stage", "batched flows/s", "scalar flows/s", "speedup"],
    )
    for stage in stages:
        table.add_row(
            stage,
            f"{rates[f'{stage}-batched']:,.0f}",
            f"{rates[f'{stage}-scalar']:,.0f}",
            f"{rates[f'{stage}-speedup']:.2f}x",
        )
    save_table("flow_engine", table.render())

    # The claim worth defending: batching never *loses* to the scalar
    # loop on any stage (the gate pins the measured ratios tighter).
    for stage in stages:
        assert rates[f"{stage}-speedup"] > 0.8, (
            f"{stage}: batched path slower than scalar "
            f"({rates[f'{stage}-speedup']:.2f}x)"
        )

    registry = MetricsRegistry()
    watch_flow_engine(registry, "flow", world.engine)
    save_bench(
        "flow_engine",
        metrics=registry,
        **{f"{stage}_speedup": rates[f"{stage}-speedup"] for stage in stages},
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
