"""E6: Figure 4 — socket-table scaling: per-IP binds vs wildcard vs sk_lookup.

Claims checked:

* per-IP binding costs one socket per (address, port, protocol): a /20 on
  the deployment's 13 ports costs ~106K sockets per machine (Figure 4a,
  "4096 sockets … before doubling to accommodate both TCP and UDP");
* sk_lookup and wildcard cost O(ports) sockets regardless of pool width;
* per-IP *setup* time grows linearly with the pool while sk_lookup setup
  is constant;
* dispatch latency does not grow with pool width under sk_lookup.
"""

import pytest

from repro.experiments.sklookup_perf import (
    build_per_ip_binds,
    build_sk_lookup,
    dispatch_all,
    make_packets,
    render_scaling_table,
)
from repro.netsim.addr import Prefix, parse_address
from repro.sockets.socktable import SOCKET_MEM_BYTES


def pool_of(length: int) -> Prefix:
    return Prefix.of(parse_address("192.0.0.0"), length)


@pytest.mark.parametrize("length", [26, 24, 22])
def test_per_ip_setup_cost_scales(benchmark, length):
    setup = benchmark(build_per_ip_binds, pool_of(length))
    assert setup.socket_count == pool_of(length).num_addresses
    assert setup.memory_bytes == setup.socket_count * SOCKET_MEM_BYTES


@pytest.mark.parametrize("length", [26, 24, 22, 20])
def test_sklookup_setup_cost_constant(benchmark, length):
    setup = benchmark(build_sk_lookup, pool_of(length))
    assert setup.socket_count == 1


@pytest.mark.parametrize("length", [26, 22])
def test_per_ip_dispatch(benchmark, length):
    setup = build_per_ip_binds(pool_of(length))
    packets = make_packets(10_000, pool=pool_of(length))
    delivered = benchmark(dispatch_all, setup, packets)
    assert delivered == len(packets)


@pytest.mark.parametrize("length", [26, 20])
def test_sklookup_dispatch_pool_width_invariant(benchmark, length):
    setup = build_sk_lookup(pool_of(length))
    packets = make_packets(10_000, pool=pool_of(length))
    delivered = benchmark(dispatch_all, setup, packets)
    assert delivered == len(packets)


def test_deployment_scale_socket_budget(benchmark, save_table):
    """The paper's own arithmetic: a /20 × 13 ports × {TCP, UDP}."""
    save_table("socket_scaling", render_scaling_table())
    per_ip_sockets = 4096 * 13 * 2
    sk_sockets = 13 * 2
    assert per_ip_sockets == 106_496
    ratio = per_ip_sockets / sk_sockets
    assert ratio == 4096
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
