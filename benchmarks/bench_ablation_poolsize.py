"""A1 ablation: pool-size sweep /20 → /32 under per-query randomization.

DESIGN.md calls out active-set width as the deployment's main knob
(§4.2's timetable).  The sweep quantifies the tradeoff the paper narrates:

* load uniformity (max/min factor, Gini) improves as the pool narrows —
  fewer cells, more samples per cell;
* every width serves the identical hostname set (no capacity cliff);
* the residual non-uniformity at /20 is pure sampling noise: it shrinks
  roughly like 1/√(requests per address).
"""

import pytest

from repro.analysis.reporting import TextTable
from repro.core.pool import AddressPool
from repro.core.strategies import RandomSelection
from repro.experiments.fig7 import AGILE_SLASH20, Fig7Config, run_fig7_panel
from repro.netsim.addr import Prefix, parse_address

CONFIG = Fig7Config(num_sites=3_000, requests=60_000)


def active_of(length: int) -> Prefix:
    return Prefix.of(parse_address("192.0.2.1") if length == 32 else parse_address("192.0.0.0"), length)


@pytest.fixture(scope="module")
def sweep_results():
    return {}


@pytest.mark.parametrize("length", [20, 24, 28, 32])
def test_pool_width(benchmark, length, sweep_results):
    pool = AddressPool(AGILE_SLASH20, active=active_of(length), name=f"/{length}")
    result = benchmark.pedantic(
        run_fig7_panel, args=(f"/{length}", pool, RandomSelection(), CONFIG),
        rounds=1, iterations=1,
    )
    assert result.requests_dist.total == CONFIG.requests
    sweep_results[length] = result


def test_uniformity_improves_as_pool_narrows(benchmark, sweep_results, save_table):
    assert set(sweep_results) == {20, 24, 28, 32}
    table = TextTable(
        "A1 — active pool width vs load uniformity (per-query random)",
        ["active set", "addresses", "req/addr", "max/min", "gini", "cv"],
    )
    ginis = []
    for length in (20, 24, 28, 32):
        dist = sweep_results[length].requests_dist
        n = len(dist.sorted_desc)
        table.add_row(
            f"/{length}", n, f"{CONFIG.requests / n:.0f}",
            f"{dist.max_min_factor:.2f}", f"{dist.gini:.4f}", f"{dist.cv:.4f}",
        )
        ginis.append(dist.gini)
    save_table("ablation_poolsize", table.render())
    assert ginis == sorted(ginis, reverse=True)  # monotone improvement
    assert sweep_results[32].requests_dist.gini == 0.0
    # Sampling-noise scaling: /24 has 16× the per-address samples of /20,
    # so its CV should be roughly 4× smaller (allow 2×-8× for noise).
    ratio = sweep_results[20].requests_dist.cv / max(sweep_results[24].requests_dist.cv, 1e-9)
    assert 2.0 < ratio < 8.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
