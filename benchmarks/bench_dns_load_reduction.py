"""E14 (extension): §5.2 — one-address lets TTLs grow, cutting DNS load.

Claims checked:

* queries-per-request is monotone non-increasing in TTL under one-address;
* root-like TTLs (86400 s) yield a substantial reduction versus the 30 s
  rebalancing regime;
* at equal TTLs, one-address is never worse than randomized addressing
  (coalescing avoids lookups entirely for reused connections).
"""

from repro.experiments.dnsload import render_dns_load_table, run_dns_load


def test_dns_stress_falls_with_ttl(benchmark, save_table):
    runs = benchmark.pedantic(run_dns_load, kwargs=dict(sessions=120),
                              rounds=1, iterations=1)
    save_table("dns_load_reduction", render_dns_load_table(runs))
    random30 = next(r for r in runs if r.label.startswith("random"))
    one30 = next(r for r in runs if r.label == "one-ip ttl=30")
    one3600 = next(r for r in runs if r.ttl == 3600)
    one86400 = next(r for r in runs if r.ttl == 86400)

    assert one30.queries_per_request <= random30.queries_per_request + 1e-9
    assert one3600.queries_per_request < one30.queries_per_request
    assert one86400.queries_per_request <= one3600.queries_per_request
    # The headline: root-like TTLs cut DNS stress by a solid margin.
    assert one86400.queries_per_request < 0.8 * one30.queries_per_request
