"""E11: §6 measurement — failover DC2 receives DNS-learned traffic.

Claims checked:

* DC2 (which never answers pool queries) still receives a significant
  share of pool traffic, caused purely by resolver↔client catchment
  mismatch;
* the affected proportion is substantially higher for IPv6 than IPv4
  (reproduced via the higher public-resolver share among v6-capable
  clients — see the module docstring for the substitution rationale).
"""

from repro.experiments.spillover import render_spillover_table, run_spillover


def test_spillover_present_and_v6_heavier(benchmark, save_table):
    runs = benchmark.pedantic(
        run_spillover,
        kwargs=dict(clients=40, requests_per_client=5),
        rounds=1, iterations=1,
    )
    save_table("dc2_spillover", render_spillover_table(runs))
    v4 = next(r for r in runs if r.family == "IPv4")
    v6 = next(r for r in runs if r.family == "IPv6")
    assert v4.dc2_requests > 0, "no spillover at all — mismatch modelling broken"
    assert v4.spillover_share > 0.02
    assert v6.spillover_share > v4.spillover_share


def test_no_mismatch_no_spillover(benchmark):
    """Control: with resolver == client everywhere, DC2 stays clean."""
    runs = benchmark.pedantic(
        run_spillover,
        kwargs=dict(clients=20, requests_per_client=4,
                    v4_public_resolver_share=0.0, v6_public_resolver_share=0.0),
        rounds=1, iterations=1,
    )
    for run in runs:
        assert run.spillover_share == 0.0
