"""E18: chaos soak — randomized fault campaigns vs control-plane invariants.

Claims checked:

* a correctly tuned control plane survives a soak of seeded random fault
  campaigns (hard outages + gray failures) with **zero** invariant
  violations;
* the whole soak is deterministic: same seed, byte-identical reports;
* a gray drill (PoP-wide 10× serve latency) is drained via the latency
  path within detection + TTL with no hard probe failure;
* the pinned mis-tuned-monitor campaign violates and delta-minimizes to
  its single causal fault.
"""

import json
import pathlib

from repro.chaos import (
    Campaign,
    ChaosConfig,
    FaultSpec,
    minimize_campaign,
    run_campaign,
)
from repro.experiments.chaos_soak import (
    ChaosSoakConfig,
    render_chaos_soak_table,
    run_chaos_soak,
)

BAD_CAMPAIGN = pathlib.Path(__file__).parent.parent / "tests" / "fixtures" / "chaos_bad_campaign.json"
SMOKE_CHAOS = ChaosConfig(horizon=120.0, clients_per_region=2, num_sites=8)


def test_chaos_soak_holds_invariants(benchmark, save_table, save_bench):
    config = ChaosSoakConfig(seed=7, campaigns=8, chaos=SMOKE_CHAOS)
    outcome = benchmark.pedantic(run_chaos_soak, args=(config,),
                                 rounds=1, iterations=1)
    assert outcome.ok, [r.report()["violations"] for r in outcome.results if not r.ok]
    reports = outcome.reports()
    save_table("chaos_soak", render_chaos_soak_table(outcome))
    save_bench(
        "chaos_soak",
        campaigns=len(reports),
        violations=outcome.violation_count,
        availability_min=min(r["availability"] for r in reports),
        p99_latency_ms_max=max(r["p99_latency_ms"] for r in reports),
        sheds_total=sum(r["sheds"] for r in reports),
        gray_rounds_total=sum(r["gray_rounds"] for r in reports),
        hedges_total=sum(r["hedges"] for r in reports),
    )


def test_chaos_soak_is_deterministic(benchmark):
    config = ChaosSoakConfig(seed=11, campaigns=3, chaos=SMOKE_CHAOS)
    a = run_chaos_soak(config).reports_json()
    b = run_chaos_soak(config).reports_json()
    assert a == b
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_gray_drill_drains_without_hard_failure(benchmark):
    drill = Campaign("gray-drill", seed=42, faults=(
        FaultSpec(when=30.0, kind="slow_server", duration=60.0,
                  params={"pop": "ashburn", "factor": 10.0}),
    ))
    result = benchmark.pedantic(run_campaign, args=(drill, SMOKE_CHAOS),
                                rounds=1, iterations=1)
    assert result.ok
    failover = result.timeline.first("failover_triggered")
    assert failover is not None, "gray failure never drained"
    # Drained within detection budget + TTL of the slowdown, latency path.
    assert failover.at <= 30.0 + SMOKE_CHAOS.detection_budget_s + SMOKE_CHAOS.ttl
    assert result.timeline.first("gray_detected") is not None
    assert not result.timeline.events(kind="probe_failed")
    assert "latency" not in {e.kind for e in result.timeline}  # sanity: reason in detail
    assert "slow" in failover.detail


def test_bad_campaign_minimizes_to_causal_fault(benchmark):
    campaign = Campaign.from_json(BAD_CAMPAIGN.read_text())
    result = run_campaign(campaign)
    assert {v.invariant for v in result.violations} >= {"recovery"}
    minimal = benchmark.pedantic(
        minimize_campaign, args=(campaign,), kwargs={"invariant": "recovery"},
        rounds=1, iterations=1,
    )
    assert [spec.kind for spec in minimal.minimized.faults] == ["pop_outage"]
    assert len(minimal.minimized.faults) <= 2
    # Deterministic replay: the minimized campaign still violates the same way.
    replay = run_campaign(minimal.minimized)
    assert any(v.invariant == "recovery" for v in replay.violations)
    assert json.loads(minimal.minimized.to_json())["seed"] == campaign.seed
