"""E8: Figure 9 — route-leak detection & mitigation at DNS-TTL timescales.

Claims checked:

* a clean anycast deployment produces no alerts (no false positives at the
  configured thresholds);
* the injected Figure 9 leak is detected from per-PoP traffic counters
  within a small multiple of the TTL;
* mitigation (pool swap to an already-advertised backup) has a propagation
  horizon of exactly one TTL, and new answers come from the backup
  immediately.
"""

from repro.analysis.reporting import TextTable
from repro.experiments.fig9 import Fig9Config, render_fig9_table, run_fig9


def test_fig9_leak_detection_and_mitigation(benchmark, save_table):
    outcome = benchmark.pedantic(run_fig9, args=(Fig9Config(),), rounds=1, iterations=1)
    assert outcome.detected
    assert outcome.detection_time <= 4 * outcome.ttl
    assert outcome.mitigation_horizon == outcome.ttl
    assert outcome.post_mitigation_clean
    save_table("fig9_routeleak", render_fig9_table(outcome))


def test_fig9_detection_scales_with_ttl(benchmark, save_table):
    """Detection latency tracks the TTL knob, as §6 predicts ('we expect
    network issues to be visible at DNS TTL timescales')."""
    rows = []
    for ttl in (10, 30, 60):
        outcome = run_fig9(Fig9Config(ttl=ttl, seed=1969 + ttl))
        assert outcome.detected
        rows.append((ttl, outcome.detection_time))
    table = TextTable("Fig 9 ablation — detection latency vs DNS TTL",
                      ["TTL (s)", "detection latency (s)"])
    for ttl, latency in rows:
        table.add_row(ttl, f"{latency:.0f}")
    save_table("fig9_ttl_sweep", table.render())
    # Latency grows with TTL (same traffic cadence, longer cache drain).
    assert rows[0][1] <= rows[-1][1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
