"""E5: §3.3 — sk_lookup dispatch cost relative to the classic lookup path.

The kernel evaluation reported ~1M TCP SYN/s and ~2.5M UDP pkt/s baseline
with a 1–5 % penalty when an sk_lookup program runs.  Our Python model's
absolute rates are ~3 orders lower; the claims checked are relative:

* attaching a program that must RUN on every packet (and falls through)
  costs only a modest fraction of baseline dispatch;
* steering a whole /20 via sk_lookup is not slower than the classic path
  by more than a small factor — i.e. program execution is O(rules), not
  O(pool);
* UDP dispatch ≥ TCP dispatch in pps (no connected-table probe… both do
  the probe here, so we assert they are within noise instead — and report
  both, as the kernel numbers do);
* the compiled dispatch engine (:mod:`repro.sockets.compiled`) beats the
  rule-by-rule interpreter by ≥ 3× on a 64-rule program, and batching
  through :meth:`LookupPath.dispatch_batch` stacks further gains on top.

The interpreter/compiled/batched rates are persisted to
``BENCH_sklookup_perf.json`` — the perf-trajectory snapshot the CI
``bench-smoke`` job gates against ``benchmarks/baselines/`` (>20 %
speedup regression fails the build; see ``benchmarks/perf_gate.py``).
"""

import time

import pytest

from repro.analysis.reporting import TextTable
from repro.experiments.sklookup_perf import (
    DEFAULT_POOL,
    build_baseline_listener,
    build_sk_lookup,
    dispatch_all,
    dispatch_all_batched,
    make_packets,
)
from repro.netsim.packet import Protocol
from repro.obs import MetricsRegistry, time_lookup_path, watch_lookup_path

N_PACKETS = 30_000
ENGINE_RULES = 64  # the acceptance configuration: 63 fillers + 1 hit


@pytest.fixture(scope="module")
def rates():
    return {}


@pytest.fixture(scope="module")
def obs():
    """Module-lived metrics registry for the batched-dispatch run."""
    return MetricsRegistry()


def _bench_dispatch(benchmark, setup, packets, label, rates, runner=dispatch_all):
    delivered = benchmark(runner, setup, packets)
    assert delivered == len(packets)
    rates[label] = len(packets) / benchmark.stats["mean"]


def test_baseline_tcp_dispatch(benchmark, rates):
    setup = build_baseline_listener(protocol=Protocol.TCP)
    packets = make_packets(N_PACKETS, to_internal=True, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "baseline-tcp", rates)


def test_baseline_udp_dispatch(benchmark, rates):
    setup = build_baseline_listener(protocol=Protocol.UDP)
    packets = make_packets(N_PACKETS, to_internal=True, protocol=Protocol.UDP)
    _bench_dispatch(benchmark, setup, packets, "baseline-udp", rates)


def test_sklookup_tcp_dispatch(benchmark, rates):
    setup = build_sk_lookup(protocol=Protocol.TCP)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "sklookup-tcp", rates)


def test_sklookup_udp_dispatch(benchmark, rates):
    setup = build_sk_lookup(protocol=Protocol.UDP)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.UDP)
    _bench_dispatch(benchmark, setup, packets, "sklookup-udp", rates)


def test_program_overhead_on_miss_path(benchmark, rates):
    """A program with 8 non-matching rules ahead of the hit: the pure
    'program ran' overhead the kernel's 1–5 % figure describes."""
    setup = build_sk_lookup(protocol=Protocol.TCP, extra_rules=8)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "sklookup-tcp-8rules", rates)


def test_interpreter_64rule_dispatch(benchmark, rates):
    """The rule-by-rule interpreter on the acceptance configuration: every
    packet scans 63 non-matching filler rules before the pool rule hits."""
    setup = build_sk_lookup(protocol=Protocol.TCP, extra_rules=ENGINE_RULES - 1,
                            engine="interpreter")
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "64rules-interpreter", rates)


def test_compiled_64rule_dispatch(benchmark, rates):
    """Same 64-rule program, compiled: protocol bucket + port segment +
    mask-grouped LPM probes replace the linear scan."""
    setup = build_sk_lookup(protocol=Protocol.TCP, extra_rules=ENGINE_RULES - 1,
                            engine="compiled")
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "64rules-compiled", rates)


def test_compiled_batch_dispatch(benchmark, rates, obs):
    """Compiled engine through dispatch_batch, with the repro.obs hookup
    live (stage counters + dispatch-latency histogram) to show the
    instrumented batch path still clears the bar."""
    setup = build_sk_lookup(protocol=Protocol.TCP, extra_rules=ENGINE_RULES - 1,
                            engine="compiled")
    watch_lookup_path(obs, "dispatch", setup.path)
    time_lookup_path(obs, "dispatch_latency_seconds", setup.path, time.perf_counter)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "64rules-compiled-batch", rates,
                    runner=dispatch_all_batched)


def test_relative_penalty_report(benchmark, rates, save_table, save_bench, obs):
    assert {"baseline-tcp", "sklookup-tcp", "sklookup-udp",
            "64rules-interpreter", "64rules-compiled"} <= set(rates)
    table = TextTable(
        "§3.3 dispatch throughput (simulated stack; kernel reported "
        "~1M TCP / ~2.5M UDP pps with 1-5% sk_lookup penalty)",
        ["configuration", "pkts/s", "vs TCP baseline"],
    )
    base = rates["baseline-tcp"]
    for label, rate in sorted(rates.items()):
        table.add_row(label, f"{rate:,.0f}", f"{rate / base:6.2%}")
    save_table("sklookup_dispatch", table.render())

    # The claim: running the program costs a few percent, not a multiple.
    assert rates["sklookup-tcp"] > 0.5 * base
    assert rates["sklookup-tcp-8rules"] > 0.4 * base

    # The engine claim: compiling the match logic buys ≥ 3× on 64 rules,
    # and batching never loses to per-packet compiled dispatch.
    speedup = rates["64rules-compiled"] / rates["64rules-interpreter"]
    batch_speedup = rates["64rules-compiled-batch"] / rates["64rules-interpreter"]
    assert speedup >= 3.0, f"compiled speedup {speedup:.2f}x < 3x"
    assert batch_speedup >= speedup * 0.9

    save_bench(
        "sklookup_perf",
        metrics=obs,
        interpreter_pps=rates["64rules-interpreter"],
        compiled_pps=rates["64rules-compiled"],
        compiled_batch_pps=rates["64rules-compiled-batch"],
        baseline_tcp_pps=base,
        speedup=speedup,
        batch_speedup=batch_speedup,
        rules=ENGINE_RULES,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
