"""E5: §3.3 — sk_lookup dispatch cost relative to the classic lookup path.

The kernel evaluation reported ~1M TCP SYN/s and ~2.5M UDP pkt/s baseline
with a 1–5 % penalty when an sk_lookup program runs.  Our Python model's
absolute rates are ~3 orders lower; the claims checked are relative:

* attaching a program that must RUN on every packet (and falls through)
  costs only a modest fraction of baseline dispatch;
* steering a whole /20 via sk_lookup is not slower than the classic path
  by more than a small factor — i.e. program execution is O(rules), not
  O(pool);
* UDP dispatch ≥ TCP dispatch in pps (no connected-table probe… both do
  the probe here, so we assert they are within noise instead — and report
  both, as the kernel numbers do).
"""

import pytest

from repro.analysis.reporting import TextTable
from repro.experiments.sklookup_perf import (
    DEFAULT_POOL,
    build_baseline_listener,
    build_sk_lookup,
    dispatch_all,
    make_packets,
)
from repro.netsim.packet import Protocol

N_PACKETS = 30_000


@pytest.fixture(scope="module")
def rates():
    return {}


def _bench_dispatch(benchmark, setup, packets, label, rates):
    delivered = benchmark(dispatch_all, setup, packets)
    assert delivered == len(packets)
    rates[label] = len(packets) / benchmark.stats["mean"]


def test_baseline_tcp_dispatch(benchmark, rates):
    setup = build_baseline_listener(protocol=Protocol.TCP)
    packets = make_packets(N_PACKETS, to_internal=True, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "baseline-tcp", rates)


def test_baseline_udp_dispatch(benchmark, rates):
    setup = build_baseline_listener(protocol=Protocol.UDP)
    packets = make_packets(N_PACKETS, to_internal=True, protocol=Protocol.UDP)
    _bench_dispatch(benchmark, setup, packets, "baseline-udp", rates)


def test_sklookup_tcp_dispatch(benchmark, rates):
    setup = build_sk_lookup(protocol=Protocol.TCP)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "sklookup-tcp", rates)


def test_sklookup_udp_dispatch(benchmark, rates):
    setup = build_sk_lookup(protocol=Protocol.UDP)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.UDP)
    _bench_dispatch(benchmark, setup, packets, "sklookup-udp", rates)


def test_program_overhead_on_miss_path(benchmark, rates):
    """A program with 8 non-matching rules ahead of the hit: the pure
    'program ran' overhead the kernel's 1–5 % figure describes."""
    setup = build_sk_lookup(protocol=Protocol.TCP, extra_rules=8)
    packets = make_packets(N_PACKETS, pool=DEFAULT_POOL, protocol=Protocol.TCP)
    _bench_dispatch(benchmark, setup, packets, "sklookup-tcp-8rules", rates)


def test_relative_penalty_report(benchmark, rates, save_table):
    assert {"baseline-tcp", "sklookup-tcp", "sklookup-udp"} <= set(rates)
    table = TextTable(
        "§3.3 dispatch throughput (simulated stack; kernel reported "
        "~1M TCP / ~2.5M UDP pps with 1-5% sk_lookup penalty)",
        ["configuration", "pkts/s", "vs TCP baseline"],
    )
    base = rates["baseline-tcp"]
    for label, rate in sorted(rates.items()):
        table.add_row(label, f"{rate:,.0f}", f"{rate / base:6.2%}")
    save_table("sklookup_dispatch", table.render())

    # The claim: running the program costs a few percent, not a multiple.
    assert rates["sklookup-tcp"] > 0.5 * base
    assert rates["sklookup-tcp-8rules"] > 0.4 * base
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
