"""E10: §3.1/§4.4 — binding lifetime bounded by downstream TTL behaviour.

Claims checked:

* honest resolvers flip to a rebound pool within one authoritative TTL;
* TTL-clamping resolvers (the §4.4 violators) hold the stale binding for
  their clamp, i.e. max(TTL, clamp) bounds the observed lifetime;
* the bound max(connection lifetime, TTL) is respected for every
  behaviour tested.
"""

from repro.experiments.ttl import render_ttl_table, run_ttl_experiment
from repro.obs import MetricsRegistry


def test_binding_lifetime_bounds(benchmark, save_table, save_bench):
    registry = MetricsRegistry()
    runs = benchmark.pedantic(
        run_ttl_experiment,
        kwargs=dict(authoritative_ttl=30, clamp_mins=(0, 60, 300),
                    registry=registry),
        rounds=1, iterations=1,
    )
    save_table("ttl_binding_lifetime", render_ttl_table(runs))
    save_bench(
        "ttl_binding_lifetime",
        metrics=registry,
        flips_s={r.resolver_label: r.observed_flip_time for r in runs},
    )
    for run in runs:
        assert run.observed_flip_time <= run.bound
    honest = next(r for r in runs if r.clamp_min == 0)
    assert honest.observed_flip_time <= 30 + 1
    worst = max(runs, key=lambda r: r.observed_flip_time)
    assert worst.clamp_min == 300  # violators dominate the rebind horizon


def test_lower_ttl_shortens_horizon(benchmark):
    """The DoS-search precondition: small TTLs mean fast rebinds."""
    fast = run_ttl_experiment(authoritative_ttl=5, clamp_mins=(0,))[0]
    slow = run_ttl_experiment(authoritative_ttl=120, clamp_mins=(0,))[0]
    assert fast.observed_flip_time < slow.observed_flip_time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
