"""Speakers-mode chaos: routing section, invariants, fixture, minimizer."""

import json
from pathlib import Path

import pytest

from repro.chaos.generator import Campaign, CampaignGenerator, FaultSpec
from repro.chaos.minimizer import minimize_campaign
from repro.chaos.runner import run_campaign
from repro.chaos.world import ChaosConfig, build_world

FIXTURE = Path(__file__).parent / "fixtures" / "bgp_bad_leak.json"

LEAK = FaultSpec(when=30.0, kind="route_leak", duration=40.0,
                 params={"leaker": "leaky:cust", "prefix": "192.0.2.0/24"})
WITHDRAWAL = FaultSpec(when=30.0, kind="pop_withdrawal", duration=40.0,
                       params={"prefix": "192.0.2.0/24", "pop": "ashburn"})
SPEAKERS = {"routing": "speakers", "horizon": 90.0}


def speakers_campaign(name, faults, seed=7, **extra):
    return Campaign(name=name, seed=seed, faults=faults,
                    overrides={**SPEAKERS, **extra})


class TestWorld:
    def test_unknown_routing_engine_rejected(self):
        with pytest.raises(ValueError, match="routing engine"):
            build_world(ChaosConfig(routing="quantum"), seed=7)

    def test_speakers_world_runs_event_driven_engine(self):
        world = build_world(ChaosConfig(routing="speakers"), seed=7)
        sim = world.cdn.network.sim
        assert sim.incremental
        assert not sim.converging()          # settled and warm-reset
        assert sim.tracker.messages_sent == 0  # build-time traffic erased
        assert "leaky:cust" in sim.graph

    def test_static_world_unchanged(self):
        world = build_world(ChaosConfig(), seed=7)
        assert not world.cdn.network.sim.incremental
        assert "leaky:cust" not in world.cdn.network.sim.graph


class TestSpeakersCampaigns:
    def test_leak_under_defaults_is_detected_and_contained(self):
        result = run_campaign(speakers_campaign("leak-ok", (LEAK,)))
        report = result.report()
        assert result.ok, report["violations"]
        assert report["routing"]["mode"] == "speakers"
        assert report["routing"]["leaked_fetches"] > 0
        assert report["routing"]["oracle_checked"]
        assert report["routing"]["oracle_mismatches"] == []
        failover = result.timeline.first("failover_triggered")
        assert failover is not None and "rerouted" in failover.detail

    def test_withdrawal_records_convergence_windows(self):
        result = run_campaign(speakers_campaign("wd", (WITHDRAWAL,)))
        report = result.report()
        assert result.ok, report["violations"]
        windows = report["routing"]["convergence_windows"]
        assert windows and windows[0][0] == pytest.approx(30.0, abs=2.0)

    def test_reports_are_byte_identical_across_runs(self):
        campaign = speakers_campaign("det", (LEAK,))
        first = json.dumps(run_campaign(campaign).report(), sort_keys=True)
        second = json.dumps(run_campaign(campaign).report(), sort_keys=True)
        assert first == second

    def test_static_report_has_no_routing_section(self):
        campaign = Campaign(name="static", seed=7, faults=(WITHDRAWAL,),
                            overrides={"horizon": 90.0})
        report = run_campaign(campaign).report()
        assert "routing" not in report


class TestBadLeakFixture:
    def test_mistuned_threshold_violates_leak_containment(self):
        campaign = Campaign.from_json(FIXTURE.read_text())
        result = run_campaign(campaign)
        invariants = {v.invariant for v in result.violations}
        assert "leak_containment" in invariants

    def test_fixture_minimizes_to_the_causal_route_leak(self):
        campaign = Campaign.from_json(FIXTURE.read_text())
        minimization = minimize_campaign(campaign)
        assert minimization.invariant == "leak_containment"
        assert [s.kind for s in minimization.minimized.faults] == ["route_leak"]


class TestGenerator:
    def test_speakers_config_samples_routing_kinds(self):
        generator = CampaignGenerator(ChaosConfig(routing="speakers"))
        kinds = {
            spec.kind
            for campaign in generator.generate(seed=3, count=40)
            for spec in campaign.faults
        }
        assert kinds & {"route_leak", "session_reset", "slow_convergence",
                        "persistent_flap"}

    def test_speakers_campaigns_carry_the_engine_override(self):
        generator = CampaignGenerator(ChaosConfig(routing="speakers"))
        for campaign in generator.generate(seed=3, count=5):
            assert campaign.overrides["routing"] == "speakers"
            # Standalone replay must rebuild the same world.
            assert Campaign.from_json(campaign.to_json()).overrides == \
                campaign.overrides

    def test_static_config_never_samples_routing_kinds(self):
        generator = CampaignGenerator(ChaosConfig())
        for campaign in generator.generate(seed=3, count=40):
            assert not campaign.overrides
            for spec in campaign.faults:
                assert spec.kind not in ("route_leak", "session_reset",
                                         "slow_convergence", "persistent_flap")

    def test_generated_speakers_campaigns_build_valid_plans(self):
        generator = CampaignGenerator(ChaosConfig(routing="speakers"))
        for campaign in generator.generate(seed=3, count=10):
            campaign.plan()  # every sampled fault must validate
