"""The chaos-campaign engine and the gray-failure-aware control plane.

Four layers under test, matching the PR's surface:

* **gray faults** — the slow-but-alive degradations in
  :mod:`repro.faults.gray` and the validation/registry plumbing that
  makes every fault buildable from a ``(kind, params)`` spec;
* **gray detection** — the :class:`HealthMonitor` latency baseline,
  hedged probes, and the latency-reason drain;
* **campaigns** — :mod:`repro.chaos`: seeded generation, deterministic
  replay, invariant checking, and ddmin minimization;
* **satellites** — FlakyTransport validation, injector tie ordering,
  resolver full-jitter backoff, timeline JSON round-trip, monitor reset.
"""

import json
import random

import pytest

from repro.chaos import (
    Campaign,
    CampaignGenerator,
    ChaosConfig,
    FaultSpec,
    check_invariants,
    ddmin,
    fault_windows,
    minimize_campaign,
    run_campaign,
)
from repro.clock import Clock
from repro.core import AddressPool
from repro.core.agility import AgilityController
from repro.dns import RecursiveResolver, ResolveError
from repro.faults import (
    FaultConfigError,
    FaultInjector,
    FaultPlan,
    FaultTargets,
    FaultTimeline,
    FlakyTransport,
    HealthMonitor,
    LossyLink,
    OverloadedPoP,
    PopWithdrawal,
    ResolverBrownout,
    SlowServer,
    UnknownFaultKindError,
    build_fault,
    fault_kinds,
)
from repro.edge import ListenMode
from repro.web.http import HTTPVersion
from repro.web.tls import ClientHello

from conftest import BACKUP_PREFIX, POOL_PREFIX, make_policy_cdn

SMOKE = ChaosConfig(horizon=100.0, clients_per_region=2, num_sites=6)

BAD_CAMPAIGN = Campaign(
    "bad-monitor", seed=99,
    overrides={"failure_threshold": 8, "horizon": 120.0,
               "clients_per_region": 2, "num_sites": 8},
    faults=(
        FaultSpec(30.0, "pop_outage", None, {"pop": "ashburn"}),
        FaultSpec(40.0, "server_crash", 10.0, {"pop": "london"}),
        FaultSpec(50.0, "lossy_link", 10.0, {"pop": "london", "drop": 0.5}),
    ),
)


# -- fault validation and the registry ----------------------------------------


class TestFaultValidation:
    def test_flaky_transport_rejects_bad_probabilities(self):
        for kwargs in ({"drop": 1.5}, {"drop": -0.1}, {"corrupt": 2.0},
                       {"drop": 0.6, "corrupt": 0.6}, {"delay_s": -1.0}):
            with pytest.raises(FaultConfigError):
                FlakyTransport(lambda wire: b"ok", random.Random(1), **kwargs)

    def test_flaky_transport_set_fault_validates_too(self):
        """Regression: a live retune must be checked as strictly as the
        constructor — a drop+corrupt mass above 1 silently reweighted."""
        flaky = FlakyTransport(lambda wire: b"ok", random.Random(1))
        with pytest.raises(FaultConfigError):
            flaky.set_fault(drop=0.7, corrupt=0.7)
        with pytest.raises(FaultConfigError):
            flaky.set_fault(drop=1.01)
        assert (flaky.drop, flaky.corrupt) == (0.0, 0.0)  # untouched on error

    def test_fault_config_error_is_a_value_error(self):
        assert issubclass(FaultConfigError, ValueError)

    def test_gray_fault_param_validation(self):
        with pytest.raises(FaultConfigError):
            SlowServer("ashburn", factor=1.0)
        with pytest.raises(FaultConfigError):
            LossyLink("ashburn", drop=0.0)
        with pytest.raises(FaultConfigError):
            LossyLink("ashburn", drop=1.2)
        with pytest.raises(FaultConfigError):
            ResolverBrownout(drop=1.0)  # full outage is TransportDegrade
        with pytest.raises(FaultConfigError):
            OverloadedPoP("ashburn", capacity=0)

    def test_registry_builds_every_kind(self):
        assert {"pop_outage", "slow_server", "lossy_link",
                "resolver_brownout", "overloaded_pop"} <= set(fault_kinds())
        fault = build_fault("slow_server", pop="ashburn", factor=5.0)
        assert isinstance(fault, SlowServer) and fault.factor == 5.0
        withdrawal = build_fault("pop_withdrawal",
                                 prefix=str(POOL_PREFIX), pop="ashburn")
        assert isinstance(withdrawal, PopWithdrawal)
        assert withdrawal.prefix == POOL_PREFIX

    def test_registry_errors_are_typed(self):
        with pytest.raises(UnknownFaultKindError):
            build_fault("meteor_strike")
        with pytest.raises(FaultConfigError):
            build_fault("slow_server", pop="ashburn", warp=9)  # bad kwarg
        with pytest.raises(FaultConfigError):
            build_fault("lossy_link", pop="ashburn", drop=7.0)  # bad value


# -- satellite: deterministic same-timestamp ordering --------------------------


class TestInjectorTieOrdering:
    def _run_once(self):
        clock = Clock()
        cdn, *_ = make_policy_cdn(clock)
        cdn.announce_pool(BACKUP_PREFIX, ports=(80, 443), mode=ListenMode.SK_LOOKUP)
        plan = FaultPlan()
        plan.at(10.0, PopWithdrawal(POOL_PREFIX, "ashburn"), duration=5.0)
        plan.at(10.0, PopWithdrawal(BACKUP_PREFIX, "ashburn"), duration=5.0)
        plan.at(10.0, PopWithdrawal(POOL_PREFIX, "london"), duration=5.0)
        injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn),
                                 rng=random.Random(3))
        clock.advance(10.0)
        injected = injector.tick()
        clock.advance(5.0)
        reverted = injector.tick()
        return [e.target for e in injected], [e.target for e in reverted]

    def test_same_timestamp_fires_in_plan_order(self):
        injected, reverted = self._run_once()
        assert injected == [f"ashburn:{POOL_PREFIX}", f"ashburn:{BACKUP_PREFIX}",
                            f"london:{POOL_PREFIX}"]
        # Reversions scheduled at apply time inherit the same ordering.
        assert reverted == injected

    def test_tie_order_is_reproducible(self):
        assert self._run_once() == self._run_once()


# -- satellite: full-jitter capped exponential backoff -------------------------


class TestResolverBackoffJitter:
    def _retry_cost(self, seed: int) -> float:
        """Simulated seconds one resolver burns retrying a dead upstream."""
        clock = Clock()
        resolver = RecursiveResolver(
            f"r{seed}", clock, lambda wire: None, rng=random.Random(seed),
            max_retries=3, timeout_s=0.0, backoff_base_s=1.0, backoff_cap_s=4.0,
        )
        with pytest.raises(ResolveError):
            resolver.resolve_addresses("dead.example.com")
        return clock.now()

    def test_full_jitter_desynchronizes_the_fleet(self):
        """No retry storm: resolvers sharing a browned-out upstream must
        not back off in lockstep.  Full jitter draws each delay uniformly
        from [0, backoff), so a fleet spreads over the whole window
        instead of re-clustering around the old equal-jitter midpoint."""
        costs = [self._retry_cost(seed) for seed in range(8)]
        # Capped exponential ceiling: 1 + 2 + 4 simulated seconds.
        assert all(0.0 <= cost < 7.0 for cost in costs)
        # Desynchronized: every resolver lands on a distinct schedule.
        assert len(set(costs)) == len(costs)
        # Full jitter reaches below the old scheme's floor (0.5 × delay
        # each round ⇒ 3.5 s minimum) — that low half is what breaks the
        # lockstep.
        assert min(costs) < 3.5

    def test_backoff_respects_the_cap(self):
        clock = Clock()
        resolver = RecursiveResolver(
            "capped", clock, lambda wire: None, rng=random.Random(5),
            max_retries=6, timeout_s=0.0, backoff_base_s=2.0, backoff_cap_s=3.0,
        )
        with pytest.raises(ResolveError):
            resolver.resolve_addresses("dead.example.com")
        # Six delays, each < cap even though 2·2^k explodes past it.
        assert clock.now() < 6 * 3.0


# -- satellite: timeline JSON round-trip ---------------------------------------


class TestTimelineRoundTrip:
    def test_to_json_from_json_is_lossless(self):
        timeline = FaultTimeline()
        timeline.emit(10.0, "pop_outage", "ashburn", "2 prefixes withdrawn")
        timeline.emit(15.0, "probe_failed", "eyeball:us:0", phase="observe")
        timeline.emit(15.0, "failover_triggered", "svc", "drained", phase="react")
        rebuilt = FaultTimeline.from_json(timeline.to_json())
        assert list(rebuilt) == list(timeline)
        assert rebuilt.to_json() == timeline.to_json()
        # indent only changes formatting, not content
        assert FaultTimeline.from_json(timeline.to_json(indent=2)).to_json() \
            == timeline.to_json()

    def test_from_json_rejects_out_of_order_events(self):
        text = json.dumps([
            {"at": 5.0, "kind": "a", "target": "x", "detail": "", "phase": "inject"},
            {"at": 1.0, "kind": "b", "target": "x", "detail": "", "phase": "inject"},
        ])
        with pytest.raises(ValueError):
            FaultTimeline.from_json(text)


# -- gray-failure detection in the monitor -------------------------------------


class TestGrayDetection:
    def _monitored_cdn(self, clock, **knobs):
        cdn, hostnames, engine, pool = make_policy_cdn(clock)
        cdn.announce_pool(BACKUP_PREFIX, ports=(80, 443), mode=ListenMode.SK_LOOKUP)
        controller = AgilityController(engine, clock)
        monitor = HealthMonitor(
            cdn, clock, controller, "randomize-all",
            probe_hostname=hostnames[0],
            vantages=["eyeball:us:0", "eyeball:eu:0"],
            failover_pool=AddressPool(BACKUP_PREFIX, name="backup"),
            probe_interval=5.0,
            rng=random.Random(9),
            **knobs,
        )
        return cdn, hostnames, monitor

    def _warm_baseline(self, clock, monitor, rounds=3):
        for _ in range(rounds):
            monitor.tick()
            clock.advance(5.0)

    def _slow_every_server(self, cdn, factor=10.0):
        for dc in cdn.datacenters.values():
            for server in dc.servers.values():
                server.serve_latency_s *= factor

    def test_popwide_slowdown_drains_without_hard_failure(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock)
        self._warm_baseline(clock, monitor)
        self._slow_every_server(cdn)

        monitor.tick()  # gray round 1: hedged, still slow, below threshold
        assert monitor.consecutive_gray == 1 and not monitor.failed_over
        assert monitor.hedges_run >= 2  # both vantages re-probed
        clock.advance(5.0)
        monitor.tick()  # gray round 2: threshold crossed -> drain
        assert monitor.failed_over
        assert monitor.timeline.first("gray_detected") is not None
        failover = monitor.timeline.first("failover_triggered")
        assert failover is not None and "slow:" in failover.detail
        # The whole incident was gray: no probe ever failed outright.
        assert not monitor.timeline.events(kind="probe_failed")

    def test_single_slow_server_is_absorbed(self, clock):
        """One slow box behind ECMP is noise, not an incident: the healthy
        vantage (and the hedge) keep every round from counting as gray."""
        cdn, hostnames, monitor = self._monitored_cdn(clock)
        self._warm_baseline(clock, monitor)
        slow = sorted(cdn.datacenters["ashburn"].servers)[0]
        cdn.datacenters["ashburn"].servers[slow].serve_latency_s *= 10.0
        for _ in range(6):
            monitor.tick()
            clock.advance(5.0)
        assert not monitor.failed_over
        assert monitor.timeline.first("gray_detected") is None

    def test_latency_factor_zero_disables_gray_detection(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock, latency_factor=0.0)
        self._warm_baseline(clock, monitor)
        self._slow_every_server(cdn)
        for _ in range(4):
            monitor.tick()
            clock.advance(5.0)
        assert not monitor.failed_over and monitor.gray_rounds == 0

    def test_probe_results_carry_latency(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock)
        results = monitor.tick()
        assert all(r.ok and r.latency_s > 0 for r in results)
        baseline_input = max(r.latency_s for r in results)
        self._slow_every_server(cdn)
        clock.advance(5.0)
        slow = monitor.tick()
        assert min(r.latency_s for r in slow) > baseline_input

    def test_reset_clears_latency_state(self, clock):
        """Satellite regression: re-arming after repair must forget the
        pre-incident baseline and any gray run in progress."""
        cdn, hostnames, monitor = self._monitored_cdn(clock)
        self._warm_baseline(clock, monitor)
        self._slow_every_server(cdn)
        monitor.tick()
        assert monitor.consecutive_gray == 1
        assert len(monitor._latencies) > 0
        clock.advance(5.0)
        monitor.tick()
        assert monitor.failed_over

        monitor.reset()
        assert not monitor.failed_over
        assert monitor.consecutive_failures == 0
        assert monitor.consecutive_gray == 0
        assert len(monitor._latencies) == 0
        assert monitor._first_failure_at is None
        assert monitor.latency_baseline() is None

    def test_reset_clears_inflight_hedge_state(self, clock):
        """Satellite regression: the hedge latch (vantages already judged
        slow-after-hedge) is in-flight probe state.  A reset mid-episode
        must clear it — a stale latch suppresses the post-repair hedge, so
        the next slow probe counts straight into a gray round without its
        second opinion (the double-count)."""
        cdn, hostnames, monitor = self._monitored_cdn(
            clock, min_latency_samples=2,
        )
        self._warm_baseline(clock, monitor)
        self._slow_every_server(cdn)
        monitor.tick()  # gray round 1: both vantages hedged, latch armed
        assert monitor.consecutive_gray == 1
        assert monitor._hedge_confirmed
        hedges_before = monitor.hedges_run

        # Operator repairs the slowdown and re-arms mid-episode.
        self._slow_every_server(cdn, factor=0.1)
        monitor.reset()
        assert monitor._hedge_confirmed == set()  # the fix

        # One healthy warm round rebuilds the two-sample baseline without
        # being judged (baseline is still None while it warms), then the
        # incident recurs: the first judged round after the reset.
        clock.advance(5.0)
        monitor.tick()
        self._slow_every_server(cdn)
        clock.advance(5.0)
        monitor.tick()
        # Fresh episode, fresh hedges: a stale latch would have skipped
        # them and left hedges_run unchanged.
        assert monitor.hedges_run == hedges_before + 2
        assert monitor.consecutive_gray == 1

    def test_gray_knob_validation(self, clock):
        cdn, hostnames, engine, _ = make_policy_cdn(clock)
        controller = AgilityController(engine, clock)
        base = dict(probe_hostname=hostnames[0], vantages=["eyeball:us:0"])
        with pytest.raises(ValueError):
            HealthMonitor(cdn, clock, controller, "randomize-all",
                          latency_factor=-1.0, **base)
        with pytest.raises(ValueError):
            HealthMonitor(cdn, clock, controller, "randomize-all",
                          gray_threshold=0, **base)
        with pytest.raises(ValueError):
            HealthMonitor(cdn, clock, controller, "randomize-all",
                          latency_window=2, min_latency_samples=4, **base)


# -- the gray faults against a live deployment ---------------------------------


class TestGrayFaults:
    def test_slow_server_inflates_and_restores(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        targets = FaultTargets(cdn=cdn)
        dc = cdn.datacenters["ashburn"]
        before = {name: s.serve_latency_s for name, s in dc.servers.items()}
        fault = SlowServer("ashburn", factor=10.0)
        fault.apply(targets, random.Random(1))
        assert all(s.serve_latency_s == pytest.approx(before[n] * 10.0)
                   for n, s in dc.servers.items())
        fault.revert(targets, random.Random(1))
        assert {n: s.serve_latency_s for n, s in dc.servers.items()} == before

    def test_lossy_link_drops_syns(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        targets = FaultTargets(cdn=cdn)
        dc = cdn.datacenters["ashburn"]
        transport = cdn.transport_for("eyeball:us:0")
        address = POOL_PREFIX.address_at(7)
        hello = ClientHello(sni=hostnames[0])

        LossyLink("ashburn", drop=1.0).apply(targets, random.Random(1))
        with pytest.raises(ConnectionRefusedError):
            transport.handshake("c", address, 443, hello, HTTPVersion.H2)
        assert dc.syn_drops == 1

        LossyLink("ashburn", drop=1.0).revert(targets, random.Random(1))
        assert dc.ingress_loss == 0.0
        transport.handshake("c", address, 443, hello, HTTPVersion.H2)

    def test_overloaded_pop_sheds_beyond_capacity(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        targets = FaultTargets(cdn=cdn)
        dc = cdn.datacenters["ashburn"]
        transport = cdn.transport_for("eyeball:us:0")
        address = POOL_PREFIX.address_at(9)
        hello = ClientHello(sni=hostnames[0])

        fault = OverloadedPoP("ashburn", capacity=1)
        fault.apply(targets, random.Random(1))
        transport.handshake("c1", address, 443, hello, HTTPVersion.H2)
        with pytest.raises(ConnectionRefusedError):
            transport.handshake("c2", address, 443, hello, HTTPVersion.H2)
        assert dc.sheds == 1

        # A new admission window (the per-tick grain) admits again — the
        # edge sheds overload, it does not melt down: no retry storm, the
        # next tick's arrivals are served within capacity as usual.
        dc.begin_capacity_window()
        transport.handshake("c3", address, 443, hello, HTTPVersion.H2)
        assert dc.sheds == 1

        fault.revert(targets, random.Random(1))
        assert dc.capacity is None
        transport.handshake("c4", address, 443, hello, HTTPVersion.H2)

    def test_resolver_brownout_star_hits_every_path(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        targets = FaultTargets(cdn=cdn)
        for name in ("resolver:a", "resolver:b"):
            targets.transports[name] = FlakyTransport(
                lambda wire: b"ok", random.Random(1), clock=clock, name=name)
        fault = ResolverBrownout(transport="*", drop=0.3, delay_s=0.5)
        fault.apply(targets, random.Random(1))
        assert all(t.drop == 0.3 and t.delay_s == 0.5
                   for t in targets.transports.values())
        fault.revert(targets, random.Random(1))
        assert all(t.drop == 0.0 and t.delay_s == 0.0
                   for t in targets.transports.values())

    def test_brownout_unknown_transport_is_loud(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        with pytest.raises(KeyError):
            ResolverBrownout(transport="resolver:ghost").apply(
                FaultTargets(cdn=cdn), random.Random(1))


# -- campaigns: generation, replay, invariants ---------------------------------


class TestCampaigns:
    def test_fault_spec_and_campaign_round_trip(self):
        rebuilt = Campaign.from_json(BAD_CAMPAIGN.to_json(indent=2))
        assert rebuilt == BAD_CAMPAIGN
        assert rebuilt.faults[0].duration is None
        assert rebuilt.overrides["failure_threshold"] == 8

    def test_generator_is_deterministic_and_buildable(self):
        generator = CampaignGenerator(SMOKE)
        a = generator.generate(7, 4)
        b = generator.generate(7, 4)
        assert a == b
        for campaign in a:
            assert 1 <= len(campaign.faults) <= generator.max_faults
            assert len(campaign.plan()) == len(campaign.faults)  # all valid
        # Different seeds sample different schedules.
        assert generator.generate(8, 4) != a

    def test_with_faults_keeps_the_replay_context(self):
        subset = BAD_CAMPAIGN.with_faults(BAD_CAMPAIGN.faults[:1])
        assert subset.seed == BAD_CAMPAIGN.seed
        assert subset.overrides == BAD_CAMPAIGN.overrides
        assert len(subset.faults) == 1

    def test_fault_windows_and_deadlines(self):
        config = ChaosConfig(horizon=120.0)
        windows = fault_windows(BAD_CAMPAIGN, config)
        # Permanent fault: deadline = inject + recovery bound.
        assert windows[0] == (30.0, 30.0 + config.recovery_bound)
        # Reverting fault: deadline = revert + grace.
        assert windows[1] == (40.0, 50.0 + config.grace_s)


class TestRunCampaign:
    def test_replay_is_byte_identical(self):
        campaign = CampaignGenerator(SMOKE).campaign(7, 1)
        a = json.dumps(run_campaign(campaign, SMOKE).report())
        b = json.dumps(run_campaign(campaign, SMOKE).report())
        assert a == b

    def test_healthy_deployment_passes_all_invariants(self):
        for campaign in CampaignGenerator(SMOKE).generate(7, 3):
            result = run_campaign(campaign, SMOKE)
            assert result.ok, result.report()["violations"]
            assert result.violations == check_invariants(result)

    def test_mistuned_monitor_violates_recovery_bound(self):
        result = run_campaign(BAD_CAMPAIGN)
        assert not result.ok
        assert "recovery" in {v.invariant for v in result.violations}
        # The report carries the evidence for the table/CI log.
        report = result.report()
        assert report["ok"] is False and report["violations"]

    def test_gray_drill_drains_via_latency_path(self):
        drill = Campaign("gray-drill", seed=42, faults=(
            FaultSpec(30.0, "slow_server", 60.0,
                      {"pop": "ashburn", "factor": 10.0}),
        ))
        result = run_campaign(drill, SMOKE)
        assert result.ok
        failover = result.timeline.first("failover_triggered")
        assert failover is not None
        assert failover.at <= 30.0 + SMOKE.detection_budget_s + SMOKE.ttl
        assert result.timeline.first("gray_detected") is not None
        assert not result.timeline.events(kind="probe_failed")

    def test_overload_sheds_but_recovers(self):
        campaign = Campaign("overload", seed=13, faults=(
            FaultSpec(30.0, "overloaded_pop", 20.0,
                      {"pop": "ashburn", "capacity": 1}),
        ))
        result = run_campaign(campaign, SMOKE)
        assert result.ok  # recovery invariant: no post-window retry storm
        assert sum(result.sheds.values()) > 0
        assert result.report()["sheds"] == sum(result.sheds.values())

    def test_unknown_override_is_rejected(self):
        bad = Campaign("bad", seed=1, overrides={"warp_factor": 9},
                       faults=(FaultSpec(10.0, "pop_outage", 5.0,
                                         {"pop": "ashburn"}),))
        with pytest.raises(TypeError):
            run_campaign(bad, SMOKE)


class TestMinimizer:
    def test_ddmin_is_one_minimal(self):
        # The "bug" needs both 3 and 7 present, order preserved.
        def test_fn(items):
            return 3 in items and 7 in items

        minimal = ddmin(list(range(10)), test_fn)
        assert minimal == [3, 7]

    def test_ddmin_single_culprit(self):
        assert ddmin(list(range(16)), lambda s: 11 in s) == [11]

    def test_bad_campaign_minimizes_to_the_causal_fault(self):
        result = minimize_campaign(BAD_CAMPAIGN, invariant="recovery")
        assert [s.kind for s in result.minimized.faults] == ["pop_outage"]
        assert len(result.minimized.faults) <= 2
        assert result.removed == 2
        # The minimal campaign still reproduces the violation on replay.
        replay = run_campaign(result.minimized)
        assert any(v.invariant == "recovery" for v in replay.violations)

    def test_minimizing_a_healthy_campaign_is_an_error(self):
        healthy = Campaign("fine", seed=3, overrides=dict(BAD_CAMPAIGN.overrides,
                                                          failure_threshold=1),
                           faults=(FaultSpec(30.0, "pop_outage", 20.0,
                                             {"pop": "ashburn"}),))
        with pytest.raises(ValueError):
            minimize_campaign(healthy)

    def test_fixture_file_matches_the_inline_campaign(self):
        """CI pins tests/fixtures/chaos_bad_campaign.json; keep it in sync
        with the campaign these tests reason about."""
        with open("tests/fixtures/chaos_bad_campaign.json") as fh:
            assert Campaign.from_json(fh.read()) == BAD_CAMPAIGN
