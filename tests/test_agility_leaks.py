"""Route-leak detection & mitigation (§6, Figure 9) — unit and integrated."""

import random

import pytest

from repro.agility.leaks import LeakMitigator, RouteLeakDetector
from repro.core import (
    AddressPool,
    AgilityController,
    PerPopAssignment,
    Policy,
    PolicyAnswerSource,
    PolicyEngine,
)
from repro.dns import RecursiveResolver, StubResolver
from repro.edge import ListenMode
from repro.edge.datacenter import TrafficLog
from repro.netsim import inject_route_leak, parse_prefix
from repro.netsim.routeleak import attach_multihomed_leaker
from repro.web import BrowserClient

from conftest import BACKUP_PREFIX, POOL_PREFIX, make_cdn

POPS = ["ashburn", "london"]


def make_detector(pool=None):
    pool = pool or AddressPool(POOL_PREFIX)
    assignment = PerPopAssignment(POPS)
    return RouteLeakDetector(pool, assignment, POPS, min_requests=3, min_share=0.01), pool, assignment


class TestDetectorUnit:
    def test_expected_addresses_distinct(self):
        detector, pool, _ = make_detector()
        expected = detector.expected_addresses()
        assert len(set(expected.values())) == len(POPS)

    def test_clean_traffic_no_alerts(self):
        detector, pool, assignment = make_detector()
        logs = {}
        for pop in POPS:
            log = TrafficLog()
            own = assignment.address_for_pop(pool, pop)
            for _ in range(100):
                log.record_request(own, 1000)
            logs[pop] = log
        assert detector.scan(logs) == []

    def test_misdirected_traffic_alerts(self):
        detector, pool, assignment = make_detector()
        logs = {pop: TrafficLog() for pop in POPS}
        own = assignment.address_for_pop(pool, "london")
        other = assignment.address_for_pop(pool, "ashburn")
        for _ in range(80):
            logs["london"].record_request(own, 1000)
        for _ in range(20):
            logs["london"].record_request(other, 1000)  # ashburn's address!
        alerts = detector.scan(logs)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.observed_at == "london"
        assert alert.expected_pop == "ashburn"
        assert alert.requests == 20
        assert alert.share_of_pop_traffic == pytest.approx(0.2)
        assert detector.victims(alerts) == {"ashburn"}

    def test_small_bleed_suppressed(self):
        """'PoP-A may see a small amount of traffic arrive on *.26' — the
        thresholds keep legitimate resolver/client mismatch quiet."""
        detector, pool, assignment = make_detector()
        logs = {pop: TrafficLog() for pop in POPS}
        own = assignment.address_for_pop(pool, "london")
        other = assignment.address_for_pop(pool, "ashburn")
        for _ in range(1000):
            logs["london"].record_request(own, 1000)
        logs["london"].record_request(other, 1000)  # below both thresholds
        assert detector.scan(logs) == []

    def test_non_pool_addresses_ignored(self):
        detector, pool, _ = make_detector()
        log = TrafficLog()
        log.record_request(parse_prefix("203.0.113.0/24").first, 100)
        assert detector.scan({"london": log}) == []


class TestIntegratedLeakScenario:
    """End-to-end Figure 9: per-PoP policy, live traffic, a real BGP leak,
    detection from traffic logs, mitigation via pool swap."""

    def build(self, clock):
        cdn, hostnames = make_cdn(
            regions={"us": ["ashburn"], "eu": ["london"]}, clients_per_region=6
        )
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        cdn.announce_pool(BACKUP_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)

        pool = AddressPool(POOL_PREFIX, name="leak-pool")
        assignment = PerPopAssignment(POPS)
        engine = PolicyEngine(random.Random(1))
        engine.add(Policy("per-pop", pool, strategy=assignment, ttl=30))
        cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
        detector = RouteLeakDetector(pool, assignment, POPS, min_requests=3, min_share=0.01)
        return cdn, hostnames, engine, pool, assignment, detector

    def drive_traffic(self, cdn, clock, hostnames, n=4):
        clients = []
        for region in ("us", "eu"):
            for i in range(n):
                asn = f"eyeball:{region}:{i}"
                resolver = RecursiveResolver(f"r-{asn}", clock, cdn.dns_transport(asn), asn=asn)
                stub = StubResolver(f"s-{asn}", clock, resolver)
                clients.append(BrowserClient(f"c-{asn}", stub, cdn.transport_for(asn)))
        for client in clients:
            for hostname in hostnames[:3]:
                try:
                    client.fetch(hostname)
                except ConnectionRefusedError:
                    pass  # misdirected traffic may be unroutable mid-leak

    def test_clean_deployment_is_quiet(self, clock):
        cdn, hostnames, engine, pool, assignment, detector = self.build(clock)
        self.drive_traffic(cdn, clock, hostnames)
        logs = {pop: cdn.datacenters[pop].traffic for pop in POPS}
        assert detector.scan(logs) == []

    def test_leak_detected_and_mitigated(self, clock):
        cdn, hostnames, engine, pool, assignment, detector = self.build(clock)
        # Figure 9: a customer of both an EU and a US transit re-exports the
        # EU-learned anycast route to its US provider; the US transit
        # prefers the customer route and hauls its clients to Europe.  Their
        # DNS still reaches ashburn (the DNS prefix is not leaked), so
        # london receives traffic on ashburn's unique address.
        attach_multihomed_leaker(cdn.network, "leaker", "transit:eu:0", "transit:us:0")
        inject_route_leak(cdn.network, "leaker", POOL_PREFIX)
        self.drive_traffic(cdn, clock, hostnames)
        logs = {pop: cdn.datacenters[pop].traffic for pop in POPS}
        alerts = detector.scan(logs)
        assert alerts, "leak went undetected"
        assert any(a.observed_at == "london" and a.expected_pop == "ashburn" for a in alerts)

        # Mitigation: keep the policy, change the prefix (already announced).
        controller = AgilityController(engine, clock)
        mitigator = LeakMitigator(controller, clock)
        backup = AddressPool(BACKUP_PREFIX, name="backup")
        op = mitigator.mitigate("per-pop", backup)
        assert op.propagation_horizon == clock.now() + 30  # TTL-bounded

        # New answers come from the backup prefix immediately.
        resolver = RecursiveResolver("post", clock, cdn.dns_transport("eyeball:eu:0"))
        addresses = resolver.resolve_addresses(hostnames[0])
        assert addresses and all(a in BACKUP_PREFIX for a in addresses)
