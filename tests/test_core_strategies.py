"""Selection strategies: random i.i.d., static baselines, per-PoP, mapped."""

import random

import pytest

from repro.core.pool import AddressPool
from repro.core.strategies import (
    HashedAssignment,
    MappedAssignment,
    PerPopAssignment,
    RandomSelection,
    SelectionContext,
    StaticAssignment,
)
from repro.netsim.addr import parse_prefix

POOL = AddressPool(parse_prefix("192.0.2.0/24"))


def ctx(hostname="h.example.com", pop="lhr"):
    return SelectionContext(hostname=hostname, pop=pop)


class TestRandomSelection:
    def test_ignores_hostname(self):
        """§3.2: responses for (hᵢ,hⱼ,hₖ) and (hᵢ,hᵢ,hᵢ) are equivalent —
        identical RNG state yields identical draws regardless of name."""
        strategy = RandomSelection()
        seq_same = [strategy.select(POOL, ctx("a.com"), random.Random(5)) for _ in range(3)]
        seq_mixed = [
            strategy.select(POOL, ctx(h), random.Random(5))
            for h in ("a.com", "b.com", "c.com")
        ]
        assert seq_same == seq_mixed

    def test_covers_pool(self):
        strategy = RandomSelection()
        rng = random.Random(7)
        seen = {strategy.select(POOL, ctx(), rng) for _ in range(3000)}
        assert len(seen) > 250  # nearly all 256 addresses observed


class TestHashedAssignment:
    def test_deterministic_and_case_insensitive(self):
        strategy = HashedAssignment()
        rng = random.Random(0)
        a = strategy.select(POOL, ctx("Site.Example.COM"), rng)
        b = strategy.select(POOL, ctx("site.example.com."), rng)
        assert a == b

    def test_same_across_pops(self):
        """A config-generated zone binds identically everywhere."""
        strategy = HashedAssignment()
        rng = random.Random(0)
        assert strategy.select(POOL, ctx(pop="lhr"), rng) == strategy.select(
            POOL, ctx(pop="iad"), rng
        )

    def test_spreads_hostnames(self):
        strategy = HashedAssignment()
        rng = random.Random(0)
        addrs = {
            strategy.select(POOL, ctx(f"site{i}.example.com"), rng) for i in range(2000)
        }
        assert len(addrs) > 200


class TestStaticAssignment:
    def test_sticky_first_come_first_packed(self):
        strategy = StaticAssignment(per_address=2)
        rng = random.Random(0)
        a0 = strategy.select(POOL, ctx("h0.com"), rng)
        a1 = strategy.select(POOL, ctx("h1.com"), rng)
        a2 = strategy.select(POOL, ctx("h2.com"), rng)
        assert a0 == a1 != a2  # two hostnames per address
        assert strategy.select(POOL, ctx("h0.com"), rng) == a0  # sticky
        assert strategy.assignment_count() == 3

    def test_wraps_pool(self):
        strategy = StaticAssignment(per_address=1)
        rng = random.Random(0)
        for i in range(300):
            strategy.select(POOL, ctx(f"h{i}.com"), rng)
        a = strategy.select(POOL, ctx("h0.com"), rng)
        assert a == POOL.address_at(0)

    def test_per_address_positive(self):
        with pytest.raises(ValueError):
            StaticAssignment(per_address=0)


class TestPerPopAssignment:
    def test_each_pop_gets_unique_address(self):
        pops = ["iad", "ord", "lhr", "fra"]
        strategy = PerPopAssignment(pops)
        rng = random.Random(0)
        addrs = {pop: strategy.select(POOL, ctx(pop=pop), rng) for pop in pops}
        assert len(set(addrs.values())) == 4
        assert addrs["iad"] == POOL.address_at(0)
        assert addrs["fra"] == POOL.address_at(3)

    def test_expected_pop_inversion(self):
        pops = ["iad", "ord"]
        strategy = PerPopAssignment(pops)
        assert strategy.expected_pop(POOL, POOL.address_at(0)) == "iad"
        assert strategy.expected_pop(POOL, POOL.address_at(1)) == "ord"
        assert strategy.expected_pop(POOL, POOL.address_at(99)) is None

    def test_unknown_pop_gets_overflow_slot(self):
        strategy = PerPopAssignment(["iad"])
        rng = random.Random(0)
        a = strategy.select(POOL, ctx(pop="mystery"), rng)
        assert a != POOL.address_at(0)
        assert a == strategy.select(POOL, ctx(pop="mystery"), rng)  # stable

    def test_duplicate_pops_rejected(self):
        with pytest.raises(ValueError):
            PerPopAssignment(["iad", "iad"])


class TestMappedAssignment:
    def test_explicit_mapping_wins(self):
        strategy = MappedAssignment()
        target = POOL.address_at(42)
        strategy.assign("pinned.example.com", target)
        rng = random.Random(0)
        assert strategy.select(POOL, ctx("pinned.example.com"), rng) == target
        assert strategy.address_of("PINNED.example.com.") == target

    def test_unmapped_falls_back_to_random(self):
        strategy = MappedAssignment()
        rng = random.Random(3)
        addrs = {strategy.select(POOL, ctx(f"h{i}.com"), rng) for i in range(100)}
        assert len(addrs) > 60

    def test_assign_many_and_clear(self):
        strategy = MappedAssignment()
        target = POOL.address_at(7)
        strategy.assign_many(["a.com", "b.com"], target)
        assert strategy.mapped_count() == 2
        strategy.clear()
        assert strategy.mapped_count() == 0
        assert strategy.address_of("a.com") is None

    def test_custom_fallback(self):
        strategy = MappedAssignment(fallback=HashedAssignment())
        rng = random.Random(0)
        a = strategy.select(POOL, ctx("x.com"), rng)
        b = strategy.select(POOL, ctx("x.com"), rng)
        assert a == b  # hashed fallback is deterministic
