"""The fault-injection subsystem and the failure-aware control plane.

Three layers under test, matching ``repro.faults``:

* **injection** — seeded, clock-scheduled chaos (``FaultPlan`` /
  ``FaultInjector``) with a queryable ``FaultTimeline`` audit trail;
* **resilience** — the client-side behaviours that absorb faults:
  resolver retries/rotation/serve-stale, browser dial fallback and
  dead-connection eviction, stub SOA-minimum inheritance;
* **control** — the ``HealthMonitor`` detect → rebind loop that turns a
  blackhole into a pool swap at probe-interval timescales (§3.4, §6).
"""

import random

import pytest

from repro.clock import Clock
from repro.core import AddressPool
from repro.core.agility import AgilityController
from repro.dns import RecursiveResolver, ResolveError, RRType, StubResolver
from repro.dns.records import DomainName, Question, ResourceRecord, SOA
from repro.dns.wire import Message
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultTargets,
    FaultTimeline,
    FlakyTransport,
    HealthMonitor,
    PopOutage,
    PopWithdrawal,
    ServerCrash,
    TransportDegrade,
)
from repro.edge import ListenMode
from repro.netsim import parse_address
from repro.web.client import BrowserClient
from repro.web.http import Connection, Response, Status
from repro.web.tls import Certificate

from conftest import BACKUP_PREFIX, POOL_PREFIX, make_client, make_policy_cdn


class TestFaultTimeline:
    def test_append_only_in_time_order(self):
        timeline = FaultTimeline()
        timeline.emit(1.0, "a", "x")
        timeline.emit(1.0, "b", "x")  # ties are fine
        timeline.emit(2.0, "c", "x")
        with pytest.raises(ValueError):
            timeline.record(FaultEvent(1.5, "late", "x"))

    def test_queries(self):
        timeline = FaultTimeline()
        timeline.emit(0.0, "pop_withdrawal", "london", phase="inject")
        timeline.emit(5.0, "probe_failed", "eyeball:us:0", phase="observe")
        timeline.emit(5.0, "failover_triggered", "svc", phase="react")
        timeline.emit(9.0, "pop_withdrawal", "london", phase="revert")

        assert len(timeline) == 4
        assert [e.kind for e in timeline][0] == "pop_withdrawal"
        assert len(timeline.events(kind="pop_withdrawal")) == 2
        assert len(timeline.events(target="london")) == 2
        assert len(timeline.events(since=5.0)) == 3
        assert len(timeline.events(until=5.0)) == 3
        assert timeline.first("pop_withdrawal").phase == "inject"
        assert timeline.last("pop_withdrawal").phase == "revert"
        assert timeline.first("no_such_kind") is None


class TestFlakyTransport:
    def test_delay_charges_simulated_clock(self):
        clock = Clock()
        flaky = FlakyTransport(lambda wire: b"ok", random.Random(1),
                               delay_s=3.0, clock=clock)
        assert flaky(b"q") == b"ok"
        assert clock.now() == pytest.approx(3.0)

    def test_delay_requires_clock(self):
        with pytest.raises(ValueError):
            FlakyTransport(lambda wire: b"ok", random.Random(1), delay_s=1.0)
        flaky = FlakyTransport(lambda wire: b"ok", random.Random(1))
        with pytest.raises(ValueError):
            flaky.set_fault(delay_s=1.0)

    def test_set_fault_retunes_and_heals(self):
        flaky = FlakyTransport(lambda wire: b"ok", random.Random(1))
        flaky.set_fault(drop=1.0)
        assert flaky(b"q") is None
        flaky.set_fault()  # heal
        assert flaky(b"q") == b"ok"
        assert flaky.calls == 2

    def test_drops_land_on_timeline(self):
        clock, timeline = Clock(), FaultTimeline()
        flaky = FlakyTransport(lambda wire: b"ok", random.Random(1), drop=1.0,
                               clock=clock, timeline=timeline, name="us-path")
        flaky(b"q")
        event = timeline.first("transport_dropped")
        assert event is not None and event.target == "us-path"


class TestFaultPlan:
    def test_validation(self):
        plan = FaultPlan()
        fault = PopWithdrawal(POOL_PREFIX, "london")
        with pytest.raises(ValueError):
            plan.at(-1.0, fault)
        with pytest.raises(ValueError):
            plan.at(0.0, fault, duration=0.0)
        with pytest.raises(ValueError):
            plan.flap(POOL_PREFIX, "london", start=0.0, period=0.0, cycles=2)
        with pytest.raises(ValueError):
            plan.flap(POOL_PREFIX, "london", start=0.0, period=10.0, cycles=0)

    def test_flap_expands_to_withdrawals(self):
        plan = FaultPlan().flap(POOL_PREFIX, "london", start=10.0,
                                period=20.0, cycles=3)
        assert len(plan) == 3
        assert [e.at for e in plan.entries] == [10.0, 30.0, 50.0]
        assert all(e.duration == 10.0 for e in plan.entries)


class TestFaultInjector:
    def test_fires_only_when_due(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        plan = FaultPlan().at(10.0, PopWithdrawal(POOL_PREFIX, "ashburn"))
        injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn))

        assert injector.tick() == []  # t=0: nothing due
        assert injector.pending_count() == 1
        clock.advance(10.0)
        fired = injector.tick()
        assert [e.kind for e in fired] == ["pop_withdrawal"]
        assert "ashburn" not in cdn.network.announced_prefixes()[POOL_PREFIX]
        assert injector.active_faults()

    def test_duration_schedules_the_reversion(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        plan = FaultPlan().at(10.0, PopWithdrawal(POOL_PREFIX, "ashburn"),
                              duration=5.0)
        injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn))
        clock.advance(10.0)
        injector.tick()
        assert "ashburn" not in cdn.network.announced_prefixes()[POOL_PREFIX]
        clock.advance(5.0)
        fired = injector.tick()
        assert [e.phase for e in fired] == ["revert"]
        assert "ashburn" in cdn.network.announced_prefixes()[POOL_PREFIX]
        assert not injector.active_faults()
        assert injector.pending_count() == 0

    def test_flap_oscillates_announcement(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        plan = FaultPlan().flap(POOL_PREFIX, "london", start=5.0,
                                period=10.0, cycles=2)
        injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn))
        observed = []
        while clock.now() <= 30.0:
            injector.tick()
            observed.append("london" in cdn.network.announced_prefixes()[POOL_PREFIX])
            clock.advance(1.0)
        # Announced, withdrawn, back, withdrawn, back.
        assert observed[0] and not observed[6] and observed[11]
        assert not observed[16] and observed[21]
        events = injector.timeline.events(kind="pop_withdrawal")
        assert [e.phase for e in events] == ["inject", "revert", "inject", "revert"]

    def test_pop_outage_and_revert_all(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        dc = cdn.datacenters["ashburn"]
        before = dc.healthy_server_count()
        assert before > 0
        plan = FaultPlan().at(0.0, PopOutage("ashburn"))
        injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn))
        injector.tick()
        assert dc.healthy_server_count() == 0
        assert all("ashburn" not in pops
                   for pops in cdn.network.announced_prefixes().values())

        fired = injector.revert_all()
        assert [e.phase for e in fired] == ["revert"]
        assert dc.healthy_server_count() == before
        assert "ashburn" in cdn.network.announced_prefixes()[POOL_PREFIX]
        assert not injector.active_faults()

    def test_server_crash_pick_is_seeded(self, clock):
        details = []
        for _ in range(2):
            cdn, *_ = make_policy_cdn(Clock())
            plan = FaultPlan().at(0.0, ServerCrash("london"))
            injector = FaultInjector(Clock(), plan, FaultTargets(cdn=cdn),
                                     rng=random.Random(42))
            [event] = injector.tick()
            details.append(event.detail)
            assert cdn.datacenters["london"].healthy_server_count() == 1
        assert details[0] == details[1]  # same seed, same victim

    def test_transport_degrade_and_heal(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        flaky = FlakyTransport(cdn.dns_transport("eyeball:us:0"),
                               random.Random(3), clock=clock, name="us-path")
        resolver = RecursiveResolver("r", clock, flaky)
        plan = FaultPlan().at(5.0, TransportDegrade("us-path", drop=1.0),
                              duration=10.0)
        injector = FaultInjector(clock, plan,
                                 FaultTargets(cdn=cdn, transports={"us-path": flaky}))

        assert resolver.resolve_addresses(hostnames[0])  # clean path
        clock.advance(5.0)
        injector.tick()
        assert flaky.drop == 1.0
        with pytest.raises(ResolveError):
            resolver.resolve(hostnames[1])
        while clock.now() < 15.0:
            clock.advance(1.0)
        injector.tick()
        assert flaky.drop == 0.0
        assert resolver.resolve_addresses(hostnames[2])

    def test_transport_degrade_unknown_name_is_loud(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        plan = FaultPlan().at(0.0, TransportDegrade("no-such-path", drop=1.0))
        injector = FaultInjector(clock, plan, FaultTargets(cdn=cdn))
        with pytest.raises(KeyError):
            injector.tick()


class TestResolverResilience:
    def test_retry_rotates_to_healthy_upstream(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        dead = lambda wire: None  # noqa: E731 — a permanently black path
        resolver = RecursiveResolver(
            "r", clock, dead,
            upstreams=[cdn.dns_transport("eyeball:us:0")],
            max_retries=2, rng=random.Random(5),
        )
        addresses = resolver.resolve_addresses(hostnames[0])
        assert addresses and all(a in POOL_PREFIX for a in addresses)
        assert resolver.stats.upstream_failures == 1  # the dead primary
        assert resolver.stats.retries == 1            # one re-attempt sufficed
        assert resolver.stats.servfails == 0
        # The failure cost simulated time: timeout + jittered backoff.
        assert clock.now() >= resolver.timeout_s

    def test_retries_exhausted_is_servfail(self, clock):
        resolver = RecursiveResolver("r", clock, lambda wire: None,
                                     max_retries=2, rng=random.Random(5))
        with pytest.raises(ResolveError):
            resolver.resolve("site000.example.com")
        assert resolver.stats.upstream_failures == 3  # initial + 2 retries
        assert resolver.stats.retries == 2
        assert resolver.stats.servfails == 1

    def test_timeout_charges_simulated_clock(self, clock):
        resolver = RecursiveResolver("r", clock, lambda wire: None,
                                     timeout_s=2.0)
        with pytest.raises(ResolveError):
            resolver.resolve("site000.example.com")
        assert clock.now() == pytest.approx(2.0)

    def test_serve_stale_answers_from_expired_cache(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)  # policy TTL 30
        resolver = RecursiveResolver("r", clock,
                                     cdn.dns_transport("eyeball:us:0"),
                                     serve_stale=True)
        fresh = resolver.resolve_addresses(hostnames[0])
        clock.advance(31.0)  # past TTL, inside the stale window
        resolver.transport = lambda wire: None  # every upstream now dead
        stale = resolver.resolve_addresses(hostnames[0])
        assert stale == fresh
        assert resolver.stats.stale_served == 1
        assert resolver.stats.servfails == 0

    def test_stale_serving_is_opt_in(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        resolver = RecursiveResolver("r", clock,
                                     cdn.dns_transport("eyeball:us:0"))
        resolver.resolve_addresses(hostnames[0])
        clock.advance(31.0)
        resolver.transport = lambda wire: None
        with pytest.raises(ResolveError):
            resolver.resolve(hostnames[0])
        assert resolver.stats.stale_served == 0

    def test_knob_validation(self, clock):
        with pytest.raises(ValueError):
            RecursiveResolver("r", clock, lambda w: None, max_retries=-1)
        with pytest.raises(ValueError):
            RecursiveResolver("r", clock, lambda w: None, timeout_s=-1.0)


class TestStubSOAMinimum:
    """Satellite: the stub inherits the authoritative SOA minimum for
    NODATA, instead of the old hardcoded 30 seconds."""

    @staticmethod
    def _nodata_transport(minimum: int):
        def transport(wire: bytes) -> bytes:
            query = Message.decode(wire)
            soa = ResourceRecord(
                DomainName.from_text("example.com"),
                SOA(DomainName.from_text("ns1.example.com"),
                    DomainName.from_text("hostmaster.example.com"),
                    1, 3600, 600, 86400, minimum),
                ttl=minimum,
            )
            return query.response(authority=(soa,)).encode()
        return transport

    def test_stub_negative_ttl_tracks_soa_minimum(self, clock):
        recursive = RecursiveResolver("r", clock, self._nodata_transport(7))
        stub = StubResolver("s", clock, recursive)
        assert stub.lookup("empty.example.com") == []
        question = Question(DomainName.from_text("empty.example.com"), RRType.A)
        assert stub.cache.negative_ttl_remaining(question) == pytest.approx(7)

    def test_stub_negative_entry_expires_with_soa_minimum(self, clock):
        recursive = RecursiveResolver("r", clock, self._nodata_transport(7))
        stub = StubResolver("s", clock, recursive)
        stub.lookup("empty.example.com")
        upstream_before = recursive.stats.upstream_queries
        clock.advance(5.0)
        stub.lookup("empty.example.com")  # still negatively cached
        assert recursive.stats.upstream_queries == upstream_before
        clock.advance(3.0)  # t=8 > minimum=7: both tiers expired
        stub.lookup("empty.example.com")
        assert recursive.stats.upstream_queries == upstream_before + 1


class _FixedStub:
    """The minimal stub surface BrowserClient needs: lookup + miss stats."""

    class _Cache:
        class _Stats:
            misses = 0

        def __init__(self):
            self.stats = self._Stats()

    def __init__(self, addresses):
        self.addresses = list(addresses)
        self.cache = self._Cache()

    def lookup(self, hostname, rrtype=RRType.A):
        self.cache.stats.misses += 1
        return list(self.addresses)


class _PickyTransport:
    """Refuses connections to a chosen subset of addresses."""

    def __init__(self, refuse=()):
        self.refuse = set(refuse)

    def handshake(self, client_name, dst, port, hello, version):
        if dst in self.refuse:
            raise ConnectionRefusedError(f"{dst}: refused")
        return Connection(version, dst, port, Certificate(hello.sni),
                          sni=hello.sni)

    def serve(self, connection, request):
        return Response(Status.OK)


class TestClientResilience:
    def test_dial_falls_through_to_next_address(self):
        first, second = parse_address("192.0.2.1"), parse_address("192.0.2.2")
        client = BrowserClient("c", _FixedStub([first, second]),
                               _PickyTransport(refuse={first}))
        outcome = client.fetch("site.example.com")
        assert outcome.response.status is Status.OK
        assert outcome.connection.remote_addr == second
        assert client.stats.connect_retries == 1
        assert client.stats.connect_failures == 0

    def test_dial_exhaustion_counts_and_raises(self):
        addrs = [parse_address("192.0.2.1"), parse_address("192.0.2.2")]
        client = BrowserClient("c", _FixedStub(addrs),
                               _PickyTransport(refuse=set(addrs)))
        with pytest.raises(ConnectionRefusedError):
            client.fetch("site.example.com")
        assert client.stats.connect_retries == 1
        assert client.stats.connect_failures == 1
        assert client.stats.errors == 1

    def test_dead_pooled_connection_is_evicted(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        client = make_client(cdn, clock, "eyeball:us:0")
        client.fetch(hostnames[0])
        assert len(client.open_connections()) == 1

        for dc in cdn.datacenters.values():
            dc.crash_all_servers()
        # The pooled connection is found reset and evicted; the fresh dial
        # then fails loudly (every server is down).
        with pytest.raises(ConnectionRefusedError):
            client.fetch(hostnames[0])
        assert client.stats.dead_connections == 1
        assert client.open_connections() == []

        for dc in cdn.datacenters.values():
            dc.restore_all_servers()
        outcome = client.fetch(hostnames[0])
        assert outcome.response.status is Status.OK
        assert client.stats.connections_opened == 2


class TestHealthMonitor:
    def _monitored_cdn(self, clock, failover_pool=True, threshold=1):
        cdn, hostnames, engine, pool = make_policy_cdn(clock)
        cdn.announce_pool(BACKUP_PREFIX, ports=(80, 443), mode=ListenMode.SK_LOOKUP)
        controller = AgilityController(engine, clock)
        monitor = HealthMonitor(
            cdn, clock, controller, "randomize-all",
            probe_hostname=hostnames[0],
            vantages=["eyeball:us:0", "eyeball:eu:0"],
            failover_pool=AddressPool(BACKUP_PREFIX, name="backup")
            if failover_pool else None,
            probe_interval=5.0,
            failure_threshold=threshold,
            rng=random.Random(9),
        )
        return cdn, hostnames, monitor

    def test_healthy_probes_and_interval(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock)
        results = monitor.tick()  # first tick probes immediately
        assert len(results) == 2 and all(r.ok for r in results)
        assert monitor.tick() == []  # not due yet
        clock.advance(5.0)
        assert len(monitor.tick()) == 2
        assert monitor.consecutive_failures == 0
        assert not monitor.failed_over

    def test_blackhole_triggers_pool_swap(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock)
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)

        results = monitor.tick()
        assert any(not r.ok for r in results)
        assert monitor.failed_over
        event = monitor.timeline.first("failover_triggered")
        assert event is not None and event.phase == "react"
        assert monitor.timeline.events(kind="probe_failed")

        # New resolutions land on the standby pool end-to-end.
        client = make_client(cdn, clock, "eyeball:us:0")
        outcome = client.fetch(hostnames[1])
        assert outcome.connection.remote_addr in BACKUP_PREFIX
        # The swap is latched: further failed rounds don't re-fire.
        clock.advance(5.0)
        monitor.tick()
        assert len(monitor.timeline.events(kind="failover_triggered")) == 1

    def test_threshold_delays_the_reaction(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock, threshold=2)
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        monitor.tick()
        assert not monitor.failed_over  # one bad round < threshold
        clock.advance(5.0)
        monitor.tick()
        assert monitor.failed_over

    def test_observe_only_mode_never_swaps(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock, failover_pool=False)
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        for _ in range(3):
            monitor.tick()
            clock.advance(5.0)
        assert not monitor.failed_over
        assert monitor.consecutive_failures == 3
        assert monitor.timeline.first("failover_triggered") is None

    def test_recovery_resets_the_failure_run(self, clock):
        cdn, hostnames, monitor = self._monitored_cdn(clock, failover_pool=False)
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        monitor.tick()
        assert monitor.consecutive_failures == 1
        cdn.network.announce_from(POOL_PREFIX, list(cdn.pop_names()))
        clock.advance(5.0)
        monitor.tick()
        assert monitor.consecutive_failures == 0
        assert monitor.timeline.first("probe_recovered") is not None

    def test_validation(self, clock):
        cdn, hostnames, engine, _ = make_policy_cdn(clock)
        controller = AgilityController(engine, clock)
        with pytest.raises(ValueError):
            HealthMonitor(cdn, clock, controller, "randomize-all",
                          hostnames[0], vantages=[])
        with pytest.raises(ValueError):
            HealthMonitor(cdn, clock, controller, "randomize-all",
                          hostnames[0], vantages=["eyeball:us:0"],
                          probe_interval=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(cdn, clock, controller, "randomize-all",
                          hostnames[0], vantages=["eyeball:us:0"],
                          failure_threshold=0)
