"""Footnote-5 ablation: browsers disagree on the coalescing IP check.

"Not all browsers implement this check the same" (§4.4 fn.5).  The client
model's ``ip_match`` knob covers the spectrum: ``exact`` (the strict
reading of RFC 7540 §9.1.1), and ``none`` (no IP condition — effectively
the h3 rule applied to h2).  Under per-query random addressing, the strict
browser loses nearly all coalescing while the lax one keeps it — meaning
the size of Figure 8's effect depends on the browser population, exactly
why the paper calls its coalescing evidence "preliminary".
"""

import random

import pytest

from repro.dns.resolver import ResolveError
from repro.web.http import HTTPVersion

from conftest import POOL_PREFIX, make_client, make_policy_cdn


def browse(client, hostnames, pages=12):
    rng = random.Random(99)
    for _ in range(pages):
        hostname = rng.choice(hostnames)
        try:
            client.fetch(hostname)
        except (ResolveError, ConnectionRefusedError):  # pragma: no cover
            pass
    conns = client.stats.connections_opened
    return client.stats.fetches / conns if conns else 0.0


class TestBrowserVariants:
    def test_strict_browser_loses_coalescing_under_randomization(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock, ttl=300)
        # Restrict to one customer's hostnames so the cert always covers.
        customer = cdn.registry.customers()[0]
        names = sorted(customer.hostnames)
        strict = make_client(cdn, clock, "eyeball:us:0", name="strict",
                             version=HTTPVersion.H2)
        strict.ip_match = "exact"
        rpc_strict = browse(strict, names)

        lax = make_client(cdn, clock, "eyeball:us:1", name="lax",
                          version=HTTPVersion.H2)
        lax.ip_match = "none"
        rpc_lax = browse(lax, names)

        assert rpc_lax > 1.5 * rpc_strict
        assert lax.stats.connections_opened < strict.stats.connections_opened

    def test_variants_equal_under_one_address(self, clock):
        """One-address collapses the browser differences: every variant
        passes the IP condition trivially (§5.1's amplification claim)."""
        cdn, hostnames, engine, pool = make_policy_cdn(clock, ttl=300)
        pool.set_active((POOL_PREFIX.address_at(1),))  # one-address via list
        customer = cdn.registry.customers()[0]
        names = sorted(customer.hostnames)

        results = {}
        for variant, asn in (("exact", "eyeball:us:0"), ("none", "eyeball:us:1")):
            client = make_client(cdn, clock, asn, name=f"v-{variant}",
                                 version=HTTPVersion.H2)
            client.ip_match = variant
            results[variant] = browse(client, names)
        assert results["exact"] == pytest.approx(results["none"])
        assert results["exact"] > 5  # everything coalesces onto one conn
