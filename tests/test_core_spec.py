"""Declarative policy specs and the static verifier (§4.3 future work)."""

import pytest

from repro.core.policy import PolicyAttributes
from repro.core.spec import (
    AttributeDomain,
    PolicySpecError,
    compile_and_verify,
    compile_policy,
    verify_policy_set,
)
from repro.core.strategies import PerPopAssignment, RandomSelection, StaticAssignment
from repro.netsim.addr import IPv4, IPv6, parse_prefix

DOMAIN = AttributeDomain(pops=frozenset({"iad", "lhr"}))
SPACE = [parse_prefix("192.0.0.0/20"), parse_prefix("2001:db8::/44")]


def spec(**overrides) -> dict:
    base = {
        "name": "randomize-free",
        "pool": {"advertised": "192.0.0.0/20", "active": "192.0.2.0/24"},
        "match": {"account_type": ["free"]},
        "strategy": "random",
        "ttl": 30,
    }
    base.update(overrides)
    return base


class TestCompile:
    def test_minimal_spec(self):
        policy = compile_policy(spec())
        assert policy.name == "randomize-free"
        assert policy.pool.size == 256
        assert isinstance(policy.strategy, RandomSelection)
        assert policy.ttl == 30

    def test_strategy_with_params(self):
        policy = compile_policy(spec(strategy="static", params={"per_address": 8}))
        assert isinstance(policy.strategy, StaticAssignment)
        assert policy.strategy.per_address == 8

    def test_per_pop_strategy(self):
        policy = compile_policy(
            spec(strategy="per_pop", params={"pop_order": ["iad", "lhr"]})
        )
        assert isinstance(policy.strategy, PerPopAssignment)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PolicySpecError, match="unknown strategy"):
            compile_policy(spec(strategy="telepathic"))

    def test_missing_strategy_param_rejected(self):
        with pytest.raises(PolicySpecError, match="missing parameter"):
            compile_policy(spec(strategy="per_pop", params={}))

    def test_unknown_keys_rejected(self):
        with pytest.raises(PolicySpecError, match="unknown spec keys"):
            compile_policy(spec(colour="blue"))

    def test_unknown_match_keys_rejected(self):
        with pytest.raises(PolicySpecError, match="unknown match keys"):
            compile_policy(spec(match={"weather": ["sunny"]}))

    def test_bad_prefix_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy(spec(pool={"advertised": "not-a-prefix"}))

    def test_active_outside_advertised_rejected(self):
        with pytest.raises(PolicySpecError):
            compile_policy(spec(pool={"advertised": "192.0.0.0/20",
                                      "active": "10.0.0.0/24"}))

    def test_missing_required_keys(self):
        with pytest.raises(PolicySpecError, match="missing required"):
            compile_policy({"pool": {"advertised": "192.0.0.0/20"}})


class TestVerifier:
    def test_clean_set_passes(self):
        engine = compile_and_verify([spec()], DOMAIN, SPACE)
        decision = engine.evaluate(
            PolicyAttributes(pop="iad", account_type="free", family=IPv4)
        )
        assert decision is not None

    def test_unrouted_pool_rejected(self):
        bad = spec(pool={"advertised": "203.0.113.0/24"})
        with pytest.raises(PolicySpecError, match="unrouted-pool"):
            compile_and_verify([bad], DOMAIN, SPACE)

    def test_impossible_match_rejected(self):
        bad = spec(match={"pop": ["atlantis"]})
        with pytest.raises(PolicySpecError, match="impossible-match"):
            compile_and_verify([bad], DOMAIN, SPACE)

    def test_family_mismatch_rejected(self):
        bad = spec(match={"family": [IPv6]})  # v4 pool, v6-only match
        with pytest.raises(PolicySpecError, match="family-mismatch"):
            compile_and_verify([bad], DOMAIN, SPACE)

    def test_shadowed_policy_rejected(self):
        broad = spec(name="broad", match={}, priority=1)
        narrow = spec(name="narrow", match={"pop": ["iad"]}, priority=50)
        with pytest.raises(PolicySpecError, match="shadowed"):
            compile_and_verify([broad, narrow], DOMAIN, SPACE)

    def test_disjoint_policies_not_shadowed(self):
        a = spec(name="a", match={"pop": ["iad"]}, priority=1)
        b = spec(name="b", match={"pop": ["lhr"]}, priority=50)
        engine = compile_and_verify([a, b], DOMAIN, SPACE)
        assert len(engine) == 2

    def test_coverage_gap_is_warning_not_error(self):
        narrow = spec(match={"pop": ["iad"], "account_type": ["enterprise"]})
        engine = compile_and_verify([narrow], DOMAIN, SPACE)  # must not raise
        policies = engine.policies()
        issues = verify_policy_set(policies, DOMAIN, SPACE)
        gaps = [i for i in issues if i.kind == "coverage-gap"]
        assert gaps and gaps[0].severity == "warning"

    def test_full_coverage_no_gap_warning(self):
        v4 = spec(name="v4", match={})
        v6 = spec(name="v6", match={},
                  pool={"advertised": "2001:db8::/44"})
        engine = compile_and_verify([v4, v6], DOMAIN, SPACE)
        issues = verify_policy_set(engine.policies(), DOMAIN, SPACE)
        assert not [i for i in issues if i.kind == "coverage-gap"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(PolicySpecError, match="duplicate"):
            compile_and_verify([spec(), spec()], DOMAIN, SPACE)

    def test_issue_str(self):
        issues = verify_policy_set(
            [compile_policy(spec(pool={"advertised": "203.0.113.0/24"}))],
            DOMAIN, SPACE,
        )
        assert any("unrouted-pool" in str(i) for i in issues)
