"""Live re-addressing campaigns: spec artifacts, engine semantics, drills.

The acceptance behaviors: the /20 → /24 → /32 staged shrink completes
under traffic and background chaos with zero dropped established
connections and bounded stale-binding exposure (machine-checked by the
three campaign invariants); a mid-step PoP outage pauses, holds, and
rolls the step back with the starting fingerprint restored; a mis-tuned
drain timeout drops connections and is convicted; and a finished or
interrupted run's checkpoint artifact replays byte-identically.
"""

import json
import os

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignStep,
    GateConfig,
    ReaddressingSpec,
    checkpoint_payload,
    default_readdressing_spec,
    migration_spec,
    minimize_rollback_faults,
    resume_readdressing,
    run_readdressing,
)
from repro.chaos.generator import Campaign, FaultSpec
from repro.chaos.invariants import INVARIANTS
from repro.chaos.world import ChaosConfig, build_world
from repro.check.plan import RebindPlan
from repro.cli import main
from repro.netsim.addr import parse_prefix

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
BAD_GATE = os.path.join(FIXTURES, "campaign_bad_gate.json")
ROLLBACK_FAULTS = os.path.join(FIXTURES, "campaign_rollback_faults.json")

OUTAGE = FaultSpec(when=42.0, kind="pop_outage", duration=15.0,
                   params={"pop": "ashburn"})


def shrink_step(index: int, name: str, active: str) -> CampaignStep:
    return CampaignStep(index, name, plan=RebindPlan(
        kind="shrink", policy="svc", active=parse_prefix(active)))


class TestSpec:
    def test_step_needs_exactly_one_of_plan_or_ttl(self):
        with pytest.raises(ValueError, match="exactly one"):
            CampaignStep(0, "neither")
        with pytest.raises(ValueError, match="exactly one"):
            CampaignStep(0, "both", ttl=10, plan=RebindPlan(
                kind="shrink", policy="svc",
                active=parse_prefix("192.0.2.0/24")))

    def test_out_of_order_steps_rejected_on_import(self):
        """The FaultTimeline rule for campaign artifacts: steps carry
        their position, and a reordered import is an error, not a
        silently reshuffled campaign."""
        payload = default_readdressing_spec().to_dict()
        payload["steps"].reverse()
        with pytest.raises(ValueError, match="must be imported in order"):
            ReaddressingSpec.from_dict(payload)

    def test_json_round_trip(self):
        spec = default_readdressing_spec()
        again = ReaddressingSpec.from_json(spec.to_json())
        assert again == spec
        assert again.overrides == {"horizon": 240.0,
                                   "primary_prefix": "192.0.0.0/20"}
        assert again.start_at == 20.0

    def test_gate_rejects_unknown_fields_and_bad_values(self):
        with pytest.raises(ValueError, match="unknown gate field"):
            GateConfig.from_dict({"min_availability": 0.9, "typo_s": 1.0})
        with pytest.raises(ValueError):
            GateConfig(min_availability=1.5)
        with pytest.raises(ValueError):
            GateConfig(drain_timeout_s=0.0)

    def test_truncated_reindexes_remaining_steps(self):
        spec = default_readdressing_spec()
        rest = spec.truncated(2)
        assert [s.name for s in rest.steps] == ["halve-cadence"]
        assert rest.steps[0].step == 0

    def test_bad_gate_fixture_parses_and_is_mistuned(self):
        with open(BAD_GATE) as fh:
            spec = ReaddressingSpec.from_json(fh.read())
        # Mis-tuned by construction: the operator's patience expires
        # before the TTL horizon, so a drain can never finish cleanly.
        assert spec.gate.drain_timeout_s < ChaosConfig().ttl


class TestShrinkDrill:
    @pytest.fixture(scope="class")
    def result(self):
        return run_readdressing(default_readdressing_spec(), seed=7)

    def test_completes_every_step_with_zero_violations(self, result):
        campaign = result.readdressing
        assert campaign["state"] == "complete"
        assert [s["outcome"] for s in campaign["steps"]] == ["advanced"] * 3
        assert result.violations == ()

    def test_established_flows_drained_never_dropped(self, result):
        steps = result.readdressing["steps"]
        moved = sum(s["drained_completed"] + s["drained_migrated"]
                    for s in steps)
        assert moved > 0  # the warm world had flows in the vacated space
        assert all(s["dropped"] == [] for s in steps)

    def test_drain_waits_for_the_propagation_horizon(self, result):
        for step in result.readdressing["steps"]:
            if step["kind"] == "cadence":
                continue
            # Every drain latency is bounded by the old TTL: nothing is
            # closed after the horizon, nothing before it closes early.
            assert step["horizon"] == step["enacted_at"] + 20.0
            assert all(lat <= 20.0 for lat in step["drain_latencies"])

    def test_post_horizon_traffic_left_the_vacated_space(self, result):
        """The §4.2 claim, observed from the client side: past each
        advanced step's horizon (+grace), fresh dials land only in the
        shrunken active set — enforced by stale_binding_bound, sampled
        here directly for the final /32."""
        last = result.readdressing["steps"][1]
        boundary = last["horizon"] + result.config.grace_s
        fresh = [f for f in result.fetches
                 if f.ok and not f.coalesced and f.t > boundary
                 and f.address is not None]
        assert fresh
        assert all(str(f.address) == "192.0.2.1" for f in fresh)

    def test_report_bytes_are_deterministic(self, result):
        twin = run_readdressing(default_readdressing_spec(), seed=7)
        assert (json.dumps(twin.report(), sort_keys=True)
                == json.dumps(result.report(), sort_keys=True))

    def test_checkpoint_resume_replays_byte_identically(self, result):
        artifact = json.loads(json.dumps(
            checkpoint_payload(default_readdressing_spec(), 7, result=result)))
        resumed = resume_readdressing(artifact)
        assert (json.dumps(resumed.report(), sort_keys=True)
                == json.dumps(result.report(), sort_keys=True))

    def test_resume_rejects_foreign_artifacts(self):
        with pytest.raises(ValueError, match="not a readdressing checkpoint"):
            resume_readdressing({"kind": "grocery-list"})

    def test_cadence_step_changes_ttl_without_draining(self, result):
        cadence = result.readdressing["steps"][2]
        assert cadence["kind"] == "cadence"
        assert cadence["old_active"] == "ttl=20"
        assert cadence["new_active"] == "ttl=10"
        assert cadence["drained_migrated"] == 0

    def test_timeline_carries_the_campaign_phase(self, result):
        kinds = {e.kind for e in result.timeline.events()
                 if e.phase == "campaign"}
        assert {"campaign_step", "campaign_drained", "campaign_advanced",
                "campaign_complete"} <= kinds


class TestMigrationDrill:
    def test_pool_move_drains_the_old_block(self):
        result = run_readdressing(migration_spec(), seed=7)
        campaign = result.readdressing
        assert campaign["state"] == "complete"
        step = campaign["steps"][0]
        assert step["kind"] == "migrate"
        assert step["old_active"] == "192.0.0.0/20"
        assert step["new_active"] == "192.0.4.0/24"
        assert step["drained_completed"] + step["drained_migrated"] > 0
        assert result.violations == ()


class TestRollback:
    @pytest.fixture(scope="class")
    def result(self):
        return run_readdressing(default_readdressing_spec(), seed=7,
                                faults=(OUTAGE,))

    def test_outage_forces_pause_hold_rollback(self, result):
        campaign = result.readdressing
        assert campaign["state"] == "rolled_back"
        step = campaign["steps"][0]
        assert step["outcome"] == "rolled_back"
        # Settle-window failure, then max_holds re-checks, then rollback.
        assert step["holds"] == 2
        assert len(step["gate_failures"]) == 3
        assert all("failed the policy over" in why
                   for why in step["gate_failures"])

    def test_rollback_restores_the_starting_fingerprint(self, result):
        step = result.readdressing["steps"][0]
        assert step["fingerprint_before"] == step["fingerprint_after"]
        assert step["fingerprint_before"]["advertised"] == "192.0.0.0/20"
        assert result.violations == ()  # rollback_restores among them

    def test_monitor_mitigation_outranks_the_campaign(self, result):
        """The rollback must NOT clobber the health monitor's failover:
        the policy stays on the standby pool it was rescued to."""
        failover = result.timeline.first("failover_triggered")
        rollback = result.timeline.first("campaign_rollback")
        assert failover is not None and rollback is not None
        assert failover.at < rollback.at

    def test_rollback_fingerprint_drift_is_a_violation(self):
        """Unit-check the rollback_restores invariant on a synthetic
        report whose rollback left the world drifted."""
        from types import SimpleNamespace

        step = {"name": "shrink-to-24", "outcome": "rolled_back",
                "completed_at": 70.0,
                "fingerprint_before": {"active": "192.0.0.0/20"},
                "fingerprint_after": {"active": "192.0.2.0/24"}}
        result = SimpleNamespace(readdressing={"steps": [step]})
        violations = INVARIANTS["rollback_restores"](result)
        assert len(violations) == 1
        assert "drifted: active" in violations[0].detail

    def test_minimizes_to_the_causal_outage(self):
        with open(ROLLBACK_FAULTS) as fh:
            campaign = Campaign.from_json(fh.read())
        minimal = minimize_rollback_faults(campaign)
        assert [f.kind for f in minimal.faults] == ["pop_outage"]

    def test_minimize_requires_a_rollback(self):
        calm = Campaign(name="calm", seed=7, faults=(),
                        overrides=dict(default_readdressing_spec().overrides))
        with pytest.raises(ValueError, match="does not roll back"):
            minimize_rollback_faults(calm)


class TestBadGate:
    def test_mistuned_drain_timeout_drops_and_is_convicted(self):
        bad = default_readdressing_spec().with_gate(drain_timeout_s=5.0)
        result = run_readdressing(bad, seed=7)
        steps = result.readdressing["steps"]
        assert sum(len(s["dropped"]) for s in steps) > 0
        names = {v.invariant for v in result.violations}
        assert "no_dropped_established" in names
        # The gate also refuses to advance a step that dropped flows.
        assert any("dropped" in why
                   for s in steps for why in s["gate_failures"])
        drops = result.timeline.events(kind="established_dropped")
        assert drops and all(e.phase == "campaign" for e in drops)


class TestEngineEdges:
    def test_preflight_blackhole_aborts_the_campaign(self):
        """A step whose plan points the active set at unannounced space
        must die at the symbolic preflight — nothing is enacted."""
        spec = ReaddressingSpec(
            name="rogue", policy="svc",
            overrides={"horizon": 60.0, "primary_prefix": "192.0.0.0/20"},
            steps=(shrink_step(0, "escape", "10.9.9.0/24"),),
        )
        result = run_readdressing(spec, seed=7)
        campaign = result.readdressing
        assert campaign["state"] == "aborted"
        step = campaign["steps"][0]
        assert step["outcome"] == "aborted"
        assert step["enacted_at"] is None
        # The pool was never touched.
        assert result.timeline.first("campaign_aborted") is not None

    def test_engine_status_is_numbers_only(self):
        world = build_world(ChaosConfig().apply(
            {"primary_prefix": "192.0.0.0/20"}), seed=7)
        engine = CampaignEngine(
            default_readdressing_spec(), clock=world.clock, cdn=world.cdn,
            engine=world.engine, controller=world.controller,
            clients=world.clients, monitor=world.monitor,
        )
        status = engine.status()
        assert status["state"] == 0 and status["steps_total"] == 3
        assert all(isinstance(v, (int, float)) for v in status.values())

    def test_drain_observers_feed_the_obs_histogram(self):
        from repro.obs import MetricsRegistry
        from repro.obs.adapters import watch_campaign

        world = build_world(ChaosConfig().apply(
            {"primary_prefix": "192.0.0.0/20"}), seed=7)
        engine = CampaignEngine(
            default_readdressing_spec(), clock=world.clock, cdn=world.cdn,
            engine=world.engine, controller=world.controller,
            clients=world.clients, monitor=world.monitor,
        )
        registry = MetricsRegistry(world.clock)
        watch_campaign(registry, "campaign", engine)
        assert engine.drain_observers  # the histogram hooked in
        engine.drain_observers[0](12.5)
        hist = registry.snapshot()["histograms"]["campaign.drain_s"]
        assert hist["count"] == 1 and hist["sum"] == 12.5

    def test_plain_chaos_runs_skip_campaign_invariants(self):
        from types import SimpleNamespace

        bare = SimpleNamespace(readdressing=None)
        for name in ("no_dropped_established", "stale_binding_bound",
                     "rollback_restores"):
            assert INVARIANTS[name](bare) == []


class TestExperimentE20:
    def test_three_arms_hold(self):
        from repro.experiments.readdressing import (
            render_readdressing_table,
            run_readdressing_experiment,
        )

        outcome = run_readdressing_experiment()
        assert outcome.ok
        table = render_readdressing_table(outcome)
        assert "rollback restores the world" in table
        assert "rolled_back" in table


class TestCampaignCommand:
    def run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_default_drill_prints_steps(self, capsys):
        out = self.run(["campaign", "--seed", "7"], capsys)
        assert "shrink-20-24-32" in out and "complete" in out

    def test_json_is_deterministic(self, capsys):
        argv = ["campaign", "--seed", "7", "--json"]
        assert self.run(argv, capsys) == self.run(argv, capsys)

    def test_bad_gate_spec_exits_1(self, capsys):
        assert main(["campaign", "--spec", BAD_GATE]) == 1
        assert "no_dropped_established" in capsys.readouterr().out

    def test_rollback_schedule_minimizes_to_golden(self, capsys):
        out = self.run(["campaign", "--minimize", ROLLBACK_FAULTS,
                        "--expect-minimal", "pop_outage"], capsys)
        assert "minimal schedule: pop_outage" in out

    def test_wrong_golden_fails(self, capsys):
        assert main(["campaign", "--minimize", ROLLBACK_FAULTS,
                     "--expect-minimal", "server_crash"]) == 1

    def test_unreadable_spec_exits_2(self, capsys):
        assert main(["campaign", "--spec", "no/such/spec.json"]) == 2
