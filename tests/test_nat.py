"""Carrier-grade NAT: the §5.2 port-exhaustion analysis."""

import pytest

from repro.netsim.addr import parse_address
from repro.netsim.packet import Protocol
from repro.sockets.nat import CarrierGradeNAT, NatExhaustedError

EXT1 = parse_address("100.64.0.1")
EXT2 = parse_address("100.64.0.2")
CDN_ONE_ADDR = (parse_address("192.0.2.1"), 443)
OTHER_DST = (parse_address("203.0.113.9"), 443)


def internal(i: int) -> tuple:
    return (parse_address(f"10.0.{i // 250}.{i % 250 + 1}"), 50000 + (i % 10000))


class TestBindingBasics:
    def test_binding_allocated(self):
        nat = CarrierGradeNAT([EXT1])
        b = nat.bind(internal(0), Protocol.TCP, CDN_ONE_ADDR)
        assert b.external[0] == EXT1
        assert 1024 <= b.external[1] <= 65535

    def test_same_flow_reuses_binding(self):
        nat = CarrierGradeNAT([EXT1])
        b1 = nat.bind(internal(0), Protocol.TCP, CDN_ONE_ADDR)
        b2 = nat.bind(internal(0), Protocol.TCP, CDN_ONE_ADDR)
        assert b1 == b2

    def test_distinct_flows_distinct_ports(self):
        nat = CarrierGradeNAT([EXT1])
        b1 = nat.bind(internal(0), Protocol.UDP, CDN_ONE_ADDR)
        b2 = nat.bind(internal(1), Protocol.UDP, CDN_ONE_ADDR)
        assert b1.external != b2.external

    def test_release_recycles(self):
        nat = CarrierGradeNAT([EXT1])
        b = nat.bind(internal(0), Protocol.UDP, CDN_ONE_ADDR)
        assert nat.udp_in_use() == 1
        nat.release(b)
        assert nat.udp_in_use() == 0


class TestOneAddressExhaustion:
    def test_udp_capacity_is_ports_times_ips(self):
        nat = CarrierGradeNAT([EXT1, EXT2])
        assert nat.udp_capacity() == 2 * 64512

    def test_udp_exhausts_under_one_address(self):
        """§5.2: QUIC flows to one CDN address consume external ports
        exclusively; the NAT runs dry at ports×IPs concurrent flows."""
        # Use a tiny synthetic port space by exhausting a slice: bind until
        # failure with a patched range would be slow; instead verify the
        # accounting invariant on a sample and the failure on a full sweep
        # of a shrunken NAT.
        small = CarrierGradeNAT([EXT1])
        small._next_port = {EXT1.value: 65530}  # start near the top
        seen = set()
        for i in range(6):
            b = small.bind(internal(i), Protocol.QUIC, CDN_ONE_ADDR)
            seen.add(b.external[1])
        assert len(seen) == 6  # wrapped around, all unique

    def test_tcp_five_tuple_nat_reuses_ports_across_destinations(self):
        """§5.2: 'For TCP this is no longer an issue' — late port binding
        lets the same external port serve different destinations."""
        nat = CarrierGradeNAT([EXT1], tcp_five_tuple_nat=True)
        b1 = nat.bind(internal(0), Protocol.TCP, CDN_ONE_ADDR)
        nat._next_port[EXT1.value] = b1.external[1]  # force same start port
        b2 = nat.bind(internal(1), Protocol.TCP, OTHER_DST)
        assert b1.external[1] == b2.external[1]  # same port, different dst

    def test_classic_tcp_nat_cannot_share_ports(self):
        nat = CarrierGradeNAT([EXT1], tcp_five_tuple_nat=False)
        b1 = nat.bind(internal(0), Protocol.TCP, CDN_ONE_ADDR)
        nat._next_port[EXT1.value] = b1.external[1]
        b2 = nat.bind(internal(1), Protocol.TCP, OTHER_DST)
        assert b1.external[1] != b2.external[1]

    def test_exhaustion_raises(self):
        nat = CarrierGradeNAT([EXT1])
        # Shrink the effective port space by pre-filling it.
        nat._udp_used = {(EXT1.value, p) for p in range(1024, 65536)}
        with pytest.raises(NatExhaustedError):
            nat.bind(internal(0), Protocol.QUIC, CDN_ONE_ADDR)

    def test_second_external_ip_extends_capacity(self):
        nat = CarrierGradeNAT([EXT1, EXT2])
        nat._udp_used = {(EXT1.value, p) for p in range(1024, 65536)}
        b = nat.bind(internal(0), Protocol.QUIC, CDN_ONE_ADDR)
        assert b.external[0] == EXT2

    def test_needs_external_ips(self):
        with pytest.raises(ValueError):
            CarrierGradeNAT([])
