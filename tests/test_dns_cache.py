"""DNS cache: TTL expiry, clamping policies, negative entries, eviction."""

import pytest

from repro.clock import Clock
from repro.dns.cache import DNSCache, TTLPolicy
from repro.dns.records import A, DomainName, Question, ResourceRecord, RRType
from repro.netsim.addr import parse_address


def question(text="www.example.com"):
    return Question(DomainName.from_text(text), RRType.A)


def record(text="www.example.com", addr="192.0.2.1", ttl=60):
    return ResourceRecord(DomainName.from_text(text), A(parse_address(addr)), ttl)


class TestTTLPolicy:
    def test_honest_passes_through(self):
        assert TTLPolicy.honest().effective_ttl(17) == 17

    def test_clamping_raises_small_ttls(self):
        policy = TTLPolicy.clamping(300)
        assert policy.effective_ttl(5) == 300
        assert policy.effective_ttl(900) == 900

    def test_cap_lowers_large_ttls(self):
        policy = TTLPolicy(clamp_max=3600)
        assert policy.effective_ttl(86400) == 3600

    def test_override_ignores_record_ttl(self):
        policy = TTLPolicy(honour=False, override=42)
        assert policy.effective_ttl(1) == 42
        assert policy.effective_ttl(10_000) == 42

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            TTLPolicy(clamp_min=100, clamp_max=10)
        with pytest.raises(ValueError):
            TTLPolicy(honour=False, override=0)
        with pytest.raises(ValueError):
            TTLPolicy(clamp_min=-1)


class TestCacheBasics:
    def test_miss_then_hit(self):
        clock = Clock()
        cache = DNSCache(clock)
        assert cache.get(question()) is None
        cache.store(question(), [record(ttl=60)])
        hit = cache.get(question())
        assert hit is not None and len(hit) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_expiry_at_ttl(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60)])
        clock.advance(59)
        assert cache.get(question()) is not None
        clock.advance(2)
        assert cache.get(question()) is None
        assert cache.stats.expirations == 1

    def test_remaining_ttl_decrements(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60)])
        clock.advance(25)
        hit = cache.get(question())
        assert hit[0].ttl == 35

    def test_ttl_zero_not_cached(self):
        cache = DNSCache(Clock())
        cache.store(question(), [record(ttl=0)])
        assert cache.get(question()) is None

    def test_min_ttl_of_rrset_governs(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60), record(addr="192.0.2.2", ttl=10)])
        clock.advance(11)
        assert cache.get(question()) is None

    def test_empty_store_is_noop(self):
        cache = DNSCache(Clock())
        cache.store(question(), [])
        assert cache.stats.insertions == 0

    def test_clamping_policy_stretches_binding(self):
        """§4.4: a TTL-violating resolver holds a binding past its TTL."""
        clock = Clock()
        cache = DNSCache(clock, TTLPolicy.clamping(300))
        cache.store(question(), [record(ttl=30)])
        clock.advance(100)
        assert cache.get(question()) is not None  # honest cache would miss
        clock.advance(250)
        assert cache.get(question()) is None


class TestNegativeCache:
    def test_nxdomain_entry(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store_negative(question(), soa_minimum=60, nxdomain=True)
        records, nxdomain = cache.lookup(question())
        assert records == () and nxdomain

    def test_nodata_entry_distinct_from_nxdomain(self):
        cache = DNSCache(Clock())
        cache.store_negative(question(), soa_minimum=60, nxdomain=False)
        records, nxdomain = cache.lookup(question())
        assert records == () and not nxdomain

    def test_negative_expires(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store_negative(question(), soa_minimum=30)
        clock.advance(31)
        assert cache.lookup(question()) is None


class TestFlushAndEvict:
    def test_flush_all(self):
        cache = DNSCache(Clock())
        cache.store(question("a.example.com"), [record("a.example.com")])
        cache.store(question("b.example.com"), [record("b.example.com")])
        assert cache.flush() == 2
        assert len(cache) == 0

    def test_flush_subtree(self):
        cache = DNSCache(Clock())
        cache.store(question("a.x.example.com"), [record("a.x.example.com")])
        cache.store(question("b.example.com"), [record("b.example.com")])
        flushed = cache.flush(DomainName.from_text("x.example.com"))
        assert flushed == 1
        assert cache.get(question("b.example.com")) is not None

    def test_capacity_eviction_prefers_expired(self):
        clock = Clock()
        cache = DNSCache(clock, capacity=2)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=5)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=500)])
        clock.advance(10)  # 'a' expired
        cache.store(question("c.example.com"), [record("c.example.com", ttl=500)])
        assert cache.get(question("b.example.com")) is not None
        assert cache.get(question("c.example.com")) is not None

    def test_capacity_eviction_soonest_expiry_fallback(self):
        clock = Clock()
        cache = DNSCache(clock, capacity=2)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=100)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=900)])
        cache.store(question("c.example.com"), [record("c.example.com", ttl=900)])
        assert cache.get(question("a.example.com")) is None  # evicted
        assert cache.get(question("b.example.com")) is not None

    def test_expire_all_due(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=10)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=100)])
        clock.advance(50)
        assert cache.expire_all_due() == 1
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DNSCache(Clock(), capacity=0)
