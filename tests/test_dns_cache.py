"""DNS cache: TTL expiry, clamping policies, negative entries, eviction."""

import random

import pytest

from repro.clock import Clock
from repro.dns.cache import DNSCache, TTLPolicy
from repro.dns.records import A, DomainName, Question, ResourceRecord, RRType
from repro.netsim.addr import parse_address


def question(text="www.example.com"):
    return Question(DomainName.from_text(text), RRType.A)


def record(text="www.example.com", addr="192.0.2.1", ttl=60):
    return ResourceRecord(DomainName.from_text(text), A(parse_address(addr)), ttl)


class TestTTLPolicy:
    def test_honest_passes_through(self):
        assert TTLPolicy.honest().effective_ttl(17) == 17

    def test_clamping_raises_small_ttls(self):
        policy = TTLPolicy.clamping(300)
        assert policy.effective_ttl(5) == 300
        assert policy.effective_ttl(900) == 900

    def test_cap_lowers_large_ttls(self):
        policy = TTLPolicy(clamp_max=3600)
        assert policy.effective_ttl(86400) == 3600

    def test_override_ignores_record_ttl(self):
        policy = TTLPolicy(honour=False, override=42)
        assert policy.effective_ttl(1) == 42
        assert policy.effective_ttl(10_000) == 42

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            TTLPolicy(clamp_min=100, clamp_max=10)
        with pytest.raises(ValueError):
            TTLPolicy(honour=False, override=0)
        with pytest.raises(ValueError):
            TTLPolicy(clamp_min=-1)


class TestCacheBasics:
    def test_miss_then_hit(self):
        clock = Clock()
        cache = DNSCache(clock)
        assert cache.get(question()) is None
        cache.store(question(), [record(ttl=60)])
        hit = cache.get(question())
        assert hit is not None and len(hit) == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_expiry_at_ttl(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60)])
        clock.advance(59)
        assert cache.get(question()) is not None
        clock.advance(2)
        assert cache.get(question()) is None
        assert cache.stats.expirations == 1

    def test_remaining_ttl_decrements(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60)])
        clock.advance(25)
        hit = cache.get(question())
        assert hit[0].ttl == 35

    def test_ttl_zero_not_cached(self):
        cache = DNSCache(Clock())
        cache.store(question(), [record(ttl=0)])
        assert cache.get(question()) is None

    def test_min_ttl_of_rrset_governs(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60), record(addr="192.0.2.2", ttl=10)])
        clock.advance(11)
        assert cache.get(question()) is None

    def test_empty_store_is_noop(self):
        cache = DNSCache(Clock())
        cache.store(question(), [])
        assert cache.stats.insertions == 0

    def test_clamping_policy_stretches_binding(self):
        """§4.4: a TTL-violating resolver holds a binding past its TTL."""
        clock = Clock()
        cache = DNSCache(clock, TTLPolicy.clamping(300))
        cache.store(question(), [record(ttl=30)])
        clock.advance(100)
        assert cache.get(question()) is not None  # honest cache would miss
        clock.advance(250)
        assert cache.get(question()) is None


class TestNegativeCache:
    def test_nxdomain_entry(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store_negative(question(), soa_minimum=60, nxdomain=True)
        records, nxdomain = cache.lookup(question())
        assert records == () and nxdomain

    def test_nodata_entry_distinct_from_nxdomain(self):
        cache = DNSCache(Clock())
        cache.store_negative(question(), soa_minimum=60, nxdomain=False)
        records, nxdomain = cache.lookup(question())
        assert records == () and not nxdomain

    def test_negative_expires(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store_negative(question(), soa_minimum=30)
        clock.advance(31)
        assert cache.lookup(question()) is None


class TestFlushAndEvict:
    def test_flush_all(self):
        cache = DNSCache(Clock())
        cache.store(question("a.example.com"), [record("a.example.com")])
        cache.store(question("b.example.com"), [record("b.example.com")])
        assert cache.flush() == 2
        assert len(cache) == 0

    def test_flush_subtree(self):
        cache = DNSCache(Clock())
        cache.store(question("a.x.example.com"), [record("a.x.example.com")])
        cache.store(question("b.example.com"), [record("b.example.com")])
        flushed = cache.flush(DomainName.from_text("x.example.com"))
        assert flushed == 1
        assert cache.get(question("b.example.com")) is not None

    def test_capacity_eviction_prefers_expired(self):
        clock = Clock()
        cache = DNSCache(clock, capacity=2)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=5)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=500)])
        clock.advance(10)  # 'a' expired
        cache.store(question("c.example.com"), [record("c.example.com", ttl=500)])
        assert cache.get(question("b.example.com")) is not None
        assert cache.get(question("c.example.com")) is not None

    def test_capacity_eviction_soonest_expiry_fallback(self):
        clock = Clock()
        cache = DNSCache(clock, capacity=2)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=100)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=900)])
        cache.store(question("c.example.com"), [record("c.example.com", ttl=900)])
        assert cache.get(question("a.example.com")) is None  # evicted
        assert cache.get(question("b.example.com")) is not None

    def test_expire_all_due(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=10)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=100)])
        clock.advance(50)
        assert cache.expire_all_due() == 1
        assert len(cache) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DNSCache(Clock(), capacity=0)


class TestEvictionRegressions:
    """Bugfix: overwriting a cached key at capacity must not evict an
    unrelated entry, and capacity evictions are counted apart from TTL
    expirations."""

    def test_overwrite_at_capacity_does_not_evict_neighbour(self):
        clock = Clock()
        cache = DNSCache(clock, capacity=2)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=900)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=100)])
        # Refresh 'a' while full: same key, no new slot needed.  The
        # pre-fix code evicted the soonest-to-expire entry ('b', an
        # unrelated fresh neighbour) before noticing the overwrite.
        cache.store(question("a.example.com"), [record("a.example.com", ttl=900)])
        assert cache.get(question("a.example.com")) is not None
        assert cache.get(question("b.example.com")) is not None
        assert cache.stats.evictions == 0

    def test_evictions_counted_apart_from_expirations(self):
        clock = Clock()
        cache = DNSCache(clock, capacity=2)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=100)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=900)])
        # Fresh entries only: displacing one is an eviction, not an expiry.
        cache.store(question("c.example.com"), [record("c.example.com", ttl=900)])
        assert cache.stats.evictions == 1
        assert cache.stats.expirations == 0
        # Now let one run out and displace it: that's an expiration.
        clock.advance(950)  # b and c both expired
        cache.store(question("d.example.com"), [record("d.example.com", ttl=50)])
        cache.store(question("e.example.com"), [record("e.example.com", ttl=50)])
        cache.store(question("f.example.com"), [record("f.example.com", ttl=50)])
        assert cache.stats.expirations >= 2  # b, c swept at capacity
        assert cache.stats.evictions == 2   # plus one more fresh displacement

    def test_seeded_random_capacity_and_preference_invariants(self):
        """Property: the cache never exceeds capacity, and never evicts a
        fresh entry while an expired one is still occupying a slot."""
        rng = random.Random(2021)
        clock = Clock()
        cache = DNSCache(clock, capacity=8)
        names = [f"h{i}.example.com" for i in range(24)]
        for step in range(600):
            name = rng.choice(names)
            ttl = rng.choice((1, 5, 30, 300))
            evictions_before = cache.stats.evictions
            had_expired = any(
                e.expires_at <= clock.now() for e in cache._entries.values()
            )
            cache.store(question(name), [record(name, ttl=ttl)])
            assert len(cache) <= 8, f"capacity exceeded at step {step}"
            if cache.stats.evictions > evictions_before:
                assert not had_expired, (
                    f"step {step}: evicted a fresh entry while an expired "
                    f"one remained"
                )
            if rng.random() < 0.3:
                clock.advance(rng.choice((1, 10, 100)))


class TestRemainingEffectiveTTL:
    """Bugfix: a hit advertises the remaining *effective* lifetime, so a
    clamp-stretched entry (§4.4 violator) propagates its stretched TTL
    downstream instead of the original record TTL."""

    def test_clamped_entry_advertises_remaining_clamped_ttl(self):
        clock = Clock()
        cache = DNSCache(clock, TTLPolicy.clamping(300))
        cache.store(question(), [record(ttl=30)])
        clock.advance(100)
        hit = cache.get(question())
        # Pre-fix: min(remaining, record.ttl) returned 30 here.
        assert hit[0].ttl == 200

    def test_honest_cache_unaffected(self):
        clock = Clock()
        cache = DNSCache(clock)
        cache.store(question(), [record(ttl=60)])
        clock.advance(25)
        assert cache.get(question())[0].ttl == 35

    def test_override_policy_advertises_remaining_override(self):
        clock = Clock()
        cache = DNSCache(clock, TTLPolicy(honour=False, override=120))
        cache.store(question(), [record(ttl=5)])
        clock.advance(40)
        assert cache.get(question())[0].ttl == 80

    def test_downstream_stub_inherits_clamped_lifetime(self):
        """E-ttl regression: an honest stub behind a clamping recursive
        holds the binding for the clamp, not the authoritative TTL — so
        it re-queries the recursive once per clamp period, not once per
        record TTL."""
        from repro.core.authoritative import PolicyAnswerSource
        from repro.core.policy import Policy, PolicyEngine
        from repro.core.pool import AddressPool
        from repro.dns.resolver import RecursiveResolver
        from repro.dns.server import AuthoritativeServer, QueryContext
        from repro.dns.stub import StubResolver
        from repro.edge.customers import AccountType, Customer, CustomerRegistry
        from repro.netsim.addr import parse_prefix

        clock = Clock()
        customers = CustomerRegistry()
        customers.add(Customer("c", AccountType.FREE, {"site.example.com"}))
        engine = PolicyEngine(random.Random(7))
        engine.add(Policy("p", AddressPool(parse_prefix("192.0.2.0/24"), name="A"),
                          ttl=30))
        server = AuthoritativeServer(PolicyAnswerSource(engine, customers))
        recursive = RecursiveResolver(
            "clamping", clock,
            transport=lambda wire: server.handle_wire(wire, QueryContext(pop="dc1")),
            ttl_policy=TTLPolicy.clamping(300),
        )
        stub = StubResolver("stub", clock, recursive)

        stub.lookup("site.example.com")
        assert recursive.stats.client_queries == 1
        # Probe well past the 30 s record TTL but inside the 300 s clamp:
        # the stub cached the clamped remaining lifetime, so it never goes
        # back to the recursive.  Pre-fix it cached 30 s and re-queried
        # on every probe below.
        for _ in range(5):
            clock.advance(50)
            stub.lookup("site.example.com")
        assert recursive.stats.client_queries == 1
        # Past the clamp the stub must refresh.
        clock.advance(60)  # t = 310 > 300
        stub.lookup("site.example.com")
        assert recursive.stats.client_queries == 2
