"""Failure injection: the system under loss, churn, and misbehaviour.

The paper's first-order success signal is "the absence of breakage"
(§4).  These tests inject the breakage candidates — flaky DNS transports,
socket churn during live repoints, PoP withdrawals, stale map entries —
and assert the system degrades exactly as designed, never silently.
"""

import random

import pytest

from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns import Message, RecursiveResolver, ResolveError, RRType
from repro.edge import ListenMode
from repro.faults import FlakyTransport
from repro.netsim import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Protocol
from repro.sockets import LookupPath, MatchRule, SkLookupProgram, SockArray, SocketTable, Verdict
from repro.web.http import Status

from conftest import POOL_PREFIX, make_client, make_cdn, make_policy_cdn


class TestDNSPathFailures:
    def test_resolver_survives_lossy_transport(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        flaky = FlakyTransport(cdn.dns_transport("eyeball:us:0"),
                               random.Random(1), drop=0.5)
        resolver = RecursiveResolver("r", clock, flaky)
        successes = failures = 0
        for hostname in hostnames:
            try:
                addrs = resolver.resolve_addresses(hostname)
                assert addrs and all(a in POOL_PREFIX for a in addrs)
                successes += 1
            except ResolveError:
                failures += 1
        assert successes > 0 and failures > 0  # both outcomes exercised
        assert resolver.stats.servfails == failures

    def test_resolver_rejects_corrupted_responses(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        flaky = FlakyTransport(cdn.dns_transport("eyeball:us:0"),
                               random.Random(2), corrupt=1.0)
        resolver = RecursiveResolver("r", clock, flaky)
        with pytest.raises(ResolveError):
            resolver.resolve(hostnames[0])
        # Nothing bogus may enter the cache.
        assert len(resolver.cache) == 0

    def test_dns_unrouted_resolver_times_out(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        resolver = RecursiveResolver("r", clock, cdn.dns_transport("not-an-as"))
        with pytest.raises(ResolveError):
            resolver.resolve(hostnames[0])


class TestPoPWithdrawal:
    def test_clients_fail_over_when_pop_withdraws(self, clock):
        cdn, hostnames, engine, pool = make_policy_cdn(clock)
        client = make_client(cdn, clock, "eyeball:eu:0", name="eu")
        client.fetch(hostnames[0])
        assert cdn.datacenters["london"].traffic.total_requests() == 1

        # London withdraws the pool prefix (maintenance): EU clients must
        # reach Ashburn instead — anycast failover, no DNS change at all.
        cdn.network.withdraw_from(POOL_PREFIX, "london")
        client.close_all()
        client.stub.cache.flush()
        client.fetch(hostnames[1])
        assert cdn.datacenters["ashburn"].traffic.total_requests() >= 1

    def test_total_withdrawal_is_loud(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        client = make_client(cdn, clock, "eyeball:us:0")
        with pytest.raises(ConnectionRefusedError):
            client.fetch(hostnames[0])


class TestLiveRepoint:
    def test_established_connections_survive_repoint(self):
        """§3.3: re-pointing IP+port mappings must not touch existing
        connections — the connected-socket stage matches first."""
        table = SocketTable()
        internal = parse_address("198.18.0.1")
        listener = table.bind_listen(Protocol.TCP, internal, 443)
        arr = SockArray(1)
        arr.update(0, listener)
        program = SkLookupProgram("svc", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL_PREFIX,), 443, 443,
                      map_key=0, label="pool"),
        ])
        path = LookupPath(table)
        path.attach(program)

        t = FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 50000,
                      POOL_PREFIX.address_at(9), 443)
        from repro.netsim.packet import Packet
        syn = Packet(t, syn=True)
        assert path.dispatch(syn).delivered
        child = table.establish(listener, t)

        # Re-point the pool elsewhere.
        program.remove_rules("pool")
        new_pool = parse_prefix("203.0.113.0/24")
        program.add_rule(MatchRule(Verdict.PASS, Protocol.TCP, (new_pool,),
                                   443, 443, map_key=0, label="pool"))

        # Mid-connection packets still reach the established socket...
        data = Packet(t)
        result = path.dispatch(data)
        assert result.socket is child
        # ...while NEW connections to the old pool are refused.
        fresh = Packet(FiveTuple(Protocol.TCP, parse_address("100.64.0.2"),
                                 50001, POOL_PREFIX.address_at(9), 443), syn=True)
        assert not path.dispatch(fresh).delivered

    def test_stale_map_entry_fails_closed(self):
        """A crashed service leaves a closed socket in the map: packets
        must MISS (surfacing the outage), never crash the dispatcher."""
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, parse_address("198.18.0.1"), 443)
        arr = SockArray(1)
        arr.update(0, listener)
        program = SkLookupProgram("svc", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL_PREFIX,), 443, 443, map_key=0),
        ])
        path = LookupPath(table)
        path.attach(program)
        table.close(listener)  # the service dies

        from repro.netsim.packet import Packet
        pkt = Packet(FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 50002,
                               POOL_PREFIX.address_at(1), 443), syn=True)
        result = path.dispatch(pkt)
        assert not result.delivered

    def test_socket_activation_replaces_dead_service(self):
        """...and the activation service installing a fresh socket restores
        service with a single map update."""
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, parse_address("198.18.0.1"), 443)
        arr = SockArray(1)
        arr.update(0, listener)
        program = SkLookupProgram("svc", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL_PREFIX,), 443, 443, map_key=0),
        ])
        path = LookupPath(table)
        path.attach(program)
        table.close(listener)
        replacement = table.bind_listen(Protocol.TCP, parse_address("198.18.0.1"), 443)
        arr.update(0, replacement)

        from repro.netsim.packet import Packet
        pkt = Packet(FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 50003,
                               POOL_PREFIX.address_at(1), 443), syn=True)
        assert path.dispatch(pkt).socket is replacement


class TestServingEdgeCases:
    def test_unknown_hostname_resolves_but_tls_fails(self, clock):
        """A hostname nobody registered matches the catch-all policy and
        resolves fine — DNS does not validate hostnames in this
        architecture — but the edge, holding no certificate for it,
        refuses the handshake.  (The layering: rejection happens at
        connection termination, not in DNS.)"""
        from repro.web.tls import TLSError
        cdn, hostnames, *_ = make_policy_cdn(clock)
        client = make_client(cdn, clock, "eyeball:us:0")
        # DNS happily answers…
        addresses = client.stub.lookup("never-registered.example.com")
        assert addresses and all(a in POOL_PREFIX for a in addresses)
        # …and the edge refuses at TLS.
        with pytest.raises(TLSError):
            client.fetch("never-registered.example.com")

    def test_hosted_hostname_without_origin_404s(self, clock):
        """Registered hostname, provisioned cert, but no origin content:
        the suite answers 404/503 — not a hang, not a crash."""
        cdn, hostnames, *_ = make_policy_cdn(clock)
        cdn.registry.add_hostname(cdn.registry.customers()[0].name,
                                  "newsite.example.com")
        from repro.web.tls import Certificate
        cdn.certs.add(Certificate("newsite.example.com"))
        client = make_client(cdn, clock, "eyeball:us:0")
        outcome = client.fetch("newsite.example.com")
        assert outcome.response.status in (Status.NOT_FOUND, Status.UNAVAILABLE)

    def test_aaaa_query_refused_when_only_v4_policy(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        dc = cdn.datacenters["ashburn"]
        wire = Message.query(1, hostnames[0], RRType.AAAA).encode()
        response = Message.decode(dc.handle_dns(wire))
        assert response.flags.rcode.name == "REFUSED"

    def test_v6_pool_end_to_end(self, clock):
        """AAAA policy answering + v6 connection termination."""
        cdn, hostnames = make_cdn()
        v6_prefix = parse_prefix("2001:db8:f00::/48")
        cdn.announce_pool(v6_prefix, ports=(443,), mode=ListenMode.SK_LOOKUP)
        engine = PolicyEngine(random.Random(6))
        engine.add(Policy("v6", AddressPool(v6_prefix), ttl=30))
        cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))

        client = make_client(cdn, clock, "eyeball:us:0")
        client.rrtype = RRType.AAAA
        outcome = client.fetch(hostnames[0])
        assert outcome.response.status is Status.OK
        assert outcome.connection.remote_addr in v6_prefix
