"""The determinism lint (repro.check.determinism): rules and pragmas."""

import textwrap

from repro.check.determinism import lint_file, lint_paths


def lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_file(str(path), display=name)


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestWallClockDT001:
    def test_time_time(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            def now(): return time.time()
        """)
        assert rules_of(findings) == ["DT001"]
        assert findings[0].location == "mod.py:3"

    def test_datetime_now_and_aliased_import(self, tmp_path):
        findings = lint_source(tmp_path, """
            import datetime as dt
            import time as t
            a = dt.datetime.now()
            b = t.monotonic()
        """)
        assert rules_of(findings) == ["DT001", "DT001"]

    def test_from_import(self, tmp_path):
        findings = lint_source(tmp_path, """
            from time import perf_counter
            x = perf_counter()
        """)
        assert rules_of(findings) == ["DT001"]

    def test_sim_clock_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            def at(clock): return clock.now()
        """)
        assert findings == []


class TestUnseededRandomDT002:
    def test_module_level_functions(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            x = random.random()
            y = random.choice([1, 2])
        """)
        assert rules_of(findings) == ["DT002", "DT002"]

    def test_unseeded_constructor_flagged_seeded_ok(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            bad = random.Random()
            good = random.Random(7)
        """)
        assert rules_of(findings) == ["DT002"]
        assert findings[0].location == "mod.py:3"

    def test_system_random(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            r = random.SystemRandom()
        """)
        assert rules_of(findings) == ["DT002"]

    def test_instance_draws_are_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            import random
            def draw(rng: random.Random): return rng.random()
        """)
        assert findings == []


class TestSaltedHashDT003:
    def test_builtin_hash(self, tmp_path):
        findings = lint_source(tmp_path, """
            def bucket(name): return hash(name) % 8
        """)
        assert rules_of(findings) == ["DT003"]

    def test_stable_hash_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            from repro.hashing import stable_hash
            def bucket(name): return stable_hash(name) % 8
        """)
        assert findings == []


class TestUnorderedIterationDT004:
    def test_for_over_set_call(self, tmp_path):
        findings = lint_source(tmp_path, """
            def drain(xs):
                for x in set(xs):
                    yield x
        """)
        assert rules_of(findings) == ["DT004"]

    def test_comprehension_over_set_literal(self, tmp_path):
        findings = lint_source(tmp_path, """
            out = [x for x in {1, 2, 3}]
        """)
        assert rules_of(findings) == ["DT004"]

    def test_list_materialising_a_set(self, tmp_path):
        findings = lint_source(tmp_path, """
            def names(xs): return list(set(xs))
        """)
        assert rules_of(findings) == ["DT004"]

    def test_set_from_set_stays_orderless(self, tmp_path):
        findings = lint_source(tmp_path, """
            def dedupe(xs): return {x for x in set(xs)}
        """)
        assert findings == []

    def test_sorted_set_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            def drain(xs):
                for x in sorted(set(xs)):
                    yield x
        """)
        assert findings == []


class TestSharedStateDT005DT006:
    def test_mutable_default_argument(self, tmp_path):
        findings = lint_source(tmp_path, """
            def enqueue(item, queue=[]):
                queue.append(item)
        """)
        assert rules_of(findings) == ["DT005"]

    def test_keyword_only_default(self, tmp_path):
        findings = lint_source(tmp_path, """
            def enqueue(item, *, queue={}):
                queue[item] = True
        """)
        assert rules_of(findings) == ["DT005"]

    def test_none_default_is_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            def enqueue(item, queue=None):
                queue = queue or []
        """)
        assert findings == []

    def test_mutable_class_attribute(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Actor:
                inbox: list = []
                limit = 5
        """)
        assert rules_of(findings) == ["DT006"]

    def test_immutable_class_attributes_are_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            class Actor:
                LIMIT = 5
                NAME = "actor"
                KINDS = ("a", "b")
        """)
        assert findings == []


class TestEnvDependenceDT008:
    def test_getenv_and_environ_get(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            a = os.getenv("SEED")
            b = os.environ.get("SEED", "1")
        """)
        assert rules_of(findings) == ["DT008", "DT008"]
        assert "environment" in findings[0].message

    def test_environ_subscript(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            seed = os.environ["SEED"]
        """)
        assert rules_of(findings) == ["DT008"]
        assert findings[0].location == "mod.py:3"

    def test_urandom_draws_os_entropy(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            nonce = os.urandom(8)
        """)
        assert rules_of(findings) == ["DT008"]
        assert "entropy" in findings[0].message

    def test_justified_allow_env_pragma_suppresses(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            home = os.environ["HOME"]  # repro: allow-env CLI output dir only
        """)
        assert findings == []

    def test_unjustified_allow_env_is_dt007(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            home = os.environ["HOME"]  # repro: allow-env
        """)
        assert rules_of(findings) == ["DT007"]

    def test_rule_name_and_id_pragmas_also_match(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            a = os.getenv("A")  # repro: allow-env-dependence host override knob
            b = os.getenv("B")  # repro: allow-DT008 host override knob
        """)
        assert findings == []

    def test_unrelated_os_calls_are_fine(self, tmp_path):
        findings = lint_source(tmp_path, """
            import os
            p = os.path.join("a", "b")
            sep = os.sep
        """)
        assert findings == []


class TestPragmas:
    def test_justified_pragma_suppresses(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            t = time.time()  # repro: allow-wall-clock benchmark wants real time
        """)
        assert findings == []

    def test_rule_id_and_all_also_match(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            a = time.time()  # repro: allow-DT001 measured wall duration
            b = time.time()  # repro: allow-all this line is exempt wholesale
        """)
        assert findings == []

    def test_unjustified_pragma_flagged_dt007(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            t = time.time()  # repro: allow-wall-clock
        """)
        assert rules_of(findings) == ["DT007"]

    def test_wrong_rule_pragma_does_not_suppress(self, tmp_path):
        findings = lint_source(tmp_path, """
            import time
            t = time.time()  # repro: allow-salted-hash not the right rule
        """)
        assert rules_of(findings) == ["DT001"]


class TestFilesAndTrees:
    def test_syntax_error_is_dt000(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rules_of(findings) == ["DT000"]

    def test_lint_paths_walks_and_sorts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "pkg" / "a.py").write_text("x = hash('a')\n")
        findings = lint_paths([str(tmp_path / "pkg")])
        assert [f.rule for f in findings] == ["DT003", "DT001"]  # a.py then b.py
        assert findings[0].location.startswith("pkg/")

    def test_shipped_sources_are_clean(self):
        import os

        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        assert lint_paths([root]) == []
