"""Precheck-before-rebind integration: Deployment and HealthMonitor."""

import random

import pytest

from repro.check import CheckError, context_from_deployment, precheck_rebind
from repro.clock import Clock
from repro.core import AddressPool
from repro.core.agility import AgilityController
from repro.deploy import Deployment, DeploymentConfig
from repro.faults import HealthMonitor
from repro.netsim import parse_prefix

from conftest import BACKUP_PREFIX, POOL_PREFIX, make_policy_cdn

BOGUS = parse_prefix("198.18.0.0/24")  # never announced, never listening


@pytest.fixture(scope="module")
def deployment():
    return Deployment.build(DeploymentConfig(num_hostnames=40))


class TestDeploymentCheck:
    def test_shipped_deployment_is_clean(self, deployment):
        report = deployment.check()
        assert report.ok and report.clean

    def test_context_extraction_sees_every_layer(self, deployment):
        ctx = context_from_deployment(deployment)
        assert ctx.policies and ctx.announced and ctx.listening and ctx.programs
        assert ctx.standby_pools[0] is deployment.backup_pool
        assert ctx.service_ports == (80, 443)

    def test_precheck_rebind_flags_a_bogus_pool(self, deployment):
        report = precheck_rebind(
            deployment.cdn, deployment.engine, deployment.config.policy_name,
            AddressPool(BOGUS, name="bogus"),
        )
        assert not report.ok
        assert {f.rule for f in report.errors} >= {"CP001", "CP002"}

    def test_precheck_rebind_unknown_policy_is_loud(self, deployment):
        with pytest.raises(KeyError):
            precheck_rebind(deployment.cdn, deployment.engine, "nope",
                            AddressPool(BOGUS, name="bogus"))


class TestDeploymentManoeuvres:
    def test_legitimate_moves_pass_the_precheck(self):
        dep = Deployment.build(DeploymentConfig(num_hostnames=40,
                                                strict_checks=True))
        dep.shrink_active("192.0.2.0/24")
        dep.failover_to_backup()  # strict mode: would raise on any error

    def test_strict_mode_refuses_a_blackholing_failover(self):
        dep = Deployment.build(DeploymentConfig(num_hostnames=40,
                                                strict_checks=True))
        dep.backup_pool = AddressPool(BOGUS, name="bogus-backup")
        with pytest.raises(CheckError) as exc_info:
            dep.failover_to_backup()
        assert any(f.rule == "CP001" for f in exc_info.value.findings)
        # Refused before enacting: the policy still mints from the old pool.
        assert dep.engine.get(dep.config.policy_name).pool is dep.pool

    def test_default_mode_logs_and_proceeds(self, caplog):
        dep = Deployment.build(DeploymentConfig(num_hostnames=40))
        dep.backup_pool = AddressPool(BOGUS, name="bogus-backup")
        with caplog.at_level("WARNING", logger="repro.check"):
            dep.failover_to_backup()
        assert any("precheck" in r.message for r in caplog.records)
        assert dep.engine.get(dep.config.policy_name).pool is dep.backup_pool


class TestMonitorPrecheck:
    def _blackholed_monitor(self, clock, failover_pool, strict):
        cdn, hostnames, engine, _pool = make_policy_cdn(clock)
        cdn.announce_pool(BACKUP_PREFIX, ports=(80, 443))
        controller = AgilityController(engine, clock)
        monitor = HealthMonitor(
            cdn, clock, controller, "randomize-all",
            probe_hostname=hostnames[0],
            vantages=["eyeball:us:0"],
            failover_pool=failover_pool,
            failure_threshold=1,
            rng=random.Random(9),
            strict_checks=strict,
        )
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        return monitor

    def test_good_standby_prechecks_clean_and_swaps(self, clock):
        monitor = self._blackholed_monitor(
            clock, AddressPool(BACKUP_PREFIX, name="backup"), strict=True)
        monitor.tick()
        assert monitor.failed_over
        assert monitor.timeline.first("precheck_failed") is None

    def test_strict_mode_refuses_bogus_standby(self, clock):
        monitor = self._blackholed_monitor(
            clock, AddressPool(BOGUS, name="bogus"), strict=True)
        with pytest.raises(CheckError):
            monitor.tick()
        assert not monitor.failed_over
        event = monitor.timeline.first("precheck_failed")
        assert event is not None and event.phase == "check"

    def test_default_mode_records_and_swaps_anyway(self, clock):
        # Availability over purity: an imperfect standby still beats a
        # blackhole, so the default is to log, mark the timeline, and swap.
        monitor = self._blackholed_monitor(
            clock, AddressPool(BOGUS, name="bogus"), strict=False)
        monitor.tick()
        assert monitor.failed_over
        event = monitor.timeline.first("precheck_failed")
        assert event is not None and event.phase == "check"
