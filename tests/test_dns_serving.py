"""Authoritative server scaffolding: rcodes, stats, wire handling."""

import pytest

from repro.dns.records import A, DomainName, Question, RRClass, RRType
from repro.dns.server import (
    Answer,
    AnswerSource,
    AuthoritativeServer,
    QueryContext,
    ZoneAnswerSource,
)
from repro.dns.wire import Flags, Message, Rcode
from repro.dns.zone import Zone
from repro.netsim.addr import parse_address

CTX = QueryContext(pop="test-pop")


@pytest.fixture
def server():
    zone = Zone("example.com")
    zone.add_address("www.example.com", A(parse_address("192.0.2.1")), ttl=120)
    return AuthoritativeServer(ZoneAnswerSource([zone]))


class TestZoneAnswerSource:
    def test_most_specific_zone_wins(self):
        parent = Zone("example.com")
        child = Zone("sub.example.com")
        child.add_address("www.sub.example.com", A(parse_address("192.0.2.50")))
        source = ZoneAnswerSource([parent, child])
        zone = source.zone_for(DomainName.from_text("www.sub.example.com"))
        assert zone is child

    def test_refused_outside_all_zones(self):
        source = ZoneAnswerSource([Zone("example.com")])
        answer = source.answer(Question(DomainName.from_text("other.org"), RRType.A), CTX)
        assert answer.rcode == Rcode.REFUSED

    def test_nxdomain_carries_soa(self):
        zone = Zone("example.com")
        source = ZoneAnswerSource([zone])
        answer = source.answer(
            Question(DomainName.from_text("nope.example.com"), RRType.A), CTX
        )
        assert answer.rcode == Rcode.NXDOMAIN
        assert answer.authority and answer.authority[0].rrtype == RRType.SOA

    def test_nodata_noerror_with_soa(self):
        zone = Zone("example.com")
        zone.add_address("www.example.com", A(parse_address("192.0.2.1")))
        source = ZoneAnswerSource([zone])
        answer = source.answer(
            Question(DomainName.from_text("www.example.com"), RRType.TXT), CTX
        )
        assert answer.rcode == Rcode.NOERROR
        assert not answer.records and answer.authority

    def test_needs_zones(self):
        with pytest.raises(ValueError):
            ZoneAnswerSource([])


class TestAuthoritativeServer:
    def test_positive_answer_is_authoritative(self, server):
        query = Message.query(11, "www.example.com", RRType.A)
        response = server.handle_query(query, CTX)
        assert response.flags.qr and response.flags.aa
        assert response.id == 11
        assert response.answers[0].ttl == 120

    def test_notimp_for_unsupported_type(self, server):
        query = Message.query(1, "www.example.com", RRType.OPT)
        response = server.handle_query(query, CTX)
        assert response.flags.rcode == Rcode.NOTIMP

    def test_refused_for_chaos_class(self, server):
        q = Message(
            id=2,
            flags=Flags(),
            questions=(Question(DomainName.from_text("version.bind"), RRType.TXT, RRClass.ANY),),
        )
        # RRClass.ANY is allowed; craft a fake class via int is not possible
        # through the typed API — test the REFUSED path with qr set instead.
        response = server.handle_query(
            Message(id=3, flags=Flags(qr=True), questions=q.questions), CTX
        )
        assert response.flags.rcode == Rcode.FORMERR

    def test_query_with_no_question_formerr(self, server):
        response = server.handle_query(Message(id=4, flags=Flags()), CTX)
        assert response.flags.rcode == Rcode.FORMERR

    def test_wire_round_trip(self, server):
        raw = Message.query(5, "www.example.com", RRType.A).encode()
        out = server.handle_wire(raw, CTX)
        decoded = Message.decode(out)
        assert decoded.flags.rcode == Rcode.NOERROR
        assert str(decoded.answers[0].rdata.address) == "192.0.2.1"

    def test_garbage_wire_dropped(self, server):
        assert server.handle_wire(b"\x01\x02", CTX) is None
        assert server.stats.formerr_drops == 1

    def test_stats_accumulate(self, server):
        for i in range(3):
            server.handle_wire(Message.query(i, "www.example.com", RRType.A).encode(), CTX)
        server.handle_wire(Message.query(9, "no.example.com", RRType.A).encode(), CTX)
        assert server.stats.queries == 4
        assert server.stats.by_rcode[Rcode.NOERROR] == 3
        assert server.stats.by_rcode[Rcode.NXDOMAIN] == 1
        assert server.stats.by_type[RRType.A] == 4

    def test_custom_source_plugs_in(self):
        class FixedSource(AnswerSource):
            def answer(self, question, context):
                from repro.dns.records import ResourceRecord
                record = ResourceRecord(question.name, A(parse_address("203.0.113.5")), 1)
                return Answer(Rcode.NOERROR, records=(record,))

        server = AuthoritativeServer(FixedSource())
        out = server.handle_query(Message.query(1, "anything.at.all", RRType.A), CTX)
        assert str(out.answers[0].rdata.address) == "203.0.113.5"
