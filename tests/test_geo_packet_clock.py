"""Small substrate pieces: geography, packets, the simulated clock."""

import pytest

from repro.clock import Clock
from repro.netsim.geo import WELL_KNOWN_CITIES, GeoPoint, great_circle_km, propagation_rtt_ms
from repro.netsim.packet import FiveTuple, FlowRecord, Packet, Protocol
from repro.netsim.addr import parse_address


class TestGeo:
    def test_distance_symmetric(self):
        a, b = WELL_KNOWN_CITIES["london"], WELL_KNOWN_CITIES["newyork"]
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_london_newyork_distance_plausible(self):
        km = great_circle_km(WELL_KNOWN_CITIES["london"], WELL_KNOWN_CITIES["newyork"])
        assert 5300 < km < 5800

    def test_zero_distance(self):
        a = WELL_KNOWN_CITIES["tokyo"]
        assert great_circle_km(a, a) == 0.0

    def test_rtt_monotone_in_distance(self):
        ash = WELL_KNOWN_CITIES["ashburn"]
        chi = WELL_KNOWN_CITIES["chicago"]
        syd = WELL_KNOWN_CITIES["sydney"]
        assert propagation_rtt_ms(ash, chi) < propagation_rtt_ms(ash, syd)

    def test_rtt_includes_hop_cost(self):
        a = WELL_KNOWN_CITIES["paris"]
        assert propagation_rtt_ms(a, a, hops=4) > 0

    def test_bad_coordinates_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint("x", 91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint("x", 0.0, 181.0)


class TestPacket:
    def make_tuple(self, proto=Protocol.TCP):
        return FiveTuple(
            proto,
            parse_address("10.0.0.1"), 4000,
            parse_address("192.0.2.1"), 443,
        )

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            FiveTuple(Protocol.TCP, parse_address("10.0.0.1"), 70000,
                      parse_address("192.0.2.1"), 443)

    def test_reversed(self):
        t = self.make_tuple()
        r = t.reversed()
        assert (r.src, r.src_port, r.dst, r.dst_port) == (t.dst, t.dst_port, t.src, t.src_port)
        assert r.reversed() == t

    def test_quic_wire_protocol_is_udp(self):
        assert Protocol.QUIC.wire_protocol is Protocol.UDP
        assert Protocol.TCP.wire_protocol is Protocol.TCP

    def test_packet_accessors(self):
        p = Packet(self.make_tuple(), payload_len=120, syn=True)
        assert p.dst == parse_address("192.0.2.1")
        assert p.dst_port == 443 and p.src_port == 4000
        assert p.syn

    def test_flow_record_accumulates(self):
        rec = FlowRecord(self.make_tuple())
        rec.add_request("a.example.com", 100)
        rec.add_request("b.example.com", 200)
        assert rec.requests == 2 and rec.bytes == 300
        assert rec.hostnames == {"a.example.com", "b.example.com"}


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_advance(self):
        c = Clock()
        assert c.advance(5.0) == 5.0
        assert c.now() == 5.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)

    def test_advance_to(self):
        c = Clock(10.0)
        c.advance_to(12.5)
        assert c.now() == 12.5
        with pytest.raises(ValueError):
            c.advance_to(1.0)
