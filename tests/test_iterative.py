"""Iterative resolution: root → TLD → authoritative, with the policy engine
at the bottom of the delegation chain.
"""

import random

import pytest

from repro.clock import Clock
from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns.iterative import IterativeResolver, ServerDirectory
from repro.dns.records import A, NS, DomainName, ResourceRecord, RRType
from repro.dns.resolver import ResolveError
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.wire import Message, Rcode
from repro.dns.zone import Zone
from repro.edge.customers import AccountType, Customer, CustomerRegistry
from repro.netsim.addr import parse_address, parse_prefix

POOL = parse_prefix("192.0.2.0/24")
ROOT_IP = parse_address("198.41.0.4")
TLD_IP = parse_address("192.5.6.30")
CDN_NS_IP = parse_address("198.51.100.53")
CTX = QueryContext(pop="dc1")


def name(text):
    return DomainName.from_text(text)


def build_tree(policy_backend=False, glueless=False):
    """root. → com. → example.com., the last served by zone or policy."""
    directory = ServerDirectory()

    root_zone = Zone(".")
    root_zone.add_record(ResourceRecord(name("com"), NS(name("a.gtld-servers.net")), 172800))
    root_zone.add_record(ResourceRecord(name("net"), NS(name("a.gtld-servers.net")), 172800))
    # Glue for the TLD server (it lives under net., also delegated to it —
    # the classic in-bailiwick glue situation).
    root_zone.add_record(ResourceRecord(name("a.gtld-servers.net"), A(TLD_IP), 172800))
    directory.register(ROOT_IP, lambda w: AuthoritativeServer(
        ZoneAnswerSource([root_zone]), "root").handle_wire(w, CTX))

    tld_zone = Zone("com")
    net_zone = Zone("net")
    net_zone.add_record(ResourceRecord(name("a.gtld-servers.net"), A(TLD_IP), 86400))
    if glueless:
        # Delegation to an out-of-bailiwick NS: no glue possible in com.;
        # the resolver must separately resolve ns1.cdnprovider.net.
        tld_zone.add_record(
            ResourceRecord(name("example.com"), NS(name("ns1.cdnprovider.net")), 86400)
        )
        net_zone.add_record(ResourceRecord(name("ns1.cdnprovider.net"), A(CDN_NS_IP), 86400))
    else:
        tld_zone.add_record(
            ResourceRecord(name("example.com"), NS(name("ns1.cdn.example.com")), 86400)
        )
        tld_zone.add_record(ResourceRecord(name("ns1.cdn.example.com"), A(CDN_NS_IP), 86400))
    directory.register(TLD_IP, lambda w: AuthoritativeServer(
        ZoneAnswerSource([tld_zone, net_zone]), "tld").handle_wire(w, CTX))

    if policy_backend:
        registry = CustomerRegistry()
        registry.add(Customer("acme", AccountType.FREE, {"www.example.com"}))
        engine = PolicyEngine(random.Random(5))
        engine.add(Policy("agile", AddressPool(POOL), ttl=30))
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("ns1.cdn.example.com"), A(CDN_NS_IP), 300))
        source = PolicyAnswerSource(engine, registry, fallback=ZoneAnswerSource([zone]))
    else:
        zone = Zone("example.com")
        zone.add_address("www.example.com", A(parse_address("192.0.2.80")), ttl=300)
        zone.add_record(ResourceRecord(name("ns1.cdn.example.com"), A(CDN_NS_IP), 300))
        source = ZoneAnswerSource([zone])
    directory.register(CDN_NS_IP, lambda w: AuthoritativeServer(
        source, "cdn").handle_wire(w, CTX))
    return directory


def make_resolver(directory, clock=None):
    return IterativeResolver(
        "iter", clock or Clock(), directory, [ROOT_IP], rng=random.Random(1)
    )


class TestReferralServing:
    def test_parent_returns_referral_not_answer(self):
        directory = build_tree()
        raw = directory.send(ROOT_IP, Message.query(1, "www.example.com", RRType.A).encode())
        response = Message.decode(raw)
        assert response.flags.rcode == Rcode.NOERROR
        assert not response.flags.aa          # referrals are not authoritative
        assert not response.answers
        assert any(r.rrtype == RRType.NS for r in response.authority)
        assert any(r.rrtype == RRType.A for r in response.additional)  # glue

    def test_apex_ns_is_not_a_referral(self):
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("example.com"), NS(name("ns1.example.com")), 300))
        zone.add_address("www.example.com", A(parse_address("192.0.2.1")), ttl=60)
        server = AuthoritativeServer(ZoneAnswerSource([zone]))
        response = server.handle_query(Message.query(1, "www.example.com", RRType.A), CTX)
        assert response.flags.aa and response.answers


class TestIteration:
    def test_full_walk_resolves(self):
        directory = build_tree()
        resolver = make_resolver(directory)
        addresses = resolver.resolve_addresses("www.example.com")
        assert addresses == [parse_address("192.0.2.80")]
        assert resolver.stats.referrals_followed >= 2  # root→com, com→example

    def test_delegations_cached_second_lookup_short(self):
        directory = build_tree()
        resolver = make_resolver(directory)
        resolver.resolve("www.example.com")
        sent_before = resolver.stats.queries_sent
        resolver.cache.flush(name("www.example.com"))
        resolver.resolve("www.example.com")
        # Second resolution reuses cached NS chain: exactly one query.
        assert resolver.stats.queries_sent == sent_before + 1

    def test_policy_engine_behind_delegation(self):
        """The paper's serving path at the bottom of real iteration:
        per-query random addresses arrive through root+TLD referrals."""
        directory = build_tree(policy_backend=True)
        resolver = make_resolver(directory)
        a1 = resolver.resolve_addresses("www.example.com")
        resolver.cache.flush(name("www.example.com"))
        a2 = resolver.resolve_addresses("www.example.com")
        assert a1 and a2
        assert all(a in POOL for a in a1 + a2)

    def test_glueless_delegation_resolved(self):
        directory = build_tree(glueless=True)
        resolver = make_resolver(directory)
        addresses = resolver.resolve_addresses("www.example.com")
        assert addresses == [parse_address("192.0.2.80")]
        assert resolver.stats.glue_misses_resolved >= 1

    def test_nxdomain_from_authoritative(self):
        directory = build_tree()
        resolver = make_resolver(directory)
        with pytest.raises(ResolveError) as exc:
            resolver.resolve("missing.example.com")
        assert exc.value.rcode == Rcode.NXDOMAIN

    def test_unreachable_root_fails_cleanly(self):
        resolver = IterativeResolver(
            "iter", Clock(), ServerDirectory(), [ROOT_IP], rng=random.Random(1)
        )
        with pytest.raises(ResolveError):
            resolver.resolve("www.example.com")
        assert resolver.stats.timeouts >= 1

    def test_needs_root_hints(self):
        with pytest.raises(ValueError):
            IterativeResolver("iter", Clock(), ServerDirectory(), [])

    def test_ttl_expiry_forces_rewalk(self):
        clock = Clock()
        directory = build_tree()
        resolver = make_resolver(directory, clock)
        resolver.resolve("www.example.com")
        clock.advance(400)  # past the leaf's 300s TTL, delegations live on
        sent_before = resolver.stats.queries_sent
        resolver.resolve("www.example.com")
        assert resolver.stats.queries_sent == sent_before + 1
