"""ECMP router, L4 load balancer, distributed cache, customer registry."""

import pytest

from repro.edge.cache import DistributedCache
from repro.edge.customers import AccountType, Customer, CustomerRegistry
from repro.edge.ecmp import ECMPRouter, UnknownServerError
from repro.edge.l4lb import L4LoadBalancer
from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Packet, Protocol
from repro.web.http import Request, Status
from repro.web.origin import OriginPool, OriginServer, fixed_size


def packet(sport=40000, dst="192.0.2.1"):
    return Packet(FiveTuple(
        Protocol.TCP, parse_address("198.51.100.9"), sport, parse_address(dst), 443,
    ))


class TestECMP:
    def test_deterministic_per_flow(self):
        router = ECMPRouter([f"s{i}" for i in range(8)])
        assert all(router.route(packet(sport=5000)) == router.route(packet(sport=5000))
                   for _ in range(5))

    def test_spreads_flows(self):
        router = ECMPRouter([f"s{i}" for i in range(8)])
        for i in range(4000):
            router.route(packet(sport=10000 + i))
        counts = router.stats.per_server
        assert len(counts) == 8
        expected = 4000 / 8
        for c in counts.values():
            assert abs(c - expected) < 5 * (expected ** 0.5)

    def test_minimal_disruption_on_server_add(self):
        """Consistent hashing: adding a server moves ~1/n of flows."""
        servers = [f"s{i}" for i in range(8)]
        before = ECMPRouter(servers)
        after = ECMPRouter(servers + ["s8"])
        moved = sum(
            1 for i in range(4000)
            if before.route(packet(sport=10000 + i)) != after.route(packet(sport=10000 + i))
        )
        assert 4000 / 9 * 0.5 < moved < 4000 / 9 * 1.6

    def test_destination_address_agnostic_balance(self):
        """§4.3: ECMP complexity is about servers, not pool addresses —
        balance holds whether flows target 1 address or 256."""
        pool = parse_prefix("192.0.2.0/24")
        one, many = ECMPRouter(["a", "b", "c", "d"]), ECMPRouter(["a", "b", "c", "d"])
        for i in range(2000):
            one.route(packet(sport=10000 + i, dst="192.0.2.1"))
            many.route(packet(sport=10000 + i, dst=str(pool.address_at(i % 256))))
        for router in (one, many):
            for c in router.stats.per_server.values():
                assert abs(c - 500) < 5 * (500 ** 0.5)

    def test_empty_group_raises(self):
        with pytest.raises(RuntimeError):
            ECMPRouter().route(packet())

    def test_duplicate_server_rejected(self):
        router = ECMPRouter(["a"])
        with pytest.raises(ValueError):
            router.add_server("a")

    def test_remove_server(self):
        router = ECMPRouter(["a", "b"])
        router.remove_server("a")
        assert router.servers() == ["b"]

    def test_remove_absent_server_raises_typed_error(self):
        """Bugfix: removing an unknown member used to surface as a bare
        ``ValueError`` from ``list.remove`` — now a typed, catchable
        error naming the group."""
        router = ECMPRouter(["a", "b"])
        router.route(packet(sport=1))
        with pytest.raises(UnknownServerError) as exc:
            router.remove_server("zz")
        assert "zz" in str(exc.value)
        assert isinstance(exc.value, LookupError)
        # The failed remove must leave membership and stats untouched.
        assert router.servers() == ["a", "b"]
        assert router.stats.routed == 1
        router.route(packet(sport=2))  # still routable
        assert router.stats.routed == 2

    def test_weight_ties_break_on_name_not_list_position(self):
        """Bugfix: HRW ties used to break on list position (``max`` keeps
        the earliest element), so insertion order leaked into routing.  A
        degenerate weight function makes every flow a tie: the winner must
        be the max server *name*, whatever order members joined in."""
        tied = lambda server, fh: 0  # noqa: E731
        for order in (["a", "b", "c"], ["c", "b", "a"], ["b", "c", "a"]):
            router = ECMPRouter(list(order), weight_fn=tied)
            assert router.route(packet(sport=7)) == "c", order

    def test_tied_flows_stable_across_drain_and_restore(self):
        """Drain a server and re-add it (failover's remove-then-restore):
        with position-dependent tie-breaks the restored member re-enters at
        the tail and every tied flow silently rehomes."""
        tied = lambda server, fh: 0  # noqa: E731
        router = ECMPRouter(["a", "b", "c"], weight_fn=tied)
        before = router.route(packet(sport=9))
        router.remove_server("a")
        router.add_server("a")  # now last in the member list
        assert router.route(packet(sport=9)) == before

    def test_minimal_remap_after_membership_churn(self):
        """Rendezvous hashing's contract under churn: removing one server
        remaps exactly that server's flows, and restoring it brings every
        flow back to its original home — zero collateral movement."""
        servers = [f"s{i}" for i in range(8)]
        router = ECMPRouter(list(servers))
        flows = [packet(sport=10000 + i) for i in range(2000)]
        original = {f.tuple5.src_port: router.route(f) for f in flows}
        displaced = {p for p, s in original.items() if s == "s3"}
        assert displaced  # the drained server owned some flows

        router.remove_server("s3")
        during = {f.tuple5.src_port: router.route(f) for f in flows}
        moved = {p for p in original if during[p] != original[p]}
        assert moved == displaced  # only s3's flows moved, all of them

        router.add_server("s3")  # restored at a different list position
        after = {f.tuple5.src_port: router.route(f) for f in flows}
        assert after == original  # every flow back where it started


class TestL4LB:
    def test_new_flow_follows_ecmp(self):
        lb = L4LoadBalancer()
        assert lb.admit(packet(sport=1), "s3") == "s3"
        assert lb.stats.new_flows == 1

    def test_established_flow_pinned_despite_ecmp_change(self):
        lb = L4LoadBalancer()
        p = packet(sport=2)
        lb.admit(p, "s1")
        assert lb.admit(p, "s9") == "s1"  # rehomed by ECMP, pinned by L4LB
        assert lb.stats.rehomed == 1

    def test_conclude_releases(self):
        lb = L4LoadBalancer()
        p = packet(sport=3)
        lb.admit(p, "s1")
        lb.conclude(p.tuple5)
        assert lb.tracked_flows() == 0
        assert lb.admit(p, "s2") == "s2"

    def test_table_size_tracks_flows_not_addresses(self):
        pool = parse_prefix("192.0.2.0/24")
        lb = L4LoadBalancer()
        for i in range(100):
            lb.admit(packet(sport=5000 + i, dst=str(pool.address_at(i))), "s1")
        assert lb.tracked_flows() == 100


def make_cache(nodes=3, capacity=10_000):
    origins = OriginPool()
    origins.add(OriginServer("o", {"a.example.com", "b.example.com"}, fixed_size(100)))
    cache = DistributedCache(origins, node_capacity_bytes=capacity)
    for i in range(nodes):
        cache.add_node(f"n{i}")
    return cache


class TestDistributedCache:
    def test_miss_then_hit(self):
        cache = make_cache()
        r1 = cache.fetch(Request("a.example.com", "/x"))
        r2 = cache.fetch(Request("a.example.com", "/x"))
        assert not r1.cache_hit and r2.cache_hit
        assert r1.served_by == r2.served_by  # same home node

    def test_home_node_stable(self):
        cache = make_cache()
        key = ("a.example.com", "/y")
        assert all(cache.home_node(key).name == cache.home_node(key).name for _ in range(5))

    def test_keys_spread_over_nodes(self):
        cache = make_cache(nodes=4)
        homes = {cache.home_node(("a.example.com", f"/p{i}")).name for i in range(200)}
        assert len(homes) == 4

    def test_unknown_hostname_passes_through_unavailable(self):
        cache = make_cache()
        assert cache.fetch(Request("zzz.example.com")).status is Status.UNAVAILABLE

    def test_lru_eviction(self):
        cache = make_cache(nodes=1, capacity=250)  # fits 2 objects of 100
        cache.fetch(Request("a.example.com", "/1"))
        cache.fetch(Request("a.example.com", "/2"))
        cache.fetch(Request("a.example.com", "/1"))  # touch /1
        cache.fetch(Request("a.example.com", "/3"))  # evicts /2
        node = cache.nodes()["n0"]
        assert node.stats.evictions == 1
        assert cache.fetch(Request("a.example.com", "/1")).cache_hit
        assert not cache.fetch(Request("a.example.com", "/2")).cache_hit

    def test_hit_rate(self):
        cache = make_cache()
        cache.fetch(Request("a.example.com", "/x"))
        cache.fetch(Request("a.example.com", "/x"))
        assert cache.total_hit_rate() == 0.5

    def test_duplicate_node_rejected(self):
        cache = make_cache()
        with pytest.raises(ValueError):
            cache.add_node("n0")

    def test_no_nodes_raises(self):
        origins = OriginPool()
        cache = DistributedCache(origins)
        with pytest.raises(RuntimeError):
            cache.fetch(Request("a.example.com"))


class TestCustomerRegistry:
    def test_lookup_by_hostname(self):
        registry = CustomerRegistry()
        registry.add(Customer("acme", AccountType.PRO, {"a.example.com"}))
        assert registry.account_type_for("A.EXAMPLE.COM.") is AccountType.PRO
        assert registry.customer_for("b.example.com") is None
        assert registry.is_hosted("a.example.com")

    def test_duplicate_customer_rejected(self):
        registry = CustomerRegistry()
        registry.add(Customer("acme", AccountType.PRO, set()))
        with pytest.raises(ValueError):
            registry.add(Customer("acme", AccountType.FREE, set()))

    def test_hostname_collision_rejected(self):
        registry = CustomerRegistry()
        registry.add(Customer("a", AccountType.PRO, {"x.example.com"}))
        with pytest.raises(ValueError):
            registry.add(Customer("b", AccountType.FREE, {"x.example.com"}))

    def test_add_hostname_later(self):
        registry = CustomerRegistry()
        registry.add(Customer("a", AccountType.PRO, set()))
        registry.add_hostname("a", "new.example.com")
        assert registry.is_hosted("new.example.com")
        assert registry.hostname_count() == 1

    def test_certificate_minting(self):
        customer = Customer("a", AccountType.PRO, {f"h{i}.example.com" for i in range(5)})
        cert = customer.make_certificate()
        assert all(cert.covers(h) for h in customer.hostnames)

    def test_certificate_san_cap(self):
        customer = Customer("a", AccountType.PRO, {f"h{i:03d}.example.com" for i in range(150)})
        cert = customer.make_certificate(max_san=100)
        assert len(cert.names()) == 101  # subject + 100 SANs
        covered = sum(1 for h in customer.hostnames if cert.covers(h))
        assert covered == 101

    def test_empty_customer_cert_rejected(self):
        with pytest.raises(ValueError):
            Customer("a", AccountType.PRO, set()).make_certificate()
