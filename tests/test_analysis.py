"""Analysis tools: load distributions, AD test, reporting."""

import numpy as np
import pytest

from repro.analysis.loadstats import LoadDistribution, pool_load, spread_orders
from repro.analysis.reporting import ExperimentRecord, TextTable, format_quantity
from repro.analysis.stats import anderson_darling_2sample, cdf_at, ecdf
from repro.core.pool import AddressPool
from repro.edge.datacenter import TrafficLog
from repro.netsim.addr import parse_prefix


class TestLoadDistribution:
    def test_uniform_has_zero_spread(self):
        dist = LoadDistribution.from_counts([100] * 50)
        assert dist.spread_orders_of_magnitude == 0.0
        assert dist.max_min_factor == 1.0
        assert dist.gini == pytest.approx(0.0, abs=1e-9)
        assert dist.cv == 0.0

    def test_heavy_tail_spread(self):
        counts = [10**6, 10**3, 10**2, 10, 1]
        dist = LoadDistribution.from_counts(counts)
        assert dist.spread_orders_of_magnitude == pytest.approx(6.0)
        assert dist.max_min_factor == pytest.approx(1e6)

    def test_zeros_excluded_from_spread(self):
        dist = LoadDistribution.from_counts([1000, 10, 0, 0])
        assert dist.spread_orders_of_magnitude == pytest.approx(2.0)
        assert dist.zeros == 2
        assert dist.loaded_addresses == 2

    def test_gini_extremes(self):
        concentrated = LoadDistribution.from_counts([100] + [0] * 99)
        assert concentrated.gini > 0.95

    def test_head_share(self):
        dist = LoadDistribution.from_counts([70, 20, 10])
        assert dist.head_share(1) == pytest.approx(0.7)
        assert dist.head_share(3) == pytest.approx(1.0)

    def test_percentile_and_summary(self):
        dist = LoadDistribution.from_counts(range(101))
        assert dist.percentile(50) == pytest.approx(50)
        summary = dist.summary()
        assert summary["addresses"] == 101
        assert summary["max"] == 100

    def test_empty(self):
        dist = LoadDistribution.from_counts([])
        assert dist.total == 0 and dist.mean == 0 and dist.gini == 0

    def test_spread_orders_helper(self):
        assert spread_orders([1, 10, 100]) == pytest.approx(2.0)
        assert spread_orders([0, 0]) == 0.0


class TestPoolLoad:
    def test_unhit_addresses_counted_as_zero(self):
        pool = AddressPool(parse_prefix("192.0.2.0/28"))  # 16 addresses
        log = TrafficLog()
        log.record_request(pool.address_at(0), 100)
        log.record_request(pool.address_at(0), 100)
        log.record_request(pool.address_at(5), 50)
        dist = pool_load(log, pool, "requests")
        assert len(dist.sorted_desc) == 16
        assert dist.zeros == 14
        assert dist.sorted_desc[0] == 2.0

    def test_bytes_metric(self):
        pool = AddressPool(parse_prefix("192.0.2.0/30"))
        log = TrafficLog()
        log.record_request(pool.address_at(1), 12345)
        dist = pool_load(log, pool, "bytes")
        assert dist.sorted_desc[0] == 12345.0

    def test_unknown_metric_rejected(self):
        pool = AddressPool(parse_prefix("192.0.2.0/30"))
        with pytest.raises(ValueError):
            pool_load(TrafficLog(), pool, "sandwiches")


class TestAndersonDarling:
    def test_same_distribution_not_rejected(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 400)
        b = rng.normal(0, 1, 400)
        result = anderson_darling_2sample(a, b)
        assert not result.rejects_same_population(0.001)

    def test_different_distributions_rejected(self):
        """The Figure 8 reporting shape: AD far above the 0.001 critical."""
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 500)
        b = rng.normal(3, 1, 500)
        result = anderson_darling_2sample(a, b)
        assert result.rejects_same_population(0.001)
        assert "rejected" in result.report(0.001)

    def test_critical_value_for_0001_matches_paper_constant(self):
        """The paper cites ADcrit = 6.546 at α=0.001 — scipy's table."""
        rng = np.random.default_rng(3)
        result = anderson_darling_2sample(rng.random(100), rng.random(100))
        assert result.critical_at(0.001) == pytest.approx(6.546, abs=0.01)

    def test_unknown_level_rejected(self):
        rng = np.random.default_rng(3)
        result = anderson_darling_2sample(rng.random(50), rng.random(50))
        with pytest.raises(ValueError):
            result.critical_at(0.42)

    def test_small_samples_rejected(self):
        with pytest.raises(ValueError):
            anderson_darling_2sample([1.0], [2.0, 3.0])


class TestECDF:
    def test_ecdf_shape(self):
        x, y = ecdf([3, 1, 2])
        assert list(x) == [1, 2, 3]
        assert list(y) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        values = [1, 2, 3, 4]
        assert cdf_at(values, 2) == 0.5
        assert cdf_at(values, 0) == 0.0
        assert cdf_at([], 5) == 0.0


class TestReporting:
    def test_format_quantity(self):
        assert format_quantity(1_234_567) == "1.2M"
        assert format_quantity(999) == "999"
        assert format_quantity(2_500) == "2.5K"
        assert format_quantity(3.25e9) == "3.2G"
        assert format_quantity(-1500) == "-1.5K"
        assert format_quantity(float("nan")) == "nan"

    def test_table_renders(self):
        table = TextTable("Demo", ["col1", "column2"])
        table.add_row("a", 123)
        out = table.render()
        assert "Demo" in out and "col1" in out and "123" in out

    def test_table_row_width_checked(self):
        table = TextTable("Demo", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_table_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable("x", [])

    def test_experiment_record(self):
        record = ExperimentRecord("E1", "Figure 7a", "spread 4-6 orders")
        record.set("spread", 5.2)
        record.verdict(True, "within band")
        out = record.render()
        assert "HOLDS" in out and "5.2" in out and "within band" in out
