"""Browser client behaviour against a controllable fake edge."""

import pytest

from repro.clock import Clock
from repro.dns.records import A
from repro.dns.resolver import RecursiveResolver, ResolveError
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.stub import StubResolver
from repro.dns.zone import RRSelection, Zone
from repro.netsim.addr import IPAddress, parse_address
from repro.web.client import BrowserClient
from repro.web.http import Connection, HTTPVersion, Request, Response, Status
from repro.web.tls import Certificate, ClientHello


class FakeEdge:
    """An EdgeTransport that accepts everything and logs calls."""

    def __init__(self, cert: Certificate):
        self.cert = cert
        self.handshakes: list[IPAddress] = []
        self.requests: list[Request] = []

    def handshake(self, client_name, dst, port, hello: ClientHello, version):
        self.handshakes.append(dst)
        return Connection(
            version=version, remote_addr=dst, remote_port=port,
            certificate=self.cert, sni=hello.sni,
        )

    def serve(self, connection, request):
        self.requests.append(request)
        return Response(Status.OK, body_len=42, served_by="fake")


def make_stub(clock, hostnames_to_addrs: dict[str, list[str]], ttl=300):
    zone = Zone("example.com", selection=RRSelection.ALL)
    for hostname, addrs in hostnames_to_addrs.items():
        for addr in addrs:
            zone.add_address(hostname, A(parse_address(addr)), ttl=ttl)
    server = AuthoritativeServer(ZoneAnswerSource([zone]))
    recursive = RecursiveResolver(
        "r", clock, transport=lambda w: server.handle_wire(w, QueryContext(pop="p"))
    )
    return StubResolver("s", clock, recursive)


SHARED_CERT = Certificate("a.example.com", ("b.example.com", "c.example.com"))


class TestFetch:
    def test_first_fetch_dials(self):
        clock = Clock()
        stub = make_stub(clock, {"a.example.com": ["192.0.2.1"]})
        edge = FakeEdge(SHARED_CERT)
        client = BrowserClient("c", stub, edge)
        outcome = client.fetch("a.example.com")
        assert outcome.response.status is Status.OK
        assert not outcome.coalesced
        assert edge.handshakes == [parse_address("192.0.2.1")]

    def test_h2_coalesces_on_same_address(self):
        clock = Clock()
        stub = make_stub(clock, {
            "a.example.com": ["192.0.2.1"],
            "b.example.com": ["192.0.2.1"],
        })
        edge = FakeEdge(SHARED_CERT)
        client = BrowserClient("c", stub, edge, version=HTTPVersion.H2)
        client.fetch("a.example.com")
        outcome = client.fetch("b.example.com")
        assert outcome.coalesced
        assert client.stats.connections_opened == 1
        assert client.stats.coalesced_requests == 1

    def test_h2_does_not_coalesce_on_different_address(self):
        clock = Clock()
        stub = make_stub(clock, {
            "a.example.com": ["192.0.2.1"],
            "b.example.com": ["192.0.2.2"],
        })
        edge = FakeEdge(SHARED_CERT)
        client = BrowserClient("c", stub, edge)
        client.fetch("a.example.com")
        outcome = client.fetch("b.example.com")
        assert not outcome.coalesced
        assert client.stats.connections_opened == 2

    def test_h2_does_not_coalesce_outside_cert(self):
        clock = Clock()
        stub = make_stub(clock, {
            "a.example.com": ["192.0.2.1"],
            "z.example.com": ["192.0.2.1"],
        })
        edge = FakeEdge(SHARED_CERT)  # cert covers a, b, c — not z
        client = BrowserClient("c", stub, edge)
        client.fetch("a.example.com")
        outcome = client.fetch("z.example.com")
        assert not outcome.coalesced

    def test_h3_coalesces_across_addresses(self):
        clock = Clock()
        stub = make_stub(clock, {
            "a.example.com": ["192.0.2.1"],
            "b.example.com": ["192.0.2.77"],
        })
        edge = FakeEdge(SHARED_CERT)
        client = BrowserClient("c", stub, edge, version=HTTPVersion.H3)
        client.fetch("a.example.com")
        outcome = client.fetch("b.example.com")
        assert outcome.coalesced
        # h3 coalescing needs no DNS answer at all for the new authority.
        assert client.stats.connections_opened == 1

    def test_h1_reuses_same_authority_only(self):
        clock = Clock()
        stub = make_stub(clock, {
            "a.example.com": ["192.0.2.1"],
            "b.example.com": ["192.0.2.1"],
        })
        edge = FakeEdge(SHARED_CERT)
        client = BrowserClient("c", stub, edge, version=HTTPVersion.H1)
        client.fetch("a.example.com")
        client.fetch("a.example.com")
        client.fetch("b.example.com")
        assert client.stats.connections_opened == 2
        assert client.stats.coalesced_requests == 0

    def test_pool_cap_evicts_least_used(self):
        clock = Clock()
        mapping = {f"h{i}.example.com": [f"192.0.2.{i + 1}"] for i in range(5)}
        stub = make_stub(clock, mapping)
        cert = Certificate("h0.example.com", tuple(mapping)[1:])
        edge = FakeEdge(cert)
        client = BrowserClient("c", stub, edge, max_connections=3)
        for hostname in mapping:
            client.fetch(hostname)
        assert len(client.open_connections()) <= 3

    def test_close_all(self):
        clock = Clock()
        stub = make_stub(clock, {"a.example.com": ["192.0.2.1"]})
        client = BrowserClient("c", stub, FakeEdge(SHARED_CERT))
        client.fetch("a.example.com")
        client.close_all()
        assert client.open_connections() == []

    def test_nxdomain_propagates(self):
        clock = Clock()
        stub = make_stub(clock, {"a.example.com": ["192.0.2.1"]})
        client = BrowserClient("c", stub, FakeEdge(SHARED_CERT))
        with pytest.raises(ResolveError):
            client.fetch("missing.example.com")

    def test_dns_lookup_counting(self):
        clock = Clock()
        stub = make_stub(clock, {"a.example.com": ["192.0.2.1"]}, ttl=300)
        client = BrowserClient("c", stub, FakeEdge(SHARED_CERT))
        client.fetch("a.example.com")
        client.fetch("a.example.com")
        assert client.stats.dns_lookups == 1  # second resolution from stub cache
