"""Address and prefix algebra: the foundation of the §3.2 mechanism."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.addr import (
    AddressFamilyError,
    IPAddress,
    IPv4,
    IPv6,
    Prefix,
    parse_address,
    parse_prefix,
)


class TestIPAddress:
    def test_parse_v4(self):
        a = parse_address("192.0.2.1")
        assert a.family == IPv4
        assert a.value == (192 << 24) | (2 << 8) | 1

    def test_parse_v6(self):
        a = parse_address("2001:db8::1")
        assert a.family == IPv6
        assert a.value == (0x20010DB8 << 96) | 1

    def test_round_trip_text(self):
        for text in ("0.0.0.0", "255.255.255.255", "10.1.2.3", "2001:db8::ff", "::1"):
            assert str(parse_address(text)) == text

    def test_value_range_enforced(self):
        with pytest.raises(ValueError):
            IPAddress(IPv4, 1 << 32)
        with pytest.raises(ValueError):
            IPAddress(IPv4, -1)

    def test_unknown_family_rejected(self):
        with pytest.raises(AddressFamilyError):
            IPAddress(5, 0)

    def test_ordering_within_family(self):
        a, b = parse_address("10.0.0.1"), parse_address("10.0.0.2")
        assert a < b and a <= b and not b < a

    def test_packed_round_trip_v4(self):
        a = parse_address("198.51.100.7")
        assert IPAddress.from_packed(a.packed()) == a
        assert len(a.packed()) == 4

    def test_packed_round_trip_v6(self):
        a = parse_address("2001:db8::42")
        assert IPAddress.from_packed(a.packed()) == a
        assert len(a.packed()) == 16

    def test_packed_bad_length(self):
        with pytest.raises(ValueError):
            IPAddress.from_packed(b"\x01\x02\x03")

    def test_hashable_and_equal(self):
        assert parse_address("10.0.0.1") == IPAddress.v4((10 << 24) | 1)
        assert len({parse_address("10.0.0.1"), parse_address("10.0.0.1")}) == 1


class TestPrefix:
    def test_parse(self):
        p = parse_prefix("192.0.2.0/24")
        assert (p.family, p.length, p.num_addresses) == (IPv4, 24, 256)

    def test_strict_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            parse_prefix("192.0.2.1/24")

    def test_host_bits_rejected_in_constructor(self):
        with pytest.raises(ValueError):
            Prefix(IPv4, 1, 24)

    def test_of_masks_host_bits(self):
        p = Prefix.of(parse_address("192.0.2.77"), 24)
        assert p == parse_prefix("192.0.2.0/24")

    def test_host_prefix(self):
        p = Prefix.host(parse_address("192.0.2.77"))
        assert p.length == 32 and p.num_addresses == 1

    def test_contains_address(self):
        p = parse_prefix("192.0.2.0/24")
        assert parse_address("192.0.2.0") in p
        assert parse_address("192.0.2.255") in p
        assert parse_address("192.0.3.0") not in p

    def test_contains_is_family_aware(self):
        p = parse_prefix("192.0.2.0/24")
        assert parse_address("2001:db8::1") not in p

    def test_contains_subprefix(self):
        p20 = parse_prefix("10.0.0.0/20")
        assert parse_prefix("10.0.4.0/24") in p20
        assert parse_prefix("10.0.0.0/16") not in p20

    def test_overlaps(self):
        a = parse_prefix("10.0.0.0/20")
        b = parse_prefix("10.0.8.0/24")
        c = parse_prefix("10.1.0.0/24")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_first_last(self):
        p = parse_prefix("192.0.2.0/30")
        assert str(p.first) == "192.0.2.0"
        assert str(p.last) == "192.0.2.3"

    def test_address_at_and_index_of(self):
        p = parse_prefix("192.0.2.0/28")
        for i in range(16):
            assert p.index_of(p.address_at(i)) == i
        assert p.address_at(-1) == p.last

    def test_address_at_out_of_range(self):
        p = parse_prefix("192.0.2.0/30")
        with pytest.raises(IndexError):
            p.address_at(4)

    def test_index_of_outside_pool(self):
        with pytest.raises(ValueError):
            parse_prefix("192.0.2.0/24").index_of(parse_address("10.0.0.1"))

    def test_addresses_enumeration(self):
        p = parse_prefix("192.0.2.0/29")
        addrs = list(p.addresses())
        assert len(addrs) == 8
        assert addrs[0] == p.first and addrs[-1] == p.last

    def test_addresses_refuses_huge_pools(self):
        with pytest.raises(ValueError):
            list(parse_prefix("10.0.0.0/8").addresses())

    def test_subnets(self):
        p = parse_prefix("192.0.2.0/24")
        subs = list(p.subnets(26))
        assert len(subs) == 4
        assert subs[0].first == p.first
        assert all(s in p for s in subs)

    def test_subnets_invalid(self):
        p = parse_prefix("192.0.2.0/24")
        with pytest.raises(ValueError):
            list(p.subnets(20))
        with pytest.raises(ValueError):
            list(p.subnets(40))

    def test_supernet(self):
        p = parse_prefix("192.0.2.0/24")
        assert p.supernet(20) == parse_prefix("192.0.0.0/20")
        with pytest.raises(ValueError):
            p.supernet(25)

    def test_slash_zero(self):
        p = parse_prefix("0.0.0.0/0")
        assert p.num_addresses == 1 << 32
        assert parse_address("255.255.255.255") in p

    def test_v6_prefix(self):
        p = parse_prefix("2001:db8::/44")
        assert p.suffix_bits == 84
        a = p.random_address(random.Random(1))
        assert a in p and a.family == IPv6


class TestRandomAddress:
    """The paper's step (4)+(5): prefix ‖ random bitstring."""

    def test_single_address_pool_is_deterministic(self):
        p = parse_prefix("192.0.2.1/32")
        rng = random.Random(0)
        assert all(p.random_address(rng) == p.first for _ in range(20))

    def test_draws_stay_in_pool(self):
        p = parse_prefix("198.51.100.0/26")
        rng = random.Random(42)
        for _ in range(500):
            assert p.random_address(rng) in p

    def test_uniformity_over_small_pool(self):
        p = parse_prefix("192.0.2.0/28")  # 16 addresses
        rng = random.Random(7)
        counts = {}
        n = 16_000
        for _ in range(n):
            a = p.random_address(rng)
            counts[a] = counts.get(a, 0) + 1
        assert len(counts) == 16
        expected = n / 16
        for c in counts.values():
            assert abs(c - expected) < 5 * (expected ** 0.5)

    def test_seeded_reproducibility(self):
        p = parse_prefix("192.0.2.0/24")
        seq1 = [p.random_address(random.Random(9)) for _ in range(1)]
        seq2 = [p.random_address(random.Random(9)) for _ in range(1)]
        assert seq1 == seq2


@settings(max_examples=200)
@given(value=st.integers(min_value=0, max_value=(1 << 32) - 1),
       length=st.integers(min_value=0, max_value=32))
def test_prefix_of_always_contains_address(value, length):
    address = IPAddress.v4(value)
    prefix = Prefix.of(address, length)
    assert address in prefix
    assert prefix.length == length


@settings(max_examples=200)
@given(value=st.integers(min_value=0, max_value=(1 << 128) - 1),
       length=st.integers(min_value=0, max_value=128))
def test_prefix_of_v6_always_contains_address(value, length):
    address = IPAddress.v6(value)
    prefix = Prefix.of(address, length)
    assert address in prefix


@settings(max_examples=100)
@given(net_bits=st.integers(min_value=8, max_value=30), seed=st.integers(0, 2**16))
def test_random_address_within_prefix_property(net_bits, seed):
    base = IPAddress.v4(0x0A000000)  # 10.0.0.0
    prefix = Prefix.of(base, net_bits)
    rng = random.Random(seed)
    address = prefix.random_address(rng)
    assert address in prefix
    assert prefix.index_of(address) < prefix.num_addresses


@settings(max_examples=100)
@given(length=st.integers(min_value=0, max_value=32),
       split=st.integers(min_value=0, max_value=8))
def test_subnets_partition_property(length, split):
    new_length = min(32, length + split)
    prefix = Prefix.of(IPAddress.v4(0xC0A80000), length)  # 192.168.0.0
    if new_length - length > 10:
        return  # keep enumeration small
    subs = list(prefix.subnets(new_length))
    assert len(subs) == 1 << (new_length - length)
    assert sum(s.num_addresses for s in subs) == prefix.num_addresses
    assert subs[0].first == prefix.first
