"""Zone semantics: the conventional Figure 3a lookup table."""

import random

import pytest

from repro.dns.records import A, CNAME, DomainName, Question, RRType, TXT
from repro.dns.zone import RRSelection, Zone, ZoneError
from repro.netsim.addr import parse_address


def name(text: str) -> DomainName:
    return DomainName.from_text(text)


@pytest.fixture
def zone():
    z = Zone("example.com")
    z.add_address("www.example.com", A(parse_address("192.0.2.1")), ttl=60)
    z.add_address("www.example.com", A(parse_address("192.0.2.2")), ttl=60)
    z.add_address("www.example.com", A(parse_address("192.0.2.3")), ttl=60)
    return z


class TestZoneStructure:
    def test_soa_auto_created(self, zone):
        assert zone.soa().rrtype == RRType.SOA

    def test_out_of_bailiwick_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_address("www.other.org", A(parse_address("192.0.2.9")))

    def test_cname_and_other_data_conflict(self, zone):
        zone.add_record(
            # alias with only a CNAME is fine
            __import__("repro.dns.records", fromlist=["ResourceRecord"]).ResourceRecord(
                name("alias.example.com"), CNAME(name("www.example.com")), 60
            )
        )
        with pytest.raises(ZoneError):
            zone.add_address("alias.example.com", A(parse_address("192.0.2.4")))

    def test_second_cname_rejected(self, zone):
        from repro.dns.records import ResourceRecord
        zone.add_record(ResourceRecord(name("a.example.com"), CNAME(name("b.example.com")), 60))
        with pytest.raises(ZoneError):
            zone.add_record(ResourceRecord(name("a.example.com"), CNAME(name("c.example.com")), 60))

    def test_cname_on_name_with_data_rejected(self, zone):
        from repro.dns.records import ResourceRecord
        with pytest.raises(ZoneError):
            zone.add_record(
                ResourceRecord(name("www.example.com"), CNAME(name("x.example.com")), 60)
            )

    def test_record_count(self, zone):
        assert zone.record_count() == 4  # SOA + 3 A


class TestLookup:
    def test_positive_lookup(self, zone):
        result = zone.lookup(Question(name("www.example.com"), RRType.A))
        assert result.found and len(result.answers) == 3

    def test_nxdomain(self, zone):
        result = zone.lookup(Question(name("missing.example.com"), RRType.A))
        assert not result.found

    def test_nodata_when_type_absent(self, zone):
        result = zone.lookup(Question(name("www.example.com"), RRType.TXT))
        assert result.found and result.answers == ()

    def test_empty_non_terminal_is_nodata_not_nxdomain(self, zone):
        zone.add_address("deep.sub.example.com", A(parse_address("192.0.2.8")))
        result = zone.lookup(Question(name("sub.example.com"), RRType.A))
        assert result.found and result.answers == ()

    def test_cname_chase_in_zone(self, zone):
        from repro.dns.records import ResourceRecord
        zone.add_record(ResourceRecord(name("alias.example.com"), CNAME(name("www.example.com")), 60))
        result = zone.lookup(Question(name("alias.example.com"), RRType.A))
        assert result.found
        assert len(result.cname_chain) == 1
        assert len(result.answers) == 3

    def test_out_of_zone_cname_returns_chain_only(self, zone):
        from repro.dns.records import ResourceRecord
        zone.add_record(ResourceRecord(name("ext.example.com"), CNAME(name("cdn.other.net")), 60))
        result = zone.lookup(Question(name("ext.example.com"), RRType.A))
        assert result.found and result.answers == ()
        assert result.cname_chain[0].rdata.target == name("cdn.other.net")

    def test_cname_loop_bounded(self, zone):
        # Circular zone data must not raise out of the serving path: the
        # lookup returns the finite chain and the *client's* loop guard
        # rejects it (a worker crashing on one bad zone is the bug).
        from repro.dns.records import ResourceRecord
        zone.add_record(ResourceRecord(name("l1.example.com"), CNAME(name("l2.example.com")), 60))
        zone.add_record(ResourceRecord(name("l2.example.com"), CNAME(name("l1.example.com")), 60))
        result = zone.lookup(Question(name("l1.example.com"), RRType.A))
        assert result.found
        assert result.answers == ()
        chased = [r.name for r in result.cname_chain]
        assert chased == [name("l1.example.com"), name("l2.example.com")]


class TestSelection:
    def test_round_robin_rotates(self):
        z = Zone("example.com", selection=RRSelection.ROUND_ROBIN)
        for i in (1, 2, 3):
            z.add_address("www.example.com", A(parse_address(f"192.0.2.{i}")), ttl=60)
        q = Question(name("www.example.com"), RRType.A)
        firsts = [z.lookup(q).answers[0].rdata.address.value & 0xFF for _ in range(6)]
        assert firsts == [1, 2, 3, 1, 2, 3]

    def test_random_one_returns_single(self):
        z = Zone("example.com", selection=RRSelection.RANDOM_ONE, rng=random.Random(1))
        for i in (1, 2, 3):
            z.add_address("www.example.com", A(parse_address(f"192.0.2.{i}")), ttl=60)
        q = Question(name("www.example.com"), RRType.A)
        seen = {z.lookup(q).answers[0].rdata.address for _ in range(50)}
        assert all(len(z.lookup(q).answers) == 1 for _ in range(5))
        assert len(seen) == 3  # all candidates eventually chosen


class TestMutation:
    def test_replace_addresses_atomic(self, zone):
        from repro.dns.records import ResourceRecord
        new = [ResourceRecord(name("www.example.com"), A(parse_address("198.51.100.1")), 30)]
        zone.replace_addresses(name("www.example.com"), RRType.A, new)
        result = zone.lookup(Question(name("www.example.com"), RRType.A))
        assert [str(r.rdata.address) for r in result.answers] == ["198.51.100.1"]

    def test_replace_type_mismatch_rejected(self, zone):
        from repro.dns.records import ResourceRecord
        bad = [ResourceRecord(name("www.example.com"), TXT(("x",)), 30)]
        with pytest.raises(ZoneError):
            zone.replace_addresses(name("www.example.com"), RRType.A, bad)

    def test_remove_rrset(self, zone):
        removed = zone.remove_rrset(name("www.example.com"), RRType.A)
        assert removed == 3
        assert not zone.lookup(Question(name("www.example.com"), RRType.A)).found
