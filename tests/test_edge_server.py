"""Edge servers: listen modes, the repoint capability, serving semantics."""

import pytest

from repro.edge.cache import DistributedCache
from repro.edge.customers import AccountType, Customer, CustomerRegistry
from repro.edge.server import DEFAULT_SERVICE_PORTS, EdgeServer, ListenMode
from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Protocol
from repro.sockets.lookup import LookupStage
from repro.sockets.socktable import SOCKET_MEM_BYTES
from repro.web.http import HTTPVersion, Request, Status
from repro.web.origin import OriginPool, OriginServer, fixed_size
from repro.web.tls import Certificate, CertificateStore, ClientHello, TLSError

POOL = parse_prefix("192.0.2.0/28")  # 16 addresses: small enough to bind 1:1
WIDE_POOL = parse_prefix("192.0.0.0/20")


def make_server(name="srv0"):
    registry = CustomerRegistry()
    customer = Customer("acme", AccountType.FREE, {"a.example.com", "b.example.com"})
    registry.add(customer)
    cert = customer.make_certificate()
    origins = OriginPool()
    origins.add(OriginServer("o", set(customer.hostnames), fixed_size(100)))
    cache = DistributedCache(origins)
    cache.add_node(name)
    certs = CertificateStore()
    certs.add(cert)
    return EdgeServer(name, registry, cache, certs, parse_address("198.18.0.1"))


def conn_tuple(dst: str, port=443, proto=Protocol.TCP, sport=40000):
    return FiveTuple(proto, parse_address("100.64.0.1"), sport, parse_address(dst), port)


class TestListenModes:
    def test_per_ip_binds_socket_count(self):
        server = make_server()
        server.configure_listening(POOL, ports=(80, 443), mode=ListenMode.PER_IP_BINDS)
        # 16 addresses × 2 ports × 2 protocols
        assert server.socket_count() == 64
        assert server.socket_memory_bytes() == 64 * SOCKET_MEM_BYTES

    def test_per_ip_binds_refuses_wide_pools(self):
        server = make_server()
        with pytest.raises(ValueError):
            server.configure_listening(parse_prefix("10.0.0.0/8"), mode=ListenMode.PER_IP_BINDS)

    def test_wildcard_socket_count(self):
        server = make_server()
        server.configure_listening(WIDE_POOL, ports=(80, 443), mode=ListenMode.WILDCARD)
        assert server.socket_count() == 4  # 2 ports × 2 protocols

    def test_sk_lookup_socket_count_independent_of_pool(self):
        server = make_server()
        server.configure_listening(WIDE_POOL, ports=(80, 443), mode=ListenMode.SK_LOOKUP)
        assert server.socket_count() == 4
        server2 = make_server("srv0")
        server2.configure_listening(parse_prefix("192.0.2.1/32"), ports=(80, 443))
        assert server2.socket_count() == server.socket_count()

    def test_all_modes_accept_pool_traffic(self):
        for mode in (ListenMode.PER_IP_BINDS, ListenMode.WILDCARD, ListenMode.SK_LOOKUP):
            server = make_server()
            server.configure_listening(POOL, ports=(443,), mode=mode)
            result = server.dispatch(
                __import__("repro.netsim.packet", fromlist=["Packet"]).Packet(
                    conn_tuple("192.0.2.7"), syn=True
                )
            )
            assert result.delivered, mode

    def test_sk_lookup_rejects_outside_pool(self):
        server = make_server()
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.SK_LOOKUP)
        from repro.netsim.packet import Packet
        result = server.dispatch(Packet(conn_tuple("203.0.113.1"), syn=True))
        assert result.stage is LookupStage.MISS

    def test_wildcard_accepts_everything(self):
        """The security hazard of Figure 4b: traffic far outside the pool
        still lands in the catch-all socket."""
        server = make_server()
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.WILDCARD)
        from repro.netsim.packet import Packet
        result = server.dispatch(Packet(conn_tuple("203.0.113.1"), syn=True))
        assert result.stage is LookupStage.WILDCARD  # exposed!

    def test_reconfigure_replaces(self):
        server = make_server()
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.PER_IP_BINDS)
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.SK_LOOKUP)
        assert server.socket_count() == 2
        assert server.listen_mode == ListenMode.SK_LOOKUP

    def test_unknown_mode_rejected(self):
        server = make_server()
        with pytest.raises(ValueError):
            server.configure_listening(POOL, mode="telepathy")

    def test_default_ports_match_deployment(self):
        assert 80 in DEFAULT_SERVICE_PORTS and 443 in DEFAULT_SERVICE_PORTS
        assert len(DEFAULT_SERVICE_PORTS) == 13  # "80, 443, and 11 others"


class TestRepoint:
    def test_repoint_moves_pool_without_socket_churn(self):
        server = make_server()
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.SK_LOOKUP)
        fds_before = sorted(s.fd for s in server.table.sockets())
        new_pool = parse_prefix("203.0.113.0/28")
        server.repoint_pool(new_pool)
        fds_after = sorted(s.fd for s in server.table.sockets())
        assert fds_before == fds_after  # no socket was closed or created
        from repro.netsim.packet import Packet
        assert server.dispatch(Packet(conn_tuple("203.0.113.7"), syn=True)).delivered
        assert not server.dispatch(Packet(conn_tuple("192.0.2.7"), syn=True)).delivered

    def test_repoint_requires_sk_lookup_mode(self):
        server = make_server()
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.WILDCARD)
        with pytest.raises(RuntimeError):
            server.repoint_pool(parse_prefix("203.0.113.0/28"))


class TestHandshakeAndServe:
    def make_ready(self):
        server = make_server()
        server.configure_listening(POOL, ports=(443,), mode=ListenMode.SK_LOOKUP)
        return server

    def test_handshake_on_any_pool_address(self):
        server = self.make_ready()
        for i in (0, 7, 15):
            conn = server.handshake(
                conn_tuple(str(POOL.address_at(i)), sport=41000 + i),
                ClientHello(sni="a.example.com"),
                HTTPVersion.H2,
            )
            assert conn.certificate.covers("a.example.com")
        assert server.stats.connections == 3

    def test_handshake_refused_outside_pool(self):
        server = self.make_ready()
        with pytest.raises(ConnectionRefusedError):
            server.handshake(conn_tuple("203.0.113.1"), ClientHello(sni="a.example.com"),
                             HTTPVersion.H2)
        assert server.stats.refused_syns == 1

    def test_handshake_unknown_sni_fails(self):
        server = self.make_ready()
        with pytest.raises(TLSError):
            server.handshake(conn_tuple("192.0.2.1"), ClientHello(sni="nope.example.org"),
                             HTTPVersion.H2)
        assert server.stats.tls_failures == 1

    def test_serve_through_cache(self):
        server = self.make_ready()
        conn = server.handshake(conn_tuple("192.0.2.1"), ClientHello(sni="a.example.com"),
                                HTTPVersion.H2)
        r1 = server.serve(conn, Request("a.example.com", "/x"))
        r2 = server.serve(conn, Request("a.example.com", "/x"))
        assert r1.status is Status.OK and not r1.cache_hit
        assert r2.cache_hit

    def test_serve_misdirected_off_certificate(self):
        """RFC 7540 §9.1.2: authority outside the presented cert → 421."""
        server = self.make_ready()
        registry_extra = Customer("other", AccountType.FREE, {"z.example.com"})
        server.registry.add(registry_extra)
        conn = server.handshake(conn_tuple("192.0.2.1"), ClientHello(sni="a.example.com"),
                                HTTPVersion.H2)
        response = server.serve(conn, Request("z.example.com"))
        assert response.status is Status.MISDIRECTED

    def test_serve_unknown_hostname_404(self):
        server = self.make_ready()
        # Cert that covers an unhosted name:
        server.certs.add(Certificate("ghost.example.com"))
        conn = server.handshake(conn_tuple("192.0.2.1"), ClientHello(sni="ghost.example.com"),
                                HTTPVersion.H2)
        assert server.serve(conn, Request("ghost.example.com")).status is Status.NOT_FOUND

    def test_quic_handshake(self):
        server = self.make_ready()
        conn = server.handshake(
            conn_tuple("192.0.2.3", proto=Protocol.QUIC),
            ClientHello(sni="a.example.com"),
            HTTPVersion.H3,
        )
        assert conn.version is HTTPVersion.H3
