"""Master-file parsing: directives, inheritance, continuations, errors."""

import pytest

from repro.dns.records import RRType
from repro.dns.zone import Question
from repro.dns.records import DomainName
from repro.dns.zonefile import ZoneFileError, load_zone, parse_zone_text

SAMPLE = """\
$ORIGIN example.com.
$TTL 300
@       IN SOA ns1 hostmaster ( 2021010101 7200 900
                                1209600 300 )  ; multi-line SOA
        IN NS  ns1
ns1     IN A   192.0.2.53
www     600 IN A 192.0.2.1
www     IN  A  192.0.2.2          ; same owner, second address
        IN  AAAA 2001:db8::1      ; blank owner inherits www
alias   IN CNAME www
ext     IN CNAME cdn.provider.net.
txt     IN TXT "hello world" "second string"
; full comment line
abs.example.com. IN A 192.0.2.99
"""


class TestParsing:
    def test_record_count(self):
        records = parse_zone_text(SAMPLE, "example.com")
        assert len(records) == 10

    def test_soa_multiline(self):
        records = parse_zone_text(SAMPLE, "example.com")
        soa = next(r for r in records if r.rrtype == RRType.SOA)
        assert soa.rdata.serial == 2021010101
        assert soa.rdata.minimum == 300
        assert str(soa.rdata.mname) == "ns1.example.com."

    def test_relative_and_absolute_names(self):
        records = parse_zone_text(SAMPLE, "example.com")
        names = {str(r.name) for r in records}
        assert "www.example.com." in names
        assert "abs.example.com." in names
        assert "cdn.provider.net." in {
            str(r.rdata.target) for r in records if r.rrtype == RRType.CNAME
        }

    def test_ttl_inheritance_and_override(self):
        records = parse_zone_text(SAMPLE, "example.com")
        www_a = [r for r in records if str(r.name) == "www.example.com."
                 and r.rrtype == RRType.A]
        assert {r.ttl for r in www_a} == {600, 300}  # explicit + $TTL

    def test_blank_owner_inherits(self):
        records = parse_zone_text(SAMPLE, "example.com")
        aaaa = next(r for r in records if r.rrtype == RRType.AAAA)
        assert str(aaaa.name) == "www.example.com."

    def test_txt_quoted_strings(self):
        records = parse_zone_text(SAMPLE, "example.com")
        txt = next(r for r in records if r.rrtype == RRType.TXT)
        assert txt.rdata.strings == ("hello world", "second string")

    def test_origin_directive_switches(self):
        text = "$TTL 60\n$ORIGIN a.example.\nx IN A 192.0.2.1\n$ORIGIN b.example.\ny IN A 192.0.2.2\n"
        records = parse_zone_text(text, "ignored.example")
        assert str(records[0].name) == "x.a.example."
        assert str(records[1].name) == "y.b.example."


class TestErrors:
    def test_missing_ttl(self):
        with pytest.raises(ZoneFileError, match="no TTL"):
            parse_zone_text("www IN A 192.0.2.1\n", "example.com")

    def test_unterminated_quote(self):
        with pytest.raises(ZoneFileError, match="unterminated"):
            parse_zone_text('$TTL 60\nt IN TXT "oops\n', "example.com")

    def test_unbalanced_parens(self):
        with pytest.raises(ZoneFileError, match="unbalanced"):
            parse_zone_text("$TTL 60\n@ IN SOA a b ( 1 2 3 4 5\n", "example.com")
        with pytest.raises(ZoneFileError, match="unbalanced"):
            parse_zone_text("$TTL 60\n@ IN A 192.0.2.1 )\n", "example.com")

    def test_unsupported_type(self):
        # An unknown type token is reported where it is found (before any
        # recognised type keyword), with the line number attached.
        with pytest.raises(ZoneFileError, match="line 2.*'MX'"):
            parse_zone_text("$TTL 60\nx IN MX 10 mail\n", "example.com")

    def test_unsupported_class(self):
        with pytest.raises(ZoneFileError, match="unsupported class"):
            parse_zone_text("$TTL 60\nx CH A 192.0.2.1\n", "example.com")

    def test_unsupported_directive(self):
        with pytest.raises(ZoneFileError, match="unsupported directive"):
            parse_zone_text("$INCLUDE other.zone\n", "example.com")

    def test_bad_a_rdata(self):
        with pytest.raises(ZoneFileError):
            parse_zone_text("$TTL 60\nx IN A 2001:db8::1\n", "example.com")

    def test_blank_owner_first_line(self):
        with pytest.raises(ZoneFileError, match="no previous record"):
            parse_zone_text("$TTL 60\n   IN A 192.0.2.1\n", "example.com")

    def test_error_carries_line_number(self):
        try:
            parse_zone_text("$TTL 60\nok IN A 192.0.2.1\nbad IN A not-an-ip\n",
                            "example.com")
        except (ZoneFileError, ValueError) as exc:
            assert "3" in str(exc) or "not-an-ip" in str(exc)


class TestLoadZone:
    def test_loaded_zone_serves(self):
        zone = load_zone(SAMPLE, "example.com")
        result = zone.lookup(Question(DomainName.from_text("www.example.com"), RRType.A))
        assert result.found and len(result.answers) == 2

    def test_file_soa_replaces_default(self):
        zone = load_zone(SAMPLE, "example.com")
        assert zone.soa().rdata.serial == 2021010101

    def test_zone_without_soa_gets_default(self):
        zone = load_zone("$TTL 60\nwww IN A 192.0.2.1\n", "example.com")
        assert zone.soa() is not None

    def test_cname_chase_through_loaded_zone(self):
        zone = load_zone(SAMPLE, "example.com")
        result = zone.lookup(Question(DomainName.from_text("alias.example.com"), RRType.A))
        assert result.found and result.cname_chain
        assert len(result.answers) == 2
