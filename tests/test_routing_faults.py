"""Routing gray faults: registry vocabulary, validation, engine gating."""

import random

import pytest

from repro.faults.errors import FaultConfigError
from repro.faults.injector import FaultTargets
from repro.faults.registry import build_fault, fault_kinds
from repro.netsim.addr import parse_prefix
from repro.netsim.anycast import build_regional_topology
from repro.netsim.routeleak import attach_multihomed_leaker
from repro.netsim.speakers import LinkProfile, SpeakerSimulation

PFX = parse_prefix("192.0.2.0/24")
FAST = LinkProfile(base_delay_s=0.05, jitter_s=0.05, mrai_s=0.0)


def two_region_network(speakers: bool):
    network = build_regional_topology(
        {"us": ["ashburn"], "eu": ["london"]},
        clients_per_region=2, rng=random.Random(7),
    )
    attach_multihomed_leaker(network, "leaky:cust", "transit:us:0", "transit:eu:0")
    if speakers:
        network.use_simulation(SpeakerSimulation(network.graph, profile=FAST))
    network.announce_from_all(PFX)
    if speakers:
        network.sim.settle()
    return network


class TestRegistry:
    def test_routing_kinds_registered(self):
        kinds = fault_kinds()
        for kind in ("route_leak", "session_reset", "slow_convergence",
                     "persistent_flap"):
            assert kind in kinds

    def test_route_leak_round_trips_through_builder(self):
        fault = build_fault("route_leak", leaker="leaky:cust",
                            prefix=str(PFX))
        assert fault.kind == "route_leak"
        assert fault.prefix == PFX
        assert "leaky:cust" in fault.target

    def test_bad_prefix_is_a_typed_config_error(self):
        with pytest.raises(FaultConfigError, match="bad prefix"):
            build_fault("route_leak", leaker="leaky:cust", prefix="not/a/prefix")
        with pytest.raises(FaultConfigError, match="bad prefix"):
            build_fault("persistent_flap", prefix="192.0.2.0/99",
                        pop="ashburn", period=4.0)

    def test_parameter_validation(self):
        with pytest.raises(FaultConfigError):
            build_fault("slow_convergence", factor=1.0)
        with pytest.raises(FaultConfigError):
            build_fault("persistent_flap", prefix=str(PFX), pop="ashburn",
                        period=0.0)


class TestEngineGating:
    @pytest.mark.parametrize("kind,params", [
        ("session_reset", {"a": "pop:ashburn", "b": "transit:us:0"}),
        ("slow_convergence", {"factor": 5.0}),
        ("persistent_flap", {"prefix": str(PFX), "pop": "ashburn",
                             "period": 4.0}),
    ])
    def test_speakers_only_faults_reject_static_engine(self, kind, params):
        targets = FaultTargets(network=two_region_network(speakers=False))
        fault = build_fault(kind, **params)
        with pytest.raises(FaultConfigError, match="speaker"):
            fault.apply(targets, random.Random(0))

    def test_route_leak_applies_on_both_engines(self):
        for speakers in (False, True):
            network = two_region_network(speakers=speakers)
            targets = FaultTargets(network=network)
            fault = build_fault("route_leak", leaker="leaky:cust",
                                prefix=str(PFX))
            fault.apply(targets, random.Random(0))
            if speakers:
                network.sim.settle()
            assert network.sim.policies().get("leaky:cust") is not None
            fault.revert(targets, random.Random(0))
            if speakers:
                network.sim.settle()
            assert network.sim.policies().get("leaky:cust") is None

    def test_route_leak_unknown_leaker_rejected(self):
        targets = FaultTargets(network=two_region_network(speakers=True))
        fault = build_fault("route_leak", leaker="nope", prefix=str(PFX))
        with pytest.raises(KeyError):
            fault.apply(targets, random.Random(0))


class TestSpeakersFaultDynamics:
    def test_session_reset_applies_and_reverts(self):
        network = two_region_network(speakers=True)
        targets = FaultTargets(network=network)
        fault = build_fault("session_reset", a="pop:ashburn", b="transit:us:0")
        fault.apply(targets, random.Random(0))
        assert network.sim.sessions_down() == [("pop:ashburn", "transit:us:0")]
        fault.revert(targets, random.Random(0))
        network.sim.settle()
        assert network.sim.sessions_down() == []

    def test_slow_convergence_scales_and_restores_delay(self):
        network = two_region_network(speakers=True)
        targets = FaultTargets(network=network)
        fault = build_fault("slow_convergence", factor=5.0)
        fault.apply(targets, random.Random(0))
        assert network.sim.delay_factor == 5.0
        fault.revert(targets, random.Random(0))
        assert network.sim.delay_factor == 1.0

    def test_persistent_flap_starts_and_stops_flapping(self):
        network = two_region_network(speakers=True)
        targets = FaultTargets(network=network)
        fault = build_fault("persistent_flap", prefix=str(PFX),
                            pop="ashburn", period=4.0)
        fault.apply(targets, random.Random(0))
        assert network.sim.active_flaps() == [(PFX, "pop:ashburn")]
        fault.revert(targets, random.Random(0))
        network.sim.settle()
        assert network.sim.active_flaps() == []
        # Healed: the prefix is announced again from the flapped PoP.
        assert "ashburn" in network.announced_prefixes()[PFX] or \
            network.sim.rib("pop:ashburn").best(PFX) is not None


class TestLegacyLeakHelpers:
    def test_inject_route_leak_rides_the_fault_registry(self):
        from repro.netsim.routeleak import inject_route_leak

        network = two_region_network(speakers=True)
        scenario = inject_route_leak(network, "leaky:cust", PFX)
        network.sim.settle()
        assert scenario.fault is not None
        assert network.sim.policies().get("leaky:cust") is not None
        scenario.heal()
        network.sim.settle()
        assert network.sim.policies().get("leaky:cust") is None
