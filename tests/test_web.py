"""Web substrate: certificates/SNI, HTTP connections, coalescing rules."""

import pytest

from repro.netsim.addr import parse_address
from repro.netsim.packet import Protocol
from repro.web.http import Connection, HTTPVersion, Request, Response, Status
from repro.web.origin import OriginPool, OriginServer, fixed_size
from repro.web.tls import Certificate, CertificateStore, ClientHello, TLSError

IP1 = parse_address("192.0.2.1")
IP2 = parse_address("192.0.2.2")


class TestCertificate:
    def test_exact_match(self):
        cert = Certificate("www.example.com", ("example.com",))
        assert cert.covers("www.example.com")
        assert cert.covers("EXAMPLE.COM.")
        assert not cert.covers("other.example.com")

    def test_wildcard_single_label(self):
        cert = Certificate("*.example.com")
        assert cert.covers("a.example.com")
        assert not cert.covers("example.com")
        assert not cert.covers("a.b.example.com")

    def test_bare_star_matches_nothing(self):
        cert = Certificate("*.")
        assert not cert.covers("example.com")


class TestCertificateStore:
    def test_exact_selection(self):
        store = CertificateStore()
        cert = Certificate("a.example.com", ("b.example.com",))
        store.add(cert)
        assert store.select(ClientHello(sni="b.example.com")) is cert

    def test_wildcard_selection(self):
        store = CertificateStore()
        wild = Certificate("*.example.com")
        store.add(wild)
        assert store.select(ClientHello(sni="zzz.example.com")) is wild

    def test_default_fallback(self):
        default = Certificate("fallback.cdn.net")
        store = CertificateStore(default=default)
        assert store.select(ClientHello(sni="unknown.org")) is default
        assert store.select(ClientHello(sni=None)) is default

    def test_no_sni_rejected_when_required(self):
        store = CertificateStore(default=Certificate("x"), require_sni=True)
        with pytest.raises(TLSError):
            store.select(ClientHello(sni=None))

    def test_unknown_sni_without_default_rejected(self):
        store = CertificateStore()
        store.add(Certificate("a.example.com"))
        with pytest.raises(TLSError):
            store.select(ClientHello(sni="b.example.com"))


class TestHTTPVersion:
    def test_transports(self):
        assert HTTPVersion.H1.transport is Protocol.TCP
        assert HTTPVersion.H2.transport is Protocol.TCP
        assert HTTPVersion.H3.transport is Protocol.QUIC

    def test_multiplexing(self):
        assert not HTTPVersion.H1.multiplexes
        assert HTTPVersion.H2.multiplexes and HTTPVersion.H3.multiplexes

    def test_ip_match_requirement(self):
        assert HTTPVersion.H2.requires_ip_match_for_coalescing
        assert not HTTPVersion.H3.requires_ip_match_for_coalescing


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(authority="")
        with pytest.raises(ValueError):
            Request(authority="a.com", path="nope")


def make_conn(version=HTTPVersion.H2, addr=IP1, san=("a.example.com", "b.example.com")):
    return Connection(
        version=version,
        remote_addr=addr,
        remote_port=443,
        certificate=Certificate(san[0], tuple(san[1:])),
        sni=san[0],
    )


class TestCoalescing:
    """RFC 7540 §9.1.1 — the two conditions, and the h3 exemption (§4.4)."""

    def test_h2_requires_cert_and_ip(self):
        conn = make_conn()
        assert conn.can_coalesce("b.example.com", [IP1])
        assert not conn.can_coalesce("b.example.com", [IP2])       # IP mismatch
        assert not conn.can_coalesce("c.example.com", [IP1])       # cert miss

    def test_h2_ip_set_membership(self):
        conn = make_conn()
        assert conn.can_coalesce("b.example.com", [IP2, IP1])  # conn addr ∈ set

    def test_h3_waives_ip_condition(self):
        conn = make_conn(version=HTTPVersion.H3)
        assert conn.can_coalesce("b.example.com", [IP2])
        assert not conn.can_coalesce("c.example.com", [IP2])  # cert still gates

    def test_h1_never_coalesces(self):
        conn = make_conn(version=HTTPVersion.H1)
        assert not conn.can_coalesce("b.example.com", [IP1])

    def test_ip_match_none_variant(self):
        conn = make_conn()
        assert conn.can_coalesce("b.example.com", [IP2], ip_match="none")

    def test_closed_connection_rejected(self):
        conn = make_conn()
        conn.close()
        assert not conn.can_coalesce("b.example.com", [IP1])

    def test_h2_empty_resolution_rejected(self):
        conn = make_conn()
        assert not conn.can_coalesce("b.example.com", [])

    def test_record_accounting(self):
        conn = make_conn()
        conn.record(Request("a.example.com"), Response(Status.OK, body_len=100))
        conn.record(Request("b.example.com"), Response(Status.OK, body_len=50))
        assert conn.requests == 2 and conn.bytes == 150
        assert conn.authorities == {"a.example.com", "b.example.com"}

    def test_record_on_closed_raises(self):
        conn = make_conn()
        conn.close()
        with pytest.raises(RuntimeError):
            conn.record(Request("a.example.com"), Response(Status.OK))


class TestOrigins:
    def test_origin_serves_its_hostnames(self):
        origin = OriginServer("o", {"a.example.com"}, fixed_size(500))
        resp = origin.serve(Request("a.example.com"))
        assert resp.status is Status.OK and resp.body_len == 500
        assert origin.serve(Request("b.example.com")).status is Status.NOT_FOUND

    def test_pool_routes_by_hostname(self):
        pool = OriginPool()
        pool.add(OriginServer("o1", {"a.example.com"}, fixed_size(1)))
        pool.add(OriginServer("o2", {"b.example.com"}, fixed_size(2)))
        assert pool.fetch(Request("b.example.com")).body_len == 2
        assert pool.fetch(Request("nope.example.com")).status is Status.UNAVAILABLE

    def test_pool_accounting(self):
        pool = OriginPool()
        o = OriginServer("o1", {"a.example.com"}, fixed_size(10))
        pool.add(o)
        pool.fetch(Request("a.example.com"))
        pool.fetch(Request("a.example.com"))
        assert o.requests == 2 and o.bytes_served == 20
