"""Differential property suite: compiled dispatch ≡ the rule interpreter.

The compiled engine (:mod:`repro.sockets.compiled`) must be *semantically
invisible*: for any program and any packet, verdict, chosen socket, and
program stats match the rule-by-rule interpreter exactly — including the
kernel contracts that first match wins, DROP short-circuits, and a
redirect through an empty or stale map slot falls through to the next
matching rule.  Seeded fuzz holds that over 1000 random program/packet
cases; targeted tests pin each contract individually, plus the
compile-cache invalidation rules and the batch path's accounting.
"""

import random

import pytest

from repro.netsim.addr import IPAddress, Prefix, parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Packet, Protocol
from repro.sockets.compiled import CompiledProgram
from repro.sockets.lookup import Engine, LookupPath, LookupStage
from repro.sockets.sklookup import MatchRule, SkLookupProgram, SockArray, Verdict
from repro.sockets.socktable import SocketTable

POOL = parse_prefix("192.0.2.0/24")
INTERNAL = parse_address("198.18.0.1")


def packet(dst="192.0.2.77", dport=80, proto=Protocol.TCP, sport=40000):
    return Packet(
        FiveTuple(proto, parse_address("198.51.100.9"), sport, parse_address(dst), dport),
        syn=True,
    )


def make_listeners(table: SocketTable, n: int, protocol=Protocol.TCP):
    base = parse_address("198.18.0.1").value
    return [
        table.bind_listen(protocol, IPAddress.v4(base + i), 80, owner="svc")
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# Seeded differential fuzz


def random_rule(rng: random.Random, map_size: int) -> MatchRule:
    """A verifier-clean random rule over a small, collision-rich space."""
    proto = rng.choice([Protocol.TCP, Protocol.UDP, None])
    # Narrow port space so random packets actually hit the ranges.
    port_lo = rng.randrange(1, 100)
    port_hi = min(0xFFFF, port_lo + rng.choice([0, 0, 1, 10, 65534]))
    prefixes: tuple[Prefix, ...] = ()
    if rng.random() < 0.85:  # else: unconstrained "always" rule
        prefixes = tuple(
            Prefix.of(
                IPAddress.v4((10 << 24) | (rng.randrange(4) << 16)
                             | (rng.randrange(4) << 8) | rng.randrange(8)),
                rng.choice([8, 16, 24, 29, 32]),
            )
            for _ in range(rng.randrange(1, 4))
        )
    roll = rng.random()
    if roll < 0.15:
        return MatchRule(Verdict.DROP, proto, prefixes, port_lo, port_hi)
    if roll < 0.25:
        return MatchRule(Verdict.PASS, proto, prefixes, port_lo, port_hi)  # pass-through
    return MatchRule(Verdict.PASS, proto, prefixes, port_lo, port_hi,
                     map_key=rng.randrange(map_size))


def random_packet(rng: random.Random) -> Packet:
    dst = IPAddress.v4((10 << 24) | (rng.randrange(4) << 16)
                       | (rng.randrange(4) << 8) | rng.randrange(8))
    return Packet(FiveTuple(
        rng.choice([Protocol.TCP, Protocol.UDP]),
        parse_address("198.51.100.9"),
        1024 + rng.randrange(60000),
        dst,
        rng.randrange(1, 130),  # past the rule port space, to cover misses
    ), syn=True)


def build_twin_programs(rng: random.Random):
    """Two programs with identical rules and one shared sock array —
    separate stats dicts, so engine-for-engine counter equality is real."""
    table = SocketTable()
    listeners = make_listeners(table, 4)
    sock_map = SockArray(6)  # slots 4/5 stay empty: redirects fall through
    for i, sock in enumerate(listeners):
        sock_map.update(i, sock)
    if rng.random() < 0.3:  # sometimes a stale slot too
        table.close(listeners[0])
    rules = [random_rule(rng, map_size=6) for _ in range(rng.randrange(1, 10))]
    interp = SkLookupProgram("interp", sock_map, list(rules))
    source = SkLookupProgram("compiled", sock_map, list(rules))
    return interp, CompiledProgram(source), source


def test_differential_fuzz_1000_cases():
    """Verdict, socket, and stats equality over 1000 seeded cases."""
    for seed in range(1000):
        rng = random.Random(seed)
        interp, compiled, source = build_twin_programs(rng)
        for i in range(12):
            pkt = random_packet(rng)
            vi, si = interp.run(pkt)
            vc, sc = compiled.run(pkt)
            assert (vi, si) == (vc, sc), (
                f"seed={seed} pkt#{i} {pkt.tuple5}: "
                f"interpreter={(vi, si)} compiled={(vc, sc)}"
            )
        # Same rules, same packets ⇒ identical counters (compiles aside).
        want = dict(interp.stats, compiles=source.stats["compiles"])
        assert source.stats == want, f"seed={seed}: stats diverged"


def test_differential_multi_program_attach_order():
    """Both engines agree through the full LookupPath pipeline, including
    multi-program first-responder semantics, over seeded traffic."""
    rng = random.Random(4242)
    table_i, table_c = SocketTable(), SocketTable()
    paths = (LookupPath(table_i, engine=Engine.INTERPRETER),
             LookupPath(table_c, engine=Engine.COMPILED))
    for table, path in zip((table_i, table_c), paths):
        listeners = make_listeners(table, 4)
        for p in range(3):
            sock_map = SockArray(6)
            for i, sock in enumerate(listeners):
                sock_map.update(i, sock)
            prog_rng = random.Random(1000 + p)
            path.attach(SkLookupProgram(
                f"p{p}", sock_map,
                [random_rule(prog_rng, 6) for _ in range(5)],
            ))
    for _ in range(500):
        pkt = random_packet(rng)
        ri = paths[0].dispatch(pkt, deliver=False)
        rc = paths[1].dispatch(pkt, deliver=False)
        assert ri.stage is rc.stage
        # Sockets live in twin tables; compare by bound address identity.
        ai = ri.socket.local_addr if ri.socket else None
        ac = rc.socket.local_addr if rc.socket else None
        assert ai == ac
    assert paths[0].stage_counts == paths[1].stage_counts


# ---------------------------------------------------------------------------
# Pinned contracts


class TestCompiledContracts:
    def test_first_matching_rule_wins(self):
        table = SocketTable()
        first, second = make_listeners(table, 2)
        arr = SockArray(2)
        arr.update(0, first)
        arr.update(1, second)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=1),
        ])
        _, sock = prog.compiled().run(packet())
        assert sock is first

    def test_drop_short_circuits_later_redirect(self):
        table = SocketTable()
        (listener,) = make_listeners(table, 1)
        arr = SockArray(1)
        arr.update(0, listener)
        prog = SkLookupProgram("guard", arr, [
            MatchRule(Verdict.DROP, Protocol.TCP, (POOL,), 80, 80),
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        verdict, sock = prog.compiled().run(packet())
        assert verdict is Verdict.DROP and sock is None
        assert prog.stats["drops"] == 1 and prog.stats["redirects"] == 0

    def test_empty_and_stale_slots_fall_through(self):
        table = SocketTable()
        doomed, alive = make_listeners(table, 2)
        arr = SockArray(3)
        arr.update(1, doomed)
        arr.update(2, alive)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),  # empty
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=1),  # goes stale
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=2),
        ])
        compiled = prog.compiled()
        table.close(doomed)
        _, sock = compiled.run(packet())
        assert sock is alive
        assert prog.stats["fallthroughs"] == 2

    def test_explicit_passthrough_stops_evaluation(self):
        table = SocketTable()
        (listener,) = make_listeners(table, 1)
        arr = SockArray(1)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80),
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        verdict, sock = prog.compiled().run(packet())
        assert verdict is Verdict.PASS and sock is None

    def test_rule_with_prefixes_at_two_mask_lengths_matches_once(self):
        """A packet covered by the same rule through two prefix groups must
        not act (or fall through) twice."""
        arr = SockArray(1)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP,
                      (parse_prefix("192.0.2.0/24"), parse_prefix("192.0.0.0/16")),
                      80, 80, map_key=0),  # slot empty → one fallthrough
        ])
        verdict, sock = prog.compiled().run(packet())
        assert verdict is Verdict.PASS and sock is None
        assert prog.stats["fallthroughs"] == 1

    def test_quic_matches_udp_rules(self):
        table = SocketTable()
        udp_listener = table.bind_listen(Protocol.UDP, INTERNAL, 443, owner="quic")
        arr = SockArray(1)
        arr.update(0, udp_listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.UDP, (POOL,), 443, 443, map_key=0),
        ])
        _, sock = prog.compiled().run(packet(dport=443, proto=Protocol.QUIC))
        assert sock is udp_listener


# ---------------------------------------------------------------------------
# Cache invalidation


class TestCompileCache:
    def make_program(self):
        table = SocketTable()
        first, second = make_listeners(table, 2)
        arr = SockArray(2)
        arr.update(0, first)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0, label="pool"),
        ])
        return table, prog, first, second

    def test_compiled_form_is_cached(self):
        _, prog, *_ = self.make_program()
        assert prog.compiled() is prog.compiled()
        assert prog.stats["compiles"] == 1

    def test_add_rule_invalidates(self):
        _, prog, *_ = self.make_program()
        stale = prog.compiled()
        prog.add_rule(MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 443, 443, map_key=0))
        fresh = prog.compiled()
        assert fresh is not stale and fresh.version > stale.version
        assert prog.stats["compiles"] == 2
        _, sock = fresh.run(packet(dport=443))
        assert sock is not None  # new rule live in the fresh form

    def test_remove_rules_invalidates(self):
        _, prog, *_ = self.make_program()
        stale = prog.compiled()
        assert prog.remove_rules("pool") == 1
        fresh = prog.compiled()
        assert fresh is not stale
        _, sock = fresh.run(packet())
        assert sock is None

    def test_remove_rules_no_match_does_not_invalidate(self):
        _, prog, *_ = self.make_program()
        before = prog.compiled()
        assert prog.remove_rules("no-such-label") == 0
        assert prog.compiled() is before

    def test_map_update_needs_no_recompile(self):
        """§3.3 live re-pointing: map writes flow through the shared sock
        array; only *rule* changes recompile."""
        _, prog, first, second = self.make_program()
        compiled = prog.compiled()
        _, before = compiled.run(packet())
        prog.map.update(0, second)
        _, after = compiled.run(packet(sport=40001))
        assert before is first and after is second
        assert prog.stats["compiles"] == 1

    def test_lookup_path_follows_program_swap(self):
        """Crash/restore replaces the attached program object; the compiled
        path must pick up the successor's rules, not a stale form."""
        table, prog, first, second = self.make_program()
        path = LookupPath(table, engine=Engine.COMPILED)
        path.attach(prog)
        assert path.dispatch(packet(), deliver=False).socket is first
        path.detach(prog)
        arr = SockArray(1)
        arr.update(0, second)
        path.attach(SkLookupProgram("p2", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ]))
        assert path.dispatch(packet(sport=40001), deliver=False).socket is second


# ---------------------------------------------------------------------------
# Batch dispatch


class TestDispatchBatch:
    def build_path(self, engine=Engine.COMPILED):
        table = SocketTable()
        (listener,) = make_listeners(table, 1)
        arr = SockArray(1)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
            MatchRule(Verdict.DROP, Protocol.TCP, (parse_prefix("192.0.9.0/24"),), 1, 65535),
        ])
        path = LookupPath(table, engine=engine)
        path.attach(prog)
        return path, listener

    def batch(self):
        rng = random.Random(11)
        packets = []
        for _ in range(200):
            dst = rng.choice(["192.0.2.7", "192.0.9.1", "203.0.113.5"])
            packets.append(packet(dst=dst, sport=1024 + rng.randrange(60000)))
        return packets

    def test_batch_equals_per_packet_dispatch(self):
        single, _ = self.build_path()
        batched, _ = self.build_path()
        packets = self.batch()
        expected = [single.dispatch(p, deliver=False) for p in packets]
        got = batched.dispatch_batch(packets, deliver=False)
        assert [r.stage for r in got] == [r.stage for r in expected]
        assert single.stage_counts == batched.stage_counts

    def test_stage_counts_invariant(self):
        """One packet, one stage tick: Σ stage_counts == packets dispatched,
        however the packets were fed in."""
        path, _ = self.build_path()
        packets = self.batch()
        path.dispatch_batch(packets[:150], deliver=False)
        for p in packets[150:]:
            path.dispatch(p, deliver=False)
        assert sum(path.stage_counts.values()) == len(packets)
        assert path.batches == 1
        assert path.batch_packets == 150

    def test_batch_delivers(self):
        path, listener = self.build_path()
        hits = [packet(sport=50000 + i) for i in range(10)]
        path.dispatch_batch(hits)
        assert listener.enqueued == 10

    def test_batch_with_precomputed_flow_hashes(self):
        from repro.sockets.lookup import flow_hash
        table = SocketTable()
        table.bind_listen(Protocol.TCP, parse_address("192.0.2.5"), 80)
        path = LookupPath(table)
        packets = [packet(dst="192.0.2.5", sport=45000 + i) for i in range(20)]
        results = path.dispatch_batch(
            packets, deliver=False, flow_hashes=[flow_hash(p) for p in packets]
        )
        assert all(r.stage is LookupStage.LISTENER for r in results)

    def test_interpreter_engine_batch_parity(self):
        compiled, _ = self.build_path(Engine.COMPILED)
        interp, _ = self.build_path(Engine.INTERPRETER)
        packets = self.batch()
        rc = compiled.dispatch_batch(packets, deliver=False)
        ri = interp.dispatch_batch(packets, deliver=False)
        assert [r.stage for r in rc] == [r.stage for r in ri]

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            LookupPath(SocketTable(), engine="jit")
