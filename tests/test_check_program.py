"""The sk_lookup program verifier pass (repro.check.program), rule by rule."""

from repro.check import CheckContext, PolicyInfo, ProgramView
from repro.check.program import ProgramChecker, rule_covers, rules_overlap
from repro.core.pool import AddressPool
from repro.netsim.addr import parse_prefix
from repro.netsim.packet import Protocol
from repro.sockets.sklookup import MatchRule, Verdict


def rule(action=Verdict.PASS, proto=Protocol.TCP, prefixes=("192.0.2.0/24",),
         lo=1, hi=0xFFFF, key=None, label=""):
    return MatchRule(
        action=action,
        protocol=proto,
        prefixes=tuple(parse_prefix(p) for p in prefixes),
        port_lo=lo, port_hi=hi, map_key=key, label=label,
    )


def view(rules, live=(0,), size=4, name="prog", path="edge"):
    return ProgramView(name=name, rules=tuple(rules), map_size=size,
                       live_slots=frozenset(live), path=path)


def check(*programs, policies=(), ports=(80, 443)):
    ctx = CheckContext(programs=list(programs), policies=list(policies),
                       service_ports=ports)
    return ProgramChecker().run(ctx)


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestMatchAlgebra:
    def test_cover_is_conjunctive(self):
        broad = rule(prefixes=("192.0.2.0/24",))
        narrow = rule(prefixes=("192.0.2.0/25",), lo=443, hi=443)
        assert rule_covers(broad, narrow)
        assert not rule_covers(narrow, broad)

    def test_any_protocol_covers_specific_not_vice_versa(self):
        any_proto = rule(proto=None)
        tcp = rule(proto=Protocol.TCP)
        assert rule_covers(any_proto, tcp)
        assert not rule_covers(tcp, any_proto)

    def test_empty_prefixes_mean_match_any_address(self):
        catch_all = rule(prefixes=())
        scoped = rule(prefixes=("192.0.2.0/24",))
        assert rule_covers(catch_all, scoped)
        assert not rule_covers(scoped, catch_all)

    def test_overlap_needs_all_three_axes(self):
        a = rule(prefixes=("192.0.2.0/25",), lo=80, hi=80)
        assert rules_overlap(a, rule(prefixes=("192.0.2.0/24",), lo=80, hi=80))
        # Disjoint ports / prefixes / protocols each kill the overlap.
        assert not rules_overlap(a, rule(prefixes=("192.0.2.0/24",), lo=443, hi=443))
        assert not rules_overlap(a, rule(prefixes=("192.0.2.128/25",), lo=80, hi=80))
        assert not rules_overlap(a, rule(proto=Protocol.UDP, lo=80, hi=80))

    def test_quic_rides_udp(self):
        # QUIC's wire protocol is UDP: the match spaces share packets.
        assert rules_overlap(rule(proto=Protocol.QUIC), rule(proto=Protocol.UDP))


class TestSanitySK001:
    def test_bad_port_range(self):
        findings = check(view([rule(lo=500, hi=80, key=0)]))
        assert any(f.rule == "SK001" and f.name == "bad-port-range" for f in findings)

    def test_mixed_family(self):
        findings = check(view([rule(prefixes=("192.0.2.0/24", "2001:db8::/64"), key=0)]))
        assert any(f.rule == "SK001" and f.name == "mixed-family" for f in findings)

    def test_drop_with_map_key(self):
        findings = check(view([rule(action=Verdict.DROP, key=0)]))
        assert any(f.rule == "SK001" and f.name == "drop-with-map-key" for f in findings)

    def test_map_key_out_of_range(self):
        findings = check(view([rule(key=9)], size=4))
        assert any(f.rule == "SK001" and f.name == "map-key-range" for f in findings)

    def test_clean_program_has_no_findings(self):
        findings = check(view([rule(key=0)], live=(0,)))
        assert findings == []


class TestShadowingSK002:
    def test_terminal_rule_shadows_covered_later_rule(self):
        findings = check(view([
            rule(key=0, label="broad"),
            rule(prefixes=("192.0.2.0/25",), lo=443, hi=443, key=0, label="dead"),
        ], live=(0,)))
        assert rules_of(findings) == ["SK002"]
        assert "shadowed by rule 0" in findings[0].message
        assert "dead" in findings[0].location

    def test_empty_slot_redirect_is_not_terminal(self):
        # The earlier redirect's slot is empty: dispatch falls through, the
        # later rule is reachable, so there is no shadow (only the SK004).
        findings = check(view([
            rule(key=1, label="broad"),
            rule(prefixes=("192.0.2.0/25",), key=0, label="reachable"),
        ], live=(0,)))
        assert "SK002" not in rules_of(findings)

    def test_drop_shadows_too(self):
        findings = check(view([
            rule(action=Verdict.DROP),
            rule(prefixes=("192.0.2.0/25",), key=0),
        ], live=(0,)))
        assert "SK002" in rules_of(findings)

    def test_partial_overlap_is_not_a_shadow(self):
        findings = check(view([
            rule(prefixes=("192.0.2.0/25",), key=0),
            rule(prefixes=("192.0.2.0/24",), key=0),  # wider: still reachable
        ], live=(0,)))
        assert "SK002" not in rules_of(findings)


class TestSlotsSK004SK005:
    def test_redirect_to_empty_slot_warns(self):
        findings = check(view([rule(key=2)], live=(0,)))
        sk004 = [f for f in findings if f.rule == "SK004"]
        assert len(sk004) == 1 and "slot 2" in sk004[0].message

    def test_live_slot_without_rule_warns(self):
        findings = check(view([rule(key=0)], live=(0, 3)))
        sk005 = [f for f in findings if f.rule == "SK005"]
        assert len(sk005) == 1 and "slot 3" in sk005[0].message


class TestDropVsPoliciesSK006:
    def _policy(self, active=None):
        pool = AddressPool(parse_prefix("192.0.2.0/24"),
                           active=parse_prefix(active) if active else None,
                           name="web-pool")
        return PolicyInfo(name="web", pool=pool, ttl=30)

    def test_drop_overlapping_active_set_errors(self):
        findings = check(
            view([rule(action=Verdict.DROP, prefixes=("192.0.2.128/25",), lo=80, hi=80),
                  rule(key=0)]),
            policies=[self._policy()],
        )
        assert "SK006" in rules_of(findings)

    def test_drop_outside_active_set_is_fine(self):
        findings = check(
            view([rule(action=Verdict.DROP, prefixes=("192.0.2.128/25",), lo=80, hi=80),
                  rule(prefixes=("192.0.2.0/25",), key=0)]),
            policies=[self._policy(active="192.0.2.0/25")],
        )
        assert "SK006" not in rules_of(findings)

    def test_drop_outside_service_ports_is_fine(self):
        findings = check(
            view([rule(action=Verdict.DROP, lo=22, hi=22), rule(key=0)]),
            policies=[self._policy()],
        )
        assert "SK006" not in rules_of(findings)

    def test_drop_vs_explicit_active_list(self):
        pool = AddressPool(parse_prefix("192.0.2.0/24"), name="web-pool")
        pool.set_active([parse_prefix("192.0.2.200/32").first])
        findings = check(
            view([rule(action=Verdict.DROP, prefixes=("192.0.2.128/25",)),
                  rule(key=0)]),
            policies=[PolicyInfo(name="web", pool=pool, ttl=30)],
        )
        assert "SK006" in rules_of(findings)


class TestCrossProgramSK003:
    def test_overlapping_redirects_on_one_path_warn(self):
        first = view([rule(key=0)], name="a", path="shared")
        second = view([rule(prefixes=("192.0.2.0/25",), key=1)],
                      live=(1,), name="b", path="shared")
        findings = check(first, second)
        sk003 = [f for f in findings if f.rule == "SK003"]
        assert len(sk003) == 1
        assert sk003[0].location.startswith("b#rule0")
        assert "attached earlier" in sk003[0].message

    def test_different_paths_do_not_conflict(self):
        first = view([rule(key=0)], name="a", path="p1")
        second = view([rule(key=1)], live=(1,), name="b", path="p2")
        assert rules_of(check(first, second)) == []

    def test_earlier_empty_slot_does_not_claim_packets(self):
        first = view([rule(key=2)], live=(0,), name="a", path="shared")
        second = view([rule(key=0)], live=(0,), name="b", path="shared")
        findings = check(first, second)
        assert "SK003" not in rules_of(findings)
