"""Datacenter pipeline and whole-CDN integration, incl. the drop-in swap."""

import random

import pytest

from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns import A, RRType, Zone, ZoneAnswerSource
from repro.dns.wire import Message
from repro.edge import ListenMode
from repro.netsim.addr import parse_address
from repro.netsim.packet import FiveTuple, Protocol
from repro.web.http import HTTPVersion, Request, Status
from repro.web.tls import ClientHello

from conftest import POOL_PREFIX, make_cdn, make_client, make_policy_cdn


class TestDatacenterPipeline:
    def test_connect_and_serve(self, clock):
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        dc = cdn.datacenters["ashburn"]
        t = FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 40000,
                      POOL_PREFIX.address_at(5), 443)
        conn = dc.connect(t, ClientHello(sni=hostnames[0]), HTTPVersion.H2)
        response = dc.serve(conn, Request(hostnames[0]))
        assert response.status is Status.OK
        assert dc.traffic.total_requests() == 1
        assert dc.connection_count() == 1

    def test_flow_affinity_within_dc(self, clock):
        """Same 5-tuple → same server (ECMP + L4LB), every time."""
        cdn, hostnames = make_cdn(servers_per_dc=4)
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        dc = cdn.datacenters["ashburn"]
        from repro.netsim.packet import Packet
        t = FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 41000,
                      POOL_PREFIX.address_at(9), 443)
        choice1 = dc.l4lb.admit(Packet(t), dc.ecmp.route(Packet(t)))
        # Even if a later ECMP decision differed (server set change), the
        # L4LB keeps the established flow on its original server.
        choice2 = dc.l4lb.admit(Packet(t), "someone-else")
        assert choice2 == choice1

    def test_serve_unknown_connection_rejected(self, clock):
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,))
        from repro.web.http import Connection
        from repro.web.tls import Certificate
        ghost = Connection(HTTPVersion.H2, POOL_PREFIX.first, 443, Certificate("x"))
        with pytest.raises(RuntimeError):
            cdn.datacenters["ashburn"].serve(ghost, Request("a.example.com"))

    def test_dns_requires_configuration(self, clock):
        cdn, _ = make_cdn()
        with pytest.raises(RuntimeError):
            cdn.datacenters["ashburn"].handle_dns(b"\x00" * 12)

    def test_traffic_sampling(self, clock):
        from repro.edge.datacenter import TrafficLog
        log = TrafficLog(sample_rate=0.5, rng=random.Random(1))
        for _ in range(2000):
            log.record_request(POOL_PREFIX.first, 100)
        assert 800 < log.total_requests() < 1200

    def test_traffic_log_validation(self):
        from repro.edge.datacenter import TrafficLog
        with pytest.raises(ValueError):
            TrafficLog(sample_rate=0.0)
        with pytest.raises(ValueError):
            TrafficLog(sample_rate=1.5)

    def test_sampling_is_flow_coherent(self):
        """Bugfix: the log used to flip an independent coin per record, so
        a sampled connection's requests could land outside the sample and
        vice versa — requests-per-connection ratios were garbage at any
        rate < 1.  The coin is now flipped once per connection and every
        request inherits it: with 3 requests per connection the sampled
        ratio is *exactly* 3, not 3-in-expectation."""
        from repro.edge.datacenter import TrafficLog
        log = TrafficLog(sample_rate=0.3, rng=random.Random(21))
        addr = POOL_PREFIX.address_at(7)
        for _ in range(1000):
            sampled = log.record_connection(addr)
            for _ in range(3):
                log.record_request(addr, 100, sampled=sampled)
        entry = log.by_address()[addr]
        assert 0 < entry.connections < 1000  # sampling actually thinned
        assert entry.requests == 3 * entry.connections
        assert entry.bytes == 100 * entry.requests

    def test_scaled_by_address_inverts_sampling(self):
        """Horvitz–Thompson scale-up: sampled counts × 1/rate estimate the
        true totals, and flow coherence keeps the scaled ratio exact."""
        from repro.edge.datacenter import TrafficLog
        log = TrafficLog(sample_rate=0.25, rng=random.Random(5))
        addr = POOL_PREFIX.address_at(3)
        for _ in range(4000):
            sampled = log.record_connection(addr)
            log.record_request(addr, 50, sampled=sampled)
        scaled = log.scaled_by_address()[addr]
        assert abs(scaled.connections - 4000) < 4 * (4000 * 0.25) ** 0.5 / 0.25
        assert scaled.requests == scaled.connections
        assert abs(log.estimated_total_requests() - 4000) < 1000

    def test_datacenter_requests_inherit_connection_sampling(self, clock):
        """End to end through connect/serve: per-address requests stay an
        exact multiple of connections at sample_rate < 1."""
        from repro.edge.datacenter import TrafficLog
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        dc = cdn.datacenters["ashburn"]
        dc.traffic = TrafficLog(sample_rate=0.5, rng=random.Random(17))
        dst = POOL_PREFIX.address_at(5)
        for i in range(400):
            t = FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 30000 + i, dst, 443)
            conn = dc.connect(t, ClientHello(sni=hostnames[0]), HTTPVersion.H2)
            dc.serve(conn, Request(hostnames[0]))
            dc.serve(conn, Request(hostnames[0]))
        entry = dc.traffic.by_address()[dst]
        assert 0 < entry.connections < 400
        assert entry.requests == 2 * entry.connections

    def test_connect_and_serve_batch_match_sequential(self, clock):
        """The batched ingress/serve paths are the sequential ones minus
        per-packet overhead: same owners, same traffic accounting."""
        cdn_a, hostnames = make_cdn(servers_per_dc=4)
        cdn_b, _ = make_cdn(servers_per_dc=4)
        for cdn in (cdn_a, cdn_b):
            cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        dc_seq = cdn_a.datacenters["ashburn"]
        dc_bat = cdn_b.datacenters["ashburn"]
        requests = [
            (FiveTuple(Protocol.TCP, parse_address("100.64.0.9"), 20000 + i,
                       POOL_PREFIX.address_at(i % 32), 443),
             ClientHello(sni=hostnames[i % len(hostnames)]), HTTPVersion.H2)
            for i in range(64)
        ]
        seq_conns = [dc_seq.connect(*req) for req in requests]
        bat_conns = dc_bat.connect_batch(requests)
        assert [dc_seq._conn_owner[c.conn_id] for c in seq_conns] == \
               [dc_bat._conn_owner[c.conn_id] for c in bat_conns]
        assert dc_bat.connection_count() == 64

        pairs = [(c, Request(req[1].sni)) for c, req in zip(bat_conns, requests)]
        responses = dc_bat.serve_batch(pairs)
        assert all(r.status is Status.OK for r in responses)
        assert dc_bat.traffic.total_requests() == 64

    def test_serve_batch_unknown_connection_rejected(self, clock):
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        from repro.web.http import Connection
        from repro.web.tls import Certificate
        ghost = Connection(HTTPVersion.H2, POOL_PREFIX.first, 443, Certificate("x"))
        with pytest.raises(RuntimeError):
            cdn.datacenters["ashburn"].serve_batch([(ghost, Request(hostnames[0]))])


class TestCDNEndToEnd:
    def test_fetch_via_policy_dns(self, clock):
        cdn, hostnames, engine, pool = make_policy_cdn(clock)
        client = make_client(cdn, clock, "eyeball:us:0")
        outcome = client.fetch(hostnames[0])
        assert outcome.response.status is Status.OK
        assert outcome.connection.remote_addr in POOL_PREFIX

    def test_client_lands_in_regional_pop(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        us_client = make_client(cdn, clock, "eyeball:us:1", name="us")
        eu_client = make_client(cdn, clock, "eyeball:eu:1", name="eu")
        us_client.fetch(hostnames[0])
        eu_client.fetch(hostnames[1])
        assert cdn.datacenters["ashburn"].traffic.total_requests() == 1
        assert cdn.datacenters["london"].traffic.total_requests() == 1

    def test_unrouted_client_refused(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        transport = cdn.transport_for("no-such-as")
        with pytest.raises(ConnectionRefusedError):
            transport.handshake("x", POOL_PREFIX.first, 443, ClientHello(sni=hostnames[0]),
                                HTTPVersion.H2)

    def test_per_query_randomization_observed_on_wire(self, clock):
        """Ask the same PoP the same question many times: addresses vary
        across the pool — §3.2's i.i.d. property, measured at the wire."""
        cdn, hostnames, *_ = make_policy_cdn(clock, seed=3)
        dc = cdn.datacenters["ashburn"]
        seen = set()
        for i in range(200):
            wire = Message.query(i, hostnames[0], RRType.A).encode()
            response = Message.decode(dc.handle_dns(wire))
            address = response.answers[0].rdata.address
            assert address in POOL_PREFIX
            seen.add(address)
        assert len(seen) > 100  # 200 draws over 256 addresses

    def test_hostnames_all_appear_on_shared_addresses(self, clock):
        """§3.2: 'all hostnames will appear on all of the addresses in the
        pool given a sufficient window' — distinct hostnames draw from the
        same pool, independent of name."""
        cdn, hostnames, *_ = make_policy_cdn(clock, seed=5)
        dc = cdn.datacenters["ashburn"]
        per_host_addrs: dict[str, set] = {}
        for i, hostname in enumerate(hostnames[:6]):
            for j in range(60):
                wire = Message.query(i * 100 + j, hostname, RRType.A).encode()
                response = Message.decode(dc.handle_dns(wire))
                per_host_addrs.setdefault(hostname, set()).add(
                    response.answers[0].rdata.address
                )
        sets = list(per_host_addrs.values())
        union = set().union(*sets)
        for s in sets:
            assert len(s & union) == len(s)
            assert len(s) > 15  # every hostname spreads over many addresses


class TestDropInSwap:
    """§4.2: the architecture is 'a drop-in software modification' — only
    the answer source changes; the wire format, server scaffolding, edge,
    and cache are bit-for-bit the same code paths."""

    def build_conventional(self, clock, cdn, hostnames):
        zone = Zone("example.com")
        rng = random.Random(11)
        for hostname in hostnames:
            zone.add_address(hostname, A(POOL_PREFIX.random_address(rng)), ttl=30)
        cdn.set_answer_source(ZoneAnswerSource([zone]))

    def test_swap_changes_only_answers(self, clock):
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        self.build_conventional(clock, cdn, hostnames)
        client = make_client(cdn, clock, "eyeball:us:0", name="before")
        before = client.fetch(hostnames[0])
        assert before.response.status is Status.OK

        # Swap in the policy engine: one call, nothing else touched.
        engine = PolicyEngine(random.Random(2))
        engine.add(Policy("agile", AddressPool(POOL_PREFIX), match={}, ttl=30))
        cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))

        client2 = make_client(cdn, clock, "eyeball:us:0", name="after")
        after = client2.fetch(hostnames[0])
        assert after.response.status is Status.OK
        assert after.connection.remote_addr in POOL_PREFIX

    def test_response_shape_identical_across_sources(self, clock):
        """Same query, both sources: flags, sections, rcode all match;
        only the address bits differ."""
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,))
        self.build_conventional(clock, cdn, hostnames)
        dc = cdn.datacenters["ashburn"]
        wire = Message.query(99, hostnames[0], RRType.A).encode()
        conventional = Message.decode(dc.handle_dns(wire))

        engine = PolicyEngine(random.Random(2))
        engine.add(Policy("agile", AddressPool(POOL_PREFIX), match={}, ttl=30))
        cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
        agile = Message.decode(dc.handle_dns(wire))

        assert conventional.flags == agile.flags
        assert conventional.questions == agile.questions
        assert len(conventional.answers) == len(agile.answers) == 1
        assert conventional.answers[0].name == agile.answers[0].name
        assert conventional.answers[0].rrtype == agile.answers[0].rrtype
        assert agile.answers[0].rdata.address in POOL_PREFIX

    def test_fallback_for_unmatched_queries(self, clock):
        """'Queries that do not match are resolved as normal' (§4.3)."""
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,))
        zone = Zone("example.com")
        zone.add_address(hostnames[0], A(parse_address("198.51.100.99")), ttl=300)
        engine = PolicyEngine(random.Random(2))
        # Policy matches only ENTERPRISE accounts at london.
        engine.add(Policy(
            "narrow", AddressPool(POOL_PREFIX),
            match={"pop": {"london"}, "account_type": {"enterprise"}}, ttl=30,
        ))
        source = PolicyAnswerSource(engine, cdn.registry, fallback=ZoneAnswerSource([zone]))
        cdn.set_answer_source(source)
        dc = cdn.datacenters["ashburn"]  # wrong PoP: must fall through
        wire = Message.query(1, hostnames[0], RRType.A).encode()
        response = Message.decode(dc.handle_dns(wire))
        assert str(response.answers[0].rdata.address) == "198.51.100.99"
        assert source.log.fallback_answers == 1
