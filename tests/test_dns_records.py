"""DNS object model: names, RDATA validation, records."""

import pytest

from repro.dns.records import (
    A,
    AAAA,
    CNAME,
    NS,
    SOA,
    TXT,
    DNSNameError,
    DomainName,
    Question,
    ResourceRecord,
    RRClass,
    RRType,
)
from repro.netsim.addr import parse_address


class TestDomainName:
    def test_case_insensitive_equality(self):
        assert DomainName.from_text("WWW.Example.COM") == DomainName.from_text("www.example.com")

    def test_trailing_dot_ignored(self):
        assert DomainName.from_text("example.com.") == DomainName.from_text("example.com")

    def test_root(self):
        root = DomainName.root()
        assert root.is_root and str(root) == "."
        assert DomainName.from_text(".") == root

    def test_str_is_fqdn(self):
        assert str(DomainName.from_text("a.b.c")) == "a.b.c."

    def test_label_too_long_rejected(self):
        with pytest.raises(DNSNameError):
            DomainName.from_text("x" * 64 + ".com")

    def test_name_too_long_rejected(self):
        label = "a" * 63
        with pytest.raises(DNSNameError):
            DomainName.from_text(".".join([label] * 5))

    def test_empty_label_rejected(self):
        with pytest.raises(DNSNameError):
            DomainName(("a", "", "com"))

    def test_constructor_requires_lowercase(self):
        with pytest.raises(DNSNameError):
            DomainName(("WWW", "example", "com"))

    def test_subdomain_of(self):
        www = DomainName.from_text("www.example.com")
        apex = DomainName.from_text("example.com")
        assert www.is_subdomain_of(apex)
        assert apex.is_subdomain_of(apex)
        assert not apex.is_subdomain_of(www)
        assert www.is_subdomain_of(DomainName.root())

    def test_parent_and_child(self):
        n = DomainName.from_text("www.example.com")
        assert n.parent() == DomainName.from_text("example.com")
        assert n.parent().child("www") == n
        with pytest.raises(DNSNameError):
            DomainName.root().parent()

    def test_len_is_label_count(self):
        assert len(DomainName.from_text("a.b.c")) == 3
        assert len(DomainName.root()) == 0


class TestRData:
    def test_a_requires_v4(self):
        with pytest.raises(ValueError):
            A(parse_address("2001:db8::1"))
        assert A(parse_address("192.0.2.1")).rdata_text() == "192.0.2.1"

    def test_aaaa_requires_v6(self):
        with pytest.raises(ValueError):
            AAAA(parse_address("192.0.2.1"))
        assert AAAA(parse_address("2001:db8::1")).rrtype == RRType.AAAA

    def test_cname_ns_text(self):
        target = DomainName.from_text("edge.cdn.net")
        assert CNAME(target).rdata_text() == "edge.cdn.net."
        assert NS(target).rdata_text() == "edge.cdn.net."

    def test_txt_length_limit(self):
        with pytest.raises(ValueError):
            TXT(("x" * 256,))
        assert TXT(("hello", "world")).rdata_text() == '"hello" "world"'

    def test_soa_text(self):
        soa = SOA(
            DomainName.from_text("ns1.example.com"),
            DomainName.from_text("hostmaster.example.com"),
            7, 3600, 600, 86400, 300,
        )
        assert "7 3600 600 86400 300" in soa.rdata_text()


class TestResourceRecord:
    def test_ttl_range_enforced(self):
        rdata = A(parse_address("192.0.2.1"))
        name = DomainName.from_text("x.example.com")
        with pytest.raises(ValueError):
            ResourceRecord(name, rdata, ttl=-1)
        with pytest.raises(ValueError):
            ResourceRecord(name, rdata, ttl=1 << 31)

    def test_with_ttl(self):
        rr = ResourceRecord(DomainName.from_text("x.com"), A(parse_address("1.2.3.4")), 300)
        assert rr.with_ttl(10).ttl == 10
        assert rr.ttl == 300  # original untouched

    def test_rrtype_from_rdata(self):
        rr = ResourceRecord(DomainName.from_text("x.com"), A(parse_address("1.2.3.4")), 300)
        assert rr.rrtype == RRType.A

    def test_str_presentation(self):
        rr = ResourceRecord(DomainName.from_text("x.com"), A(parse_address("1.2.3.4")), 60)
        assert str(rr) == "x.com. 60 IN A 1.2.3.4"

    def test_question_str(self):
        q = Question(DomainName.from_text("x.com"), RRType.AAAA)
        assert str(q) == "x.com. IN AAAA"
        assert q.rrclass == RRClass.IN
