"""BSD socket semantics: the §3.3 'before' picture, limitation by limitation."""

import pytest

from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Packet, Protocol
from repro.sockets.errors import AddressInUseError, InvalidSocketStateError
from repro.sockets.socktable import (
    RECEIVE_QUEUE_DEPTH,
    SOCKET_MEM_BYTES,
    SocketState,
    SocketTable,
)

A1 = parse_address("192.0.2.1")
A2 = parse_address("192.0.2.2")


def tuple5(dst=A1, dport=80, sport=40000, proto=Protocol.TCP):
    return FiveTuple(proto, parse_address("198.51.100.9"), sport, dst, dport)


class TestBindSemantics:
    def test_simple_bind_listen(self):
        table = SocketTable()
        sock = table.bind_listen(Protocol.TCP, A1, 80)
        assert sock.state is SocketState.LISTENING
        assert sock.local_addr == A1 and sock.local_port == 80

    def test_exact_duplicate_eaddrinuse(self):
        table = SocketTable()
        table.bind_listen(Protocol.TCP, A1, 80)
        with pytest.raises(AddressInUseError):
            table.bind_listen(Protocol.TCP, A1, 80)

    def test_different_ports_coexist(self):
        table = SocketTable()
        table.bind_listen(Protocol.TCP, A1, 80)
        table.bind_listen(Protocol.TCP, A1, 443)

    def test_different_protocols_coexist(self):
        """An authoritative DNS opens :53/tcp AND :53/udp (§3.3)."""
        table = SocketTable()
        table.bind_listen(Protocol.TCP, A1, 53)
        table.bind_listen(Protocol.UDP, A1, 53)
        assert table.listener_count() == 2

    def test_wildcard_claims_port_exclusively(self):
        """The paper's headline conflict: specific bind after wildcard fails."""
        table = SocketTable()
        table.bind_listen(Protocol.TCP, None, 80)
        with pytest.raises(AddressInUseError):
            table.bind_listen(Protocol.TCP, A1, 80)

    def test_specific_blocks_later_wildcard(self):
        table = SocketTable()
        table.bind_listen(Protocol.TCP, A1, 80)
        with pytest.raises(AddressInUseError):
            table.bind_listen(Protocol.TCP, None, 80)

    def test_reuseport_allows_sharing(self):
        table = SocketTable()
        table.bind_listen(Protocol.UDP, A1, 443, reuseport=True)
        table.bind_listen(Protocol.UDP, A1, 443, reuseport=True)
        assert table.listener_count() == 2

    def test_reuseport_must_be_mutual(self):
        table = SocketTable()
        table.bind_listen(Protocol.TCP, A1, 80, reuseport=False)
        with pytest.raises(AddressInUseError):
            table.bind_listen(Protocol.TCP, A1, 80, reuseport=True)

    def test_double_bind_invalid_state(self):
        table = SocketTable()
        sock = table.socket(Protocol.TCP)
        table.bind(sock, A1, 80)
        with pytest.raises(InvalidSocketStateError):
            table.bind(sock, A2, 81)

    def test_listen_requires_bound(self):
        table = SocketTable()
        sock = table.socket(Protocol.TCP)
        with pytest.raises(InvalidSocketStateError):
            table.listen(sock)

    def test_port_zero_rejected(self):
        table = SocketTable()
        sock = table.socket(Protocol.TCP)
        with pytest.raises(ValueError):
            table.bind(sock, A1, 0)

    def test_failed_bind_closes_socket(self):
        table = SocketTable()
        table.bind_listen(Protocol.TCP, A1, 80)
        before = len(table.sockets())
        with pytest.raises(AddressInUseError):
            table.bind_listen(Protocol.TCP, A1, 80)
        assert len(table.sockets()) == before

    def test_close_releases_binding(self):
        table = SocketTable()
        sock = table.bind_listen(Protocol.TCP, A1, 80)
        table.close(sock)
        table.bind_listen(Protocol.TCP, A1, 80)  # no conflict now

    def test_quic_socket_is_udp(self):
        table = SocketTable()
        sock = table.socket(Protocol.QUIC)
        assert sock.protocol is Protocol.UDP


class TestScalingCosts:
    def test_memory_scales_linearly_with_binds(self):
        """Limitation (i): a /24 on one port costs 256 sockets of memory."""
        table = SocketTable()
        pool = parse_prefix("192.0.2.0/24")
        for addr in pool.addresses():
            table.bind_listen(Protocol.TCP, addr, 80)
        assert table.memory_bytes() == 256 * SOCKET_MEM_BYTES
        assert table.listener_count() == 256

    def test_wildcard_costs_one_socket(self):
        table = SocketTable()
        table.bind_listen(Protocol.TCP, None, 80)
        assert table.memory_bytes() == SOCKET_MEM_BYTES


class TestEstablishAndQueues:
    def test_establish_creates_connected_child(self):
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, A1, 80)
        t = tuple5()
        child = table.establish(listener, t)
        assert child.state is SocketState.CONNECTED
        assert child.local_addr == t.dst and child.remote == (t.src, t.src_port)
        assert table.connected_count() == 1

    def test_establish_on_unbound_address_allowed(self):
        """The sk_lookup property: the child's local address need not be
        one the listener was bound to."""
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, A1, 80)
        child = table.establish(listener, tuple5(dst=A2))
        assert child.local_addr == A2

    def test_duplicate_connection_rejected(self):
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, A1, 80)
        t = tuple5()
        table.establish(listener, t)
        with pytest.raises(AddressInUseError):
            table.establish(listener, t)

    def test_establish_requires_listening(self):
        table = SocketTable()
        sock = table.socket(Protocol.TCP)
        with pytest.raises(InvalidSocketStateError):
            table.establish(sock, tuple5())

    def test_find_connected(self):
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, A1, 80)
        t = tuple5()
        child = table.establish(listener, t)
        assert table.find_connected(Packet(t)) is child
        assert table.find_connected(Packet(tuple5(sport=40001))) is None

    def test_close_connected_removes_entry(self):
        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, A1, 80)
        t = tuple5()
        child = table.establish(listener, t)
        table.close(child)
        assert table.find_connected(Packet(t)) is None

    def test_receive_queue_overflow_drops(self):
        """One receive queue per socket: floods on a shared socket drop
        legitimate traffic (the INADDR_ANY hazard, §3.3)."""
        table = SocketTable()
        sock = table.bind_listen(Protocol.UDP, None, 53)
        pkt = Packet(tuple5(dport=53, proto=Protocol.UDP))
        for _ in range(RECEIVE_QUEUE_DEPTH + 10):
            sock.deliver(pkt)
        assert sock.enqueued == RECEIVE_QUEUE_DEPTH
        assert sock.dropped == 10

    def test_drain(self):
        table = SocketTable()
        sock = table.bind_listen(Protocol.UDP, A1, 53)
        pkt = Packet(tuple5(dport=53, proto=Protocol.UDP))
        for _ in range(5):
            sock.deliver(pkt)
        assert len(sock.drain(3)) == 3
        assert len(sock.drain()) == 2

    def test_per_ip_isolation_under_flood(self):
        """Footnote 2: one-socket-per-IP isolates a flood to one queue."""
        table = SocketTable()
        s1 = table.bind_listen(Protocol.UDP, A1, 53)
        s2 = table.bind_listen(Protocol.UDP, A2, 53)
        flood = Packet(tuple5(dst=A1, dport=53, proto=Protocol.UDP))
        for _ in range(RECEIVE_QUEUE_DEPTH * 2):
            s1.deliver(flood)
        legit = Packet(tuple5(dst=A2, dport=53, proto=Protocol.UDP))
        assert s2.deliver(legit)
        assert s2.dropped == 0


class TestFindListener:
    def test_exact_beats_wildcard(self):
        table = SocketTable()
        wild = table.bind_listen(Protocol.TCP, None, 443)
        table.close(wild)
        specific = table.bind_listen(Protocol.TCP, A1, 443)
        wild2 = table.bind_listen(Protocol.UDP, None, 443)
        assert table.find_listener(Protocol.TCP, A1, 443) is specific
        assert table.find_listener(Protocol.UDP, A1, 443) is wild2

    def test_reuseport_group_selection_is_stable(self):
        table = SocketTable()
        socks = [table.bind_listen(Protocol.UDP, A1, 443, reuseport=True) for _ in range(4)]
        chosen = table.find_listener(Protocol.UDP, A1, 443, flow_hash=7)
        assert chosen is socks[7 % 4]
        assert table.find_listener(Protocol.UDP, A1, 443, flow_hash=7) is chosen

    def test_miss_returns_none(self):
        table = SocketTable()
        assert table.find_listener(Protocol.TCP, A1, 80) is None
