"""The Deployment builder: assembly, manoeuvres, spec-driven policies."""

import pytest

from repro.check.plan import PlanError
from repro.deploy import Deployment, DeploymentConfig
from repro.faults import FaultInjector, FaultPlan, FaultTargets, PopWithdrawal
from repro.netsim.addr import parse_prefix
from repro.web.http import Status


@pytest.fixture(scope="module")
def deployment():
    return Deployment.build(DeploymentConfig(num_hostnames=40, clients_per_region=3))


class TestBuild:
    def test_end_to_end_fetch(self, deployment):
        client = deployment.new_client("eyeball:us:0")
        outcome = client.fetch(deployment.universe.site(0))
        assert outcome.response.status is Status.OK
        assert outcome.connection.remote_addr in parse_prefix("192.0.0.0/20")

    def test_pops_match_regions(self, deployment):
        assert set(deployment.cdn.pop_names()) == {"ashburn", "london"}

    def test_backup_announced_and_listening(self, deployment):
        backup = parse_prefix("203.0.113.0/24")
        assert deployment.network.pop_for("eyeball:us:0", backup.first) is not None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeploymentConfig(listen_mode="carrier-pigeon")
        with pytest.raises(ValueError):
            DeploymentConfig(regions={})


class TestManoeuvres:
    def test_shrink_active(self):
        deployment = Deployment.build(DeploymentConfig(num_hostnames=20))
        op = deployment.shrink_active("192.0.2.1/32")
        assert deployment.pool.size == 1
        client = deployment.new_client("eyeball:us:0")
        outcome = client.fetch(deployment.universe.site(0))
        assert str(outcome.connection.remote_addr) == "192.0.2.1"
        assert op.propagation_horizon == deployment.clock.now() + 30

    def test_failover_to_backup(self):
        deployment = Deployment.build(DeploymentConfig(num_hostnames=20))
        deployment.failover_to_backup()
        client = deployment.new_client("eyeball:eu:0")
        outcome = client.fetch(deployment.universe.site(1))
        assert outcome.connection.remote_addr in parse_prefix("203.0.113.0/24")

    def test_failover_requires_backup(self):
        deployment = Deployment.build(DeploymentConfig(num_hostnames=10, backup=None))
        with pytest.raises(RuntimeError):
            deployment.failover_to_backup()

    def test_shrink_outside_pool_raises_plan_error(self):
        """Satellite regression: a shrink target not derived from the
        current pool must fail with the typed PlanError naming both
        prefixes, not a generic pool/value error from deeper layers."""
        deployment = Deployment.build(DeploymentConfig(num_hostnames=10))
        with pytest.raises(PlanError, match=r"198\.51\.100\.0/24.*192\.0\.0\.0/20"):
            deployment.shrink_active("198.51.100.0/24")
        # IPv6 target against an IPv4 pool: same typed refusal.
        with pytest.raises(PlanError, match=r"2001:db8::/64.*192\.0\.0\.0/20"):
            deployment.shrink_active("2001:db8::/64")
        # The policy was never touched: still the full advertisement.
        assert deployment.engine.get("default").pool.active_prefix \
            == parse_prefix("192.0.0.0/20")

    def test_failover_into_current_pool_raises_plan_error(self):
        """Satellite regression: a backup carved out of the advertised
        pool is not a failover — it moves traffic back into the failed
        space.  Before the typed check this was silently accepted."""
        deployment = Deployment.build(DeploymentConfig(
            num_hostnames=10, backup="192.0.8.0/24",
        ))
        with pytest.raises(PlanError, match=r"192\.0\.8\.0/24.*192\.0\.0\.0/20"):
            deployment.failover_to_backup()

    def test_failover_recovers_from_injected_total_withdrawal(self):
        """The §6 mitigation drill: the advertised prefix is withdrawn
        everywhere (route leak / takedown); failing over to the backup
        restores service within one TTL — no BGP repair needed."""
        deployment = Deployment.build(DeploymentConfig(num_hostnames=20))
        advertised = parse_prefix(deployment.config.advertised)
        plan = FaultPlan()
        for pop in deployment.cdn.pop_names():
            plan.at(0.0, PopWithdrawal(advertised, pop))
        injector = FaultInjector(deployment.clock, plan,
                                 FaultTargets(cdn=deployment.cdn))
        injector.tick()

        client = deployment.new_client("eyeball:us:0")
        with pytest.raises(ConnectionRefusedError):
            client.fetch(deployment.universe.site(0))

        deployment.failover_to_backup()
        deployment.clock.advance(deployment.config.ttl + 1)  # caches drain
        outcome = client.fetch(deployment.universe.site(0))
        assert outcome.response.status is Status.OK
        assert outcome.connection.remote_addr in parse_prefix("203.0.113.0/24")

    def test_shrink_active_survives_single_pop_withdrawal(self):
        """Narrowing the active set while one PoP's announcement is down:
        the single remaining address still serves every client, via the
        surviving PoP's anycast catchment."""
        deployment = Deployment.build(DeploymentConfig(num_hostnames=20))
        advertised = parse_prefix(deployment.config.advertised)
        plan = FaultPlan().at(0.0, PopWithdrawal(advertised, "london"))
        FaultInjector(deployment.clock, plan,
                      FaultTargets(cdn=deployment.cdn)).tick()

        deployment.shrink_active("192.0.2.1/32")
        client = deployment.new_client("eyeball:eu:0")
        outcome = client.fetch(deployment.universe.site(0))
        assert outcome.response.status is Status.OK
        assert str(outcome.connection.remote_addr) == "192.0.2.1"
        # EU traffic crossed the pond to the PoP still announcing.
        assert deployment.cdn.datacenters["ashburn"].traffic.total_requests() >= 1

    def test_mismatched_resolver_client(self):
        deployment = Deployment.build(DeploymentConfig(num_hostnames=20))
        client = deployment.new_client("eyeball:eu:0", resolver_asn="eyeball:us:0")
        client.fetch(deployment.universe.site(0))
        # DNS went to ashburn; packets landed at london.
        assert deployment.cdn.datacenters["ashburn"].dns.stats.queries >= 1
        assert deployment.cdn.datacenters["london"].traffic.total_requests() == 1


class TestSpecDriven:
    def test_from_specs(self):
        specs = [
            {
                "name": "enterprise-fast",
                "pool": {"advertised": "192.0.0.0/20", "active": "192.0.2.0/24"},
                "match": {"account_type": ["enterprise"]},
                "ttl": 10,
                "priority": 10,
            },
            {
                "name": "everyone-else",
                "pool": {"advertised": "192.0.0.0/20"},
                "match": {},
                "ttl": 60,
                "priority": 100,
            },
        ]
        deployment = Deployment.from_specs(specs, DeploymentConfig(num_hostnames=30))
        assert len(deployment.engine) == 2
        client = deployment.new_client("eyeball:us:1")
        assert client.fetch(deployment.universe.site(2)).response.status is Status.OK

    def test_bad_specs_rejected_before_serving(self):
        from repro.core.spec import PolicySpecError
        bad = [{
            "name": "escapes",
            "pool": {"advertised": "10.99.0.0/24"},  # not announced
            "match": {},
        }]
        with pytest.raises(PolicySpecError):
            Deployment.from_specs(bad, DeploymentConfig(num_hostnames=10))
