"""Multiple concurrent service pools on one edge: the add_pool paths."""

import pytest

from repro.edge import ListenMode
from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Packet, Protocol

from conftest import BACKUP_PREFIX, POOL_PREFIX, make_cdn
from test_edge_server import make_server

SMALL_A = parse_prefix("192.0.2.0/28")
SMALL_B = parse_prefix("203.0.113.0/28")


def syn(dst, port=443):
    return Packet(
        FiveTuple(Protocol.TCP, parse_address("100.64.0.1"), 40000,
                  dst, port),
        syn=True,
    )


class TestAddPoolPerMode:
    def test_sk_lookup_add_pool_no_new_sockets(self):
        server = make_server()
        server.configure_listening(SMALL_A, ports=(443,), mode=ListenMode.SK_LOOKUP)
        before = server.socket_count()
        server.add_pool(SMALL_B)
        assert server.socket_count() == before
        assert server.dispatch(syn(SMALL_A.address_at(3))).delivered
        assert server.dispatch(syn(SMALL_B.address_at(3))).delivered
        assert server.pools == [SMALL_A, SMALL_B]

    def test_add_pool_idempotent(self):
        server = make_server()
        server.configure_listening(SMALL_A, ports=(443,), mode=ListenMode.SK_LOOKUP)
        server.add_pool(SMALL_B)
        rules_before = len(server._sk_program.rules())
        server.add_pool(SMALL_B)
        assert len(server._sk_program.rules()) == rules_before

    def test_per_ip_add_pool_binds_new_addresses(self):
        server = make_server()
        server.configure_listening(SMALL_A, ports=(443,), mode=ListenMode.PER_IP_BINDS)
        before = server.socket_count()
        server.add_pool(SMALL_B)
        assert server.socket_count() == before * 2
        assert server.dispatch(syn(SMALL_B.address_at(1))).delivered

    def test_wildcard_add_pool_noop(self):
        server = make_server()
        server.configure_listening(SMALL_A, ports=(443,), mode=ListenMode.WILDCARD)
        before = server.socket_count()
        server.add_pool(SMALL_B)
        assert server.socket_count() == before
        assert server.dispatch(syn(SMALL_B.address_at(1))).delivered

    def test_add_pool_requires_configuration(self):
        server = make_server()
        with pytest.raises(RuntimeError):
            server.add_pool(SMALL_B)


class TestCDNMultiPool:
    def test_two_pools_both_served(self, clock):
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        cdn.announce_pool(BACKUP_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        dc = cdn.datacenters["ashburn"]
        from repro.web.tls import ClientHello
        from repro.web.http import HTTPVersion
        for prefix in (POOL_PREFIX, BACKUP_PREFIX):
            t = FiveTuple(Protocol.TCP, parse_address("100.64.0.9"), 41000,
                          prefix.address_at(2), 443)
            conn = dc.connect(t, ClientHello(sni=hostnames[0]), HTTPVersion.H2)
            assert conn.remote_addr in prefix

    def test_mismatched_second_pool_config_rejected(self, clock):
        cdn, _ = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        with pytest.raises(ValueError, match="existing ports/mode"):
            cdn.announce_pool(BACKUP_PREFIX, ports=(80,), mode=ListenMode.SK_LOOKUP)

    def test_repoint_collapses_to_single_pool(self):
        server = make_server()
        server.configure_listening(SMALL_A, ports=(443,), mode=ListenMode.SK_LOOKUP)
        server.add_pool(SMALL_B)
        new = parse_prefix("198.51.100.0/28")
        server.repoint_pool(new)
        assert server.pools == [new]
        assert server.dispatch(syn(new.address_at(0))).delivered
        assert not server.dispatch(syn(SMALL_A.address_at(0))).delivered
        assert not server.dispatch(syn(SMALL_B.address_at(0))).delivered
        # Rule count matches a single pool's worth.
        labels = [r for r in server._sk_program.rules()]
        assert len(labels) == 2  # one port x two protocols
