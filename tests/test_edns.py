"""EDNS(0)/OPT and Client Subnet: wire handling and server behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.edns import ClientSubnet, OptRecord, attach_opt, extract_opt
from repro.dns.records import A, OPTPseudo, RRType
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.wire import Message, Rcode, WireError
from repro.dns.zone import Zone
from repro.netsim.addr import IPAddress, Prefix, parse_address, parse_prefix


class TestClientSubnet:
    def test_pack_unpack_v4(self):
        ecs = ClientSubnet(parse_prefix("203.0.113.0/24"))
        assert ClientSubnet.unpack(ecs.pack()) == ecs

    def test_pack_unpack_v6(self):
        ecs = ClientSubnet(parse_prefix("2001:db8::/56"), scope=48)
        out = ClientSubnet.unpack(ecs.pack())
        assert out.prefix == ecs.prefix and out.scope == 48

    def test_partial_byte_prefix(self):
        ecs = ClientSubnet(parse_prefix("203.0.112.0/22"))
        out = ClientSubnet.unpack(ecs.pack())
        assert out.prefix == parse_prefix("203.0.112.0/22")

    def test_scope_bound(self):
        with pytest.raises(ValueError):
            ClientSubnet(parse_prefix("203.0.113.0/24"), scope=64)

    def test_malformed_rejected(self):
        with pytest.raises(WireError):
            ClientSubnet.unpack(b"\x00")
        with pytest.raises(WireError):
            ClientSubnet.unpack(b"\x00\x09\x18\x00\xcb")  # family 9
        with pytest.raises(WireError):
            ClientSubnet.unpack(b"\x00\x01\x18\x00\xcb")  # 1 of 3 addr bytes


class TestOptRoundTrip:
    def test_message_round_trip_with_ecs(self):
        query = Message.query(5, "www.example.com", RRType.A)
        ecs = ClientSubnet(parse_prefix("198.51.100.0/24"))
        wired = attach_opt(query, OptRecord(client_subnet=ecs)).encode()
        decoded = Message.decode(wired)
        opt = extract_opt(decoded)
        assert opt is not None
        assert opt.client_subnet.prefix == parse_prefix("198.51.100.0/24")
        assert opt.udp_payload_size == 1232

    def test_unknown_options_preserved(self):
        opt = OptRecord(raw_options=((10, b"\x01\x02\x03"),))  # COOKIE-ish
        query = attach_opt(Message.query(1, "x.example", RRType.A), opt)
        out = extract_opt(Message.decode(query.encode()))
        assert out.raw_options == ((10, b"\x01\x02\x03"),)

    def test_no_opt_returns_none(self):
        assert extract_opt(Message.query(1, "x.example", RRType.A)) is None

    def test_dnssec_ok_flag(self):
        opt = OptRecord(dnssec_ok=True)
        query = attach_opt(Message.query(1, "x.example", RRType.A), opt)
        out = extract_opt(Message.decode(query.encode()))
        assert out.dnssec_ok

    def test_opt_pseudo_text(self):
        record = OPTPseudo(udp_payload_size=512, ttl_word=0, data=b"")
        assert "512" in record.rdata_text()


class TestServerEDNSBehaviour:
    def make_server(self):
        zone = Zone("example.com")
        zone.add_address("www.example.com", A(parse_address("192.0.2.1")), ttl=60)
        source = ZoneAnswerSourceRecordingContext(zone)
        return AuthoritativeServer(source), source

    def test_ecs_populates_context_and_is_echoed(self):
        server, source = self.make_server()
        query = Message.query(9, "www.example.com", RRType.A)
        ecs = ClientSubnet(parse_prefix("203.0.113.0/24"))
        wired = attach_opt(query, OptRecord(client_subnet=ecs)).encode()
        raw = server.handle_wire(wired, QueryContext(pop="iad"))
        response = Message.decode(raw)
        assert response.flags.rcode == Rcode.NOERROR
        # Context saw the subnet...
        assert source.last_context.client_subnet == "203.0.113.0/24"
        # ...and the response echoes OPT with scope set.
        opt = extract_opt(response)
        assert opt is not None
        assert opt.client_subnet.scope == 24

    def test_plain_queries_unaffected(self):
        server, source = self.make_server()
        raw = server.handle_wire(
            Message.query(1, "www.example.com", RRType.A).encode(),
            QueryContext(pop="iad"),
        )
        response = Message.decode(raw)
        assert extract_opt(response) is None
        assert source.last_context.client_subnet is None

    def test_opt_without_ecs_still_echoed(self):
        server, _ = self.make_server()
        query = attach_opt(Message.query(2, "www.example.com", RRType.A),
                           OptRecord(udp_payload_size=4096))
        response = Message.decode(server.handle_wire(query.encode(), QueryContext(pop="iad")))
        opt = extract_opt(response)
        assert opt is not None and opt.udp_payload_size == 4096


class ZoneAnswerSourceRecordingContext(ZoneAnswerSource):
    """Test double: remembers the context each answer saw."""

    def __init__(self, zone):
        super().__init__([zone])
        self.last_context = None

    def answer(self, question, context):
        self.last_context = context
        return super().answer(question, context)


@settings(max_examples=100)
@given(
    value=st.integers(0, (1 << 32) - 1),
    length=st.integers(0, 32),
    scope=st.integers(0, 32),
)
def test_property_ecs_round_trip_v4(value, length, scope):
    prefix = Prefix.of(IPAddress.v4(value), length)
    ecs = ClientSubnet(prefix, scope=min(scope, 32))
    out = ClientSubnet.unpack(ecs.pack())
    assert out.prefix == prefix
    assert out.scope == ecs.scope
