"""CLI: every subcommand parses, runs at small scale, and prints a table."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["fig7", "--sites", "100", "--requests", "500"],
            ["fig8", "--sessions", "5"],
            ["fig9", "--ttl", "10"],
            ["dos", "--n", "50", "--k", "4"],
            ["reduction"],
            ["ttl"],
            ["spillover", "--clients", "4"],
            ["coloring"],
            ["dnsload", "--sessions", "5"],
            ["scaling"],
            ["list"],
            ["metrics"],
            ["metrics", "--experiment", "failover", "--format", "prom"],
            ["chaos", "--seed", "7", "--campaigns", "2"],
            ["chaos", "--campaign", "c.json", "--json"],
            ["chaos", "--minimize", "c.json", "--invariant", "recovery",
             "--expect-minimal", "pop_outage"],
            ["bgp", "--seed", "7"],
            ["bgp", "--json"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_attack_choice(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dos", "--attack", "psychological"])


class TestExecution:
    def run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_list(self, capsys):
        out = self.run(["list"], capsys)
        assert "fig7" in out and "coloring" in out

    def test_reduction(self, capsys):
        out = self.run(["reduction", "--hostnames", "1000"], capsys)
        assert "94.4%" in out and "99.7%" in out

    def test_scaling(self, capsys):
        out = self.run(["scaling"], capsys)
        assert "/20" in out and "sk_lookup" in out

    def test_fig7_small(self, capsys):
        out = self.run(["fig7", "--sites", "60", "--requests", "400"], capsys)
        assert "7a" in out and "one" in out

    def test_fig9_small(self, capsys):
        out = self.run(["fig9", "--ttl", "10"], capsys)
        assert "leak detected" in out

    def test_dos_small(self, capsys):
        out = self.run(["dos", "--n", "40", "--k", "4"], capsys)
        assert "L7" in out

    def test_ttl(self, capsys):
        out = self.run(["ttl", "--ttl", "10"], capsys)
        assert "honest" in out


class TestExecutionSlowPaths:
    """The remaining subcommands, at minimum scale."""

    def run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_fig8_small(self, capsys):
        out = self.run(["fig8", "--sessions", "20", "--sites", "60"], capsys)
        assert "one-ip" in out and "rest-of-world" in out

    def test_spillover_small(self, capsys):
        out = self.run(["spillover", "--clients", "6"], capsys)
        assert "IPv4" in out and "IPv6" in out

    def test_dnsload_small(self, capsys):
        out = self.run(["dnsload", "--sessions", "8"], capsys)
        assert "queries/request" in out

    def test_coloring(self, capsys):
        out = self.run(["coloring"], capsys)
        assert "prefixes (colours)" in out


class TestChaosCommand:
    FIXTURE = "tests/fixtures/chaos_bad_campaign.json"

    def run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_chaos_soak_small(self, capsys):
        out = self.run(["chaos", "--seed", "7", "--campaigns", "2",
                        "--horizon", "100", "--clients", "2", "--sites", "6"],
                       capsys)
        assert "campaign-7-000" in out and "all invariants hold" in out

    def test_chaos_json_is_deterministic(self, capsys):
        argv = ["chaos", "--seed", "7", "--campaigns", "2",
                "--horizon", "100", "--clients", "2", "--sites", "6", "--json"]
        a = self.run(argv, capsys)
        b = self.run(argv, capsys)
        assert a == b
        assert len(json.loads(a)) == 2

    def test_bad_campaign_replay_fails(self, capsys):
        assert main(["chaos", "--campaign", self.FIXTURE]) == 1
        out = capsys.readouterr().out
        assert "recovery" in out

    def test_bad_campaign_minimizes_to_golden(self, capsys):
        out = self.run(["chaos", "--minimize", self.FIXTURE,
                        "--invariant", "recovery",
                        "--expect-minimal", "pop_outage"], capsys)
        assert "pop_outage" in out

    def test_wrong_golden_fails(self, capsys):
        assert main(["chaos", "--minimize", self.FIXTURE,
                     "--invariant", "recovery",
                     "--expect-minimal", "server_crash"]) == 1

    def test_unreadable_campaign_exits_2(self, capsys):
        assert main(["chaos", "--campaign", "no/such/file.json"]) == 2


class TestBGPCommand:
    def run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_bgp_json_reports_all_scenarios(self, capsys):
        doc = json.loads(self.run(["bgp", "--json"], capsys))
        names = {report["campaign"] for report in doc}
        assert names == {"e19-withdraw-static", "e19-withdraw-speakers",
                         "e19-leak-speakers", "e19-slow-withdraw-speakers"}
        speakers = [r for r in doc if "routing" in r]
        assert len(speakers) == 3
        assert all(not r["violations"] for r in doc)

    def test_bgp_table_render(self, capsys):
        out = self.run(["bgp"], capsys)
        assert "scenario" in out and "converge" in out
        assert "equal" in out  # oracle column for speakers scenarios


class TestMetricsCommand:
    def run(self, argv, capsys) -> str:
        assert main(argv) == 0
        return capsys.readouterr().out

    def test_metrics_json_document(self, capsys):
        doc = json.loads(self.run(["metrics"], capsys))
        assert doc["experiment"] == "ttl"
        counters = doc["metrics"]["counters"]
        assert counters["ttl.honest.resolver.client_queries"] > 0
        assert "ttl.flip_seconds" in doc["metrics"]["histograms"]

    def test_metrics_prometheus_format(self, capsys):
        out = self.run(["metrics", "--format", "prom"], capsys)
        assert "# TYPE repro_ttl_honest_resolver_client_queries counter" in out

    def test_metrics_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "--experiment", "vibes"])

    def test_metrics_out_and_diff(self, capsys, tmp_path):
        before, after = tmp_path / "a.json", tmp_path / "b.json"
        self.run(["metrics", "--out", str(before)], capsys)
        # Hand-bump one counter so the diff has a known delta.
        doc = json.loads(before.read_text())
        doc["metrics"]["counters"]["ttl.honest.resolver.client_queries"] += 5
        after.write_text(json.dumps(doc))
        out = self.run(["metrics", "--diff", str(before), str(after)], capsys)
        assert "ttl.honest.resolver.client_queries" in out and "+5" in out
