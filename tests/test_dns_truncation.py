"""UDP truncation + TCP completion: the wire-path bugfix sweep's sim side.

Before this suite's fixes, an oversize response went out mid-record-cut
(undecodable) and a TC-flagged answer was silently cached trimmed.  Every
test here fails on that code: the server must trim whole-record with TC
set, and the resolver must complete truncated answers over its TCP path
rather than caching a partial RRset.
"""

import pytest

from repro.clock import Clock
from repro.dns.edns import OptRecord, attach_opt
from repro.dns.records import A, TXT, DomainName, ResourceRecord, RRType
from repro.dns.resolver import RecursiveResolver, ResolveError
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.wire import Message
from repro.dns.zone import Zone
from repro.netsim.addr import parse_address

UDP = QueryContext(pop="pop1", transport="udp")
TCP = QueryContext(pop="pop1", transport="tcp")

#: Enough ~60-byte TXT records that the full answer tops 2 KiB — over any
#: plausible UDP budget, comfortably under the 64 KiB TCP frame limit.
N_BIG = 40


def make_server() -> AuthoritativeServer:
    zone = Zone("example.com")
    big = DomainName.from_text("big.example.com")
    for i in range(N_BIG):
        zone.add_record(ResourceRecord(big, TXT((f"filler-{i:02d}-" + "x" * 46,)), 300))
    zone.add_address("www.example.com", A(parse_address("192.0.2.1")), ttl=60)
    return AuthoritativeServer(ZoneAnswerSource([zone]))


def big_query(qid: int = 1, payload: int | None = None) -> bytes:
    query = Message.query(qid, "big.example.com", RRType.TXT)
    if payload is not None:
        query = attach_opt(query, OptRecord(udp_payload_size=payload))
    return query.encode()


class TestServerTruncation:
    def test_oversize_udp_response_is_trimmed_with_tc(self):
        server = make_server()
        wire = server.handle_wire(big_query(), UDP)
        assert len(wire) <= 512  # EDNS-less client: RFC 1035 budget
        response = Message.decode(wire)  # whole-record trim: still decodes
        assert response.flags.tc
        assert 0 < len(response.answers) < N_BIG
        assert server.stats.truncations == 1

    def test_edns_budget_is_honoured(self):
        server = make_server()
        wire = server.handle_wire(big_query(payload=4096), UDP)
        response = Message.decode(wire)
        assert not response.flags.tc
        assert len(response.answers) == N_BIG
        assert len(wire) <= 4096
        assert server.stats.truncations == 0

    def test_tiny_edns_budget_clamped_to_512(self):
        # RFC 6891 §6.2.3: values below 512 are treated as 512.
        server = make_server()
        wire = server.handle_wire(big_query(payload=1), UDP)
        response = Message.decode(wire)
        assert response.flags.tc
        assert len(wire) <= 512

    def test_trim_keeps_the_opt_record(self):
        # The client needs the OPT echoed to interpret the TC context.
        server = make_server()
        wire = server.handle_wire(big_query(payload=600), UDP)
        response = Message.decode(wire)
        assert response.flags.tc
        assert any(rr.rrtype == RRType.OPT for rr in response.additional)

    def test_tcp_transport_never_truncates(self):
        server = make_server()
        wire = server.handle_wire(big_query(), TCP)
        response = Message.decode(wire)
        assert not response.flags.tc
        assert len(response.answers) == N_BIG
        assert server.stats.truncations == 0

    def test_small_answers_untouched_on_udp(self):
        server = make_server()
        wire = server.handle_wire(
            Message.query(2, "www.example.com", RRType.A).encode(), UDP
        )
        response = Message.decode(wire)
        assert not response.flags.tc
        assert response.answers[0].rdata == A(parse_address("192.0.2.1"))


class TestResolverTcpRetry:
    def _resolver(self, server: AuthoritativeServer, *, tcp: bool) -> RecursiveResolver:
        return RecursiveResolver(
            "r",
            Clock(),
            transport=lambda wire: server.handle_wire(wire, UDP),
            tcp_transport=(
                (lambda wire: server.handle_wire(wire, TCP)) if tcp else None
            ),
        )

    def test_truncated_answer_completes_over_tcp(self):
        server = make_server()
        resolver = self._resolver(server, tcp=True)
        records = resolver.resolve("big.example.com", RRType.TXT)
        assert len(records) == N_BIG
        assert resolver.stats.truncated_retries == 1
        assert server.stats.truncations == 1  # the UDP leg really was TC'd

    def test_completed_answer_is_cached_whole(self):
        server = make_server()
        resolver = self._resolver(server, tcp=True)
        resolver.resolve("big.example.com", RRType.TXT)
        again = resolver.resolve("big.example.com", RRType.TXT)
        assert len(again) == N_BIG
        # Second lookup is a cache hit — and the cache holds the TCP-complete
        # set, not the trimmed UDP one.
        assert resolver.stats.truncated_retries == 1
        assert server.stats.queries == 2  # one UDP attempt + one TCP retry

    def test_without_tcp_path_truncation_is_a_failure(self):
        # The pre-fix behaviour was to cache the trimmed set silently; the
        # contract now is an explicit failure when no TCP path exists.
        server = make_server()
        resolver = self._resolver(server, tcp=False)
        with pytest.raises(ResolveError):
            resolver.resolve("big.example.com", RRType.TXT)

    def test_untruncated_answers_never_touch_tcp(self):
        server = make_server()
        calls = {"tcp": 0}

        def tcp_spy(wire):
            calls["tcp"] += 1
            return server.handle_wire(wire, TCP)

        resolver = RecursiveResolver(
            "r",
            Clock(),
            transport=lambda wire: server.handle_wire(wire, UDP),
            tcp_transport=tcp_spy,
        )
        resolver.resolve("www.example.com")
        assert calls["tcp"] == 0
        assert resolver.stats.truncated_retries == 0
