"""Scaled soak: the 20M-hostnames-per-address claim at test-budget scale.

The deployment ratios — 20M+ hostnames per pool, ~500M queries/day — are
scaled by ~10³ here while preserving the invariants that make the ratios
work: answering is O(1) in the hostname count, every address stays inside
the pool, randomization quality holds across the whole universe, and the
socket budget never moves.
"""

import random

import pytest

from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns.records import RRType
from repro.dns.server import AuthoritativeServer, QueryContext
from repro.dns.wire import Message, Rcode
from repro.edge.customers import AccountType, Customer, CustomerRegistry
from repro.netsim.addr import parse_prefix

POOL_PREFIX = parse_prefix("192.0.0.0/20")
NUM_HOSTNAMES = 30_000
NUM_QUERIES = 30_000
CTX = QueryContext(pop="soak")


@pytest.fixture(scope="module")
def stack():
    hostnames = [f"h{i:06d}.soak.example" for i in range(NUM_HOSTNAMES)]
    registry = CustomerRegistry()
    # Spread across many customers so the registry itself is exercised.
    chunk = 100
    for c in range(0, NUM_HOSTNAMES, chunk):
        registry.add(Customer(
            f"cust{c // chunk:04d}", AccountType.FREE,
            set(hostnames[c:c + chunk]),
        ))
    engine = PolicyEngine(random.Random(77))
    pool = AddressPool(POOL_PREFIX, name="soak")
    engine.add(Policy("soak", pool, ttl=30))
    server = AuthoritativeServer(PolicyAnswerSource(engine, registry))
    return server, hostnames, pool


class TestSoak:
    def test_bulk_serving_correctness(self, stack):
        server, hostnames, pool = stack
        rng = random.Random(5)
        seen_addresses = set()
        for i in range(NUM_QUERIES):
            hostname = hostnames[rng.randrange(NUM_HOSTNAMES)]
            response = server.handle_query(
                Message.query(i & 0xFFFF, hostname, RRType.A), CTX
            )
            assert response.flags.rcode == Rcode.NOERROR
            address = response.answers[0].rdata.address
            assert address in POOL_PREFIX
            seen_addresses.add(address)
        # 30K draws over 4096 addresses: coverage must be essentially total.
        assert len(seen_addresses) > 4000
        assert server.stats.responses == NUM_QUERIES

    def test_answering_cost_independent_of_universe_size(self):
        """O(1) in hostname count: a 100× larger registry must not make
        answering meaningfully slower (the paper's 'no bounds on the
        number of hostnames', §3.2)."""
        import time

        def build(n):
            registry = CustomerRegistry()
            registry.add(Customer("c", AccountType.FREE,
                                  {f"h{i}.x.example" for i in range(n)}))
            engine = PolicyEngine(random.Random(1))
            engine.add(Policy("p", AddressPool(POOL_PREFIX), ttl=30))
            return AuthoritativeServer(PolicyAnswerSource(engine, registry))

        def rate(server, n_queries=4000):
            query = Message.query(1, "h1.x.example", RRType.A)
            start = time.perf_counter()
            for _ in range(n_queries):
                server.handle_query(query, CTX)
            return n_queries / (time.perf_counter() - start)

        small, large = build(100), build(10_000)
        rate(small)  # warm-up
        r_small, r_large = rate(small), rate(large)
        assert r_large > 0.5 * r_small  # hash lookups: no size penalty

    def test_one_address_at_soak_scale(self, stack):
        server, hostnames, pool = stack
        pool.set_active(parse_prefix("192.0.2.1/32"))
        try:
            rng = random.Random(6)
            for i in range(2_000):
                hostname = hostnames[rng.randrange(NUM_HOSTNAMES)]
                response = server.handle_query(
                    Message.query(i & 0xFFFF, hostname, RRType.A), CTX
                )
                assert str(response.answers[0].rdata.address) == "192.0.2.1"
        finally:
            pool.set_active(POOL_PREFIX)
