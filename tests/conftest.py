"""Shared fixtures: a small but complete CDN deployment.

Most integration tests need the same scaffolding the deployment had —
PoPs, customers, origins, pools, a policy engine — at a scale that keeps
the suite fast.  Build it once per test via these factories.
"""

from __future__ import annotations

import random

import pytest

from repro.clock import Clock
from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns import RecursiveResolver, StubResolver
from repro.edge import CDN, AccountType, Customer, CustomerRegistry, ListenMode
from repro.netsim import build_regional_topology, parse_prefix
from repro.web import BrowserClient, HTTPVersion, OriginPool, OriginServer, fixed_size

POOL_PREFIX = parse_prefix("192.0.2.0/24")
BACKUP_PREFIX = parse_prefix("203.0.113.0/24")


@pytest.fixture
def clock():
    return Clock()


def make_registry(num_sites: int = 12, assets: int = 2) -> tuple[CustomerRegistry, OriginPool, list[str]]:
    """A small customer base: half FREE, half ENTERPRISE accounts."""
    registry = CustomerRegistry()
    origins = OriginPool()
    hostnames: list[str] = []
    for i in range(num_sites):
        site = f"site{i:03d}.example.com"
        names = {site} | {f"a{j}.site{i:03d}.example.com" for j in range(assets)}
        account = AccountType.FREE if i % 2 == 0 else AccountType.ENTERPRISE
        customer = Customer(f"cust{i:03d}", account, names)
        registry.add(customer)
        origins.add(OriginServer(f"origin{i:03d}", set(names), fixed_size(1500)))
        hostnames.extend(sorted(names))
    return registry, origins, hostnames


def make_cdn(
    regions: dict[str, list[str]] | None = None,
    num_sites: int = 12,
    servers_per_dc: int = 2,
    clients_per_region: int = 4,
) -> tuple[CDN, list[str]]:
    """A CDN over a 2-region topology with certificates provisioned."""
    regions = regions or {"us": ["ashburn"], "eu": ["london"]}
    net = build_regional_topology(regions, clients_per_region=clients_per_region)
    registry, origins, hostnames = make_registry(num_sites)
    cdn = CDN(net, registry, origins, servers_per_dc=servers_per_dc)
    cdn.provision_certificates()
    return cdn, hostnames


def make_policy_cdn(
    clock: Clock,
    ttl: int = 30,
    seed: int = 7,
    **kwargs,
) -> tuple[CDN, list[str], PolicyEngine, AddressPool]:
    """A CDN answering via the paper's policy engine (random over a /24)."""
    cdn, hostnames = make_cdn(**kwargs)
    cdn.announce_pool(POOL_PREFIX, ports=(80, 443), mode=ListenMode.SK_LOOKUP)
    engine = PolicyEngine(random.Random(seed))
    pool = AddressPool(POOL_PREFIX, name="test-pool")
    engine.add(Policy("randomize-all", pool, match={}, ttl=ttl))
    cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
    return cdn, hostnames, engine, pool


def make_client(
    cdn: CDN,
    clock: Clock,
    asn: object,
    name: str = "client",
    version: HTTPVersion = HTTPVersion.H2,
    **client_kwargs,
) -> BrowserClient:
    resolver = RecursiveResolver(f"res-{name}", clock, transport=cdn.dns_transport(asn), asn=asn)
    stub = StubResolver(f"stub-{name}", clock, resolver)
    return BrowserClient(
        name, stub, cdn.transport_for(asn), version=version, **client_kwargs
    )
