"""DoS k-ary search against a live DNS path with real TTL caches.

The unit-level tests hand the mitigator an oracle observer; here the
attacker resolves its target through an actual authoritative server and a
caching resolver, so the isolation only works if the TTL mechanics do:
the mitigator must wait out cache expiry before each observation.
"""

import random

from repro.agility.dos import KarySearchMitigator, ResolvingL7Attacker
from repro.clock import Clock
from repro.core import (
    AddressPool,
    AgilityController,
    MappedAssignment,
    Policy,
    PolicyAnswerSource,
    PolicyEngine,
)
from repro.dns import RecursiveResolver
from repro.dns.server import AuthoritativeServer, QueryContext
from repro.edge.customers import AccountType, Customer, CustomerRegistry
from repro.netsim.addr import parse_prefix

POOL_PREFIX = parse_prefix("192.0.2.0/24")


def build_stack(n_services=200, initial_ttl=120, seed=9):
    clock = Clock()
    services = [f"svc{i:04d}.example.com" for i in range(n_services)]
    registry = CustomerRegistry()
    registry.add(Customer("all", AccountType.FREE, set(services)))
    engine = PolicyEngine(random.Random(seed))
    pool = AddressPool(POOL_PREFIX, name="dos")
    engine.add(Policy("protected", pool, strategy=MappedAssignment(), ttl=initial_ttl))
    server = AuthoritativeServer(PolicyAnswerSource(engine, registry))
    controller = AgilityController(engine, clock)
    return clock, services, engine, pool, server, controller


class TestResolvingAttacker:
    def test_l7_isolated_through_real_dns(self):
        clock, services, engine, pool, server, controller = build_stack()
        resolver = RecursiveResolver(
            "attacker-res", clock,
            transport=lambda w: server.handle_wire(w, QueryContext(pop="dc1")),
        )
        target = services[123]
        attacker = ResolvingL7Attacker({target}, resolver)
        mitigator = KarySearchMitigator(controller, "protected", clock,
                                        k=8, probe_ttl=5, rng=random.Random(1))
        verdict = mitigator.run(services, attacker)
        assert verdict.kind == "L7"
        assert verdict.isolated == {target}
        assert verdict.within_bound
        # The attacker really used DNS: multiple upstream resolutions, one
        # per round after cache expiry.
        assert resolver.stats.upstream_queries >= verdict.rounds

    def test_ttl_cache_forces_round_pacing(self):
        """If the mitigator observed without waiting out the probe TTL the
        attacker's cache would report stale slices; the accounting below
        shows each round produced exactly one fresh resolution."""
        clock, services, engine, pool, server, controller = build_stack(n_services=64)
        resolver = RecursiveResolver(
            "attacker-res", clock,
            transport=lambda w: server.handle_wire(w, QueryContext(pop="dc1")),
        )
        attacker = ResolvingL7Attacker({services[7]}, resolver)
        mitigator = KarySearchMitigator(controller, "protected", clock,
                                        k=4, probe_ttl=5, rng=random.Random(2))
        verdict = mitigator.run(services, attacker)
        assert verdict.kind == "L7"
        assert resolver.stats.upstream_queries == verdict.rounds

    def test_vanished_target_degrades_gracefully(self):
        clock, services, engine, pool, server, controller = build_stack(n_services=32)
        resolver = RecursiveResolver(
            "attacker-res", clock,
            transport=lambda w: server.handle_wire(w, QueryContext(pop="dc1")),
        )
        attacker = ResolvingL7Attacker({"not-a-service.example.com"}, resolver)
        mitigator = KarySearchMitigator(controller, "protected", clock,
                                        k=4, probe_ttl=5, rng=random.Random(3))
        # The attack targets nothing we host: it never follows any slice,
        # so the search concludes L3/4 ("not name-driven") in one round.
        verdict = mitigator.run(services, attacker)
        assert verdict.kind == "L3/4"
