"""BGP substrate: relationships, Gao–Rexford policy, LPM, leaks, hijacks."""

import pytest

from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.bgp import (
    Announcement,
    ASGraph,
    BGPSimulation,
    GraphConflictError,
    LeakingExport,
    Relationship,
    Route,
    RoutingTable,
)

PFX = parse_prefix("198.51.100.0/24")


def line_topology():
    """customer c — transit t — customer d (t provides for both)."""
    g = ASGraph()
    g.add_provider("c", "t")
    g.add_provider("d", "t")
    return g


class TestASGraph:
    def test_relationship_inverse_recorded(self):
        g = ASGraph()
        g.add_provider("cust", "prov")
        assert g.relationship("cust", "prov") is Relationship.PROVIDER
        assert g.relationship("prov", "cust") is Relationship.CUSTOMER

    def test_peering_symmetric(self):
        g = ASGraph()
        g.add_peering("a", "b")
        assert g.relationship("a", "b") is Relationship.PEER
        assert g.relationship("b", "a") is Relationship.PEER

    def test_self_link_rejected(self):
        g = ASGraph()
        with pytest.raises(ValueError):
            g.add_peering("a", "a")

    def test_conflicting_relationship_rejected(self):
        g = ASGraph()
        g.add_provider("a", "b")
        with pytest.raises(ValueError):
            g.add_peering("a", "b")

    def test_customer_provider_peer_lists(self):
        g = ASGraph()
        g.add_provider("a", "p1")
        g.add_provider("a", "p2")
        g.add_peering("a", "x")
        g.add_provider("c", "a")
        assert sorted(g.providers("a")) == ["p1", "p2"]
        assert g.peers("a") == ["x"]
        assert g.customers("a") == ["c"]


class TestPropagation:
    def test_origin_route_installed(self):
        g = line_topology()
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "c"))
        sim.converge()
        route = sim.rib("c").best(PFX)
        assert route.origin == "c" and route.as_path == ()

    def test_route_reaches_sibling_customer(self):
        g = line_topology()
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "c"))
        sim.converge()
        route = sim.rib("d").best(PFX)
        assert route is not None
        assert route.as_path == ("t", "c")

    def test_valley_free_blocks_peer_to_peer_transit(self):
        # c1 — t1 ~peer~ t2 ~peer~ t3 — c3: a route learned from peer t1
        # must not be re-exported by t2 to its peer t3.
        g = ASGraph()
        g.add_provider("c1", "t1")
        g.add_peering("t1", "t2")
        g.add_peering("t2", "t3")
        g.add_provider("c3", "t3")
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "c1"))
        sim.converge()
        assert sim.rib("t2").best(PFX) is not None   # t2 hears it from peer t1
        assert sim.rib("t3").best(PFX) is None       # but never passes it on
        assert sim.rib("c3").best(PFX) is None

    def test_customer_route_preferred_over_peer(self):
        # dest multihomed: t learns the prefix from its customer AND a peer.
        g = ASGraph()
        g.add_provider("dest", "t")     # dest is t's customer
        g.add_peering("t", "p")
        g.add_provider("dest2", "p")
        sim = BGPSimulation(g)
        # Announce from dest (customer path for t) and dest2 (peer path).
        sim.announce(Announcement(PFX, "dest"))
        sim.announce(Announcement(PFX, "dest2"))
        sim.converge()
        route = sim.rib("t").best(PFX)
        assert route.origin == "dest"
        assert route.learned_from is Relationship.CUSTOMER

    def test_shorter_path_wins_at_equal_pref(self):
        g = ASGraph()
        # two provider chains to origin o: long (p1-p2-o) and short (p3-o)
        g.add_provider("o", "p2")
        g.add_provider("p2", "p1")
        g.add_provider("o", "p3")
        g.add_provider("client", "p1")
        g.add_provider("client", "p3")
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "o"))
        sim.converge()
        route = sim.rib("client").best(PFX)
        assert route.as_path == ("p3", "o")

    def test_loop_prevention(self):
        g = ASGraph()
        g.add_peering("a", "b")
        g.add_peering("b", "c")
        g.add_peering("c", "a")
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "a"))
        steps = sim.converge()
        assert steps < 100
        route_b = sim.rib("b").best(PFX)
        assert "b" not in route_b.as_path

    def test_withdraw_removes_routes(self):
        g = line_topology()
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "c"))
        sim.converge()
        assert sim.rib("d").best(PFX) is not None
        sim.withdraw(PFX, "c")
        assert sim.rib("d").best(PFX) is None

    def test_unknown_origin_rejected(self):
        sim = BGPSimulation(line_topology())
        with pytest.raises(KeyError):
            sim.announce(Announcement(PFX, "nope"))


class TestLPM:
    def test_longest_prefix_wins(self):
        g = ASGraph()
        g.add_provider("a", "t")
        g.add_provider("b", "t")
        g.add_provider("client", "t")
        sim = BGPSimulation(g)
        covering = parse_prefix("198.51.100.0/24")
        specific = parse_prefix("198.51.100.128/25")
        sim.announce(Announcement(covering, "a"))
        sim.announce(Announcement(specific, "b"))
        sim.converge()
        hi = sim.best_route("client", parse_address("198.51.100.200"))
        lo = sim.best_route("client", parse_address("198.51.100.10"))
        assert hi.origin == "b"
        assert lo.origin == "a"

    def test_no_route_returns_none(self):
        sim = BGPSimulation(line_topology())
        assert sim.best_route("c", parse_address("8.8.8.8")) is None

    def test_forwarding_path_follows_more_specific(self):
        g = ASGraph()
        g.add_provider("a", "t")
        g.add_provider("b", "t")
        g.add_provider("client", "t")
        sim = BGPSimulation(g)
        sim.announce(Announcement(parse_prefix("198.51.100.0/24"), "a"))
        sim.announce(Announcement(parse_prefix("198.51.100.0/25"), "b"))
        sim.converge()
        path = sim.forwarding_path("client", parse_address("198.51.100.1"))
        assert path[-1] == "b"


class TestLeakPolicy:
    def leak_topology(self):
        """Fig 9 shape: origin o, transit t1 (normal), leaker L learning via
        peer and re-exporting to its provider t2, whose customer cone then
        prefers the leaked (customer) route."""
        g = ASGraph()
        g.add_provider("o", "t1")
        g.add_peering("t1", "L")
        g.add_provider("L", "t2")
        g.add_provider("victim", "t2")
        return g

    def test_no_leak_without_policy(self):
        g = self.leak_topology()
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "o"))
        sim.converge()
        # t2 should not hear the prefix: L learned it from a peer.
        assert sim.rib("t2").best(PFX) is None
        assert sim.rib("victim").best(PFX) is None

    def test_leak_pulls_traffic_through_leaker(self):
        g = self.leak_topology()
        sim = BGPSimulation(g)
        sim.set_export_policy("L", LeakingExport([PFX]))
        sim.announce(Announcement(PFX, "o"))
        sim.converge()
        route = sim.rib("victim").best(PFX)
        assert route is not None
        assert "L" in route.as_path

    def test_leak_is_prefix_scoped(self):
        other = parse_prefix("203.0.113.0/24")
        g = self.leak_topology()
        sim = BGPSimulation(g)
        sim.set_export_policy("L", LeakingExport([PFX]))
        sim.announce(Announcement(PFX, "o"))
        sim.announce(Announcement(other, "o"))
        sim.converge()
        assert sim.rib("victim").best(PFX) is not None
        assert sim.rib("victim").best(other) is None

    def test_policy_reset_and_reconverge_heals(self):
        g = self.leak_topology()
        sim = BGPSimulation(g)
        sim.set_export_policy("L", LeakingExport([PFX]))
        sim.announce(Announcement(PFX, "o"))
        sim.converge()
        assert sim.rib("victim").best(PFX) is not None
        sim.set_export_policy("L", None)
        sim.reconverge_from_scratch()
        assert sim.rib("victim").best(PFX) is None


class TestCatchment:
    def test_anycast_catchment_splits_by_proximity(self):
        g = ASGraph()
        g.add_peering("t1", "t2")
        g.add_provider("popA", "t1")
        g.add_provider("popB", "t2")
        g.add_provider("cA", "t1")
        g.add_provider("cB", "t2")
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "popA"))
        sim.announce(Announcement(PFX, "popB"))
        sim.converge()
        catchment = sim.catchment(PFX.first, ["cA", "cB"])
        assert catchment == {"cA": "popA", "cB": "popB"}

    def test_catchment_none_for_unrouted(self):
        g = ASGraph()
        g.add_provider("c", "t")
        g.add_as("island")
        sim = BGPSimulation(g)
        sim.announce(Announcement(PFX, "c"))
        sim.converge()
        assert sim.catchment(PFX.first, ["island"]) == {"island": None}


class TestGraphConflicts:
    def test_conflict_raises_typed_error(self):
        g = ASGraph()
        g.add_provider("a", "b")
        with pytest.raises(GraphConflictError, match="replace=True"):
            g.add_peering("a", "b")

    def test_same_relationship_readd_is_a_no_op(self):
        g = ASGraph()
        g.add_provider("a", "b")
        g.add_provider("a", "b")
        assert g.relationship("a", "b") is Relationship.PROVIDER

    def test_replace_flips_both_directions(self):
        g = ASGraph()
        g.add_provider("a", "b")  # b is a's provider
        g.add_link("a", "b", Relationship.PEER, replace=True)
        assert g.relationship("a", "b") is Relationship.PEER
        assert g.relationship("b", "a") is Relationship.PEER


class TestRoutingTableReplace:
    def test_install_refuses_worse_but_replace_overrides(self):
        table = RoutingTable()
        good = Route(PFX, "o", ("n", "o"), Relationship.CUSTOMER)
        worse = Route(PFX, "o", ("p", "x", "o"), Relationship.PROVIDER)
        assert table.install(good)
        assert not table.install(worse)
        assert table.best(PFX) is good
        table.replace(worse)
        assert table.best(PFX) is worse
