"""§6 map colouring and the DC2-spillover measurement experiment."""

import networkx as nx
import pytest

from repro.agility.coloring import (
    build_conflict_graph,
    color_datacenters,
    verify_coloring,
)
from repro.agility.measurement import (
    build_mismatched_client,
    measure_spillover,
)
from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.edge import ListenMode
from repro.netsim import build_regional_topology, parse_prefix

from conftest import POOL_PREFIX, make_cdn


class TestColoring:
    def prefixes(self, n=8):
        return list(parse_prefix("10.0.0.0/16").subnets(24))[:n]

    def test_conflict_graph_by_distance(self):
        net = build_regional_topology(
            {"us": ["ashburn", "newyork"], "eu": ["london", "frankfurt"]}
        )
        graph = build_conflict_graph(net, conflict_km=1500)
        assert graph.has_edge("ashburn", "newyork")
        assert graph.has_edge("london", "frankfurt")
        assert not graph.has_edge("ashburn", "london")

    def test_coloring_separates_conflicts(self):
        net = build_regional_topology(
            {"us": ["ashburn", "newyork", "chicago"], "eu": ["london", "paris", "amsterdam"]}
        )
        graph = build_conflict_graph(net, conflict_km=2500)
        result = color_datacenters(graph, self.prefixes())
        assert verify_coloring(graph, result)
        # Distant DCs may share a prefix — that's the saving.
        assert result.num_colors < graph.number_of_nodes()

    def test_prefix_assignment_consistent_with_colors(self):
        graph = nx.cycle_graph(["a", "b", "c", "d"])
        result = color_datacenters(graph, self.prefixes())
        assert result.num_colors == 2
        for dc, color in result.colors.items():
            assert result.prefix_of[dc] == self.prefixes()[color]
        assert set(result.datacenters_of_color(0)) | set(result.datacenters_of_color(1)) == {
            "a", "b", "c", "d"
        }

    def test_odd_cycle_needs_three(self):
        graph = nx.cycle_graph(["a", "b", "c"])
        result = color_datacenters(graph, self.prefixes())
        assert result.num_colors == 3

    def test_insufficient_prefixes_rejected(self):
        graph = nx.complete_graph(["a", "b", "c", "d"])
        with pytest.raises(ValueError):
            color_datacenters(graph, self.prefixes(2))

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            color_datacenters(nx.Graph(), self.prefixes())

    def test_isolated_nodes_share_one_color(self):
        graph = nx.Graph()
        graph.add_nodes_from(["a", "b", "c"])
        result = color_datacenters(graph, self.prefixes())
        assert result.num_colors == 1


class TestSpillover:
    """§6 measurement: DC2 receives pool traffic it never answered DNS for,
    because some clients' resolvers sit in DC1's catchment."""

    def build(self, clock):
        cdn, hostnames = make_cdn(
            regions={"us": ["ashburn"], "eu": ["london"]}, clients_per_region=4
        )
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        import random as _random
        engine = PolicyEngine(_random.Random(4))
        pool = AddressPool(POOL_PREFIX)
        # The test policy runs only at DC1 (ashburn); DC2's DNS is
        # "unaltered" — here: refuses, so only DC1 ever hands out pool
        # addresses, exactly the paper's asymmetric setup.
        engine.add(Policy("dc1-only", pool, match={"pop": {"ashburn"}}, ttl=30))
        cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
        return cdn, hostnames

    def test_aligned_clients_no_spillover(self, clock):
        cdn, hostnames = self.build(clock)
        client = build_mismatched_client(
            cdn, clock, client_asn="eyeball:us:0", resolver_asn="eyeball:us:0"
        )
        for hostname in hostnames[:4]:
            client.fetch(hostname)
        report = measure_spillover(cdn, POOL_PREFIX)
        assert report.requests_on_pool["ashburn"] == 4
        assert report.requests_on_pool["london"] == 0
        assert report.spillover_share("ashburn") == 0.0

    def test_mismatched_clients_spill_to_dc2(self, clock):
        cdn, hostnames = self.build(clock)
        # EU client whose ISP resolver is US-homed: DNS lands at ashburn
        # (answers with pool addresses), packets land at london.
        client = build_mismatched_client(
            cdn, clock, client_asn="eyeball:eu:1", resolver_asn="eyeball:us:0"
        )
        for hostname in hostnames[:4]:
            client.fetch(hostname)
        report = measure_spillover(cdn, POOL_PREFIX)
        assert report.requests_on_pool["london"] == 4
        assert report.spillover_share("ashburn") == 1.0
        assert report.share_at("london") == 1.0

    def test_eu_resolver_clients_get_no_pool_answers(self, clock):
        cdn, hostnames = self.build(clock)
        from repro.dns.resolver import ResolveError
        client = build_mismatched_client(
            cdn, clock, client_asn="eyeball:eu:1", resolver_asn="eyeball:eu:1"
        )
        with pytest.raises(ResolveError):
            client.fetch(hostnames[0])  # london DNS refuses (policy mismatch)

    def test_mixed_population_measures_partial_spillover(self, clock):
        cdn, hostnames = self.build(clock)
        aligned = build_mismatched_client(
            cdn, clock, "eyeball:us:1", "eyeball:us:1", name="aligned"
        )
        mismatched = build_mismatched_client(
            cdn, clock, "eyeball:eu:2", "eyeball:us:2", name="mismatched"
        )
        for hostname in hostnames[:3]:
            aligned.fetch(hostname)
            mismatched.fetch(hostname)
        report = measure_spillover(cdn, POOL_PREFIX)
        assert report.spillover_share("ashburn") == pytest.approx(0.5)
