"""Catchment quality: the performance face of Figure 9's leak.

"Performance degrades for US clients routed to Europe, but the leak goes
undetected" — the degradation itself is measurable as the jump in mean
client RTT to the anycast address, and mitigation onto the (healthy)
backup prefix restores pre-leak latency.
"""

import random

import pytest

from repro.netsim import build_regional_topology, inject_route_leak, parse_prefix
from repro.netsim.routeleak import attach_multihomed_leaker

POOL = parse_prefix("192.0.2.0/24")
BACKUP = parse_prefix("203.0.113.0/24")


@pytest.fixture
def network():
    net = build_regional_topology(
        {"us": ["ashburn"], "eu": ["london"]},
        clients_per_region=8,
        rng=random.Random(12),
    )
    net.announce_from_all(POOL)
    net.announce_from_all(BACKUP)
    return net


def us_clients(network):
    return [a for a in network.client_ases() if str(a).startswith("eyeball:us")]


class TestRttAccessors:
    def test_rtt_to_routed_address(self, network):
        client = us_clients(network)[0]
        rtt = network.rtt_to(client, POOL.first)
        assert rtt is not None and rtt > 0

    def test_rtt_to_unrouted_address(self, network):
        client = us_clients(network)[0]
        assert network.rtt_to(client, parse_prefix("198.18.99.0/24").first) is None

    def test_rtt_none_for_unlocated(self, network):
        assert network.rtt_to("transit:us:0", POOL.first) is None

    def test_mean_requires_clients(self, network):
        with pytest.raises(ValueError):
            network.mean_rtt_ms(parse_prefix("198.18.99.0/24").first)


class TestLeakDegradesPerformance:
    def test_leak_raises_us_client_rtt(self, network):
        clients = us_clients(network)
        before = network.mean_rtt_ms(POOL.first, clients)
        attach_multihomed_leaker(network, "leaker", "transit:eu:0", "transit:us:0")
        inject_route_leak(network, "leaker", POOL)
        after = network.mean_rtt_ms(POOL.first, clients)
        # Some US clients are now hauled across the Atlantic.
        assert after > before * 1.5

    def test_backup_prefix_unaffected_by_leak(self, network):
        clients = us_clients(network)
        baseline_backup = network.mean_rtt_ms(BACKUP.first, clients)
        attach_multihomed_leaker(network, "leaker", "transit:eu:0", "transit:us:0")
        inject_route_leak(network, "leaker", POOL)
        # The leak is prefix-scoped; the mitigation target stays healthy —
        # which is exactly why "keep the policy, change the prefix" restores
        # pre-leak performance for rebound clients.
        assert network.mean_rtt_ms(BACKUP.first, clients) == pytest.approx(
            baseline_backup
        )
        assert network.mean_rtt_ms(BACKUP.first, clients) < network.mean_rtt_ms(
            POOL.first, clients
        )

    def test_heal_restores_rtt(self, network):
        clients = us_clients(network)
        before = network.mean_rtt_ms(POOL.first, clients)
        attach_multihomed_leaker(network, "leaker", "transit:eu:0", "transit:us:0")
        scenario = inject_route_leak(network, "leaker", POOL)
        assert network.mean_rtt_ms(POOL.first, clients) > before
        scenario.heal()
        assert network.mean_rtt_ms(POOL.first, clients) == pytest.approx(before)
