"""Differential suite: the symbolic engine vs both real dispatch engines.

``test_compiled`` fuzzes interpreter against compiled engine packet by
packet; this suite turns the same 1000-seed corpus on the *symbolic*
model.  Equivalence is proven region-exhaustively per seed (every packet
in the universe, not twelve samples), and the model itself is validated
by replaying region witnesses on the real engines: if the symbolic
partition says a rectangle redirects to slot 3, a packet drawn from that
rectangle must come back from ``run()`` with slot 3's socket.
"""

import random

from repro.check.symbolic import (
    PacketSpace,
    compiled_verdicts,
    equivalence_counterexample,
    program_verdicts,
)
from repro.netsim.addr import parse_address
from repro.netsim.packet import FiveTuple, IPAddress, Packet, Protocol
from repro.sockets.sklookup import Verdict

from test_compiled import build_twin_programs

SRC = parse_address("198.51.100.9")


def _live_slots(program):
    return {k for k in range(program.map.size) if program.map.lookup(k) is not None}


def _witness(rect):
    return Packet(FiveTuple(
        Protocol(rect.proto), SRC, 40_000,
        IPAddress(rect.family, rect.network), rect.port_lo,
    ), syn=True)


def _expected_outcome(program, key):
    """The concrete ``run()`` result a verdict-partition key predicts."""
    if key == "drop":
        return (Verdict.DROP, None)
    if isinstance(key, tuple):  # ("redirect", slot) — must be live
        return (Verdict.PASS, program.map.lookup(key[1]))
    return (Verdict.PASS, None)  # "pass" and "miss" share the runtime encoding


def test_symbolic_equivalence_holds_over_the_full_corpus():
    """Zero divergences across all 1000 corpus seeds, whole packet universe."""
    for seed in range(1000):
        rng = random.Random(seed)
        interp, compiled, _source = build_twin_programs(rng)
        divergence = equivalence_counterexample(
            interp, description=compiled.describe())
        assert divergence is None, f"seed={seed}: {divergence.render()}"


def test_region_witnesses_replay_on_both_engines():
    """Model soundness: every region's witness behaves as classified."""
    domain = PacketSpace.universe()
    for seed in range(0, 1000, 10):
        rng = random.Random(seed)
        interp, compiled, _source = build_twin_programs(rng)
        live = _live_slots(interp)
        partitions = (
            (program_verdicts(interp.rules(), live, domain), interp),
            (compiled_verdicts(compiled.describe(), live, domain), compiled),
        )
        for verdicts, engine in partitions:
            for key, space in verdicts.items():
                want = _expected_outcome(interp, key)
                for rect in space.rects[:6]:
                    got = engine.run(_witness(rect))
                    assert got == want, (
                        f"seed={seed} {rect.render()}: symbolic says "
                        f"{key!r}, {engine.name} returned {got}"
                    )


def test_verdict_partition_is_exact_over_the_corpus():
    """Disjointness + coverage in one equation: point counts must add up."""
    domain = PacketSpace.universe()
    for seed in range(0, 1000, 25):
        rng = random.Random(seed)
        interp, compiled, _source = build_twin_programs(rng)
        live = _live_slots(interp)
        for verdicts in (
            program_verdicts(interp.rules(), live, domain),
            compiled_verdicts(compiled.describe(), live, domain),
        ):
            union = PacketSpace.empty()
            total = 0
            for space in verdicts.values():
                union = union.union(space)
                total += space.points
            assert total == domain.points, f"seed={seed}"
            assert union.equals(domain), f"seed={seed}"


def test_round_trip_identity_on_corpus_rule_spaces():
    """(a − b) ∪ (a ∩ b) == a holds for the partitions real rules induce."""
    domain = PacketSpace.universe()
    for seed in range(0, 1000, 50):
        rng = random.Random(seed)
        interp, _compiled, _source = build_twin_programs(rng)
        spaces = list(
            program_verdicts(interp.rules(), _live_slots(interp), domain).values()
        )
        for a in spaces:
            for b in spaces[:3]:
                assert a.subtract(b).union(a.intersect(b)).equals(a)


def test_region_witnesses_lie_inside_their_region():
    domain = PacketSpace.universe()
    for seed in range(0, 1000, 50):
        rng = random.Random(seed)
        interp, _compiled, _source = build_twin_programs(rng)
        verdicts = program_verdicts(interp.rules(), _live_slots(interp), domain)
        for space in verdicts.values():
            if space.is_empty():
                continue
            assert space.contains_point(*space.witness())
            for rect in space.rects:
                assert rect.contains_point(
                    rect.family, rect.network, rect.proto, rect.port_lo)


def test_corrupted_description_is_caught_across_the_corpus():
    """Flipping one LPM network in the description must surface somewhere:
    the verifier reads the index as data, so damage can't hide behind the
    shared rule list."""
    caught = 0
    for seed in range(0, 200, 10):
        rng = random.Random(seed)
        interp, compiled, _source = build_twin_programs(rng)
        description = compiled.describe()
        if not _shift_one_network(description):
            continue  # no prefix rules this seed
        if equivalence_counterexample(interp, description=description) is not None:
            caught += 1
    assert caught >= 10  # the great majority of corruptions must be visible


def _shift_one_network(description):
    for segments in description["protocols"].values():
        for _start, _end, _always, lpm in segments:
            for groups in lpm.values():
                for _length, nets in groups:
                    if nets:
                        key = sorted(nets)[0]
                        nets[key ^ (1 << 8)] = nets.pop(key)
                        return True
    return False
