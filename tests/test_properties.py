"""Cross-cutting property-based tests on core invariants.

These target the load-bearing guarantees: valley-free routing, selection
staying inside pools, dispatch never mis-delivering, cache TTL safety.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import Policy, PolicyAttributes, PolicyEngine
from repro.core.pool import AddressPool
from repro.core.strategies import (
    HashedAssignment,
    MappedAssignment,
    PerPopAssignment,
    RandomSelection,
    SelectionContext,
    StaticAssignment,
)
from repro.netsim.addr import IPAddress, Prefix, parse_prefix
from repro.netsim.bgp import Announcement, ASGraph, BGPSimulation, Relationship
from repro.netsim.packet import FiveTuple, Packet, Protocol
from repro.sockets.lookup import LookupPath, LookupStage
from repro.sockets.sklookup import MatchRule, SkLookupProgram, SockArray, Verdict
from repro.sockets.socktable import SocketTable

PFX = parse_prefix("198.51.100.0/24")


def random_topology(rng: random.Random, n_transit: int = 5, n_stub: int = 10) -> ASGraph:
    """A random but structurally valid AS graph: transit tree + stubs."""
    graph = ASGraph()
    transits = [f"t{i}" for i in range(n_transit)]
    for i, t in enumerate(transits):
        graph.add_as(t)
        if i > 0:
            provider = transits[rng.randrange(i)]
            graph.add_provider(t, provider)
    # Some peering among transits.
    for _ in range(n_transit):
        a, b = rng.sample(transits, 2)
        try:
            graph.add_peering(a, b)
        except ValueError:
            pass  # already related
    for i in range(n_stub):
        stub = f"s{i}"
        graph.add_provider(stub, rng.choice(transits))
        if rng.random() < 0.3:
            other = rng.choice(transits)
            try:
                graph.add_provider(stub, other)
            except ValueError:
                pass
    return graph


def path_is_valley_free(graph: ASGraph, receiver, path: tuple) -> bool:
    """Gao–Rexford validity: once the path goes down (p2c) or sideways
    (p2p), it must never go up or sideways again.

    ``path`` is the AS-path as stored in the receiver's RIB: next hop
    first, origin last.  Traffic flows receiver -> ... -> origin; the
    export chain runs origin -> ... -> receiver, so we walk it reversed.
    """
    chain = [receiver, *path]           # receiver, next hop, ..., origin
    hops = list(reversed(chain))        # origin ... receiver = export order
    seen_down_or_peer = False
    for sender, recipient in zip(hops, hops[1:]):
        rel_of_sender = graph.relationship(recipient, sender)
        if rel_of_sender is Relationship.CUSTOMER:
            # Sender is the recipient's customer: an "up" export (customer
            # route) — only legal while we have not yet gone down/sideways.
            if seen_down_or_peer:
                return False
        else:
            seen_down_or_peer = True
    return True


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_all_routes_valley_free(seed):
    rng = random.Random(seed)
    graph = random_topology(rng)
    sim = BGPSimulation(graph)
    origin = f"s{rng.randrange(10)}"
    sim.announce(Announcement(PFX, origin))
    sim.converge()
    for asn in graph.ases():
        route = sim.rib(asn).best(PFX)
        if route is None or not route.as_path:
            continue
        assert path_is_valley_free(graph, asn, route.as_path), (
            f"valley at {asn}: {route.as_path}"
        )


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_forwarding_reaches_origin(seed):
    rng = random.Random(seed)
    graph = random_topology(rng)
    sim = BGPSimulation(graph)
    origin = f"s{rng.randrange(10)}"
    sim.announce(Announcement(PFX, origin))
    sim.converge()
    for asn in graph.ases():
        path = sim.forwarding_path(asn, PFX.first)
        if path is not None:
            assert path[-1] == origin
            assert len(set(path)) == len(path)  # loop-free


_strategies = st.sampled_from([
    RandomSelection(),
    HashedAssignment(),
    StaticAssignment(per_address=4),
    PerPopAssignment(["iad", "lhr", "sin"]),
    MappedAssignment(),
])


@settings(max_examples=100, deadline=None)
@given(
    strategy=_strategies,
    length=st.integers(min_value=24, max_value=32),
    hostname=st.text(alphabet="abcdefghij", min_size=1, max_size=10),
    pop=st.sampled_from(["iad", "lhr", "sin", "mystery"]),
    seed=st.integers(0, 1 << 16),
)
def test_property_every_strategy_stays_in_pool(strategy, length, hostname, pop, seed):
    pool = AddressPool(Prefix.of(IPAddress.from_text("192.0.2.0"), min(length, 24)),
                       active=Prefix.of(IPAddress.from_text("192.0.2.0"), length))
    ctx = SelectionContext(hostname=f"{hostname}.example", pop=pop)
    address = strategy.select(pool, ctx, random.Random(seed))
    assert pool.contains(address)


@settings(max_examples=60, deadline=None)
@given(
    pops=st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5,
                  unique=True),
    seed=st.integers(0, 1 << 16),
)
def test_property_per_pop_assignment_injective(pops, seed):
    pool = AddressPool(parse_prefix("192.0.2.0/24"))
    strategy = PerPopAssignment(pops)
    addresses = [strategy.address_for_pop(pool, pop) for pop in pops]
    assert len(set(addresses)) == len(pops)


@settings(max_examples=60, deadline=None)
@given(
    dst_suffix=st.integers(0, 255),
    port=st.integers(1, 65535),
    proto=st.sampled_from([Protocol.TCP, Protocol.UDP, Protocol.QUIC]),
)
def test_property_sk_lookup_never_misdelivers(dst_suffix, port, proto):
    """A program steering (pool, 443) must deliver exactly the packets
    matching both, and nothing else."""
    pool = parse_prefix("192.0.2.0/25")  # only half the /24
    table = SocketTable()
    sock = table.bind_listen(Protocol.TCP, IPAddress.from_text("198.18.0.1"), 443)
    arr = SockArray(1)
    arr.update(0, sock)
    program = SkLookupProgram("p", arr, [
        MatchRule(Verdict.PASS, Protocol.TCP, (pool,), 443, 443, map_key=0),
    ])
    path = LookupPath(table)
    path.attach(program)

    dst = IPAddress.from_text("192.0.2.0")
    dst = IPAddress.v4(dst.value + dst_suffix)
    packet = Packet(FiveTuple(proto, IPAddress.from_text("100.64.0.1"), 9999, dst, port),
                    syn=True)
    result = path.dispatch(packet)
    should_match = (dst in pool) and port == 443 and proto.wire_protocol is Protocol.TCP
    assert (result.stage is LookupStage.SK_LOOKUP) == should_match
    if not should_match:
        assert result.stage is LookupStage.MISS


@settings(max_examples=60, deadline=None)
@given(
    ttl=st.integers(1, 10_000),
    clamp_min=st.integers(0, 5_000),
    clamp_max=st.integers(0, 100_000),
    elapsed=st.floats(0, 200_000),
)
def test_property_cache_never_serves_past_effective_ttl(ttl, clamp_min, clamp_max, elapsed):
    from repro.clock import Clock
    from repro.dns.cache import DNSCache, TTLPolicy
    from repro.dns.records import A, DomainName, Question, ResourceRecord, RRType

    if clamp_min > clamp_max:
        clamp_min, clamp_max = clamp_max, clamp_min
    if clamp_min == clamp_max == 0:
        clamp_max = 1
    policy = TTLPolicy(clamp_min=clamp_min, clamp_max=clamp_max)
    clock = Clock()
    cache = DNSCache(clock, policy)
    question = Question(DomainName.from_text("x.example"), RRType.A)
    record = ResourceRecord(question.name, A(IPAddress.from_text("192.0.2.1")), ttl)
    cache.store(question, [record])
    clock.advance(elapsed)
    hit = cache.get(question)
    effective = policy.effective_ttl(ttl)
    if elapsed >= effective:
        assert hit is None
    elif hit is not None:
        assert hit[0].ttl <= effective


@settings(max_examples=50, deadline=None)
@given(
    n_policies=st.integers(1, 6),
    pop=st.sampled_from(["iad", "lhr"]),
    account=st.sampled_from(["free", "pro", None]),
    seed=st.integers(0, 1 << 16),
)
def test_property_engine_first_match_semantics(n_policies, pop, account, seed):
    """Whatever the configuration, the decision (if any) comes from the
    lowest-priority matching policy and lies inside that policy's pool."""
    rng = random.Random(seed)
    engine = PolicyEngine(random.Random(seed + 1))
    pools = []
    for i in range(n_policies):
        pool = AddressPool(Prefix.of(IPAddress.v4(0x0A000000 + (i << 8)), 24))
        pools.append(pool)
        match = {}
        if rng.random() < 0.5:
            match["pop"] = {rng.choice(["iad", "lhr"])}
        if rng.random() < 0.5:
            match["account_type"] = {rng.choice(["free", "pro"])}
        engine.add(Policy(f"p{i}", pool, match=match, priority=rng.randrange(10)))
    attrs = PolicyAttributes(pop=pop, account_type=account, family=4, hostname="h.example")
    decision = engine.evaluate(attrs)
    matching = [p for p in sorted(engine.policies(), key=lambda p: p.priority)
                if p.matches(attrs)]
    if decision is None:
        assert not matching
    else:
        assert decision.policy.name == matching[0].name
        assert decision.policy.pool.contains(decision.address)
