"""ECS-informed per-PoP assignment: fixing the §6 mismatch at its source.

Extension experiment: the plain per-PoP policy attributes traffic by where
the *query* arrived, so resolver↔client catchment mismatch produces
legitimate "bleed" on other PoPs' addresses (§6's measurement).  With
RFC 7871 Client Subnet, the authoritative can assign by the *client's*
catchment instead — removing the bleed and letting the leak detector run
with tight thresholds.
"""

import random


from repro.agility.leaks import RouteLeakDetector
from repro.core import (
    AddressPool,
    EcsPerPopAssignment,
    PerPopAssignment,
    Policy,
    PolicyAnswerSource,
    PolicyEngine,
)
from repro.dns import RecursiveResolver, StubResolver
from repro.edge import ListenMode
from repro.netsim.addr import IPAddress, parse_prefix
from repro.web import BrowserClient

from conftest import POOL_PREFIX, make_cdn

POPS = ["ashburn", "london"]

#: Client prefixes per region; the CDN's geo oracle knows their catchments.
REGION_PREFIX = {
    "us": parse_prefix("100.64.0.0/24"),
    "eu": parse_prefix("100.64.1.0/24"),
}
REGION_POP = {"us": "ashburn", "eu": "london"}


def build(clock, use_ecs: bool):
    cdn, hostnames = make_cdn(regions={"us": ["ashburn"], "eu": ["london"]})
    cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
    pool = AddressPool(POOL_PREFIX, name="perpop")
    per_pop = PerPopAssignment(POPS)

    def catchment_of(prefix_text: str):
        prefix = parse_prefix(prefix_text)
        for region, region_prefix in REGION_PREFIX.items():
            if region_prefix.overlaps(prefix):
                return REGION_POP[region]
        return None

    strategy = EcsPerPopAssignment(per_pop, catchment_of) if use_ecs else per_pop
    engine = PolicyEngine(random.Random(5))
    engine.add(Policy("perpop", pool, strategy=strategy, ttl=30))
    cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
    detector = RouteLeakDetector(pool, per_pop, POPS, min_requests=1, min_share=0.0)
    return cdn, hostnames, pool, per_pop, detector


def mismatched_client(cdn, clock, tag: str, ecs: bool):
    """An EU client whose resolver is US-homed (the §6 mismatch)."""
    client_region = "eu"
    ecs_prefix = REGION_PREFIX[client_region] if ecs else None
    resolver = RecursiveResolver(
        f"res-{tag}", clock, cdn.dns_transport("eyeball:us:0"),
        asn="eyeball:us:0", ecs_prefix=ecs_prefix,
    )
    stub = StubResolver(f"stub-{tag}", clock, resolver)
    client_addr = IPAddress.v4(REGION_PREFIX[client_region].network | 0x7)
    return BrowserClient(f"cl-{tag}", stub,
                         cdn.transport_for("eyeball:eu:0", client_addr))


class TestEcsPerPop:
    def test_without_ecs_mismatch_bleeds(self, clock):
        cdn, hostnames, pool, per_pop, detector = build(clock, use_ecs=False)
        client = mismatched_client(cdn, clock, "plain", ecs=False)
        for hostname in hostnames[:4]:
            client.fetch(hostname)
        # DNS at ashburn handed out ashburn's address; packets landed in
        # london: with zero thresholds the detector fires on the bleed.
        logs = {pop: cdn.datacenters[pop].traffic for pop in POPS}
        alerts = detector.scan(logs)
        assert alerts and alerts[0].observed_at == "london"

    def test_with_ecs_mismatch_resolved(self, clock):
        cdn, hostnames, pool, per_pop, detector = build(clock, use_ecs=True)
        client = mismatched_client(cdn, clock, "ecs", ecs=True)
        for hostname in hostnames[:4]:
            client.fetch(hostname)
        # ECS told the authoritative the client is EU: it answered with
        # london's address, traffic lands at london on london's address.
        logs = {pop: cdn.datacenters[pop].traffic for pop in POPS}
        assert detector.scan(logs) == []
        london_addr = per_pop.address_for_pop(pool, "london")
        assert cdn.datacenters["london"].traffic.by_address()[london_addr].requests == 4

    def test_ecs_absent_falls_back_to_arrival_pop(self, clock):
        cdn, hostnames, pool, per_pop, detector = build(clock, use_ecs=True)
        # Aligned client, resolver sends no ECS: arrival-PoP behaviour.
        resolver = RecursiveResolver("r", clock, cdn.dns_transport("eyeball:us:1"))
        stub = StubResolver("s", clock, resolver)
        client = BrowserClient("c", stub, cdn.transport_for("eyeball:us:1"))
        client.fetch(hostnames[0])
        ashburn_addr = per_pop.address_for_pop(pool, "ashburn")
        assert ashburn_addr in cdn.datacenters["ashburn"].traffic.by_address()

    def test_unknown_subnet_falls_back(self, clock):
        cdn, hostnames, pool, per_pop, detector = build(clock, use_ecs=True)
        resolver = RecursiveResolver(
            "r", clock, cdn.dns_transport("eyeball:us:1"),
            ecs_prefix=parse_prefix("172.16.0.0/24"),  # oracle doesn't know it
        )
        stub = StubResolver("s", clock, resolver)
        addrs = stub.lookup(hostnames[0])
        assert addrs == [per_pop.address_for_pop(pool, "ashburn")]
