"""repro.obs: metrics registry, trace recorder, legacy adapters, exporters."""

import json

import pytest

from repro.clock import Clock
from repro.dns.cache import CacheStats, DNSCache, TTLPolicy
from repro.dns.records import A, DomainName, Question, ResourceRecord, RRType
from repro.dns.resolver import ResolverStats
from repro.edge.ecmp import ECMPRouter
from repro.faults.events import FaultEvent, FaultTimeline
from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Packet, Protocol
from repro.obs import (
    MetricError,
    MetricsRegistry,
    SpanEvent,
    TraceRecorder,
    bucket_label,
    diff_snapshots,
    render_diff,
    to_json,
    to_prometheus,
)
from repro.obs.adapters import (
    watch_cache_stats,
    watch_ecmp,
    watch_fault_timeline,
    watch_resolver_stats,
    watch_sklookup,
    watch_speakers,
)
from repro.sockets.sklookup import MatchRule, SkLookupProgram, SockArray, Verdict
from repro.sockets.socktable import SocketTable

POOL = parse_prefix("192.0.2.0/24")


def packet(dst="192.0.2.7", dport=80, sport=40000):
    return Packet(
        FiveTuple(Protocol.TCP, parse_address("198.51.100.9"), sport,
                  parse_address(dst), dport),
        syn=True,
    )


class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("requests").inc()
        reg.counter("requests").inc(2)
        reg.gauge("depth").set(7)
        reg.histogram("lat", buckets=(1.0, 10.0)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["gauges"]["depth"] == 7
        assert snap["histograms"]["lat"]["count"] == 1

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_cross_type_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError):
            reg.gauge("x")
        with pytest.raises(MetricError):
            reg.histogram("x")

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("x").inc(-1)

    def test_snapshot_timestamp_follows_clock(self):
        clock = Clock()
        reg = MetricsRegistry(clock)
        clock.advance(42)
        assert reg.snapshot()["at"] == 42
        assert MetricsRegistry().snapshot()["at"] is None

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["lat"]
        assert snap["buckets"] == [["1", 1], ["10", 2], ["+Inf", 3]]
        assert snap["sum"] == 55.5

    def test_bucket_label_inf_is_json_safe(self):
        assert bucket_label(float("inf")) == "+Inf"
        assert bucket_label(0.25) == "0.25"

    def test_attach_detach_collector(self):
        reg = MetricsRegistry()
        reg.attach("legacy", lambda: {"hits": 4})
        assert reg.snapshot()["counters"]["legacy.hits"] == 4
        reg.detach("legacy")
        assert "legacy.hits" not in reg.snapshot()["counters"]

    def test_duplicate_attach_rejected(self):
        reg = MetricsRegistry()
        reg.attach("p", lambda: {})
        with pytest.raises(MetricError):
            reg.attach("p", lambda: {})


class TestTraceRecorder:
    def test_span_records_simulated_duration(self):
        clock = Clock()
        tracer = TraceRecorder(clock)
        trace = tracer.next_trace_id("query")
        with tracer.span(trace, "resolve"):
            clock.advance(3)
        (span,) = tracer.spans(trace)
        assert span.duration == 3 and span.phase == "resolve"

    def test_span_records_even_on_exception(self):
        clock = Clock()
        tracer = TraceRecorder(clock)
        with pytest.raises(RuntimeError), tracer.span("t:1", "boom"):
            clock.advance(1)
            raise RuntimeError("x")
        assert len(tracer) == 1

    def test_trace_ids_are_unique_and_deterministic(self):
        tracer = TraceRecorder(Clock())
        ids = [tracer.next_trace_id("query"), tracer.next_trace_id("failover"),
               tracer.next_trace_id("query")]
        assert len(set(ids)) == 3
        fresh = TraceRecorder(Clock())
        assert [fresh.next_trace_id("query"), fresh.next_trace_id("failover"),
                fresh.next_trace_id("query")] == ids

    def test_phase_durations_aggregate(self):
        clock = Clock()
        tracer = TraceRecorder(clock)
        tracer.record("t:1", "detect", 0.0, 2.0)
        tracer.record("t:1", "rebind", 2.0, 5.0)
        tracer.record("t:2", "detect", 5.0, 6.0)
        assert tracer.phase_durations() == {"detect": 3.0, "rebind": 3.0}
        assert tracer.phase_durations("t:2") == {"detect": 1.0}

    def test_mark_is_zero_duration(self):
        clock = Clock()
        clock.advance(9)
        tracer = TraceRecorder(clock)
        span = tracer.mark("t:1", "fault")
        assert span.start == span.end == 9 and span.duration == 0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            SpanEvent(trace="t:1", phase="p", start=5.0, end=4.0)


class TestLegacySurfaces:
    """Acceptance criterion: all five legacy stats surfaces readable
    through one MetricsRegistry."""

    def test_all_five_surfaces_in_one_registry(self):
        reg = MetricsRegistry()

        cache = CacheStats(hits=3, misses=1)
        watch_cache_stats(reg, "cache", cache)

        resolver = ResolverStats(client_queries=5, retries=2)
        watch_resolver_stats(reg, "resolver", resolver)

        router = ECMPRouter(["a", "b"])
        router.route(packet())
        watch_ecmp(reg, "ecmp", router)

        table = SocketTable()
        listener = table.bind_listen(Protocol.TCP, parse_address("198.18.0.1"), 80)
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        prog.run(packet())
        watch_sklookup(reg, "sk", prog)

        timeline = FaultTimeline()
        timeline.record(FaultEvent(at=1.0, kind="pop_withdrawn", target="dc1"))
        timeline.record(FaultEvent(at=2.0, kind="pop_withdrawn", target="dc1",
                                   phase="revert"))
        watch_fault_timeline(reg, "faults", timeline)

        counters = reg.snapshot()["counters"]
        assert counters["cache.hits"] == 3
        assert counters["resolver.client_queries"] == 5
        assert counters["ecmp.routed"] == 1 and counters["ecmp.servers"] == 2
        assert counters["sk.runs"] == 1 and counters["sk.rules"] == 1
        assert counters["faults.events"] == 2
        assert counters["faults.by_kind.pop_withdrawn"] == 2
        assert counters["faults.by_phase.revert"] == 1

    def test_collectors_read_live_state(self):
        """Pull-based: the registry sees counts as they are *now*."""
        reg = MetricsRegistry()
        stats = CacheStats()
        watch_cache_stats(reg, "cache", stats)
        assert reg.snapshot()["counters"]["cache.hits"] == 0
        stats.hits += 10
        assert reg.snapshot()["counters"]["cache.hits"] == 10


class TestExporters:
    def make_snapshot(self):
        clock = Clock()
        clock.advance(5)
        reg = MetricsRegistry(clock)
        reg.counter("dns.queries").inc(7)
        reg.gauge("pool size").set(3)  # space must be sanitised for prom
        reg.histogram("lat", buckets=(1.0,)).observe(2.5)
        return reg.snapshot()

    def test_json_round_trips_strict(self):
        doc = json.loads(to_json(self.make_snapshot()))
        assert doc["counters"]["dns.queries"] == 7
        # the +Inf bucket must survive strict JSON (no bare Infinity)
        assert doc["histograms"]["lat"]["buckets"][-1][0] == "+Inf"

    def test_prometheus_format(self):
        text = to_prometheus(self.make_snapshot())
        assert "# TYPE repro_dns_queries counter" in text
        assert "repro_dns_queries 7" in text
        assert "repro_pool_size 3" in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text

    def test_diff_reports_only_deltas(self):
        before = self.make_snapshot()
        clock = Clock()
        reg = MetricsRegistry(clock)
        reg.counter("dns.queries").inc(9)
        reg.counter("new.metric").inc(1)
        reg.gauge("pool size").set(3)  # unchanged: must not appear
        after = reg.snapshot()
        diff = diff_snapshots(before, after)
        assert diff["counters"] == {"dns.queries": 2, "new.metric": 1}
        assert diff["gauges"] == {}
        rendered = render_diff(diff)
        assert "dns.queries" in rendered and "+2" in rendered


class TestDeterminism:
    def test_snapshot_and_exports_are_reproducible(self):
        def build():
            reg = MetricsRegistry()
            reg.attach("b", lambda: {"x": 1})
            reg.attach("a", lambda: {"y": 2})
            reg.counter("z").inc()
            reg.histogram("h").observe(0.5)
            return reg.snapshot()

        a, b = build(), build()
        assert a == b
        assert to_json(a) == to_json(b)
        assert to_prometheus(a) == to_prometheus(b)


class TestExperimentTracing:
    """Acceptance criterion: an experiment records per-phase durations."""

    def test_ttl_experiment_records_phase_durations(self):
        from repro.experiments.ttl import run_ttl_experiment

        reg = MetricsRegistry()
        run_ttl_experiment(authoritative_ttl=10, clamp_mins=(0,), registry=reg)
        snap = reg.snapshot()
        hists = snap["histograms"]
        assert hists["ttl.phase_seconds.converge"]["count"] == 1
        assert hists["ttl.flip_seconds"]["count"] == 1
        # flip within TTL + one probe for the honest resolver
        assert hists["ttl.flip_seconds"]["sum"] <= 11
        assert snap["counters"]["ttl.honest.resolver.client_queries"] > 0

    def test_cache_never_blocks_untraced_path(self):
        """registry=None keeps the legacy (un-instrumented) path intact."""
        from repro.experiments.ttl import run_ttl_experiment

        runs = run_ttl_experiment(authoritative_ttl=10, clamp_mins=(0,))
        assert runs[0].observed_flip_time <= runs[0].bound


def question(text="www.example.com"):
    return Question(DomainName.from_text(text), RRType.A)


def record(text="www.example.com", addr="192.0.2.1", ttl=60):
    return ResourceRecord(DomainName.from_text(text), A(parse_address(addr)), ttl)


class TestCacheAdapterIntegration:
    def test_eviction_and_expiration_distinct_in_snapshot(self):
        clock = Clock()
        cache = DNSCache(clock, TTLPolicy.honest(), capacity=2)
        reg = MetricsRegistry(clock)
        watch_cache_stats(reg, "cache", cache.stats)
        cache.store(question("a.example.com"), [record("a.example.com", ttl=100)])
        cache.store(question("b.example.com"), [record("b.example.com", ttl=900)])
        cache.store(question("c.example.com"), [record("c.example.com", ttl=900)])
        counters = reg.snapshot()["counters"]
        assert counters["cache.evictions"] == 1
        assert counters["cache.expirations"] == 0


class TestSpeakersAdapter:
    def make_sim(self):
        from repro.netsim.bgp import Announcement, ASGraph
        from repro.netsim.speakers import LinkProfile, SpeakerSimulation

        g = ASGraph()
        g.add_provider("c", "t")
        g.add_provider("d", "t")
        sim = SpeakerSimulation(
            g, profile=LinkProfile(base_delay_s=0.05, jitter_s=0.05, mrai_s=0.0)
        )
        sim.announce(Announcement(parse_prefix("198.51.100.0/24"), "d"))
        sim.settle()
        return sim

    def test_watch_speakers_prometheus_golden(self):
        sim = self.make_sim()
        reg = MetricsRegistry()
        watch_speakers(reg, "bgp", sim)
        text = to_prometheus(reg.snapshot())
        assert "repro_bgp_messages_sent" in text
        assert "repro_bgp_pending_messages 0" in text
        assert "repro_bgp_sessions_down 0" in text
        # The pre-attach convergence window was replayed into the histogram.
        assert 'repro_bgp_convergence_s_bucket{le="+Inf"} 1' in text
        assert "repro_bgp_convergence_s_count 1" in text

    def test_windows_closed_after_attach_feed_the_histogram(self):
        from repro.netsim.bgp import Announcement
        from repro.netsim.addr import parse_prefix as pp

        sim = self.make_sim()
        reg = MetricsRegistry()
        watch_speakers(reg, "bgp", sim)
        sim.announce(Announcement(pp("203.0.113.0/24"), "c"))
        sim.settle()
        hists = reg.snapshot()["histograms"]
        assert hists["bgp.convergence_s"]["count"] == 2
