"""Wire codec: round trips, name compression, malformed-input defence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.records import (
    A,
    AAAA,
    CNAME,
    NS,
    SOA,
    TXT,
    DomainName,
    Question,
    ResourceRecord,
    RRType,
)
from repro.dns.wire import Flags, Message, Opcode, Rcode, WireError, decode_name, encode_name
from repro.netsim.addr import parse_address


def rr(name: str, rdata, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(DomainName.from_text(name), rdata, ttl)


class TestFlags:
    def test_pack_unpack_round_trip(self):
        for flags in (
            Flags(),
            Flags(qr=True, aa=True, rcode=Rcode.NXDOMAIN),
            Flags(qr=True, tc=True, ra=True, rd=False),
            Flags(opcode=Opcode.NOTIFY),
        ):
            assert Flags.unpack(flags.pack()) == flags

    def test_known_bit_positions(self):
        assert Flags(qr=True).pack() & 0x8000
        assert Flags(aa=True).pack() & 0x0400
        assert Flags(rd=True).pack() & 0x0100
        assert Flags(rcode=Rcode.SERVFAIL).pack() & 0x0002


class TestNameCompression:
    def test_compression_reuses_suffixes(self):
        out = bytearray()
        offsets: dict = {}
        encode_name(DomainName.from_text("www.example.com"), out, offsets)
        first_len = len(out)
        encode_name(DomainName.from_text("mail.example.com"), out, offsets)
        # The second name should be "mail" + a 2-byte pointer.
        assert len(out) - first_len == 1 + 4 + 2

    def test_identical_name_is_pure_pointer(self):
        out = bytearray()
        offsets: dict = {}
        name = DomainName.from_text("www.example.com")
        encode_name(name, out, offsets)
        before = len(out)
        encode_name(name, out, offsets)
        assert len(out) - before == 2

    def test_decode_follows_pointers(self):
        out = bytearray()
        offsets: dict = {}
        encode_name(DomainName.from_text("www.example.com"), out, offsets)
        encode_name(DomainName.from_text("ftp.example.com"), out, offsets)
        name1, off1 = decode_name(bytes(out), 0)
        name2, off2 = decode_name(bytes(out), off1)
        assert str(name1) == "www.example.com."
        assert str(name2) == "ftp.example.com."
        assert off2 == len(out)

    def test_pointer_loop_rejected(self):
        # A pointer at offset 0 pointing to itself.
        data = b"\xc0\x00"
        with pytest.raises(WireError):
            decode_name(data, 0)

    def test_forward_pointer_rejected(self):
        # Pointer to offset 4, beyond itself.
        data = b"\xc0\x04\x00\x00\x01a\x00"
        with pytest.raises(WireError):
            decode_name(data, 0)

    def test_truncated_label_rejected(self):
        with pytest.raises(WireError):
            decode_name(b"\x05ab", 0)

    def test_reserved_label_type_rejected(self):
        with pytest.raises(WireError):
            decode_name(b"\x80a\x00", 0)


class TestMessageRoundTrip:
    def test_query_round_trip(self):
        q = Message.query(0xBEEF, "www.example.com", RRType.A)
        decoded = Message.decode(q.encode())
        assert decoded.id == 0xBEEF
        assert not decoded.flags.qr
        assert decoded.question.name == DomainName.from_text("www.example.com")
        assert decoded.question.rrtype == RRType.A

    def test_response_with_all_sections(self):
        query = Message.query(7, "x.example.com", RRType.A)
        soa = SOA(
            DomainName.from_text("ns1.example.com"),
            DomainName.from_text("root.example.com"),
            1, 2, 3, 4, 5,
        )
        response = query.response(
            answers=(rr("x.example.com", A(parse_address("192.0.2.1"))),),
            authority=(rr("example.com", soa, ttl=3600),),
            additional=(rr("ns1.example.com", A(parse_address("192.0.2.53"))),),
        )
        decoded = Message.decode(response.encode())
        assert decoded.flags.qr and decoded.flags.aa
        assert len(decoded.answers) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1
        assert decoded.answers[0].rdata == A(parse_address("192.0.2.1"))
        assert decoded.authority[0].rdata == soa

    def test_aaaa_round_trip(self):
        msg = Message.query(1, "v6.example.com", RRType.AAAA).response(
            answers=(rr("v6.example.com", AAAA(parse_address("2001:db8::7"))),)
        )
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata == AAAA(parse_address("2001:db8::7"))

    def test_cname_chain_round_trip(self):
        msg = Message.query(2, "alias.example.com", RRType.A).response(
            answers=(
                rr("alias.example.com", CNAME(DomainName.from_text("real.example.com"))),
                rr("real.example.com", A(parse_address("192.0.2.9"))),
            )
        )
        decoded = Message.decode(msg.encode())
        assert isinstance(decoded.answers[0].rdata, CNAME)
        assert decoded.answers[0].rdata.target == DomainName.from_text("real.example.com")

    def test_txt_round_trip(self):
        msg = Message.query(3, "t.example.com", RRType.TXT).response(
            answers=(rr("t.example.com", TXT(("hello", "wörld"))),)
        )
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata.strings == ("hello", "wörld")

    def test_ns_round_trip(self):
        msg = Message.query(4, "example.com", RRType.NS).response(
            answers=(rr("example.com", NS(DomainName.from_text("ns1.example.com"))),)
        )
        decoded = Message.decode(msg.encode())
        # NS decodes as NS (not CNAME).
        assert decoded.answers[0].rrtype == RRType.NS

    def test_compression_shrinks_multi_answer_messages(self):
        answers = tuple(
            rr(f"h{i}.example.com", A(parse_address(f"192.0.2.{i}"))) for i in range(1, 20)
        )
        msg = Message.query(5, "h1.example.com", RRType.A).response(answers=answers)
        encoded = msg.encode()
        # Without compression each "example.com" costs 13 bytes; with it, 2.
        uncompressed_estimate = sum(len(str(a.name)) + 1 for a in answers)
        assert len(encoded) < uncompressed_estimate + 200

    def test_id_range_enforced(self):
        with pytest.raises(ValueError):
            Message(id=-1, flags=Flags())
        with pytest.raises(ValueError):
            Message(id=1 << 16, flags=Flags())


class TestMalformedMessages:
    def test_short_header(self):
        with pytest.raises(WireError):
            Message.decode(b"\x00\x01")

    def test_truncated_question(self):
        q = Message.query(1, "www.example.com", RRType.A).encode()
        with pytest.raises(WireError):
            Message.decode(q[:-3])

    def test_rdata_overrun_rejected(self):
        msg = Message.query(1, "x.com", RRType.A).response(
            answers=(rr("x.com", A(parse_address("1.2.3.4"))),)
        ).encode()
        with pytest.raises(WireError):
            Message.decode(msg[:-2])

    def test_question_missing_raises_on_access(self):
        m = Message(id=1, flags=Flags())
        with pytest.raises(WireError):
            _ = m.question


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)
_name = st.lists(_label, min_size=1, max_size=5).map(lambda ls: DomainName(tuple(ls)))


@settings(max_examples=150)
@given(names=st.lists(_name, min_size=1, max_size=8), qid=st.integers(0, 0xFFFF))
def test_property_any_answer_set_round_trips(names, qid):
    answers = tuple(
        ResourceRecord(n, A(parse_address(f"10.0.{i % 256}.{(i * 7) % 256}")), ttl=60)
        for i, n in enumerate(names)
    )
    msg = Message(
        id=qid,
        flags=Flags(qr=True),
        questions=(Question(names[0], RRType.A),),
        answers=answers,
    )
    decoded = Message.decode(msg.encode())
    assert decoded.answers == answers
    assert decoded.id == qid


@settings(max_examples=150)
@given(name=_name)
def test_property_name_compression_round_trip(name):
    out = bytearray(b"\x00" * 7)  # non-zero start offset exercises pointers
    offsets: dict = {}
    encode_name(name, out, offsets)
    encode_name(name, out, offsets)
    n1, off = decode_name(bytes(out), 7)
    n2, _ = decode_name(bytes(out), off)
    assert n1 == name and n2 == name


@settings(max_examples=200)
@given(data=st.binary(min_size=0, max_size=64))
def test_property_decoder_never_crashes_on_junk(data):
    """Malformed input must raise WireError (or decode), never crash."""
    try:
        Message.decode(data)
    except WireError:
        pass
    except ValueError:
        pass  # enum conversion of junk type/class codes


def _name_of_wire_size(total_label_octets: int) -> DomainName:
    """A name whose labels + length bytes sum to ``total_label_octets``
    (wire size is that plus the 1-byte terminator).  Built from 63-octet
    labels plus one remainder label."""
    labels: list[str] = []
    remaining = total_label_octets
    while remaining >= 64:
        labels.append("a" * 63)
        remaining -= 64
    if remaining:
        assert remaining >= 2, "cannot make a label of 0 content octets"
        labels.append("b" * (remaining - 1))
    return DomainName(tuple(labels))


class TestEncodeBoundaries:
    """The two hard edges of the codec: the 255-octet name ceiling and the
    14-bit (0x3FFF) compression-pointer horizon."""

    def test_maximum_name_round_trips(self):
        # 254 label octets + terminator = 255 on the wire: the RFC maximum.
        name = _name_of_wire_size(254)
        out = bytearray()
        encode_name(name, out, {})
        assert len(out) == 255
        decoded, off = decode_name(bytes(out), 0)
        assert decoded == name and off == 255

    def test_name_over_255_rejected_at_construction(self):
        from repro.dns.records import DNSNameError

        with pytest.raises(DNSNameError):
            _name_of_wire_size(255)

    def test_decoder_rejects_overlong_wire_name(self):
        # Hand-craft 4×63-octet labels (256 label octets): no DomainName can
        # produce this, but a hostile packet can.
        wire = bytearray()
        for _ in range(4):
            wire.append(63)
            wire += b"c" * 63
        wire.append(0)
        with pytest.raises(WireError, match="255"):
            decode_name(bytes(wire), 0)

    def test_suffix_beyond_horizon_stays_uncompressed(self):
        # A suffix first emitted past 0x3FFF can never be a pointer target:
        # it must be written in full both times, and still round-trip.
        name = DomainName.from_text("deep.example.com")
        out = bytearray(b"\x00" * 0x4000)  # start past the horizon
        offsets: dict = {}
        first = len(out)
        encode_name(name, out, offsets)
        second = len(out)
        encode_name(name, out, offsets)
        end = len(out)
        assert second - first == end - second  # no pointer: same size twice
        assert all(at <= 0x3FFF for at in offsets.values())
        n1, _ = decode_name(bytes(out), first)
        n2, _ = decode_name(bytes(out), second)
        assert n1 == n2 == name

    def test_pointer_back_across_horizon_is_used(self):
        # A suffix registered below 0x3FFF is still pointable from far
        # beyond it — the horizon caps targets, not pointer locations.
        name = DomainName.from_text("early.example.com")
        out = bytearray()
        offsets: dict = {}
        encode_name(name, out, offsets)
        out += b"\x00" * 0x4100  # move the write head past the horizon
        at = len(out)
        encode_name(name, out, offsets)
        assert len(out) - at == 2  # pure pointer
        decoded, _ = decode_name(bytes(out), at)
        assert decoded == name

    def test_suffix_registered_exactly_at_horizon_is_pointable(self):
        out = bytearray(b"\x00" * 0x3FFF)
        offsets: dict = {}
        name = DomainName.from_text("edge.example.org")
        encode_name(name, out, offsets)  # first label lands at 0x3FFF
        assert offsets[name.labels] == 0x3FFF
        at = len(out)
        encode_name(name, out, offsets)
        assert len(out) - at == 2
        decoded, _ = decode_name(bytes(out), at)
        assert decoded == name

    def test_seeded_fuzz_round_trip_across_horizon(self):
        """Deterministic sweep: hundreds of random names encoded into one
        buffer whose write head crosses 0x3FFF mid-stream, then decoded
        back in order.  Catches offset-table corruption at the horizon."""
        import random as _random

        rng = _random.Random(0x3FFF)
        out = bytearray(b"\x00" * (0x3FFF - 600))  # horizon falls mid-sweep
        offsets: dict = {}
        emitted: list[tuple[int, DomainName]] = []
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        suffix_pool = ["example.com", "example.net", "cdn.example.com"]
        for _ in range(400):
            labels = tuple(
                "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 12)))
                for _ in range(rng.randint(1, 3))
            )
            name = DomainName(
                (*labels, *DomainName.from_text(rng.choice(suffix_pool)).labels)
            )
            emitted.append((len(out), name))
            encode_name(name, out, offsets)
        assert len(out) > 0x3FFF  # the sweep really crossed the horizon
        wire = bytes(out)
        for at, name in emitted:
            decoded, _ = decode_name(wire, at)
            assert decoded == name

    def test_seeded_fuzz_near_maximum_names(self):
        """Names within a few octets of the 255 ceiling, with compression
        against each other — the trim/registration arithmetic must hold at
        the edge."""
        import random as _random

        rng = _random.Random(255)
        out = bytearray()
        offsets: dict = {}
        emitted: list[tuple[int, DomainName]] = []
        for size in (246, 248, 250, 252, 254):
            for _ in range(6):
                base = _name_of_wire_size(size - rng.randint(0, 2))
                emitted.append((len(out), base))
                encode_name(base, out, offsets)
        wire = bytes(out)
        for at, name in emitted:
            decoded, _ = decode_name(wire, at)
            assert decoded == name
