"""Wire codec: round trips, name compression, malformed-input defence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.records import (
    A,
    AAAA,
    CNAME,
    NS,
    SOA,
    TXT,
    DomainName,
    Question,
    ResourceRecord,
    RRType,
)
from repro.dns.wire import Flags, Message, Opcode, Rcode, WireError, decode_name, encode_name
from repro.netsim.addr import parse_address


def rr(name: str, rdata, ttl: int = 300) -> ResourceRecord:
    return ResourceRecord(DomainName.from_text(name), rdata, ttl)


class TestFlags:
    def test_pack_unpack_round_trip(self):
        for flags in (
            Flags(),
            Flags(qr=True, aa=True, rcode=Rcode.NXDOMAIN),
            Flags(qr=True, tc=True, ra=True, rd=False),
            Flags(opcode=Opcode.NOTIFY),
        ):
            assert Flags.unpack(flags.pack()) == flags

    def test_known_bit_positions(self):
        assert Flags(qr=True).pack() & 0x8000
        assert Flags(aa=True).pack() & 0x0400
        assert Flags(rd=True).pack() & 0x0100
        assert Flags(rcode=Rcode.SERVFAIL).pack() & 0x0002


class TestNameCompression:
    def test_compression_reuses_suffixes(self):
        out = bytearray()
        offsets: dict = {}
        encode_name(DomainName.from_text("www.example.com"), out, offsets)
        first_len = len(out)
        encode_name(DomainName.from_text("mail.example.com"), out, offsets)
        # The second name should be "mail" + a 2-byte pointer.
        assert len(out) - first_len == 1 + 4 + 2

    def test_identical_name_is_pure_pointer(self):
        out = bytearray()
        offsets: dict = {}
        name = DomainName.from_text("www.example.com")
        encode_name(name, out, offsets)
        before = len(out)
        encode_name(name, out, offsets)
        assert len(out) - before == 2

    def test_decode_follows_pointers(self):
        out = bytearray()
        offsets: dict = {}
        encode_name(DomainName.from_text("www.example.com"), out, offsets)
        encode_name(DomainName.from_text("ftp.example.com"), out, offsets)
        name1, off1 = decode_name(bytes(out), 0)
        name2, off2 = decode_name(bytes(out), off1)
        assert str(name1) == "www.example.com."
        assert str(name2) == "ftp.example.com."
        assert off2 == len(out)

    def test_pointer_loop_rejected(self):
        # A pointer at offset 0 pointing to itself.
        data = b"\xc0\x00"
        with pytest.raises(WireError):
            decode_name(data, 0)

    def test_forward_pointer_rejected(self):
        # Pointer to offset 4, beyond itself.
        data = b"\xc0\x04\x00\x00\x01a\x00"
        with pytest.raises(WireError):
            decode_name(data, 0)

    def test_truncated_label_rejected(self):
        with pytest.raises(WireError):
            decode_name(b"\x05ab", 0)

    def test_reserved_label_type_rejected(self):
        with pytest.raises(WireError):
            decode_name(b"\x80a\x00", 0)


class TestMessageRoundTrip:
    def test_query_round_trip(self):
        q = Message.query(0xBEEF, "www.example.com", RRType.A)
        decoded = Message.decode(q.encode())
        assert decoded.id == 0xBEEF
        assert not decoded.flags.qr
        assert decoded.question.name == DomainName.from_text("www.example.com")
        assert decoded.question.rrtype == RRType.A

    def test_response_with_all_sections(self):
        query = Message.query(7, "x.example.com", RRType.A)
        soa = SOA(
            DomainName.from_text("ns1.example.com"),
            DomainName.from_text("root.example.com"),
            1, 2, 3, 4, 5,
        )
        response = query.response(
            answers=(rr("x.example.com", A(parse_address("192.0.2.1"))),),
            authority=(rr("example.com", soa, ttl=3600),),
            additional=(rr("ns1.example.com", A(parse_address("192.0.2.53"))),),
        )
        decoded = Message.decode(response.encode())
        assert decoded.flags.qr and decoded.flags.aa
        assert len(decoded.answers) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1
        assert decoded.answers[0].rdata == A(parse_address("192.0.2.1"))
        assert decoded.authority[0].rdata == soa

    def test_aaaa_round_trip(self):
        msg = Message.query(1, "v6.example.com", RRType.AAAA).response(
            answers=(rr("v6.example.com", AAAA(parse_address("2001:db8::7"))),)
        )
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata == AAAA(parse_address("2001:db8::7"))

    def test_cname_chain_round_trip(self):
        msg = Message.query(2, "alias.example.com", RRType.A).response(
            answers=(
                rr("alias.example.com", CNAME(DomainName.from_text("real.example.com"))),
                rr("real.example.com", A(parse_address("192.0.2.9"))),
            )
        )
        decoded = Message.decode(msg.encode())
        assert isinstance(decoded.answers[0].rdata, CNAME)
        assert decoded.answers[0].rdata.target == DomainName.from_text("real.example.com")

    def test_txt_round_trip(self):
        msg = Message.query(3, "t.example.com", RRType.TXT).response(
            answers=(rr("t.example.com", TXT(("hello", "wörld"))),)
        )
        decoded = Message.decode(msg.encode())
        assert decoded.answers[0].rdata.strings == ("hello", "wörld")

    def test_ns_round_trip(self):
        msg = Message.query(4, "example.com", RRType.NS).response(
            answers=(rr("example.com", NS(DomainName.from_text("ns1.example.com"))),)
        )
        decoded = Message.decode(msg.encode())
        # NS decodes as NS (not CNAME).
        assert decoded.answers[0].rrtype == RRType.NS

    def test_compression_shrinks_multi_answer_messages(self):
        answers = tuple(
            rr(f"h{i}.example.com", A(parse_address(f"192.0.2.{i}"))) for i in range(1, 20)
        )
        msg = Message.query(5, "h1.example.com", RRType.A).response(answers=answers)
        encoded = msg.encode()
        # Without compression each "example.com" costs 13 bytes; with it, 2.
        uncompressed_estimate = sum(len(str(a.name)) + 1 for a in answers)
        assert len(encoded) < uncompressed_estimate + 200

    def test_id_range_enforced(self):
        with pytest.raises(ValueError):
            Message(id=-1, flags=Flags())
        with pytest.raises(ValueError):
            Message(id=1 << 16, flags=Flags())


class TestMalformedMessages:
    def test_short_header(self):
        with pytest.raises(WireError):
            Message.decode(b"\x00\x01")

    def test_truncated_question(self):
        q = Message.query(1, "www.example.com", RRType.A).encode()
        with pytest.raises(WireError):
            Message.decode(q[:-3])

    def test_rdata_overrun_rejected(self):
        msg = Message.query(1, "x.com", RRType.A).response(
            answers=(rr("x.com", A(parse_address("1.2.3.4"))),)
        ).encode()
        with pytest.raises(WireError):
            Message.decode(msg[:-2])

    def test_question_missing_raises_on_access(self):
        m = Message(id=1, flags=Flags())
        with pytest.raises(WireError):
            _ = m.question


_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)
_name = st.lists(_label, min_size=1, max_size=5).map(lambda ls: DomainName(tuple(ls)))


@settings(max_examples=150)
@given(names=st.lists(_name, min_size=1, max_size=8), qid=st.integers(0, 0xFFFF))
def test_property_any_answer_set_round_trips(names, qid):
    answers = tuple(
        ResourceRecord(n, A(parse_address(f"10.0.{i % 256}.{(i * 7) % 256}")), ttl=60)
        for i, n in enumerate(names)
    )
    msg = Message(
        id=qid,
        flags=Flags(qr=True),
        questions=(Question(names[0], RRType.A),),
        answers=answers,
    )
    decoded = Message.decode(msg.encode())
    assert decoded.answers == answers
    assert decoded.id == qid


@settings(max_examples=150)
@given(name=_name)
def test_property_name_compression_round_trip(name):
    out = bytearray(b"\x00" * 7)  # non-zero start offset exercises pointers
    offsets: dict = {}
    encode_name(name, out, offsets)
    encode_name(name, out, offsets)
    n1, off = decode_name(bytes(out), 7)
    n2, _ = decode_name(bytes(out), off)
    assert n1 == name and n2 == name


@settings(max_examples=200)
@given(data=st.binary(min_size=0, max_size=64))
def test_property_decoder_never_crashes_on_junk(data):
    """Malformed input must raise WireError (or decode), never crash."""
    try:
        Message.decode(data)
    except WireError:
        pass
    except ValueError:
        pass  # enum conversion of junk type/class codes
