"""Figure 7 through the FULL stack, tiny scale.

The bench harness (repro.experiments.fig7) answers queries at the
authoritative and accounts load there, arguing (per §4.3) that everything
downstream is address-indifferent.  This test removes the shortcut: real
clients, resolvers with caches, anycast routing, edge termination — and
verifies the same ordering emerges in the *datacenter traffic logs*.
"""

import random

from repro.analysis.loadstats import pool_load
from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine, StaticAssignment
from repro.dns.resolver import ResolveError
from repro.edge import ListenMode
from repro.netsim import build_regional_topology, parse_prefix
from repro.edge.cdn import CDN
from repro.workload import (
    ClientPopulation,
    HostnameUniverse,
    PopulationConfig,
    RequestStream,
    UniverseConfig,
)

POOL_PREFIX = parse_prefix("192.0.2.0/26")  # 64 addresses — tiny but plural
REQUESTS = 600


def run_full_stack(strategy, seed=21):
    universe = HostnameUniverse(UniverseConfig(num_hostnames=150, assets_per_site=1,
                                               seed=seed))
    network = build_regional_topology({"us": ["ashburn"]}, clients_per_region=4,
                                      rng=random.Random(seed))
    cdn = CDN(network, universe.registry, universe.origins, servers_per_dc=2)
    cdn.provision_certificates()
    cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
    pool = AddressPool(POOL_PREFIX, name="fullstack")
    engine = PolicyEngine(random.Random(seed + 1))
    engine.add(Policy("p", pool, strategy=strategy, ttl=0))  # TTL 0: per-request lookup
    cdn.set_answer_source(PolicyAnswerSource(engine, universe.registry))

    from repro.clock import Clock
    clock = Clock()
    eyeballs = [a for a in network.client_ases() if str(a).startswith("eyeball")]
    population = ClientPopulation(cdn, clock, eyeballs,
                                  PopulationConfig(clients_per_resolver=2,
                                                   h3_share=0, h1_share=0,
                                                   ttl_violator_share=0,
                                                   seed=seed + 2))
    stream = RequestStream(universe, zipf_s=1.2)
    rng = random.Random(seed + 3)
    served = 0
    for hostname in stream.sample_hostnames(REQUESTS, seed=seed + 4):
        client = rng.choice(population.clients)
        try:
            client.fetch(hostname)
            served += 1
        except (ResolveError, ConnectionRefusedError):  # pragma: no cover
            pass
        clock.advance(1.0)
    assert served == REQUESTS
    return pool_load(cdn.datacenters["ashburn"].traffic, pool, "requests")


class TestFullStackFig7:
    def test_static_vs_random_ordering_survives_the_full_stack(self):
        """With connection reuse, stub caches, ECMP, and the cache layer in
        play, randomization still flattens per-address load and static
        binding still concentrates it."""
        from repro.core import RandomSelection

        static = run_full_stack(StaticAssignment(per_address=4))
        rand = run_full_stack(RandomSelection())

        assert static.gini > 2 * rand.gini
        assert static.loaded_addresses < rand.loaded_addresses
        # Total connection-level accounting: every request was served and
        # landed on a pool address.
        assert static.total == rand.total == REQUESTS
