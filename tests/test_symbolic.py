"""The symbolic packet-space verifier: algebra laws, SK100/SK101 proofs.

The algebra half is property-tested over random rectangle soups — the
set identities (round-trip, point conservation, disjointness) must hold
for *every* input or a checker verdict somewhere is wrong.  The checker
half runs against the real seed deployment: clean as shipped, and loud
with an exact rectangle (SK100) or a concrete counterexample packet
(SK101) the moment a rule goes missing or a compiled index is corrupted.
"""

import dataclasses
import random

import pytest

from repro.check import context_from_deployment, run_checkers
from repro.check.symbolic import (
    PacketSpace,
    Rect,
    SymbolicChecker,
    compiled_verdicts,
    equivalence_counterexample,
    mintable_space,
    path_verdicts,
    port_intervals,
    program_verdicts,
    resolved_space,
)
from repro.core import AddressPool
from repro.deploy import Deployment, DeploymentConfig
from repro.netsim.addr import IPv4, IPAddress, parse_address, parse_prefix
from repro.netsim.packet import Protocol
from repro.obs import MetricsRegistry
from repro.sockets.sklookup import MatchRule, SkLookupProgram, SockArray, Verdict
from repro.sockets.socktable import SocketTable

TCP, UDP = Protocol.TCP.value, Protocol.UDP.value


def rect(cidr, proto=TCP, lo=1, hi=0xFFFF):
    prefix = parse_prefix(cidr)
    return Rect(prefix.family, prefix.network, prefix.length, proto, lo, hi)


def random_rect(rng):
    length = rng.choice([0, 4, 8, 12, 16, 24, 28, 32])
    mask = 0 if length == 0 else ((1 << length) - 1) << (32 - length)
    lo = rng.randrange(1, 0xFFFF)
    return Rect(
        IPv4, rng.getrandbits(32) & mask, length,
        rng.choice([TCP, UDP]), lo, rng.randrange(lo, 0x10000),
    )


def random_space(rng):
    return PacketSpace(random_rect(rng) for _ in range(rng.randrange(1, 6)))


# ---------------------------------------------------------------------------
# Algebra laws


class TestAlgebraProperties:
    def test_subtract_union_round_trip(self):
        # (a − b) ∪ (a ∩ b) == a, the identity every diff report rests on.
        for seed in range(200):
            rng = random.Random(seed)
            a, b = random_space(rng), random_space(rng)
            assert a.subtract(b).union(a.intersect(b)).equals(a), f"seed={seed}"

    def test_point_conservation(self):
        for seed in range(200):
            rng = random.Random(seed)
            a, b = random_space(rng), random_space(rng)
            overlap = a.intersect(b)
            assert a.subtract(b).points + overlap.points == a.points
            assert a.union(b).points == a.points + b.points - overlap.points

    def test_subtraction_is_disjoint_from_subtrahend(self):
        for seed in range(100):
            rng = random.Random(seed)
            a, b = random_space(rng), random_space(rng)
            assert a.subtract(b).intersect(b).is_empty()

    def test_union_covers_both_operands(self):
        for seed in range(100):
            rng = random.Random(seed)
            a, b = random_space(rng), random_space(rng)
            u = a.union(b)
            assert u.covers(a) and u.covers(b)

    def test_witness_lies_inside_its_space(self):
        for seed in range(100):
            rng = random.Random(seed)
            space = random_space(rng)
            if space.is_empty():
                continue
            assert space.contains_point(*space.witness())
            pkt = space.witness_packet()
            t = pkt.tuple5
            assert space.contains_point(
                t.dst.family, t.dst.value, t.protocol.value, t.dst_port
            )

    def test_internal_rects_stay_pairwise_disjoint(self):
        for seed in range(100):
            rng = random.Random(seed)
            space = random_space(rng)
            assert sum(r.points for r in space.rects) == space.points


class TestCanonicalForm:
    def test_sibling_prefixes_fold_into_parent(self):
        space = PacketSpace([rect("10.0.0.0/25"), rect("10.0.0.128/25")])
        assert space.rects == (rect("10.0.0.0/24"),)

    def test_adjacent_port_intervals_merge(self):
        space = PacketSpace([rect("10.0.0.0/24", lo=1, hi=99),
                             rect("10.0.0.0/24", lo=100, hi=200)])
        assert space.rects == (rect("10.0.0.0/24", lo=1, hi=200),)

    def test_fold_cascades_to_fixpoint(self):
        # Four /26 siblings collapse two levels, to one /24.
        quarters = [rect(f"10.0.0.{i * 64}/26") for i in range(4)]
        assert PacketSpace(quarters).rects == (rect("10.0.0.0/24"),)

    def test_equality_is_semantic_not_structural(self):
        halves = PacketSpace([rect("10.0.0.0/25"), rect("10.0.0.128/25")])
        assert halves.equals(PacketSpace([rect("10.0.0.0/24")]))
        assert not halves.equals(PacketSpace([rect("10.0.0.0/25")]))

    def test_duplicate_and_nested_inputs_normalise(self):
        space = PacketSpace([rect("10.0.0.0/24"), rect("10.0.0.0/24"),
                             rect("10.0.0.64/26")])
        assert space.rects == (rect("10.0.0.0/24"),)

    def test_render_is_stable_and_bounded(self):
        space = PacketSpace([rect("10.0.1.0/24", lo=443, hi=443),
                             rect("10.0.0.0/24", proto=UDP)])
        assert space.render() == "10.0.1.0/24 tcp 443, 10.0.0.0/24 udp 1..65535"
        assert space.render(limit=1).endswith(", +1 more")

    def test_universe_identities(self):
        universe = PacketSpace.universe()
        assert universe.subtract(universe).is_empty()
        assert universe.union(PacketSpace.empty()).equals(universe)
        assert PacketSpace.empty().witness() is None

    def test_port_intervals_collapse_runs(self):
        assert port_intervals([443, 80, 444, 445]) == ((80, 80), (443, 445))
        assert port_intervals([]) == ()


# ---------------------------------------------------------------------------
# Symbolic program evaluation: the model mirrors the kernel contracts


def _listeners(table, n):
    base = parse_address("198.18.0.1").value
    return [table.bind_listen(Protocol.TCP, IPAddress.v4(base + i), 80, owner="t")
            for i in range(n)]


class TestVerdictPartitions:
    def _partition_is_exact(self, verdicts, domain):
        union = PacketSpace.empty()
        total = 0
        for space in verdicts.values():
            union = union.union(space)
            total += space.points
        assert union.equals(domain)
        assert total == domain.points  # disjoint *and* covering

    def test_first_match_wins_and_partition_is_exact(self):
        rules = (
            MatchRule(Verdict.DROP, Protocol.TCP, (parse_prefix("10.0.0.0/16"),)),
            MatchRule(Verdict.PASS, Protocol.TCP, (parse_prefix("10.0.0.0/8"),),
                      map_key=0),
        )
        domain = PacketSpace.for_prefix(parse_prefix("10.0.0.0/8"), protos=(TCP,))
        verdicts = program_verdicts(rules, {0}, domain)
        assert verdicts["drop"].equals(
            PacketSpace.for_prefix(parse_prefix("10.0.0.0/16"), protos=(TCP,)))
        assert verdicts["drop"].intersect(verdicts[("redirect", 0)]).is_empty()
        self._partition_is_exact(verdicts, domain)

    def test_dead_slot_redirect_consumes_nothing(self):
        rules = (
            MatchRule(Verdict.PASS, Protocol.TCP, (parse_prefix("10.0.0.0/16"),),
                      map_key=5),  # slot 5 is empty: kernel fall-through
            MatchRule(Verdict.DROP, Protocol.TCP, (parse_prefix("10.0.0.0/16"),)),
        )
        domain = PacketSpace.for_prefix(parse_prefix("10.0.0.0/8"), protos=(TCP,))
        verdicts = program_verdicts(rules, set(), domain)
        assert ("redirect", 5) not in verdicts
        assert verdicts["drop"].equals(
            PacketSpace.for_prefix(parse_prefix("10.0.0.0/16"), protos=(TCP,)))
        self._partition_is_exact(verdicts, domain)

    def test_compiled_model_matches_interpreter_model(self):
        table = SocketTable()
        sock_map = SockArray(4)
        for i, sock in enumerate(_listeners(table, 2)):
            sock_map.update(i, sock)
        program = SkLookupProgram("p", sock_map, [
            MatchRule(Verdict.PASS, Protocol.TCP, (parse_prefix("10.1.0.0/16"),),
                      443, 443, map_key=1),
            MatchRule(Verdict.DROP, None, (parse_prefix("10.0.0.0/8"),), 1, 1024),
            MatchRule(Verdict.PASS, Protocol.UDP, (), 443, 443, map_key=0),
        ])
        domain = PacketSpace.universe()
        live = {0, 1}
        interp = program_verdicts(program.rules(), live, domain)
        comp = compiled_verdicts(program.compiled().describe(), live, domain)
        assert sorted(interp, key=str) == sorted(comp, key=str)
        for key, space in interp.items():
            assert space.equals(comp[key]), key
        assert equivalence_counterexample(program) is None

    def test_path_composition_forwards_misses(self):
        stage1 = {
            "drop": PacketSpace([rect("10.0.0.0/16")]),
            "miss": PacketSpace([rect("10.1.0.0/16")]),
        }
        stage2 = {("redirect", 0): PacketSpace([rect("10.1.0.0/16")])}
        verdicts = path_verdicts(
            [lambda d: stage1, lambda d: stage2],
            PacketSpace([rect("10.0.0.0/16"), rect("10.1.0.0/16")]),
        )
        assert verdicts[("redirect", 0)].equals(stage2[("redirect", 0)])
        assert "miss" not in verdicts or verdicts["miss"].is_empty()
        assert resolved_space(verdicts).points == \
            stage1["drop"].points + stage2[("redirect", 0)].points

    def test_mintable_space_explicit_addresses_are_host_rects(self):
        addrs = (parse_address("192.0.2.1"), parse_address("192.0.2.9"))
        pool = AddressPool(parse_prefix("192.0.2.0/24"), active=addrs)
        space = mintable_space(pool, (80, 443))
        assert space.points == len(addrs) * 2 * 2  # two protos × two ports
        assert space.contains_point(IPv4, addrs[1].value, UDP, 443)
        assert not space.contains_point(IPv4, addrs[1].value + 1, TCP, 443)


# ---------------------------------------------------------------------------
# The checker pass against the live seed deployment


@pytest.fixture(scope="module")
def deployment():
    return Deployment.build(DeploymentConfig(num_hostnames=40))


class TestSymbolicChecker:
    def test_seed_deployment_proves_clean(self, deployment):
        findings = SymbolicChecker().run(context_from_deployment(deployment))
        assert findings == []

    def test_missing_rule_surfaces_the_exact_rectangle(self, deployment):
        ctx = context_from_deployment(deployment)
        ctx.deployment = None  # isolate SK100: no live compiled forms needed
        victim = ctx.programs[0]
        kept = tuple(
            r for r in victim.rules
            if not (r.protocol is Protocol.TCP and r.port_lo <= 443 <= r.port_hi)
        )
        assert len(kept) < len(victim.rules)
        ctx.programs[0] = dataclasses.replace(victim, rules=kept)
        findings = SymbolicChecker().run(ctx)
        assert [f.rule for f in findings] == ["SK100"]
        assert findings[0].location == f"path:{victim.path}"
        # The uncovered region is exact: the whole pool, tcp, port 443 only.
        assert "192.0.0.0/20 tcp 443" in findings[0].message

    def test_corrupted_compiled_index_yields_replayable_counterexample(self):
        dep = Deployment.build(DeploymentConfig(num_hostnames=40))
        dc = dep.cdn.datacenters[sorted(dep.cdn.datacenters)[0]]
        server = dc.servers[sorted(dc.servers)[0]]
        program = server.lookup_path.programs()[0]
        compiled = program.compiled()
        assert self._corrupt_one_network(compiled)

        divergence = equivalence_counterexample(program)
        assert divergence is not None
        # The counterexample replays: the two engines really disagree on it.
        pkt = divergence.packet()
        assert program.run(pkt) != compiled.run(pkt)
        assert "interpreter=" in divergence.render()

        findings = SymbolicChecker().run(context_from_deployment(dep))
        sk101 = [f for f in findings if f.rule == "SK101"]
        assert sk101 and server.name in sk101[0].location

    @staticmethod
    def _corrupt_one_network(compiled):
        # Shift one LPM key the way a stale or bit-flipped index would.
        for index in compiled._by_proto.values():
            for segment in index.segments:
                for groups in segment.lpm.values():
                    for _mask, nets in groups:
                        if nets:
                            key = sorted(nets)[0]
                            nets[key ^ (1 << 8)] = nets.pop(key)
                            return True
        return False

    def test_pass_metrics_are_recorded(self, deployment):
        ctx = context_from_deployment(deployment)
        ctx.registry = MetricsRegistry()
        report = run_checkers(ctx, [SymbolicChecker()])
        assert report.ok
        assert ctx.registry.gauge("check_symbolic_mintable_regions").value > 0
        assert ctx.registry.gauge("check_symbolic_uncovered_regions").value == 0
        assert ctx.registry.histogram("check_pass_duration_seconds").count == 1
        assert ctx.registry.counter("check_pass_findings_total_symbolic").value == 0
