"""DoS k-ary search (§6): L7 isolation within the TTL bound, L3/4 verdicts."""

import math
import random

import pytest

from repro.agility.dos import (
    KarySearchMitigator,
    L7Attacker,
    L34Attacker,
    isolation_time_bound,
)
from repro.clock import Clock
from repro.core import (
    AddressPool,
    AgilityController,
    MappedAssignment,
    Policy,
    PolicyEngine,
    RandomSelection,
)
from repro.netsim.addr import parse_prefix

POOL_PREFIX = parse_prefix("192.0.2.0/24")


def make_mitigator(n_services=100, k=8, probe_ttl=5, initial_ttl=300, seed=1):
    clock = Clock()
    engine = PolicyEngine(random.Random(seed))
    pool = AddressPool(POOL_PREFIX, name="dos-pool")
    policy = Policy("protected", pool, strategy=MappedAssignment(), ttl=initial_ttl)
    engine.add(policy)
    controller = AgilityController(engine, clock)
    mitigator = KarySearchMitigator(
        controller, "protected", clock, k=k, probe_ttl=probe_ttl,
        rng=random.Random(seed),
    )
    services = [f"svc{i:04d}.example.com" for i in range(n_services)]
    return mitigator, services, clock, engine


class TestBoundFormula:
    def test_matches_paper(self):
        # TTL + t·⌈log_k n⌉
        assert isolation_time_bound(1000, 10, 300, 5) == 300 + 5 * 3
        assert isolation_time_bound(32, 32, 60, 2) == 60 + 2 * 1
        assert isolation_time_bound(33, 32, 60, 2) == 60 + 2 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            isolation_time_bound(0, 8, 300, 5)
        with pytest.raises(ValueError):
            isolation_time_bound(10, 1, 300, 5)


class TestL7Isolation:
    def test_single_target_isolated(self):
        mitigator, services, clock, engine = make_mitigator()
        target = services[37]
        verdict = mitigator.run(services, L7Attacker({target}))
        assert verdict.kind == "L7"
        assert verdict.isolated == {target}
        assert verdict.within_bound, (verdict.elapsed, verdict.bound)

    def test_round_count_is_logarithmic(self):
        mitigator, services, clock, engine = make_mitigator(n_services=512, k=8)
        verdict = mitigator.run(services, L7Attacker({services[0]}))
        assert verdict.rounds <= math.ceil(math.log(512, 8)) + 1

    def test_multiple_targets_isolated(self):
        mitigator, services, clock, engine = make_mitigator(n_services=64, k=4)
        targets = {services[3], services[40]}
        verdict = mitigator.run(services, L7Attacker(targets))
        assert verdict.kind == "L7"
        assert targets <= set(verdict.isolated)
        assert len(verdict.isolated) <= 4  # tight isolation, not the world

    def test_various_k(self):
        for k in (2, 4, 16):
            mitigator, services, clock, engine = make_mitigator(n_services=100, k=k, seed=k)
            verdict = mitigator.run(services, L7Attacker({services[11]}))
            assert verdict.kind == "L7" and services[11] in verdict.isolated

    def test_ttl_is_dropped_at_detection(self):
        mitigator, services, clock, engine = make_mitigator(probe_ttl=7)
        mitigator.run(services, L7Attacker({services[0]}))
        assert engine.get("protected").ttl == 7

    def test_elapsed_includes_initial_ttl_drain(self):
        mitigator, services, clock, engine = make_mitigator(initial_ttl=120, probe_ttl=5)
        verdict = mitigator.run(services, L7Attacker({services[5]}))
        assert verdict.elapsed >= 120


class TestL34Detection:
    def test_address_pinned_attack_detected(self):
        mitigator, services, clock, engine = make_mitigator()
        pool = engine.get("protected").pool
        # Volumetric flood on the home address (slot 0): never follows DNS.
        verdict = mitigator.run(services, L34Attacker({pool.address_at(0)}))
        assert verdict.kind == "L3/4"
        assert verdict.isolated == frozenset()
        assert verdict.rounds == 1

    def test_flood_on_foreign_address_is_l34(self):
        mitigator, services, clock, engine = make_mitigator()
        from repro.netsim.addr import parse_address
        verdict = mitigator.run(services, L34Attacker({parse_address("192.0.2.200")}))
        # The flooded address may coincide with a slice address by chance;
        # with 8 slices over addresses 1..8 and the flood at .200, it won't.
        assert verdict.kind == "L3/4"


class TestGuards:
    def test_requires_mapped_strategy(self):
        clock = Clock()
        engine = PolicyEngine(random.Random(0))
        engine.add(Policy("p", AddressPool(POOL_PREFIX), strategy=RandomSelection()))
        controller = AgilityController(engine, clock)
        mitigator = KarySearchMitigator(controller, "p", clock)
        with pytest.raises(TypeError):
            mitigator.run(["a.com"], L7Attacker({"a.com"}))

    def test_pool_must_fit_k_plus_one(self):
        clock = Clock()
        engine = PolicyEngine(random.Random(0))
        tiny = AddressPool(parse_prefix("192.0.2.0/30"))  # 4 addresses
        engine.add(Policy("p", tiny, strategy=MappedAssignment()))
        controller = AgilityController(engine, clock)
        mitigator = KarySearchMitigator(controller, "p", clock, k=8)
        with pytest.raises(ValueError):
            mitigator.run(["a.com"], L7Attacker({"a.com"}))

    def test_k_and_ttl_validation(self):
        clock = Clock()
        engine = PolicyEngine()
        engine.add(Policy("p", AddressPool(POOL_PREFIX), strategy=MappedAssignment()))
        controller = AgilityController(engine, clock)
        with pytest.raises(ValueError):
            KarySearchMitigator(controller, "p", clock, k=1)
        with pytest.raises(ValueError):
            KarySearchMitigator(controller, "p", clock, probe_ttl=0)
