"""§4.3's transparency claims, as executable properties.

"We emphasize that no changes were required to surrounding components, our
changes are scoped to DNS and otherwise are completely transparent": the
same workload driven under conventional vs. agile addressing must leave
ECMP balance, L4LB state, cache behaviour, and origin traffic untouched.
"""

import random


from repro.core import AddressPool, Policy, PolicyAnswerSource, PolicyEngine
from repro.dns import A, Zone, ZoneAnswerSource
from repro.dns.resolver import ResolveError
from repro.edge import ListenMode
from repro.web.http import Status

from conftest import POOL_PREFIX, make_cdn, make_client


def drive(cdn, clock, hostnames, fetches=40, seed=5):
    """A fixed browsing script over a CDN; returns observable summaries."""
    rng = random.Random(seed)
    clients = {
        asn: make_client(cdn, clock, asn, name=f"c-{asn}-{seed}")
        for asn in ("eyeball:us:0", "eyeball:us:1", "eyeball:eu:0")
    }
    statuses = []
    for i in range(fetches):
        client = clients[rng.choice(list(clients))]
        hostname = rng.choice(hostnames)
        try:
            statuses.append(client.fetch(hostname, f"/p{i % 7}").response.status)
        except (ResolveError, ConnectionRefusedError):  # pragma: no cover
            statuses.append(None)
    return statuses


def build_pair(clock):
    """Two identical CDNs: one conventional, one agile."""
    deployments = {}
    for kind in ("conventional", "agile"):
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
        if kind == "conventional":
            zone = Zone("example.com")
            rng = random.Random(99)
            for hostname in hostnames:
                zone.add_address(hostname, A(POOL_PREFIX.random_address(rng)), ttl=30)
            cdn.set_answer_source(ZoneAnswerSource([zone]))
        else:
            engine = PolicyEngine(random.Random(3))
            engine.add(Policy("agile", AddressPool(POOL_PREFIX), ttl=30))
            cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
        deployments[kind] = (cdn, hostnames)
    return deployments


class TestTransparency:
    def test_every_request_succeeds_under_both(self, clock):
        for kind, (cdn, hostnames) in build_pair(clock).items():
            statuses = drive(cdn, clock, hostnames)
            assert all(s is Status.OK for s in statuses), kind

    def test_cache_behaviour_identical(self, clock):
        """The cache keys on content identity; hit sequences must match
        exactly between addressing schemes for the same request script."""
        hits = {}
        for kind, (cdn, hostnames) in build_pair(clock).items():
            drive(cdn, clock, hostnames)
            hits[kind] = {
                name: (node.stats.hits, node.stats.misses)
                for dc in cdn.datacenters.values()
                for name, node in dc.cache.nodes().items()
            }
        assert hits["conventional"] == hits["agile"]

    def test_origin_traffic_identical(self, clock):
        volumes = {}
        for kind, (cdn, hostnames) in build_pair(clock).items():
            drive(cdn, clock, hostnames)
            volumes[kind] = sorted(
                (o.name, o.requests, o.bytes_served) for o in cdn.origins.origins()
            )
        assert volumes["conventional"] == volumes["agile"]

    def test_ecmp_stays_balanced_under_agility(self, clock):
        """§4.3: ECMP complexity is about servers, not addresses."""
        deployments = build_pair(clock)
        for kind, (cdn, hostnames) in deployments.items():
            drive(cdn, clock, hostnames, fetches=120, seed=8)
            for dc in cdn.datacenters.values():
                per_server = dc.ecmp.stats.per_server
                if not per_server or dc.ecmp.stats.routed < 10:
                    continue
                top = max(per_server.values())
                assert top <= 0.95 * dc.ecmp.stats.routed or len(per_server) == 1

    def test_l4lb_table_scales_with_connections_not_addresses(self, clock):
        deployments = build_pair(clock)
        flows = {}
        for kind, (cdn, hostnames) in deployments.items():
            drive(cdn, clock, hostnames, fetches=60, seed=9)
            flows[kind] = sum(dc.l4lb.tracked_flows() for dc in cdn.datacenters.values())
            conns = sum(dc.connection_count() for dc in cdn.datacenters.values())
            assert flows[kind] == conns
        # Agile addressing spreads destinations over 256 addresses but must
        # not inflate L4LB state relative to connection count.
        # (Connection counts differ between schemes because coalescing
        # differs; the invariant is flows == connections, checked above.)

    def test_routing_unchanged_by_policy_swap(self, clock):
        """BGP state is untouched by the answer-source swap."""
        cdn, hostnames = make_cdn()
        cdn.announce_pool(POOL_PREFIX, ports=(443,))
        before = {
            asn: cdn.network.pop_for(asn, POOL_PREFIX.first)
            for asn in cdn.network.client_ases()
        }
        engine = PolicyEngine(random.Random(3))
        engine.add(Policy("agile", AddressPool(POOL_PREFIX), ttl=30))
        cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))
        after = {
            asn: cdn.network.pop_for(asn, POOL_PREFIX.first)
            for asn in cdn.network.client_ases()
        }
        assert before == after
