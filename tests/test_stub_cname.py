"""Stub-side CNAME chasing: chains, dangling tails, loops, depth bounds.

The pre-fix stub collected *every* A record in the answer section, so a
chain the authoritative could not finish (cross-zone CNAME) resolved to
nothing, and records for unrelated owner names leaked into results.  The
chase walks by owner name from the query name, re-queries dangling tails,
and bounds both loops and depth.
"""

import pytest

from repro.clock import Clock
from repro.dns.records import A, AAAA, CNAME, DomainName, ResourceRecord, RRType
from repro.dns.resolver import RecursiveResolver, ResolveError
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.stub import MAX_CNAME_DEPTH, StubResolver
from repro.dns.wire import Message
from repro.dns.zone import Zone
from repro.netsim.addr import parse_address

CTX = QueryContext(pop="pop1")


def name(text: str) -> DomainName:
    return DomainName.from_text(text)


def make_stub(*zones: Zone) -> tuple[StubResolver, RecursiveResolver, AuthoritativeServer]:
    clock = Clock()
    server = AuthoritativeServer(ZoneAnswerSource(list(zones)))
    recursive = RecursiveResolver(
        "r", clock, transport=lambda wire: server.handle_wire(wire, CTX)
    )
    return StubResolver("s", clock, recursive), recursive, server


class TestInZoneChains:
    def test_alias_resolves_through_chain(self):
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("alias.example.com"), CNAME(name("www.example.com")), 300))
        zone.add_address("www.example.com", A(parse_address("192.0.2.7")))
        stub, _, _ = make_stub(zone)
        assert stub.lookup("alias.example.com") == [parse_address("192.0.2.7")]

    def test_nodata_tail_yields_empty_not_wrong_records(self):
        # The chain ends at www, which exists but has no A record: the
        # chase must return empty rather than scooping up address records
        # of unrelated owner names from the same answer set.
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("alias.example.com"), CNAME(name("www.example.com")), 300))
        zone.add_address("www.example.com", AAAA(parse_address("2001:db8::1")))
        zone.add_address("other.example.com", A(parse_address("203.0.113.5")))
        stub, _, _ = make_stub(zone)
        assert stub.lookup("alias.example.com") == []

    def test_cached_answers_are_chased_too(self):
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("alias.example.com"), CNAME(name("www.example.com")), 300))
        zone.add_address("www.example.com", A(parse_address("192.0.2.7")))
        stub, recursive, _ = make_stub(zone)
        first = stub.lookup("alias.example.com")
        second = stub.lookup("alias.example.com")  # stub cache hit
        assert first == second == [parse_address("192.0.2.7")]
        assert recursive.stats.client_queries == 1


class TestCrossZoneChains:
    def test_dangling_tail_is_requeried(self):
        # The CNAME target lives in a different zone: the authoritative
        # answers with a bare CNAME, and the stub must chase the tail with
        # a fresh query rather than returning nothing.
        com = Zone("example.com")
        com.add_record(ResourceRecord(name("alias.example.com"), CNAME(name("www.example.net")), 300))
        net = Zone("example.net")
        net.add_address("www.example.net", A(parse_address("198.51.100.9")))
        stub, recursive, _ = make_stub(com, net)
        assert stub.lookup("alias.example.com") == [parse_address("198.51.100.9")]
        assert recursive.stats.client_queries == 2  # head + chased tail

    def test_cross_zone_loop_raises(self):
        com = Zone("example.com")
        com.add_record(ResourceRecord(name("x.example.com"), CNAME(name("x.example.net")), 300))
        net = Zone("example.net")
        net.add_record(ResourceRecord(name("x.example.net"), CNAME(name("x.example.com")), 300))
        stub, _, _ = make_stub(com, net)
        with pytest.raises(ResolveError, match="CNAME loop"):
            stub.lookup("x.example.com")

    def test_overlong_chain_is_bounded(self):
        # One link per zone so every hop dangles and must be re-queried.
        zones = []
        for i in range(MAX_CNAME_DEPTH + 3):
            zone = Zone(f"z{i}.test")
            zone.add_record(ResourceRecord(name(f"h.z{i}.test"), CNAME(name(f"h.z{i + 1}.test")), 300))
            zones.append(zone)
        last = Zone(f"z{MAX_CNAME_DEPTH + 3}.test")
        last.add_address(
            f"h.z{MAX_CNAME_DEPTH + 3}.test", A(parse_address("192.0.2.99"))
        )
        zones.append(last)
        stub, _, _ = make_stub(*zones)
        with pytest.raises(ResolveError, match="exceeds"):
            stub.lookup("h.z0.test")


class TestZoneLoopContainment:
    def test_in_zone_loop_never_escapes_the_wire_path(self):
        """An in-zone CNAME loop must yield a well-formed (empty) answer,
        not an exception — pre-fix, ``ZoneError`` escaped ``handle_wire``
        and would have taken a serve worker down with it."""
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("l1.example.com"), CNAME(name("l2.example.com")), 300))
        zone.add_record(ResourceRecord(name("l2.example.com"), CNAME(name("l1.example.com")), 300))
        server = AuthoritativeServer(ZoneAnswerSource([zone]))
        wire = server.handle_wire(
            Message.query(7, "l1.example.com", RRType.A).encode(), CTX
        )
        assert wire is not None
        response = Message.decode(wire)
        # The partial chain is returned; the loop itself adds no addresses.
        assert all(rr.rrtype == RRType.CNAME for rr in response.answers)

    def test_stub_rejects_the_looped_chain(self):
        zone = Zone("example.com")
        zone.add_record(ResourceRecord(name("l1.example.com"), CNAME(name("l2.example.com")), 300))
        zone.add_record(ResourceRecord(name("l2.example.com"), CNAME(name("l1.example.com")), 300))
        stub, _, _ = make_stub(zone)
        with pytest.raises(ResolveError, match="CNAME loop"):
            stub.lookup("l1.example.com")
