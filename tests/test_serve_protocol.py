"""Wire frontend without sockets: framing, malformed-input policy, and the
differential contract against the in-simulation server.

The worker loop in :mod:`repro.serve.workers` assumes two things proven
here: nothing in :class:`ProtocolCore`/:class:`StreamSession` raises on
attacker-controlled bytes, and the frontend answers byte-for-byte what the
simulation's :class:`AuthoritativeServer` answers for the same query —
transport framing is the *only* thing it adds.
"""

import random
from dataclasses import replace

import pytest

from repro.dns.records import (
    A,
    DomainName,
    OPTPseudo,
    Question,
    ResourceRecord,
    RRType,
)
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.wire import Flags, Message, Opcode, Rcode
from repro.dns.zone import Zone
from repro.netsim.addr import parse_address
from repro.serve.app import (
    AGILE_HOSTNAME,
    ALIAS_HOSTNAME,
    BIG_HOSTNAME,
    BIG_TXT_RECORDS,
    build_server,
)
from repro.serve.protocol import ProtocolCore, StreamSession


def frame(wire: bytes) -> bytes:
    return len(wire).to_bytes(2, "big") + wire


def deframe_all(data: bytes) -> list[Message]:
    out = []
    at = 0
    while at < len(data):
        length = int.from_bytes(data[at : at + 2], "big")
        out.append(Message.decode(data[at + 2 : at + 2 + length]))
        at += 2 + length
    assert at == len(data), "response stream has trailing garbage"
    return out


@pytest.fixture
def core() -> ProtocolCore:
    zone = Zone("example.com")
    zone.add_address("www.example.com", A(parse_address("192.0.2.1")), ttl=60)
    return ProtocolCore(AuthoritativeServer(ZoneAnswerSource([zone])))


class TestStreamSession:
    def test_single_frame(self, core):
        session = StreamSession(core)
        out = session.feed(frame(Message.query(1, "www.example.com", RRType.A).encode()))
        (response,) = deframe_all(out)
        assert response.flags.rcode == Rcode.NOERROR
        assert not session.closed

    def test_frames_split_at_every_byte_boundary(self, core):
        wire = frame(Message.query(2, "www.example.com", RRType.A).encode())
        for split in range(1, len(wire)):
            session = StreamSession(core)
            first = session.feed(wire[:split])
            rest = session.feed(wire[split:])
            (response,) = deframe_all(first + rest)
            assert response.id == 2
            assert response.flags.rcode == Rcode.NOERROR

    def test_pipelined_queries_in_one_chunk(self, core):
        chunk = b"".join(
            frame(Message.query(qid, "www.example.com", RRType.A).encode())
            for qid in (10, 11, 12)
        )
        session = StreamSession(core)
        responses = deframe_all(session.feed(chunk))
        assert [r.id for r in responses] == [10, 11, 12]

    def test_zero_length_frame_closes(self, core):
        session = StreamSession(core)
        assert session.feed(b"\x00\x00") == b""
        assert session.closed
        assert session.feed(frame(b"anything")) == b""

    def test_garbage_payload_closes(self, core):
        session = StreamSession(core)
        assert session.feed(frame(b"\x01\x02\x03")) == b""
        assert session.closed

    def test_good_frames_before_garbage_still_answer(self, core):
        good = frame(Message.query(3, "www.example.com", RRType.A).encode())
        session = StreamSession(core)
        out = session.feed(good + frame(b"junk"))
        (response,) = deframe_all(out)
        assert response.id == 3
        assert session.closed


class TestMalformedDatagrams:
    """The worker-facing contract: drop or answer, never raise."""

    def _wire(self, qid: int = 1) -> bytearray:
        return bytearray(Message.query(qid, "www.example.com", RRType.A).encode())

    def test_truncated_headers_dropped(self, core):
        full = bytes(self._wire())
        for cut in range(0, 12):
            assert core.datagram(full[:cut]) is None

    def test_pointer_loop_in_qname_dropped(self, core):
        wire = self._wire()[:12] + b"\xc0\x0c" + b"\x00\x01\x00\x01"
        assert core.datagram(bytes(wire)) is None

    @pytest.mark.parametrize("label_type", [0x40, 0x80])
    def test_reserved_label_types_dropped(self, core, label_type):
        wire = self._wire()
        wire[12] = label_type  # first qname length byte
        assert core.datagram(bytes(wire)) is None

    def test_bad_opt_body_gets_formerr(self, core):
        # Message framing is fine; the OPT option TLV claims 16 bytes and
        # carries 2 (RFC 6891 §6.1.3: FORMERR, not a drop).
        query = Message.query(5, "www.example.com", RRType.A)
        opt = ResourceRecord(
            DomainName.root(),
            OPTPseudo(udp_payload_size=1232, ttl_word=0, data=b"\x00\x08\x00\x10\x00\x01"),
            ttl=0,
        )
        response = core.datagram(replace(query, additional=(opt,)).encode())
        assert Message.decode(response).flags.rcode == Rcode.FORMERR

    def test_unknown_class_refused(self, core):
        wire = self._wire(6)
        wire[-1] = 0x03  # qclass IN -> CH
        response = core.datagram(bytes(wire))
        assert Message.decode(response).flags.rcode == Rcode.REFUSED

    def test_unknown_qtype_notimp(self, core):
        wire = self._wire(7)
        wire[-3] = 0x63  # qtype A(1) -> 99 (SPF, unsupported)
        response = core.datagram(bytes(wire))
        assert Message.decode(response).flags.rcode == Rcode.NOTIMP

    def test_non_query_opcode_notimp(self, core):
        query = Message(
            id=8,
            flags=Flags(opcode=Opcode.NOTIFY),
            questions=(Question(DomainName.from_text("www.example.com"), RRType.A),),
        )
        response = core.datagram(query.encode())
        assert Message.decode(response).flags.rcode == Rcode.NOTIMP

    def test_response_bit_set_gets_formerr(self, core):
        query = Message.query(9, "www.example.com", RRType.A)
        response = core.datagram(replace(query, flags=Flags(qr=True)).encode())
        assert Message.decode(response).flags.rcode == Rcode.FORMERR

    def test_seeded_junk_never_raises(self, core):
        rng = random.Random(0xBAD)
        for _ in range(500):
            junk = rng.randbytes(rng.randint(0, 64))
            out = core.datagram(junk)  # must drop or answer, never raise
            assert out is None or Message.decode(out)

    def test_mutated_real_queries_never_raise(self, core):
        rng = random.Random(0xF00D)
        base = bytes(self._wire())
        for _ in range(500):
            wire = bytearray(base)
            for _ in range(rng.randint(1, 6)):
                wire[rng.randrange(len(wire))] = rng.randrange(256)
            out = core.datagram(bytes(wire))
            assert out is None or Message.decode(out)


class TestDifferentialWireVsSim:
    """Same builder, same seed, same query order: the wire frontend and the
    in-simulation server must produce identical messages."""

    SEED = 0xD1FF

    def _twins(self) -> tuple[ProtocolCore, AuthoritativeServer]:
        return ProtocolCore(build_server(self.SEED)), build_server(self.SEED)

    def _corpus(self) -> list[Message]:
        queries = [
            Message.query(100, AGILE_HOSTNAME, RRType.A),      # policy-minted
            Message.query(101, AGILE_HOSTNAME, RRType.A),      # second mint
            Message.query(102, ALIAS_HOSTNAME, RRType.A),      # CNAME chase
            Message.query(103, "missing.example.com", RRType.A),  # NXDOMAIN
            Message.query(104, AGILE_HOSTNAME, RRType.NS),     # NODATA
            Message.query(105, "other.org", RRType.A),         # out of zone
        ]
        return queries

    @staticmethod
    def _same(wire_response: bytes, sim_response: Message) -> None:
        decoded = Message.decode(wire_response)
        assert decoded.flags == sim_response.flags
        assert decoded.answers == sim_response.answers
        assert decoded.authority == sim_response.authority
        assert decoded.additional == sim_response.additional

    def test_udp_path_matches_sim(self):
        wire_core, sim = self._twins()
        for query in self._corpus():
            response = wire_core.datagram(query.encode())
            expected = sim.handle_query(
                query, QueryContext(pop="edge", transport="udp")
            )
            self._same(response, expected)

    def test_tcp_path_matches_sim_including_big_answers(self):
        wire_core, sim = self._twins()
        session = StreamSession(wire_core)
        queries = [*self._corpus(), Message.query(106, BIG_HOSTNAME, RRType.TXT)]
        out = b"".join(session.feed(frame(q.encode())) for q in queries)
        responses = deframe_all(out)
        assert len(responses) == len(queries)
        context = QueryContext(pop="edge", transport="tcp")
        for query, got in zip(queries, responses):
            expected = sim.handle_query(query, context)
            assert got.flags == expected.flags
            assert got.answers == expected.answers
            assert got.authority == expected.authority
        assert len(responses[-1].answers) == BIG_TXT_RECORDS  # no TC over TCP

    def test_udp_truncation_is_a_prefix_of_the_full_answer(self):
        # The one place the transports legitimately differ: an oversize
        # answer on UDP must be a TC-flagged whole-record prefix of what
        # the sim serves in full.
        wire_core, sim = self._twins()
        query = Message.query(107, BIG_HOSTNAME, RRType.TXT)
        udp = Message.decode(wire_core.datagram(query.encode()))
        full = sim.handle_query(query, QueryContext(pop="edge", transport="tcp"))
        assert udp.flags.tc
        assert 0 < len(udp.answers) < len(full.answers)
        assert udp.answers == full.answers[: len(udp.answers)]

    def test_stats_surfaces_agree(self):
        wire_core, sim = self._twins()
        context = QueryContext(pop="edge", transport="udp")
        for query in self._corpus():
            wire_core.datagram(query.encode())
            sim.handle_wire(query.encode(), context)
        assert wire_core.stats.by_rcode == sim.stats.by_rcode
        assert wire_core.stats.by_type == sim.stats.by_type
