"""FlowBatch shape enforcement, BatchShapeError regressions, hash backends.

Satellite regressions for the silent-truncation family: every ``*_batch``
entry point must reject mismatched parallel columns with a typed
:class:`BatchShapeError` *before* doing any work — the old ``zip`` simply
dropped the unpaired tail.
"""

from __future__ import annotations

import pytest

from repro.experiments.sklookup_perf import build_sk_lookup, make_packets
from repro.flow import (
    FlowBatch,
    NumpyHashBackend,
    PythonHashBackend,
    default_backend,
)
from repro.netsim import parse_address
from repro.netsim.packet import FiveTuple, Protocol
from repro.sockets.errors import BatchShapeError
from repro.sockets.lookup import flow_hash, flow_hash_tuple


def _tuples(n: int, v6: bool = False) -> list[FiveTuple]:
    tuples = []
    for i in range(n):
        if v6:
            src = parse_address(f"2001:db8::{i + 1:x}")
            dst = parse_address(f"2001:db8:1::{i + 1:x}")
        else:
            src = parse_address(f"100.64.{i % 250}.{(i * 7) % 250 + 1}")
            dst = parse_address(f"192.0.2.{i % 250 + 1}")
        proto = Protocol.QUIC if i % 3 == 0 else Protocol.TCP
        tuples.append(FiveTuple(proto, src, 20_000 + i, dst, 443))
    return tuples


class TestDispatchBatchTruncationFix:
    """The satellite bugfix: ``zip(packets, flow_hashes)`` used to drop the
    unpaired tail silently.  This test fails before the fix."""

    def test_short_hash_column_raises(self):
        setup = build_sk_lookup()
        packets = make_packets(8)
        hashes = [flow_hash(p) for p in packets[:5]]  # 3 short
        with pytest.raises(BatchShapeError) as excinfo:
            setup.path.dispatch_batch(packets, deliver=False, flow_hashes=hashes)
        assert excinfo.value.lengths == {"packets": 8, "flow_hashes": 5}
        assert "packets=8" in str(excinfo.value)
        assert "flow_hashes=5" in str(excinfo.value)

    def test_long_hash_column_raises_too(self):
        setup = build_sk_lookup()
        packets = make_packets(4)
        hashes = [flow_hash(p) for p in make_packets(6)]
        with pytest.raises(BatchShapeError):
            setup.path.dispatch_batch(packets, deliver=False, flow_hashes=hashes)

    def test_rejected_batch_leaves_no_trace(self):
        """The shape check runs before any packet is dispatched: counters,
        batch accounting, and socket queues are untouched."""
        setup = build_sk_lookup()
        packets = make_packets(8)
        before = dict(setup.path.stage_counts)
        with pytest.raises(BatchShapeError):
            setup.path.dispatch_batch(packets, deliver=True, flow_hashes=[1, 2])
        assert setup.path.stage_counts == before
        assert setup.path.batches == 0
        assert setup.path.batch_packets == 0
        assert all(len(s.queue) == 0 for s in setup.table.sockets())

    def test_matched_columns_still_dispatch_everything(self):
        setup = build_sk_lookup()
        packets = make_packets(8)
        hashes = [flow_hash(p) for p in packets]
        results = setup.path.dispatch_batch(packets, deliver=False, flow_hashes=hashes)
        assert len(results) == 8
        assert setup.path.batch_packets == 8


class TestOtherBatchSeamsShapeChecks:
    def test_route_batch_mismatch(self):
        from repro.edge.ecmp import ECMPRouter

        router = ECMPRouter(["s0", "s1"])
        packets = make_packets(4)
        with pytest.raises(BatchShapeError) as excinfo:
            router.route_batch(packets, flow_hashes=[1, 2, 3])
        assert excinfo.value.lengths == {"packets": 4, "flow_hashes": 3}
        assert router.stats.routed == 0

    def test_connect_batch_mismatch(self):
        from repro.experiments.flow_perf import build_flow_world
        from repro.web.http import HTTPVersion
        from repro.web.tls import ClientHello

        world = build_flow_world(num_hostnames=4, num_servers=2)
        t5 = _tuples(2)
        requests = [(t, ClientHello(sni="site0000000.example.com"), HTTPVersion.H2) for t in t5]
        with pytest.raises(BatchShapeError):
            world.dc.connect_batch(requests, flow_hashes=[flow_hash_tuple(t5[0])])
        assert world.dc.ecmp.stats.routed == 0
        assert world.dc.connection_count() == 0


class TestFlowBatchContainer:
    def test_parallel_inputs_enforced(self):
        with pytest.raises(BatchShapeError) as excinfo:
            FlowBatch(["a", "b"], [parse_address("100.64.0.1")], [1, 2])
        assert excinfo.value.lengths["hostnames"] == 2
        assert excinfo.value.lengths["src_addrs"] == 1

    def test_set_column_enforces_length(self):
        batch = FlowBatch(
            ["a", "b"],
            [parse_address("100.64.0.1"), parse_address("100.64.0.2")],
            [1, 2],
        )
        with pytest.raises(BatchShapeError):
            batch.set_column("addresses", [None])
        batch.set_column("addresses", [None, parse_address("192.0.2.9")])
        assert batch.resolved_indices() == [1]

    def test_len(self):
        batch = FlowBatch([], [], [])
        assert len(batch) == 0


class TestHashBackends:
    def test_python_backend_matches_reference(self):
        tuples = _tuples(64)
        assert PythonHashBackend().hash_tuples(tuples) == [
            flow_hash_tuple(t) for t in tuples
        ]

    def test_numpy_backend_bit_exact_v4(self):
        pytest.importorskip("numpy")
        tuples = _tuples(257)
        assert NumpyHashBackend().hash_tuples(tuples) == [
            flow_hash_tuple(t) for t in tuples
        ]

    def test_numpy_backend_bit_exact_v6(self):
        """IPv6 exercises the high-64-bit fold of the FNV chain — the part
        a careless vectorisation would drop."""
        pytest.importorskip("numpy")
        tuples = _tuples(64, v6=True)
        assert NumpyHashBackend().hash_tuples(tuples) == [
            flow_hash_tuple(t) for t in tuples
        ]

    def test_numpy_backend_empty(self):
        pytest.importorskip("numpy")
        assert NumpyHashBackend().hash_tuples([]) == []

    def test_default_backend_selection(self):
        assert default_backend("python").name == "python"
        assert default_backend("auto").name in ("python", "numpy")
        with pytest.raises(ValueError):
            default_backend("fortran")

    def test_flow_hash_packet_and_tuple_agree(self):
        for packet in make_packets(16):
            assert flow_hash(packet) == flow_hash_tuple(packet.tuple5)
