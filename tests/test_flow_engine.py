"""The columnar flow engine end to end: stages, stats, backends, obs.

Parity against the scalar reference lives in
``tests/test_flow_differential.py``; these tests pin the engine's own
behaviour — what each stage writes into the batch, how the per-batch stats
fold, and how the engine surfaces through ``repro.obs``.
"""

from __future__ import annotations

import pytest

from repro.core.policy import Policy
from repro.experiments.flow_perf import (
    build_flow_world,
    make_flow_columns,
    run_engine,
    run_scalar,
)
from repro.flow import FlowBatch, default_backend
from repro.netsim import parse_address
from repro.obs import MetricsRegistry
from repro.obs.adapters import watch_flow_engine
from repro.sockets.lookup import LookupStage
from repro.workload.traffic import RequestStream


def _columns(world, n=96, seed=11, batch_size=32):
    return make_flow_columns(world, n, seed=seed, batch_size=batch_size)


class TestPipelineStages:
    def test_full_pipeline_serves_everything(self):
        world = build_flow_world(num_hostnames=16, num_servers=4)
        served = run_engine(world, _columns(world))
        assert served == 96
        stats = world.engine.stats
        assert stats.flows == 96
        assert stats.batches == 3
        assert stats.unresolved == 0
        assert stats.connections == 96
        assert stats.dispatched == 96
        assert stats.served_errors == 0
        assert stats.cache_hits + stats.minted == 96
        assert stats.bytes_served > 0

    def test_stage_columns_populated(self):
        world = build_flow_world(num_hostnames=8, num_servers=2)
        (hostnames, src_addrs, src_ports) = _columns(world, n=16, batch_size=16)[0]
        batch = world.engine.run_batch(FlowBatch(hostnames, src_addrs, src_ports))
        assert all(addr is not None for addr in batch.addresses)
        assert all(t5 is not None for t5 in batch.tuple5s)
        assert all(isinstance(fh, int) for fh in batch.flow_hashes)
        assert all(server in world.dc.servers for server in batch.servers)
        # Request packets on established flows resolve at the connected-
        # socket stage — the 4-tuple match, never a fresh listener walk.
        assert all(stage is LookupStage.CONNECTED for stage in batch.stages)
        assert all(status == 200 for status in batch.statuses)

    def test_flow_hashes_threaded_not_recomputed(self):
        """The engine's hash column must be the exact hash the scalar path
        computes — ECMP keys on it, so a drift would re-home flows."""
        from repro.sockets.lookup import flow_hash_tuple

        world = build_flow_world(num_hostnames=8, num_servers=2)
        (hostnames, src_addrs, src_ports) = _columns(world, n=8, batch_size=8)[0]
        batch = world.engine.run_batch(FlowBatch(hostnames, src_addrs, src_ports))
        assert batch.flow_hashes == [flow_hash_tuple(t) for t in batch.tuple5s]

    def test_second_pass_hits_resolver_cache(self):
        world = build_flow_world(num_hostnames=8, num_servers=2, ttl=300)
        columns = _columns(world, n=32, batch_size=32)
        run_engine(world, columns)
        minted_first = world.engine.stats.minted
        assert minted_first > 0
        # Same hostnames, fresh 5-tuples (a client can't reuse a live
        # ephemeral port for a second connection to the same address).
        fresh = [
            (hostnames, src_addrs, list(range(10_000, 10_000 + len(src_ports))))
            for hostnames, src_addrs, src_ports in columns
        ]
        run_engine(world, fresh)
        assert world.engine.stats.minted == minted_first  # all cache hits
        assert world.engine.stats.cache_hits >= 32

    def test_duplicate_hostnames_fall_back_to_scalar_resolve(self):
        """In-batch duplicates must observe earlier stores, like a scalar
        loop: first occurrence mints, second hits the cache — and both get
        the *same* address (the bound name, not a fresh mint)."""
        world = build_flow_world(num_hostnames=8, num_servers=2)
        host = world.universe.sites[0]
        batch = FlowBatch(
            [host, host],
            [parse_address("100.64.0.1"), parse_address("100.64.0.2")],
            [20_001, 20_002],
        )
        world.engine.run_batch(batch)
        assert batch.cached == [False, True]
        assert batch.addresses[0] == batch.addresses[1]
        assert world.cache.stats.hits == 1
        assert world.cache.stats.misses == 1

    def test_unmatched_flows_fall_out_at_resolve(self):
        """A flow no policy matches (and no fallback answers) carries
        ``None`` through every later column and counts as unresolved."""
        world = build_flow_world(num_hostnames=8, num_servers=2)
        engine = world.source.engine
        pool = engine.get("randomize-all").pool
        engine.remove("randomize-all")
        engine.add(
            Policy("enterprise-only", pool,
                   match={"account_type": {"enterprise"}}, ttl=30)
        )
        free_host = next(
            h for h in world.universe.sites
            if world.universe.customer_of(h).account_type.value != "enterprise"
        )
        batch = FlowBatch([free_host], [parse_address("100.64.0.1")], [20_001])
        world.engine.run_batch(batch)
        assert batch.addresses == [None]
        assert batch.connections == [None]
        assert batch.stages == [None]
        assert batch.statuses == [None]
        assert world.engine.stats.unresolved == 1
        assert world.engine.stats.connections == 0
        assert world.source.log.refused == 1

    def test_run_columns_convenience(self):
        world = build_flow_world(num_hostnames=8, num_servers=2)
        host = world.universe.sites[0]
        batch = world.engine.run_columns(
            (host,), (parse_address("100.64.0.9"),), (23_456,)
        )
        assert batch.statuses == [200]


class TestBackendsThroughEngine:
    def test_numpy_and_python_engines_agree(self):
        pytest.importorskip("numpy")
        cols = None
        batches = {}
        for backend in ("python", "numpy"):
            world = build_flow_world(num_hostnames=16, num_servers=4, backend=backend)
            assert world.engine.backend.name == backend
            cols = _columns(world, n=64, batch_size=64)
            (hostnames, src_addrs, src_ports) = cols[0]
            batches[backend] = world.engine.run_batch(
                FlowBatch(hostnames, src_addrs, src_ports)
            )
        py, np_ = batches["python"], batches["numpy"]
        assert py.flow_hashes == np_.flow_hashes
        assert py.servers == np_.servers
        assert py.addresses == np_.addresses
        assert py.statuses == np_.statuses


class TestFlowObservability:
    def test_watch_flow_engine_snapshot(self):
        world = build_flow_world(num_hostnames=8, num_servers=2)
        registry = MetricsRegistry()
        watch_flow_engine(registry, "flow", world.engine)
        run_engine(world, _columns(world, n=32, batch_size=16))
        counters = registry.snapshot()["counters"]
        assert counters["flow.flows"] == 32
        assert counters["flow.batches"] == 2
        assert counters["flow.served_ok"] == 32
        assert counters[f"flow.backend.{world.engine.backend.name}"] == 1


class TestFlowWorkload:
    def test_sample_flow_batches_columns_parallel_and_deterministic(self):
        world = build_flow_world(num_hostnames=16, num_servers=2)
        stream = RequestStream(world.universe)
        a = list(stream.sample_flow_batches(100, seed=5, batch_size=32))
        b = list(stream.sample_flow_batches(100, seed=5, batch_size=32))
        assert [x[0] for x in a] == [x[0] for x in b]
        assert [x[1] for x in a] == [x[1] for x in b]
        assert [x[2] for x in a] == [x[2] for x in b]
        assert sum(len(h) for h, _, _ in a) == 100
        cgnat_lo = parse_address("100.64.0.0").value
        cgnat_hi = parse_address("100.128.0.0").value
        for hostnames, src_addrs, src_ports in a:
            assert len(hostnames) == len(src_addrs) == len(src_ports)
            assert all(cgnat_lo <= addr.value < cgnat_hi for addr in src_addrs)
            assert all(20_000 <= port < 60_000 for port in src_ports)

    def test_run_scalar_reference_serves_everything(self):
        world = build_flow_world(num_hostnames=8, num_servers=2)
        assert run_scalar(world, _columns(world, n=24, batch_size=8)) == 24
        # The control arm never folds engine stats.
        assert world.engine.stats.flows == 0
