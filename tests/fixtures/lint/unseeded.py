"""Deliberately nondeterministic module: the determinism lint's test dummy.

Every construct below is a true positive for one DT rule; the golden CLI
test asserts the lint reports each of them (and honours the pragmas).
"""

import random
import time


def jitter():
    return random.random()  # DT002: module-level RNG


def stamp():
    return time.time()  # DT001: wall clock


def bucket(name):
    return hash(name) % 8  # DT003: salted hash


def drain(events):
    for event in set(events):  # DT004: set iteration order
        print(event)


def enqueue(item, queue=[]):  # DT005: shared mutable default
    queue.append(item)
    return queue


def sanctioned():
    return time.time()  # repro: allow-wall-clock measures real benchmark duration


def unexplained():
    return time.time()  # repro: allow-wall-clock
