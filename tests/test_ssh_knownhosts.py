"""ssh known_hosts under addressing agility (§4.4 vs §5.1)."""

import random

import pytest

from repro.core import AddressPool, RandomSelection, SelectionContext
from repro.netsim.addr import parse_prefix
from repro.web.ssh import HostKeyChangedError, KnownHostsClient

POOL_24 = AddressPool(parse_prefix("192.0.2.0/24"))
POOL_32 = AddressPool(parse_prefix("192.0.2.0/24"), active=parse_prefix("192.0.2.1/32"))


def connect_series(client: KnownHostsClient, pool: AddressPool, n: int, seed: int) -> int:
    """n connections to one host whose address comes from pool selection."""
    rng = random.Random(seed)
    strategy = RandomSelection()
    ctx = SelectionContext(hostname="git.example.com", pop="iad")
    for _ in range(n):
        address = strategy.select(pool, ctx, rng)
        client.connect("git.example.com", address, host_key="ed25519:AAAA")
    return client.warnings


class TestKnownHosts:
    def test_random_addressing_triggers_warnings(self):
        """§4.4: randomized IPs trip the hostname↔IP association."""
        client = KnownHostsClient()
        warnings = connect_series(client, POOL_24, n=30, seed=1)
        assert warnings >= 25  # nearly every connection hits a fresh address

    def test_one_address_produces_no_warnings(self):
        """§5.1: one-address preserves the IP semantics ssh relies on."""
        client = KnownHostsClient()
        warnings = connect_series(client, POOL_32, n=30, seed=2)
        assert warnings == 0

    def test_first_contact_is_not_a_warning(self):
        client = KnownHostsClient()
        result = client.connect("h.example", POOL_24.address_at(0), "k1")
        assert result.new_host and not result.ip_warning

    def test_repeat_same_address_quiet(self):
        client = KnownHostsClient()
        a = POOL_24.address_at(7)
        client.connect("h.example", a, "k1")
        result = client.connect("h.example", a, "k1")
        assert not result.ip_warning and not result.new_host

    def test_key_change_hard_fails(self):
        """Agility must never look like a MITM: keys are per-hostname.
        An actual key change still fails loudly."""
        client = KnownHostsClient()
        client.connect("h.example", POOL_24.address_at(1), "k1")
        with pytest.raises(HostKeyChangedError):
            client.connect("h.example", POOL_24.address_at(2), "k2")

    def test_check_host_ip_off_models_modern_default(self):
        """OpenSSH ≥ 8.5 defaults CheckHostIP to no — §4.4 calls the
        association 'outdated and already broken'."""
        client = KnownHostsClient(check_host_ip=False)
        warnings = connect_series(client, POOL_24, n=30, seed=3)
        assert warnings == 0

    def test_addresses_accumulate(self):
        client = KnownHostsClient()
        connect_series(client, POOL_24, n=50, seed=4)
        assert len(client.known_addresses("git.example.com")) > 40
