"""The control-plane checker pass (repro.check.controlplane), rule by rule."""

from repro.check import CheckContext, PolicyInfo, ProgramView
from repro.check.controlplane import ControlPlaneChecker, sample_pool_addresses
from repro.core.pool import AddressPool
from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import Protocol
from repro.sockets.sklookup import MatchRule, Verdict

WEB = parse_prefix("192.0.2.0/24")
STANDBY = parse_prefix("203.0.113.0/24")


def pool(prefix=WEB, name="web-pool", active=None):
    return AddressPool(prefix, active=active, name=name)


def policy(name="web", ttl=30, prefix=WEB, pool_name=None):
    return PolicyInfo(name=name, ttl=ttl,
                      pool=pool(prefix, name=pool_name or f"{name}-pool"))


def redirect(prefixes=(WEB,), key=0, lo=1, hi=0xFFFF):
    return MatchRule(action=Verdict.PASS, protocol=Protocol.TCP,
                     prefixes=tuple(prefixes), port_lo=lo, port_hi=hi, map_key=key)


def program(rules, live=(0,), name="edge"):
    return ProgramView(name=name, rules=tuple(rules), map_size=8,
                       live_slots=frozenset(live), path=name)


def ctx(**kwargs):
    kwargs.setdefault("announced", [WEB, STANDBY])
    kwargs.setdefault("listening", [WEB, STANDBY])
    kwargs.setdefault("programs", [program([redirect((WEB,)), redirect((STANDBY,))])])
    return CheckContext(**kwargs)


def run(context):
    return ControlPlaneChecker().run(context)


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestSampling:
    def test_prefix_sampling_is_deterministic_and_cornered(self):
        p = pool()
        a, b = sample_pool_addresses(p, 6), sample_pool_addresses(p, 6)
        assert a == b
        assert a[0] == WEB.first and a[1] == WEB.last

    def test_explicit_list_sampled_verbatim(self):
        p = pool()
        p.set_active([WEB.first, WEB.last])
        assert sample_pool_addresses(p, 6) == [WEB.first, WEB.last]


class TestCoverage:
    def test_clean_context(self):
        assert run(ctx(policies=[policy()])) == []

    def test_unrouted_pool_cp001(self):
        findings = run(ctx(policies=[policy(prefix=parse_prefix("198.18.7.0/24"))],
                           programs=[]))
        assert "CP001" in rules_of(findings)

    def test_unlistened_pool_cp002(self):
        findings = run(ctx(policies=[policy()], listening=[STANDBY], programs=[]))
        assert "CP002" in rules_of(findings)

    def test_no_announcements_known_means_no_coverage_claim(self):
        # An empty announcement table means "not modelled", not "nothing
        # announced" — the checker must not cry wolf.
        findings = run(CheckContext(policies=[policy()]))
        assert "CP001" not in rules_of(findings)


class TestOverlapCP003:
    def test_distinct_pools_sharing_space_warn(self):
        findings = run(ctx(policies=[
            policy("a"), policy("b", prefix=parse_prefix("192.0.2.0/25")),
        ]))
        cp003 = [f for f in findings if f.rule == "CP003"]
        assert len(cp003) == 1 and "'b'" in cp003[0].message

    def test_shared_pool_object_is_deliberate(self):
        shared = pool()
        findings = run(ctx(policies=[
            PolicyInfo("a", shared, 30), PolicyInfo("b", shared, 30),
        ]))
        assert "CP003" not in rules_of(findings)


class TestTTL:
    def test_ttl_zero_warns_cp005(self):
        findings = run(ctx(policies=[policy(ttl=0)]))
        assert "CP005" in rules_of(findings)

    def test_ttl_past_horizon_warns_cp006(self):
        findings = run(ctx(policies=[policy(ttl=7200)]))
        assert "CP006" in rules_of(findings)

    def test_horizon_is_configurable(self):
        context = ctx(policies=[policy(ttl=7200)])
        context.ttl_horizon_max = 10_000
        assert "CP006" not in rules_of(run(context))

    def test_soa_minimum_cp007(self):
        context = ctx(policies=[policy()])
        context.soa_minimum = 0
        assert "CP007" in rules_of(run(context))
        context.soa_minimum = 100_000
        assert "CP007" in rules_of(run(context))
        context.soa_minimum = 300
        assert "CP007" not in rules_of(run(context))


class TestStandbyCP004:
    def test_undispatched_standby_errors(self):
        findings = run(ctx(standby_pools=[pool(STANDBY, name="backup")],
                           programs=[program([redirect((WEB,))])]))
        assert "CP004" in rules_of(findings)

    def test_dispatched_standby_is_fine(self):
        findings = run(ctx(standby_pools=[pool(STANDBY, name="backup")]))
        assert "CP004" not in rules_of(findings)

    def test_redirect_with_empty_slot_does_not_count(self):
        findings = run(ctx(
            standby_pools=[pool(STANDBY, name="backup")],
            programs=[program([redirect((WEB,)), redirect((STANDBY,), key=5)])],
        ))
        assert "CP004" in rules_of(findings)

    def test_redirect_outside_service_ports_does_not_count(self):
        findings = run(ctx(
            standby_pools=[pool(STANDBY, name="backup")],
            programs=[program([redirect((WEB,)), redirect((STANDBY,), lo=22, hi=22)])],
        ))
        assert "CP004" in rules_of(findings)

    def test_no_programs_means_dispatch_not_modelled(self):
        findings = run(ctx(standby_pools=[pool(STANDBY, name="backup")], programs=[]))
        assert "CP004" not in rules_of(findings)


class TestEndToEndCP008:
    def test_unannounced_addresses_fail_statically(self):
        findings = run(ctx(policies=[policy()], announced=[STANDBY], programs=[]))
        cp008 = [f for f in findings if f.rule == "CP008"]
        assert len(cp008) == 1
        assert "no announced prefix covers it" in cp008[0].message

    def test_drop_rule_fails_the_probe(self):
        findings = run(ctx(
            policies=[policy()],
            programs=[program([
                MatchRule(action=Verdict.DROP, protocol=Protocol.TCP,
                          prefixes=(WEB,), port_lo=80, port_hi=80),
                redirect((WEB,)),
            ])],
        ))
        cp008 = [f for f in findings if f.rule == "CP008"]
        assert len(cp008) == 1
        assert "DROP rule swallows port 80" in cp008[0].message

    def test_uncovered_port_fails_the_probe(self):
        findings = run(ctx(
            policies=[policy()],
            programs=[program([redirect((WEB,), lo=443, hi=443)])],
        ))
        cp008 = [f for f in findings if f.rule == "CP008"]
        assert len(cp008) == 1
        assert "no program dispatches port 80" in cp008[0].message

    def test_empty_slot_falls_through_to_next_rule(self):
        findings = run(ctx(
            policies=[policy()],
            programs=[program([redirect((WEB,), key=5), redirect((WEB,), key=0)])],
        ))
        assert "CP008" not in rules_of(findings)

    def test_findings_aggregate_per_policy(self):
        findings = run(ctx(policies=[policy()], announced=[STANDBY], programs=[]))
        cp008 = [f for f in findings if f.rule == "CP008"]
        assert len(cp008) == 1 and cp008[0].message.startswith("8/8")


class TestSamplePoolAddresses:
    def test_explicit_list_respects_the_sample_cap(self):
        # Regression: the cap used to be max(samples, 2) + 2, silently
        # probing two more addresses than asked for.
        addrs = tuple(parse_address(f"192.0.2.{i}") for i in range(1, 11))
        assert sample_pool_addresses(pool(active=addrs), 4) == list(addrs[:4])
        assert len(sample_pool_addresses(pool(active=addrs), 64)) == 10

    def test_explicit_list_keeps_the_two_sample_floor(self):
        addrs = tuple(parse_address(f"192.0.2.{i}") for i in range(1, 11))
        assert sample_pool_addresses(pool(active=addrs), 1) == list(addrs[:2])

    def test_prefix_sampling_is_deterministic_with_corners_first(self):
        probes = sample_pool_addresses(pool(), 4)
        assert probes == sample_pool_addresses(pool(), 4)
        assert probes[0] == WEB.first and probes[1] == WEB.last
