"""Experiment harnesses at test scale: every run_* works and keeps shape.

The benchmarks exercise these at full scale; these tests pin the same
invariants on small, fast configurations so a plain ``pytest tests/`` run
covers the whole reproduction pipeline.
"""

import pytest

from repro.core.pool import AddressPool
from repro.core.strategies import RandomSelection, StaticAssignment
from repro.experiments import fig7, fig8, fig9, dnsqps, dos, reduction, sklookup_perf, spillover, ttl
from repro.netsim.addr import parse_prefix
from repro.netsim.packet import Protocol


class TestFig7Harness:
    CONFIG = fig7.Fig7Config(num_sites=800, requests=12_000)

    def test_static_vs_random_ordering(self):
        static = fig7.run_fig7_panel(
            "7a", AddressPool(parse_prefix("10.0.0.0/22"), name="static"),
            StaticAssignment(per_address=8), self.CONFIG,
        )
        rand = fig7.run_fig7_panel(
            "7c", AddressPool(fig7.AGILE_SLASH24, name="rand"),
            RandomSelection(), self.CONFIG,
        )
        assert static.request_spread_orders > rand.request_spread_orders
        assert static.requests_dist.gini > rand.requests_dist.gini

    def test_wire_and_message_paths_agree(self):
        """use_wire must not change the distribution (same RNG stream)."""
        pool = AddressPool(fig7.AGILE_SLASH24)
        config = fig7.Fig7Config(num_sites=100, requests=800)
        a = fig7.run_fig7_panel("x", pool, RandomSelection(), config, use_wire=False)
        pool2 = AddressPool(fig7.AGILE_SLASH24)
        b = fig7.run_fig7_panel("x", pool2, RandomSelection(), config, use_wire=True)
        assert a.requests_dist.sorted_desc == b.requests_dist.sorted_desc

    def test_all_requests_accounted(self):
        result = fig7.run_fig7_panel(
            "x", AddressPool(fig7.AGILE_SLASH24), RandomSelection(), self.CONFIG
        )
        assert result.requests_dist.total == self.CONFIG.requests

    def test_render(self):
        results = fig7.run_fig7(fig7.Fig7Config(num_sites=60, requests=500))
        out = fig7.render_fig7_table(results)
        assert "7a" in out and "one" in out


class TestFig8Harness:
    CONFIG = fig8.Fig8Config(num_sites=80, sessions=40)

    def test_one_ip_beats_random(self):
        one = fig8.run_fig8_arm("one", fig8.ONE_IP_POOL, self.CONFIG)
        rest = fig8.run_fig8_arm("rest", fig8.REST_OF_WORLD_POOL, self.CONFIG)
        assert one.mean(one.tcp_rpc) > rest.mean(rest.tcp_rpc)

    def test_full_run_and_significance(self):
        result = fig8.run_fig8(fig8.Fig8Config(num_sites=80, sessions=60))
        assert result.ad_all.rejects_same_population(0.001)
        out = fig8.render_fig8_table(result)
        assert "one-ip" in out and "rejected" in out


class TestFig9Harness:
    def test_detection_and_mitigation(self):
        outcome = fig9.run_fig9(fig9.Fig9Config(requests_per_phase=40))
        assert outcome.detected
        assert outcome.post_mitigation_clean
        assert outcome.mitigation_horizon == outcome.ttl
        assert "leak detected" in fig9.render_fig9_table(outcome)


class TestDosHarness:
    def test_case_and_sweep(self):
        run = dos.run_dos_case(n_services=64, k=4, attack="l7")
        assert run.verdict.kind == "L7" and run.verdict.within_bound
        runs = dos.run_dos_sweep(n_services=64, ks=(2, 8))
        assert "within bound" in dos.render_dos_table(runs)

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            dos.run_dos_case(attack="quantum")


class TestReductionHarness:
    def test_exact_numbers(self):
        rows = reduction.run_reduction_table()
        assert rows[1].reduction_pct == pytest.approx(94.4, abs=0.05)
        assert rows[2].reduction_pct == pytest.approx(99.7, abs=0.05)
        assert "94.4%" in reduction.render_reduction_table(rows)


class TestTTLHarness:
    def test_bounds_hold(self):
        runs = ttl.run_ttl_experiment(authoritative_ttl=20, clamp_mins=(0, 100))
        for run in runs:
            assert run.observed_flip_time <= run.bound
        assert runs[1].observed_flip_time > runs[0].observed_flip_time


class TestSpilloverHarness:
    def test_v6_heavier_than_v4(self):
        runs = spillover.run_spillover(clients=16, requests_per_client=3)
        v4, v6 = runs
        assert v4.family == "IPv4" and v6.family == "IPv6"
        assert v6.spillover_share >= v4.spillover_share
        assert "IPv6" in spillover.render_spillover_table(runs)


class TestSkLookupPerfHarness:
    def test_builders_dispatch(self):
        for builder, to_internal in (
            (sklookup_perf.build_baseline_listener, True),
            (sklookup_perf.build_wildcard, False),
            (sklookup_perf.build_sk_lookup, False),
        ):
            setup = builder()
            packets = sklookup_perf.make_packets(500, to_internal=to_internal)
            assert sklookup_perf.dispatch_all(setup, packets) == 500

    def test_per_ip_builder(self):
        pool = parse_prefix("192.0.2.0/26")
        setup = sklookup_perf.build_per_ip_binds(pool)
        assert setup.socket_count == 64
        packets = sklookup_perf.make_packets(200, pool=pool)
        assert sklookup_perf.dispatch_all(setup, packets) == 200

    def test_udp_workload(self):
        setup = sklookup_perf.build_sk_lookup(protocol=Protocol.UDP)
        packets = sklookup_perf.make_packets(300, protocol=Protocol.UDP)
        assert sklookup_perf.dispatch_all(setup, packets) == 300

    def test_scaling_table_renders(self):
        out = sklookup_perf.render_scaling_table((28, 26))
        assert "/28" in out and "/26" in out


class TestQPSHarness:
    def test_both_servers_answer_everything(self):
        queries = dnsqps.make_queries(300, num_hostnames=200)
        for build in (dnsqps.build_policy_server, dnsqps.build_zone_server):
            setup = build(num_hostnames=200)
            assert dnsqps.answer_all(setup, queries) == 300


class TestDnsLoadHarness:
    def test_queries_fall_with_ttl(self):
        from repro.experiments import dnsload

        runs = dnsload.run_dns_load(sessions=25)
        assert runs[0].http_requests == runs[-1].http_requests
        root_like = next(r for r in runs if r.ttl == 86400)
        short = next(r for r in runs if r.label.startswith("random"))
        assert root_like.queries_per_request < short.queries_per_request
        assert "queries/request" in dnsload.render_dns_load_table(runs)


class TestPageLoadHarness:
    def test_one_address_faster(self):
        from repro.experiments import pageload

        runs = pageload.run_pageload(sessions=25)
        one = next(r for r in runs if r.label.startswith("one-ip"))
        rand = next(r for r in runs if r.label.startswith("random"))
        assert one.account.share("setup") < rand.account.share("setup")
        assert one.mean_fetch_ms < rand.mean_fetch_ms
        assert "dns share" in pageload.render_pageload_table(runs)


class TestColoringHarness:
    def test_sweep_monotone(self):
        from repro.experiments import coloring

        runs = coloring.run_coloring_sweep(radii_km=(500, 4000))
        assert runs[0].colors_needed <= runs[1].colors_needed
        assert all(r.isolated for r in runs)
