"""Event-driven BGP speakers: propagation, MRAI, sessions, damping, oracle."""

import random

import pytest

from repro.clock import Clock
from repro.netsim.addr import parse_prefix
from repro.netsim.bgp import (
    Announcement,
    ASGraph,
    BGPSimulation,
    LeakingExport,
)
from repro.netsim.speakers import (
    ConvergenceTracker,
    LinkProfile,
    SpeakerSimulation,
    oracle_mismatches,
)

PFX = parse_prefix("198.51.100.0/24")
PFX2 = parse_prefix("203.0.113.0/24")
FAST = LinkProfile(base_delay_s=0.05, jitter_s=0.05, mrai_s=0.0)


def line_graph():
    """stub s — transit t — stub d (t provides for both)."""
    g = ASGraph()
    g.add_provider("s", "t")
    g.add_provider("d", "t")
    return g


def diamond_graph():
    """Origin multihomed to two transits peering above a shared client."""
    g = ASGraph()
    g.add_provider("o", "t1")
    g.add_provider("o", "t2")
    g.add_peering("t1", "t2")
    g.add_provider("c", "t1")
    g.add_provider("c", "t2")
    return g


class TestPropagation:
    def test_announcement_reaches_remote_as_after_settle(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        assert sim.rib("d").best(PFX) is None  # nothing delivered yet
        sim.settle()
        route = sim.rib("d").best(PFX)
        assert route is not None and route.origin == "s"

    def test_tick_only_drains_events_due_on_the_clock(self):
        clock = Clock()
        sim = SpeakerSimulation(line_graph(), clock=clock, profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.tick()
        assert sim.rib("d").best(PFX) is None  # delay has not elapsed
        assert sim.converging()
        clock.advance(5.0)
        sim.tick()
        assert sim.rib("d").best(PFX).origin == "s"
        assert not sim.converging()

    def test_withdrawal_propagates_and_empties_tables(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        sim.withdraw(PFX, "s")
        sim.settle()
        for asn in ("s", "t", "d"):
            assert sim.rib(asn).best(PFX) is None
        assert sim.tracker.withdrawals_sent > 0

    def test_valley_free_holds_under_event_delivery(self):
        # d learns o's route via its providers, but t1 must not relay the
        # peer-learned route to t2 (no peer->peer transit).
        sim = SpeakerSimulation(diamond_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "o"))
        sim.settle()
        path = sim.forwarding_path("c", PFX.first)
        assert path is not None and path[-1] == "o"
        assert oracle_mismatches(sim, ["c", "t1", "t2"], [PFX.first]) == []

    def test_incremental_flag_distinguishes_engines(self):
        assert SpeakerSimulation(line_graph()).incremental
        assert not BGPSimulation(line_graph()).incremental


class TestConvergenceWindows:
    def test_settle_records_a_closed_window(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        assert len(sim.tracker.windows) == 1
        opened, closed = sim.tracker.windows[0]
        assert closed > opened >= 0.0
        assert sim.open_window_since() is None

    def test_each_quiescence_gap_opens_a_new_window(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        sim.withdraw(PFX, "s")
        sim.settle()
        assert len(sim.tracker.windows) == 2

    def test_observers_receive_window_durations(self):
        seen = []
        tracker = ConvergenceTracker()
        tracker.observers.append(seen.append)
        sim = SpeakerSimulation(line_graph(), profile=FAST, tracker=tracker)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        assert seen == tracker.durations()

    def test_slow_convergence_factor_stretches_the_window(self):
        base = SpeakerSimulation(line_graph(), profile=FAST)
        base.announce(Announcement(PFX, "s"))
        base.settle()
        slow = SpeakerSimulation(line_graph(), profile=FAST)
        slow.delay_factor = 5.0
        slow.announce(Announcement(PFX, "s"))
        slow.settle()
        assert slow.tracker.durations()[0] == pytest.approx(
            5.0 * base.tracker.durations()[0])


class TestMRAIAndCoalescing:
    def test_rapid_flip_coalesces_to_latest_state(self):
        # With a long MRAI the second UPDATE for the same session waits a
        # full slot; the announce->withdraw flip supersedes the announce
        # in flight, and the receiver ends with no route.
        profile = LinkProfile(base_delay_s=0.05, jitter_s=0.0, mrai_s=5.0)
        sim = SpeakerSimulation(line_graph(), profile=profile)
        sim.announce(Announcement(PFX, "s"))
        sim.withdraw(PFX, "s")
        sim.settle()
        assert sim.rib("t").best(PFX) is None
        assert sim.tracker.coalesced > 0

    def test_mrai_paces_successive_sends_on_one_session(self):
        profile = LinkProfile(base_delay_s=0.05, jitter_s=0.0, mrai_s=5.0)
        sim = SpeakerSimulation(line_graph(), profile=profile)
        sim.announce(Announcement(PFX, "s"))
        sim.announce(Announcement(PFX2, "s"))
        sim.settle()
        # The second prefix's UPDATE left one MRAI slot later, so the
        # network only quiesced after that slot elapsed.
        assert sim.tracker.windows[-1][1] >= 5.0


class TestSessions:
    def test_session_down_purges_learned_routes_both_sides(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        assert sim.rib("d").best(PFX) is not None
        sim.set_session("t", "d", up=False)
        assert sim.rib("d").best(PFX) is None
        assert sim.sessions_down() == [("d", "t")]
        # s -> t is untouched.
        assert sim.rib("t").best(PFX) is not None

    def test_session_restore_readvertises_full_table(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        sim.set_session("t", "d", up=False)
        sim.set_session("t", "d", up=True)
        sim.settle()
        assert sim.rib("d").best(PFX).origin == "s"
        assert sim.sessions_down() == []

    def test_unknown_session_rejected(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        with pytest.raises(KeyError):
            sim.set_session("s", "d", up=False)

    def test_messages_in_flight_when_session_dies_are_dropped(self):
        clock = Clock()
        sim = SpeakerSimulation(line_graph(), clock=clock, profile=FAST)
        sim.announce(Announcement(PFX, "s"))  # UPDATE now in flight to t
        sim.set_session("s", "t", up=False)
        clock.advance(10.0)
        sim.tick()
        assert sim.rib("t").best(PFX) is None


class TestFlapDamping:
    def test_persistent_flap_is_suppressed_at_first_hop(self):
        clock = Clock()
        sim = SpeakerSimulation(line_graph(), clock=clock, profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        sim.warm_reset()
        sim.start_flap(PFX, "s", period_s=2.0)
        for _ in range(30):
            clock.advance(1.0)
            sim.tick()
        assert sim.tracker.suppressions > 0
        assert sim.suppressed_count() > 0
        assert sim.active_flaps() == [(PFX, "s")]

    def test_reuse_restores_route_after_flap_stops(self):
        clock = Clock()
        sim = SpeakerSimulation(line_graph(), clock=clock, profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        sim.warm_reset()
        sim.start_flap(PFX, "s", period_s=2.0)
        for _ in range(30):
            clock.advance(1.0)
            sim.tick()
        sim.stop_flap(PFX, "s")
        sim.settle()  # drains damping reuse timers on virtual time
        assert sim.active_flaps() == []
        assert sim.suppressed_count() == 0
        assert sim.tracker.reuses > 0
        assert sim.rib("d").best(PFX).origin == "s"

    def test_flap_period_validated(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        with pytest.raises(ValueError):
            sim.start_flap(PFX, "s", period_s=0.0)
        with pytest.raises(KeyError):
            sim.start_flap(PFX, "nope", period_s=2.0)


class TestWarmReset:
    def test_warm_reset_zeroes_counters_and_snaps_to_clock(self):
        clock = Clock()
        clock.advance(42.0)
        sim = SpeakerSimulation(line_graph(), clock=clock, profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        assert sim.tracker.messages_sent > 0
        sim.warm_reset()
        assert sim.tracker.messages_sent == 0
        assert sim.tracker.windows == []
        assert sim.rib("d").best(PFX) is not None  # RIBs survive
        sim.withdraw(PFX, "s")
        # Post-reset events are timestamped at the clock, not build vtime.
        assert sim._queue[0][0] >= 42.0

    def test_warm_reset_requires_a_settled_queue(self):
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        with pytest.raises(RuntimeError):
            sim.warm_reset()


class TestLeakDynamics:
    def test_leak_spreads_and_heals_incrementally(self):
        # The origin *peers* with both transits (the CDN arrangement), so
        # a customer-learned leak beats the direct peer route on local-pref.
        g = ASGraph()
        g.add_peering("o", "t1")
        g.add_peering("o", "t2")
        g.add_peering("t1", "t2")
        g.add_provider("c", "t1")
        g.add_provider("c", "t2")
        g.add_provider("leak", "t1")
        g.add_provider("leak", "t2")
        sim = SpeakerSimulation(g, profile=FAST)
        sim.announce(Announcement(PFX, "o"))
        sim.settle()
        assert sim.forwarding_path("c", PFX.first)[-1] == "o"
        sim.set_export_policy("leak", LeakingExport([PFX]))
        sim.settle()
        # t2 prefers the customer-learned (leaked) route, so c's path now
        # transits the leaker — and no reconverge_from_scratch was needed.
        leaked_paths = [
            sim.forwarding_path(c, PFX.first) for c in ("t1", "t2")
        ]
        assert any("leak" in p for p in leaked_paths if p)
        sim.set_export_policy("leak", None)
        sim.settle()
        assert all(
            "leak" not in (sim.forwarding_path(c, PFX.first) or ())
            for c in ("c", "t1", "t2")
        )
        assert oracle_mismatches(sim, ["c", "t1", "t2"], [PFX.first]) == []


def random_topology(rng: random.Random) -> tuple[ASGraph, list, list]:
    """Random three-tier hierarchy: full-mesh tier-1s, multihomed mids
    with scattered lateral peerings, stubs hanging off the mids."""
    g = ASGraph()
    t1s = [f"t1:{i}" for i in range(rng.randint(2, 4))]
    for i, a in enumerate(t1s):
        for b in t1s[i + 1:]:
            g.add_peering(a, b)
    mids = [f"mid:{i}" for i in range(rng.randint(3, 8))]
    for m in mids:
        for p in rng.sample(t1s, rng.randint(1, min(2, len(t1s)))):
            g.add_provider(m, p)
    for i, a in enumerate(mids):
        for b in mids[i + 1:]:
            if rng.random() < 0.3:
                g.add_peering(a, b)
    stubs = [f"stub:{i}" for i in range(rng.randint(4, 12))]
    for s in stubs:
        for p in rng.sample(mids, rng.randint(1, min(2, len(mids)))):
            g.add_provider(s, p)
    return g, mids, stubs


class TestDifferentialOracle:
    @pytest.mark.parametrize("block", range(8))
    def test_settled_speakers_equal_static_fixpoint(self, block):
        """225 seeded topologies (25 per block): anycast originations,
        random MRAI, and occasional leaks — settled catchments must match
        the static Gao–Rexford fixpoint exactly."""
        for index in range(25):
            seed = block * 25 + index
            rng = random.Random(seed)
            graph, mids, stubs = random_topology(rng)
            profile = LinkProfile(
                base_delay_s=0.05, jitter_s=0.2,
                mrai_s=rng.choice([0.0, 1.0, 3.0]),
            )
            sim = SpeakerSimulation(graph, profile=profile)
            origins = rng.sample(stubs, rng.randint(1, min(3, len(stubs))))
            for origin in origins:
                sim.announce(Announcement(PFX, origin))
            leakers = [s for s in stubs if s not in origins]
            if leakers and rng.random() < 0.5:
                sim.set_export_policy(rng.choice(leakers), LeakingExport([PFX]))
            sim.settle()
            mismatches = oracle_mismatches(
                sim, sorted(graph.ases(), key=str), [PFX.first])
            assert mismatches == [], (
                f"seed {seed}: {len(mismatches)} catchment mismatch(es), "
                f"first {mismatches[:1]}")

    def test_oracle_reports_a_seeded_divergence(self):
        # Sanity-check the oracle itself: a deliberately desynchronized
        # static comparison (extra origin the speaker never saw) differs.
        sim = SpeakerSimulation(line_graph(), profile=FAST)
        sim.announce(Announcement(PFX, "s"))
        sim.settle()
        static = BGPSimulation(line_graph())
        static.converge()
        assert sim.catchment(PFX.first, ["d"]) != static.catchment(
            PFX.first, ["d"])


class TestCatchmentDeterminism:
    """Satellite: catchments are byte-identical across runs and stable
    under AS insertion order."""

    def _catchment_bytes(self, graph: ASGraph) -> bytes:
        sim = SpeakerSimulation(graph, profile=FAST)
        sim.announce(Announcement(PFX, "o1"))
        sim.announce(Announcement(PFX, "o2"))
        sim.settle()
        clients = sorted(graph.ases(), key=str)
        catchment = sim.catchment(PFX.first, clients)
        return repr([(str(c), str(catchment[c])) for c in clients]).encode()

    def _build(self, order: list[tuple[str, str, str]]) -> ASGraph:
        g = ASGraph()
        for kind, a, b in order:
            if kind == "peer":
                g.add_peering(a, b)
            else:
                g.add_provider(a, b)
        return g

    EDGES = [
        ("peer", "t1", "t2"),
        ("prov", "o1", "t1"),
        ("prov", "o2", "t2"),
        ("prov", "c1", "t1"),
        ("prov", "c2", "t2"),
        ("prov", "c3", "t1"),
        ("prov", "c3", "t2"),
    ]

    def test_repeat_runs_are_byte_identical(self):
        graph = self._build(self.EDGES)
        assert self._catchment_bytes(graph) == self._catchment_bytes(
            self._build(self.EDGES))

    def test_insertion_order_does_not_change_catchments(self):
        for seed in range(10):
            shuffled = list(self.EDGES)
            random.Random(seed).shuffle(shuffled)
            assert self._catchment_bytes(self._build(shuffled)) == \
                self._catchment_bytes(self._build(self.EDGES)), f"seed {seed}"

    def test_static_engine_agrees_across_insertion_orders(self):
        def static_bytes(graph):
            sim = BGPSimulation(graph)
            sim.announce(Announcement(PFX, "o1"))
            sim.announce(Announcement(PFX, "o2"))
            sim.converge()
            clients = sorted(graph.ases(), key=str)
            catchment = sim.catchment(PFX.first, clients)
            return repr([(str(c), str(catchment[c])) for c in clients]).encode()

        baseline = static_bytes(self._build(self.EDGES))
        for seed in range(10):
            shuffled = list(self.EDGES)
            random.Random(seed).shuffle(shuffled)
            assert static_bytes(self._build(shuffled)) == baseline
