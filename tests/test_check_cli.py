"""``python -m repro check``: exit codes, golden output, config errors."""

import os

import pytest

from repro.check.cli import UnknownCheckerError, run_check
from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
BROKEN = os.path.join(FIXTURES, "broken_check.json")
GOLDEN = os.path.join(FIXTURES, "broken_check.golden")


class TestBrokenFixture:
    def test_broken_config_exits_nonzero(self):
        output, code = run_check(config=BROKEN)
        assert code == 1
        # The three headline defects the fixture plants:
        assert "SK002" in output          # shadowed rule
        assert "CP001" in output          # uncovered pool
        assert "DT002" in output          # unseeded random

    def test_output_matches_golden(self):
        # Findings are rendered sorted and all sampling is seeded, so the
        # report is byte-stable run to run and machine to machine.
        output, _ = run_check(config=BROKEN)
        with open(GOLDEN, encoding="utf-8") as handle:
            assert output + "\n" == handle.read()

    def test_runs_are_deterministic(self):
        assert run_check(config=BROKEN) == run_check(config=BROKEN)


class TestExitCodes:
    def test_malformed_config_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        output, code = run_check(config=str(bad))
        assert code == 2 and "check-config error" in output

    def test_unknown_key_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"advertized": ["192.0.2.0/24"]}')
        output, code = run_check(config=str(bad))
        assert code == 2 and "advertized" in output

    def test_warnings_pass_unless_strict(self, tmp_path):
        mod = tmp_path / "warn_only.py"
        mod.write_text("def f(x, q=[]):\n    q.append(x)\n")
        relaxed = run_check(no_deployment=True, lint=[str(tmp_path)])
        strict = run_check(no_deployment=True, lint=[str(tmp_path)], strict=True)
        assert relaxed[1] == 0 and "DT005" in relaxed[0]
        assert strict[1] == 1

    def test_no_lint_skips_the_pass(self):
        output, code = run_check(config=BROKEN, no_lint=True)
        assert code == 1
        assert "DT00" not in output


class TestShippedConfiguration:
    def test_default_deployment_and_sources_are_clean(self):
        # The acceptance gate: the shipped deployment and the shipped
        # sources (determinism lint included) come back with no findings.
        output, code = run_check()
        assert code == 0
        assert output.startswith("ok — no findings")
        assert "3 checker(s)" in output


class TestMainEntry:
    def test_main_propagates_failure_code(self, capsys):
        assert main(["check", BROKEN]) == 1
        assert "SK002" in capsys.readouterr().out

    def test_main_success_on_empty_context(self, capsys):
        assert main(["check", "--no-deployment", "--no-lint"]) == 0
        assert "ok — no findings" in capsys.readouterr().out


class TestOnlySelection:
    def test_only_restricts_the_run_to_named_checkers(self):
        output, code = run_check(config=BROKEN, only=["program"], no_lint=True)
        assert code == 1
        assert "SK002" in output and "CP001" not in output

    def test_only_names_deduplicate_preserving_order(self):
        once = run_check(config=BROKEN, only=["program"], no_lint=True)
        twice = run_check(config=BROKEN, only=["program", "program"], no_lint=True)
        assert once == twice

    def test_unknown_name_is_a_typed_error(self):
        with pytest.raises(UnknownCheckerError) as exc:
            run_check(no_deployment=True, only=["nosuch"])
        assert exc.value.checker == "nosuch"
        assert exc.value.known == ("controlplane", "determinism", "program",
                                   "symbolic")
        assert "known checkers:" in str(exc.value)

    def test_main_maps_unknown_checker_to_exit_2(self, capsys):
        assert main(["check", "--no-deployment", "--only", "nosuch"]) == 2
        out = capsys.readouterr().out
        assert "unknown checker 'nosuch'" in out and "symbolic" in out


class TestSymbolicFlag:
    def test_symbolic_run_over_the_seed_deployment_is_clean(self):
        output, code = run_check(symbolic=True, no_lint=True)
        assert code == 0
        assert output.startswith("ok — no findings")
        assert "3 checker(s)" in output  # program, controlplane, symbolic

    def test_only_symbolic_runs_just_that_pass(self):
        output, code = run_check(only=["symbolic"], no_lint=True)
        assert code == 0 and "1 checker(s)" in output
