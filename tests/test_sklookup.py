"""sk_lookup programs, sock arrays, verifier, and the dispatch pipeline."""

import pytest

from repro.netsim.addr import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Packet, Protocol
from repro.sockets.errors import ProgramError, ProgramNotAttachedError, VerifierError
from repro.sockets.lookup import LookupPath, LookupStage, flow_hash
from repro.sockets.sklookup import (
    MAX_RULES_PER_PROGRAM,
    MatchRule,
    SkLookupProgram,
    SockArray,
    Verdict,
    verify_program,
)
from repro.sockets.socktable import SocketTable

POOL = parse_prefix("192.0.2.0/24")
OTHER = parse_address("203.0.113.1")
INTERNAL = parse_address("198.18.0.1")


def packet(dst="192.0.2.77", dport=80, proto=Protocol.TCP, sport=40000):
    return Packet(
        FiveTuple(proto, parse_address("198.51.100.9"), sport, parse_address(dst), dport),
        syn=True,
    )


@pytest.fixture
def table():
    return SocketTable()


@pytest.fixture
def listener(table):
    return table.bind_listen(Protocol.TCP, INTERNAL, 80, owner="svc")


class TestSockArray:
    def test_update_and_lookup(self, table, listener):
        arr = SockArray(4)
        arr.update(0, listener)
        assert arr.lookup(0) is listener
        assert len(arr) == 1

    def test_update_requires_listening_socket(self, table):
        arr = SockArray(4)
        idle = table.socket(Protocol.TCP)
        with pytest.raises(ProgramError):
            arr.update(0, idle)

    def test_key_bounds(self, table, listener):
        arr = SockArray(4)
        with pytest.raises(ProgramError):
            arr.update(4, listener)
        with pytest.raises(ProgramError):
            arr.lookup(-1)

    def test_delete(self, table, listener):
        arr = SockArray(4)
        arr.update(1, listener)
        arr.delete(1)
        assert arr.lookup(1) is None
        assert arr.updates == 2

    def test_stale_closed_socket_reads_empty(self, table, listener):
        arr = SockArray(4)
        arr.update(0, listener)
        table.close(listener)
        assert arr.lookup(0) is None

    def test_size_positive(self):
        with pytest.raises(ValueError):
            SockArray(0)

    def test_silent_replacement_is_counted(self, table, listener):
        """Bugfix: ``update`` over an occupied slot silently dropped the
        previous socket from the map — correct sk_lookup semantics, but
        invisible in stats, so a control-plane bug that repeatedly clobbered
        a live listener's slot left no trace.  Replacements now count."""
        other = table.bind_listen(Protocol.TCP, parse_address("198.18.0.2"), 80)
        arr = SockArray(4)
        arr.update(0, listener)
        assert arr.replacements == 0
        arr.update(0, other)  # displaces a live listener
        assert arr.replacements == 1
        arr.update(0, other)  # same socket again: not a replacement
        assert arr.replacements == 1

    def test_replacing_stale_slot_not_counted(self, table, listener):
        """Overwriting a closed socket's slot is cleanup, not displacement."""
        other = table.bind_listen(Protocol.TCP, parse_address("198.18.0.2"), 80)
        arr = SockArray(4)
        arr.update(0, listener)
        table.close(listener)
        arr.update(0, other)
        assert arr.replacements == 0


class TestVerifier:
    def test_bad_port_range_rejected(self, table):
        arr = SockArray(4)
        prog = SkLookupProgram("p", arr)
        with pytest.raises(VerifierError):
            prog.add_rule(MatchRule(Verdict.PASS, port_lo=100, port_hi=10, map_key=0))
        with pytest.raises(VerifierError):
            prog.add_rule(MatchRule(Verdict.PASS, port_lo=0, port_hi=80, map_key=0))

    def test_mixed_family_prefixes_rejected(self):
        arr = SockArray(4)
        prog = SkLookupProgram("p", arr)
        with pytest.raises(VerifierError):
            prog.add_rule(
                MatchRule(
                    Verdict.PASS,
                    prefixes=(POOL, parse_prefix("2001:db8::/44")),
                    map_key=0,
                )
            )

    def test_map_key_out_of_range_rejected(self):
        arr = SockArray(2)
        prog = SkLookupProgram("p", arr)
        with pytest.raises(VerifierError):
            prog.add_rule(MatchRule(Verdict.PASS, map_key=5))

    def test_drop_with_map_key_rejected(self):
        prog = SkLookupProgram("p", SockArray(2))
        with pytest.raises(VerifierError):
            prog.add_rule(MatchRule(Verdict.DROP, map_key=0))

    def test_rule_limit(self):
        prog = SkLookupProgram("p", SockArray(2))
        prog._rules = [MatchRule(Verdict.PASS)] * MAX_RULES_PER_PROGRAM
        with pytest.raises(VerifierError):
            prog.add_rule(MatchRule(Verdict.PASS))

    def test_verify_program_rechecks(self, table, listener):
        arr = SockArray(4)
        prog = SkLookupProgram("p", arr, [MatchRule(Verdict.PASS, map_key=1)])
        verify_program(prog)  # passes


class TestProgramSemantics:
    def test_figure5b_match_and_redirect(self, table, listener):
        """The paper's Figure 5b program: match 192.0.2.0/24 tcp/80."""
        arr = SockArray(4)
        arr.update(0, listener)
        prog = SkLookupProgram("redir_prefix", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        verdict, sock = prog.run(packet())
        assert verdict is Verdict.PASS and sock is listener
        verdict, sock = prog.run(packet(dst="203.0.113.1"))
        assert sock is None  # outside prefix: falls through (SK_PASS, no sk)
        verdict, sock = prog.run(packet(dport=443))
        assert sock is None  # port mismatch

    def test_protocol_match_uses_wire_protocol(self, table):
        udp_listener = table.bind_listen(Protocol.UDP, INTERNAL, 443, owner="quic")
        arr = SockArray(2)
        arr.update(0, udp_listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.UDP, (POOL,), 443, 443, map_key=0),
        ])
        # QUIC packets are UDP on the wire and must match UDP rules.
        verdict, sock = prog.run(packet(dport=443, proto=Protocol.QUIC))
        assert sock is udp_listener

    def test_first_matching_rule_wins(self, table, listener):
        other = table.bind_listen(Protocol.TCP, parse_address("198.18.0.2"), 80)
        arr = SockArray(4)
        arr.update(0, listener)
        arr.update(1, other)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=1),
        ])
        _, sock = prog.run(packet())
        assert sock is listener

    def test_empty_slot_falls_through_to_next_rule(self, table, listener):
        arr = SockArray(4)
        arr.update(1, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),  # empty
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=1),
        ])
        _, sock = prog.run(packet())
        assert sock is listener
        assert prog.stats["fallthroughs"] == 1

    def test_drop_rule(self):
        """§3.3: keep an internal-only service unreachable from outside."""
        prog = SkLookupProgram("guard", SockArray(2), [
            MatchRule(Verdict.DROP, Protocol.TCP, (parse_prefix("192.0.2.128/25"),), 1, 65535),
        ])
        verdict, sock = prog.run(packet(dst="192.0.2.200"))
        assert verdict is Verdict.DROP
        verdict, _ = prog.run(packet(dst="192.0.2.1"))
        assert verdict is Verdict.PASS

    def test_explicit_pass_rule_stops_evaluation(self, table, listener):
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80),          # pass-through
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        _, sock = prog.run(packet())
        assert sock is None  # explicit pass returned before the redirect

    def test_all_ports_rule(self, table, listener):
        """Figure 4c: one socket receives every port of one address."""
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP,
                      (parse_prefix("203.0.113.1/32"),), 1, 65535, map_key=0),
        ])
        for port in (1, 80, 443, 31337, 65535):
            _, sock = prog.run(packet(dst="203.0.113.1", dport=port))
            assert sock is listener

    def test_rule_removal_by_label(self, table, listener):
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0, label="pool"),
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 443, 443, map_key=0, label="pool"),
        ])
        assert prog.remove_rules("pool") == 2
        _, sock = prog.run(packet())
        assert sock is None

    def test_remove_rules_counted_in_stats(self, table, listener):
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0, label="pool"),
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 443, 443, map_key=0, label="pool"),
        ])
        prog.remove_rules("pool")
        assert prog.stats["rules_removed"] == 2
        prog.remove_rules("pool")  # nothing left: counter must not move
        assert prog.stats["rules_removed"] == 2

    def test_remove_rules_empty_label_rejected(self, table, listener):
        """Bugfix: ``remove_rules("")`` used to silently match every
        unlabeled rule — a detach typo could strip a live program."""
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        with pytest.raises(ProgramError):
            prog.remove_rules("")
        assert len(prog.rules()) == 1  # untouched
        assert prog.stats["rules_removed"] == 0

    def test_map_update_takes_effect_immediately(self, table, listener):
        """The §3.3 capability: re-pointing live traffic via map update."""
        other = table.bind_listen(Protocol.TCP, parse_address("198.18.0.2"), 80)
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        _, before = prog.run(packet())
        arr.update(0, other)
        _, after = prog.run(packet(sport=40001))
        assert before is listener and after is other


class TestLookupPathPipeline:
    def test_stage_order_connected_first(self, table, listener):
        path = LookupPath(table)
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        path.attach(prog)
        pkt = packet()
        child = table.establish(listener, pkt.tuple5)
        result = path.dispatch(pkt)
        assert result.stage is LookupStage.CONNECTED and result.socket is child

    def test_sk_lookup_beats_specific_listener(self, table, listener):
        """Figure 5a: programs run BEFORE the listening-socket lookup."""
        bound = table.bind_listen(Protocol.TCP, parse_address("192.0.2.77"), 80)
        arr = SockArray(2)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [
            MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0),
        ])
        path = LookupPath(table)
        path.attach(prog)
        result = path.dispatch(packet(dst="192.0.2.77"))
        assert result.stage is LookupStage.SK_LOOKUP
        assert result.socket is listener and result.socket is not bound

    def test_fallback_to_listener_then_wildcard(self, table):
        specific = table.bind_listen(Protocol.TCP, parse_address("192.0.2.5"), 80)
        wild = table.bind_listen(Protocol.TCP, None, 8080)
        path = LookupPath(table)
        r1 = path.dispatch(packet(dst="192.0.2.5"))
        assert r1.stage is LookupStage.LISTENER and r1.socket is specific
        r2 = path.dispatch(packet(dst="203.0.113.9", dport=8080))
        assert r2.stage is LookupStage.WILDCARD and r2.socket is wild

    def test_miss(self, table):
        path = LookupPath(table)
        result = path.dispatch(packet())
        assert result.stage is LookupStage.MISS and not result.delivered

    def test_drop_verdict_short_circuits(self, table):
        wild = table.bind_listen(Protocol.TCP, None, 80)
        prog = SkLookupProgram("guard", SockArray(1), [
            MatchRule(Verdict.DROP, Protocol.TCP, (POOL,), 80, 80),
        ])
        path = LookupPath(table)
        path.attach(prog)
        result = path.dispatch(packet())
        assert result.stage is LookupStage.DROPPED
        assert wild.enqueued == 0

    def test_programs_run_in_attach_order(self, table, listener):
        other = table.bind_listen(Protocol.TCP, parse_address("198.18.0.2"), 80)
        arr1, arr2 = SockArray(1), SockArray(1)
        arr1.update(0, listener)
        arr2.update(0, other)
        p1 = SkLookupProgram("p1", arr1, [MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0)])
        p2 = SkLookupProgram("p2", arr2, [MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0)])
        path = LookupPath(table)
        path.attach(p1)
        path.attach(p2)
        assert path.dispatch(packet()).socket is listener
        path.detach(p1)
        assert path.dispatch(packet(sport=40002)).socket is other

    def test_double_attach_rejected(self, table):
        prog = SkLookupProgram("p", SockArray(1))
        path = LookupPath(table)
        path.attach(prog)
        with pytest.raises(ValueError):
            path.attach(prog)

    def test_detach_never_attached_raises_typed_error(self, table):
        """Bugfix: detaching a program that was never attached leaked a bare
        ``ValueError`` from ``list.remove`` — indistinguishable from every
        other ValueError in a failover handler.  It is now a
        :class:`ProgramNotAttachedError` naming both sides."""
        attached = SkLookupProgram("live", SockArray(1))
        stranger = SkLookupProgram("stranger", SockArray(1))
        path = LookupPath(table)
        path.attach(attached)
        with pytest.raises(ProgramNotAttachedError) as err:
            path.detach(stranger)
        assert "stranger" in str(err.value) and "live" in str(err.value)
        assert isinstance(err.value, ProgramError)
        assert path.programs() == (attached,)  # untouched

    def test_detach_from_empty_path_names_no_programs(self, table):
        path = LookupPath(table)
        with pytest.raises(ProgramNotAttachedError) as err:
            path.detach(SkLookupProgram("p", SockArray(1)))
        assert "none" in str(err.value)

    def test_deliver_enqueues(self, table, listener):
        arr = SockArray(1)
        arr.update(0, listener)
        prog = SkLookupProgram("p", arr, [MatchRule(Verdict.PASS, Protocol.TCP, (POOL,), 80, 80, map_key=0)])
        path = LookupPath(table)
        path.attach(prog)
        path.dispatch(packet(), deliver=True)
        assert listener.enqueued == 1

    def test_stage_counts(self, table, listener):
        path = LookupPath(table)
        path.dispatch(packet())
        path.dispatch(packet(dst="192.0.2.8"))
        assert path.stage_counts[LookupStage.MISS] == 2


class TestFlowHash:
    def test_deterministic_per_flow(self):
        p = packet()
        assert flow_hash(p) == flow_hash(packet())

    def test_differs_across_flows(self):
        hashes = {flow_hash(packet(sport=40000 + i)) for i in range(100)}
        assert len(hashes) == 100

    def test_quic_and_udp_hash_identically(self):
        q = packet(proto=Protocol.QUIC, dport=443)
        u = packet(proto=Protocol.UDP, dport=443)
        assert flow_hash(q) == flow_hash(u)
