"""Policies, the engine, the policy answer source, the agility controller."""

import random

import pytest

from repro.clock import Clock
from repro.core.agility import AgilityController
from repro.core.authoritative import PolicyAnswerSource
from repro.core.policy import Policy, PolicyAttributes, PolicyEngine
from repro.core.pool import AddressPool
from repro.core.strategies import MappedAssignment
from repro.dns.records import DomainName, Question, RRType
from repro.dns.server import Answer, AnswerSource, QueryContext
from repro.dns.wire import Rcode
from repro.edge.customers import AccountType, Customer, CustomerRegistry
from repro.netsim.addr import IPv4, IPv6, parse_prefix

V4_POOL = AddressPool(parse_prefix("192.0.2.0/24"), name="v4")
CTX_IAD = QueryContext(pop="iad")


def attrs(pop="iad", account="free", family=IPv4, hostname="x.example.com"):
    return PolicyAttributes(pop=pop, account_type=account, family=family, hostname=hostname)


class TestPolicyMatching:
    def test_empty_match_matches_all(self):
        policy = Policy("all", V4_POOL)
        assert policy.matches(attrs())
        assert policy.matches(attrs(pop="lhr", account=None))

    def test_attribute_sets(self):
        policy = Policy("narrow", V4_POOL,
                        match={"pop": {"iad", "ord"}, "account_type": {"free"}})
        assert policy.matches(attrs(pop="iad"))
        assert policy.matches(attrs(pop="ord"))
        assert not policy.matches(attrs(pop="lhr"))
        assert not policy.matches(attrs(account="enterprise"))

    def test_unknown_match_key_rejected(self):
        with pytest.raises(ValueError):
            Policy("bad", V4_POOL, match={"favourite_colour": {"blue"}})

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            Policy("bad", V4_POOL, ttl=-1)


class TestPolicyEngine:
    def test_first_match_by_priority(self):
        engine = PolicyEngine(random.Random(0))
        engine.add(Policy("broad", V4_POOL, match={}, priority=200))
        engine.add(Policy("specific", V4_POOL, match={"pop": {"iad"}}, priority=10))
        decision = engine.evaluate(attrs(pop="iad"))
        assert decision.policy.name == "specific"
        decision = engine.evaluate(attrs(pop="lhr"))
        assert decision.policy.name == "broad"

    def test_family_gating(self):
        """A v4 pool must never answer an AAAA query."""
        engine = PolicyEngine(random.Random(0))
        engine.add(Policy("v4only", V4_POOL, match={}))
        assert engine.evaluate(attrs(family=IPv6)) is None

    def test_no_match_returns_none(self):
        engine = PolicyEngine(random.Random(0))
        engine.add(Policy("narrow", V4_POOL, match={"pop": {"iad"}}))
        assert engine.evaluate(attrs(pop="lhr")) is None

    def test_duplicate_names_rejected(self):
        engine = PolicyEngine()
        engine.add(Policy("p", V4_POOL))
        with pytest.raises(ValueError):
            engine.add(Policy("p", V4_POOL))

    def test_remove_and_get(self):
        engine = PolicyEngine()
        policy = Policy("p", V4_POOL)
        engine.add(policy)
        assert engine.get("p") is policy
        assert engine.remove("p") is policy
        with pytest.raises(KeyError):
            engine.get("p")

    def test_hit_counters(self):
        engine = PolicyEngine(random.Random(0))
        policy = Policy("p", V4_POOL)
        engine.add(policy)
        engine.evaluate(attrs())
        engine.evaluate(attrs(family=IPv6))
        assert policy.hits == 1
        assert engine.evaluations == 2 and engine.matches == 1

    def test_decision_carries_ttl_and_pool_address(self):
        engine = PolicyEngine(random.Random(0))
        engine.add(Policy("p", V4_POOL, ttl=17))
        decision = engine.evaluate(attrs())
        assert decision.ttl == 17
        assert V4_POOL.contains(decision.address)


def make_registry():
    registry = CustomerRegistry()
    registry.add(Customer("free-co", AccountType.FREE, {"free.example.com"}))
    registry.add(Customer("big-co", AccountType.ENTERPRISE, {"big.example.com"}))
    return registry


class TestPolicyAnswerSource:
    def make(self, fallback=None, match=None):
        engine = PolicyEngine(random.Random(0))
        engine.add(Policy("p", V4_POOL, match=match or {}, ttl=30))
        return PolicyAnswerSource(engine, make_registry(), fallback=fallback)

    def question(self, hostname="free.example.com", rrtype=RRType.A):
        return Question(DomainName.from_text(hostname), rrtype)

    def test_a_query_answered_from_pool(self):
        source = self.make()
        answer = source.answer(self.question(), CTX_IAD)
        assert answer.rcode == Rcode.NOERROR
        record = answer.records[0]
        assert record.ttl == 30
        assert V4_POOL.contains(record.rdata.address)
        assert source.log.by_policy["p"] == 1

    def test_account_type_matching(self):
        source = self.make(match={"account_type": {"enterprise"}})
        free = source.answer(self.question("free.example.com"), CTX_IAD)
        big = source.answer(self.question("big.example.com"), CTX_IAD)
        assert free.rcode == Rcode.REFUSED  # no fallback configured
        assert big.rcode == Rcode.NOERROR

    def test_unknown_hostname_has_no_account(self):
        source = self.make(match={"account_type": {"free"}})
        answer = source.answer(self.question("stranger.example.org"), CTX_IAD)
        assert answer.rcode == Rcode.REFUSED

    def test_aaaa_falls_through_for_v4_pool(self):
        source = self.make()
        answer = source.answer(self.question(rrtype=RRType.AAAA), CTX_IAD)
        assert answer.rcode == Rcode.REFUSED

    def test_v6_pool_answers_aaaa(self):
        engine = PolicyEngine(random.Random(0))
        v6_pool = AddressPool(parse_prefix("2001:db8::/44"))
        engine.add(Policy("p6", v6_pool, ttl=30))
        source = PolicyAnswerSource(engine, make_registry())
        answer = source.answer(self.question(rrtype=RRType.AAAA), CTX_IAD)
        assert answer.rcode == Rcode.NOERROR
        assert answer.records[0].rdata.address in parse_prefix("2001:db8::/44")

    def test_non_address_types_fall_through(self):
        class Always(AnswerSource):
            def answer(self, question, context):
                return Answer(Rcode.NOERROR)

        source = self.make(fallback=Always())
        answer = source.answer(self.question(rrtype=RRType.TXT), CTX_IAD)
        assert answer.rcode == Rcode.NOERROR
        assert source.log.fallback_answers == 1

    def test_refused_counter_without_fallback(self):
        source = self.make(match={"pop": {"lhr"}})
        source.answer(self.question(), CTX_IAD)
        assert source.log.refused == 1


class TestAgilityController:
    def make(self, clock):
        engine = PolicyEngine(random.Random(0))
        pool = AddressPool(parse_prefix("192.0.0.0/20"), name="live")
        engine.add(Policy("p", pool, ttl=60))
        return AgilityController(engine, clock), engine, pool

    def test_set_active(self):
        clock = Clock(100.0)
        controller, engine, pool = self.make(clock)
        op = controller.set_active("p", parse_prefix("192.0.2.0/24"))
        assert pool.size == 256
        assert op.at == 100.0
        assert op.propagation_horizon == 160.0  # now + old TTL

    def test_swap_pool(self):
        clock = Clock()
        controller, engine, pool = self.make(clock)
        backup = AddressPool(parse_prefix("203.0.113.0/24"), name="backup")
        controller.swap_pool("p", backup)
        assert engine.get("p").pool is backup

    def test_swap_pool_family_checked(self):
        clock = Clock()
        controller, *_ = self.make(clock)
        with pytest.raises(ValueError):
            controller.swap_pool("p", AddressPool(parse_prefix("2001:db8::/44")))

    def test_set_strategy(self):
        clock = Clock()
        controller, engine, _ = self.make(clock)
        strategy = MappedAssignment()
        controller.set_strategy("p", strategy)
        assert engine.get("p").strategy is strategy

    def test_set_ttl_horizon_uses_old_ttl(self):
        """Lowering TTL still waits out answers cached under the old one."""
        clock = Clock(10.0)
        controller, engine, _ = self.make(clock)
        op = controller.set_ttl("p", 5)
        assert engine.get("p").ttl == 5
        assert op.propagation_horizon == 70.0  # 10 + old ttl 60

    def test_negative_ttl_rejected(self):
        controller, *_ = self.make(Clock())
        with pytest.raises(ValueError):
            controller.set_ttl("p", -5)

    def test_operations_logged_in_order(self):
        clock = Clock()
        controller, *_ = self.make(clock)
        controller.set_ttl("p", 5)
        clock.advance(30)
        controller.set_active("p", parse_prefix("192.0.2.0/24"))
        ops = controller.operations()
        assert [op.kind for op in ops] == ["set_ttl", "set_active"]
        assert ops[1].at == 30.0
