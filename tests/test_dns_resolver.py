"""Recursive resolver + stub behaviour: caching, failures, TTL dynamics."""

import pytest

from repro.clock import Clock
from repro.dns.cache import TTLPolicy
from repro.dns.records import A, RRType
from repro.dns.resolver import RecursiveResolver, ResolveError
from repro.dns.server import AuthoritativeServer, QueryContext, ZoneAnswerSource
from repro.dns.stub import StubResolver
from repro.dns.wire import Message, Rcode
from repro.dns.zone import Zone
from repro.netsim.addr import parse_address

CTX = QueryContext(pop="pop1")


def make_upstream(ttl=60):
    zone = Zone("example.com")
    zone.add_address("www.example.com", A(parse_address("192.0.2.10")), ttl=ttl)
    server = AuthoritativeServer(ZoneAnswerSource([zone]))
    return server, (lambda wire: server.handle_wire(wire, CTX))


class TestRecursiveResolver:
    def test_resolves_and_caches(self):
        clock = Clock()
        server, transport = make_upstream()
        resolver = RecursiveResolver("r", clock, transport)
        a1 = resolver.resolve_addresses("www.example.com")
        a2 = resolver.resolve_addresses("www.example.com")
        assert a1 == a2 == [parse_address("192.0.2.10")]
        assert resolver.stats.upstream_queries == 1
        assert resolver.stats.client_queries == 2

    def test_cache_expiry_triggers_refetch(self):
        clock = Clock()
        server, transport = make_upstream(ttl=30)
        resolver = RecursiveResolver("r", clock, transport)
        resolver.resolve("www.example.com")
        clock.advance(31)
        resolver.resolve("www.example.com")
        assert resolver.stats.upstream_queries == 2

    def test_nxdomain_raises_and_is_negatively_cached(self):
        clock = Clock()
        server, transport = make_upstream()
        resolver = RecursiveResolver("r", clock, transport)
        with pytest.raises(ResolveError) as exc:
            resolver.resolve("missing.example.com")
        assert exc.value.rcode == Rcode.NXDOMAIN
        upstream_before = resolver.stats.upstream_queries
        with pytest.raises(ResolveError):
            resolver.resolve("missing.example.com")
        assert resolver.stats.upstream_queries == upstream_before  # served from cache
        assert resolver.stats.nxdomains == 2

    def test_nodata_returns_empty(self):
        clock = Clock()
        server, transport = make_upstream()
        resolver = RecursiveResolver("r", clock, transport)
        assert resolver.resolve("www.example.com", RRType.TXT) == ()
        # Second call is a cached NODATA, not an error.
        assert resolver.resolve("www.example.com", RRType.TXT) == ()
        assert resolver.stats.upstream_queries == 1

    def test_timeout_raises(self):
        resolver = RecursiveResolver("r", Clock(), transport=lambda wire: None)
        with pytest.raises(ResolveError):
            resolver.resolve("www.example.com")
        assert resolver.stats.servfails == 1

    def test_malformed_response_raises(self):
        resolver = RecursiveResolver("r", Clock(), transport=lambda wire: b"junk")
        with pytest.raises(ResolveError):
            resolver.resolve("www.example.com")

    def test_id_mismatch_rejected(self):
        def evil(wire):
            msg = Message.decode(wire)
            return Message.query((msg.id + 1) & 0xFFFF, "www.example.com", RRType.A).response().encode()

        resolver = RecursiveResolver("r", Clock(), transport=evil)
        with pytest.raises(ResolveError):
            resolver.resolve("www.example.com")

    def test_non_response_rejected(self):
        def echo(wire):
            return wire  # qr flag not set

        resolver = RecursiveResolver("r", Clock(), transport=echo)
        with pytest.raises(ResolveError):
            resolver.resolve("www.example.com")

    def test_refused_surfaces_rcode(self):
        def refuse(wire):
            return Message.decode(wire).response(rcode=Rcode.REFUSED, aa=False).encode()

        resolver = RecursiveResolver("r", Clock(), transport=refuse)
        with pytest.raises(ResolveError) as exc:
            resolver.resolve("www.example.com")
        assert exc.value.rcode == Rcode.REFUSED

    def test_ttl_violating_resolver_stretches_binding(self):
        """§4.4: clamping resolvers delay rebinds — visible as fewer
        upstream queries over the same horizon."""
        clock = Clock()
        server, transport = make_upstream(ttl=10)
        honest = RecursiveResolver("h", clock, transport)
        violator = RecursiveResolver("v", clock, transport, ttl_policy=TTLPolicy.clamping(120))
        for _ in range(7):  # queries at t = 0, 25, …, 150
            honest.resolve("www.example.com")
            violator.resolve("www.example.com")
            clock.advance(25)
        assert honest.stats.upstream_queries > violator.stats.upstream_queries
        assert honest.stats.upstream_queries == 7   # every query misses (ttl 10 < 25)
        assert violator.stats.upstream_queries == 2  # t=0 and t=125


class TestStubResolver:
    def test_lookup_addresses(self):
        clock = Clock()
        server, transport = make_upstream()
        recursive = RecursiveResolver("r", clock, transport)
        stub = StubResolver("s", clock, recursive)
        assert stub.lookup("www.example.com") == [parse_address("192.0.2.10")]

    def test_stub_cache_shields_recursive(self):
        clock = Clock()
        server, transport = make_upstream(ttl=60)
        recursive = RecursiveResolver("r", clock, transport)
        stub = StubResolver("s", clock, recursive)
        for _ in range(10):
            stub.lookup("www.example.com")
        assert recursive.stats.client_queries == 1

    def test_stub_respects_ttl(self):
        clock = Clock()
        server, transport = make_upstream(ttl=30)
        recursive = RecursiveResolver("r", clock, transport)
        stub = StubResolver("s", clock, recursive)
        stub.lookup("www.example.com")
        clock.advance(31)
        stub.lookup("www.example.com")
        assert recursive.stats.client_queries == 2

    def test_stub_nxdomain_propagates(self):
        clock = Clock()
        server, transport = make_upstream()
        recursive = RecursiveResolver("r", clock, transport)
        stub = StubResolver("s", clock, recursive)
        with pytest.raises(ResolveError):
            stub.lookup("missing.example.com")
