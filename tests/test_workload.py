"""Workload generators: Zipf, universes, traffic, client populations."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.clients import ClientPopulation, PopulationConfig
from repro.workload.hostnames import HostnameUniverse, UniverseConfig, lognormal_sizes
from repro.workload.traffic import RequestStream, SessionGenerator
from repro.workload.zipf import ZipfDistribution

from conftest import make_policy_cdn


class TestZipf:
    def test_pmf_sums_to_one(self):
        z = ZipfDistribution(1000, 1.1)
        assert sum(z.pmf(i) for i in range(1000)) == pytest.approx(1.0)

    def test_rank_zero_most_popular(self):
        z = ZipfDistribution(100, 1.0)
        assert z.pmf(0) > z.pmf(1) > z.pmf(99)

    def test_head_share_grows_with_skew(self):
        flat = ZipfDistribution(1000, 0.5)
        skewed = ZipfDistribution(1000, 1.5)
        assert skewed.head_share(10) > flat.head_share(10)

    def test_s_zero_is_uniform(self):
        z = ZipfDistribution(10, 0.0)
        assert z.pmf(0) == pytest.approx(0.1)
        assert z.head_share(5) == pytest.approx(0.5)

    def test_sampling_matches_pmf(self):
        z = ZipfDistribution(50, 1.0)
        ranks = z.sample_many(50_000, seed=3)
        observed = np.bincount(ranks, minlength=50) / 50_000
        for rank in (0, 1, 10):
            assert observed[rank] == pytest.approx(z.pmf(rank), rel=0.15)

    def test_sample_single(self):
        z = ZipfDistribution(10, 1.0)
        rng = random.Random(0)
        assert all(0 <= z.sample(rng) < 10 for _ in range(100))

    def test_deterministic_given_seed(self):
        z = ZipfDistribution(100, 1.2)
        assert list(z.sample_many(100, seed=9)) == list(z.sample_many(100, seed=9))

    def test_expected_counts(self):
        z = ZipfDistribution(10, 1.0)
        counts = z.expected_counts(1000)
        assert counts.sum() == pytest.approx(1000)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0)
        with pytest.raises(ValueError):
            ZipfDistribution(10, -1)
        with pytest.raises(ValueError):
            ZipfDistribution(10).head_share(0)


@settings(max_examples=50)
@given(n=st.integers(2, 500), s=st.floats(0.0, 2.5), seed=st.integers(0, 1 << 16))
def test_property_zipf_samples_in_range(n, s, seed):
    z = ZipfDistribution(n, s)
    ranks = z.sample_many(100, seed=seed)
    assert ranks.min() >= 0 and ranks.max() < n


class TestUniverse:
    @pytest.fixture(scope="class")
    def universe(self):
        return HostnameUniverse(UniverseConfig(num_hostnames=200, assets_per_site=2))

    def test_site_count_exact(self, universe):
        assert universe.num_sites == 200

    def test_assets_attached(self, universe):
        site = universe.site(0)
        assets = universe.assets_of(site)
        assert len(assets) == 2
        assert all(a.endswith(site) for a in assets)
        assert universe.page_resources(site) == [site, *assets]

    def test_every_hostname_registered(self, universe):
        for hostname in universe.hostnames[:50]:
            assert universe.registry.is_hosted(hostname)
            assert universe.origins.origin_for(hostname) is not None

    def test_same_customer_for_site_and_assets(self, universe):
        site = universe.site(3)
        owner = universe.customer_of(site)
        for asset in universe.assets_of(site):
            assert universe.customer_of(asset) is owner

    def test_account_mix_dominated_by_free(self):
        universe = HostnameUniverse(UniverseConfig(num_hostnames=500, seed=2))
        from repro.edge.customers import AccountType
        counts = {}
        for customer in universe.registry.customers():
            counts[customer.account_type] = counts.get(customer.account_type, 0) + 1
        assert counts[AccountType.FREE] > sum(
            v for k, v in counts.items() if k is not AccountType.FREE
        )

    def test_deterministic_by_seed(self):
        u1 = HostnameUniverse(UniverseConfig(num_hostnames=50, seed=9))
        u2 = HostnameUniverse(UniverseConfig(num_hostnames=50, seed=9))
        assert u1.hostnames == u2.hostnames

    def test_lognormal_sizes_stable_and_positive(self):
        model = lognormal_sizes(seed=4)
        s1 = model("a.example.com", "/x")
        s2 = model("a.example.com", "/x")
        assert s1 == s2 >= 64
        assert model("a.example.com", "/y") != s1 or True  # different path may differ


class TestTraffic:
    @pytest.fixture(scope="class")
    def universe(self):
        return HostnameUniverse(UniverseConfig(num_hostnames=100, assets_per_site=2))

    def test_request_stream_yields_exactly_n(self, universe):
        stream = RequestStream(universe, zipf_s=1.1)
        hostnames = list(stream.sample_hostnames(500, seed=1))
        assert len(hostnames) == 500
        assert all(universe.registry.is_hosted(h) for h in hostnames)

    def test_request_stream_is_skewed(self, universe):
        stream = RequestStream(universe, zipf_s=1.3)
        hostnames = list(stream.sample_hostnames(3000, seed=2))
        counts = {}
        for h in hostnames:
            counts[h] = counts.get(h, 0) + 1
        top = max(counts.values())
        assert top > 3000 / 100  # far above uniform share

    def test_sessions_have_pages_and_resources(self, universe):
        gen = SessionGenerator(universe, pages_mean=3.0, paths_per_page=4)
        sessions = list(gen.sessions(20, seed=5))
        assert len(sessions) == 20
        for session in sessions:
            assert session.pages
            for page in session.pages:
                assert len(page.resources) == 4
                assert page.resources[0] == (page.site, "/")

    def test_sessions_deterministic(self, universe):
        gen = SessionGenerator(universe)
        s1 = gen.session(0, seed=1)
        s2 = gen.session(0, seed=1)
        assert s1 == s2

    def test_session_validation(self, universe):
        with pytest.raises(ValueError):
            SessionGenerator(universe, pages_mean=0.5)
        with pytest.raises(ValueError):
            SessionGenerator(universe, same_site_stickiness=2.0)


class TestClientPopulation:
    def test_population_wiring(self, clock):
        cdn, hostnames, *_ = make_policy_cdn(clock)
        eyeballs = [a for a in cdn.network.client_ases() if str(a).startswith("eyeball")]
        population = ClientPopulation(
            cdn, clock, eyeballs,
            PopulationConfig(clients_per_resolver=3, seed=1),
        )
        assert len(population) == len(eyeballs) * 3
        assert len(population.resolvers) == len(eyeballs)
        client = population.clients[0]
        assert population.asn_of(client) in eyeballs
        # Clients actually work end to end.
        outcome = client.fetch(hostnames[0])
        assert outcome.response.status.value == 200

    def test_version_mix(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        eyeballs = [a for a in cdn.network.client_ases() if str(a).startswith("eyeball")]
        population = ClientPopulation(
            cdn, clock, eyeballs,
            PopulationConfig(clients_per_resolver=10, h3_share=0.3, h1_share=0.2, seed=3),
        )
        from repro.web.http import HTTPVersion
        h3 = len(population.clients_by_version(HTTPVersion.H3))
        h1 = len(population.clients_by_version(HTTPVersion.H1))
        h2 = len(population.clients_by_version(HTTPVersion.H2))
        total = len(population)
        assert h3 + h1 + h2 == total
        assert 0.15 < h3 / total < 0.45
        assert 0.08 < h1 / total < 0.35

    def test_needs_eyeballs(self, clock):
        cdn, *_ = make_policy_cdn(clock)
        with pytest.raises(ValueError):
            ClientPopulation(cdn, clock, [])
