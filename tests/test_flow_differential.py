"""Batched ≡ scalar: the flow-engine differential parity suite.

Satellites 2+3 of the columnar-flow-engine PR.  Two identically-seeded
worlds are driven over the same corpus — one through the columnar
``FlowEngine``, one through the loop-of-scalars reference — and every
per-flow verdict column plus every counter surface must be identical.
Seam-level differentials then pin each ``*_batch`` entry point against
its scalar form in isolation, including the awkward cases: expiry and
negative entries mid-batch, serve-stale retention, sub-1.0 sampling
rates, and partial failure part-way through a batch.
"""

from __future__ import annotations

import random

import pytest

from repro.clock import Clock
from repro.core.authoritative import PolicyAnswerSource
from repro.core.policy import Policy, PolicyAttributes, PolicyEngine
from repro.core.pool import AddressPool
from repro.dns.cache import DNSCache
from repro.dns.records import A, DomainName, Question, ResourceRecord, RRType
from repro.edge.datacenter import TrafficLog
from repro.experiments.flow_perf import build_flow_world, make_flow_columns
from repro.flow import FlowBatch
from repro.netsim import parse_address
from repro.netsim.addr import parse_prefix
from repro.workload.hostnames import HostnameUniverse, UniverseConfig

# (corpus seed, flows, batch size) — odd sizes, batch-of-one, and
# Zipf-duplicate-heavy batches all ride through the same assertions.
CORPUS = [
    (101, 64, 16),
    (202, 50, 7),
    (303, 48, 1),
    (404, 40, 40),
    (505, 33, 32),
]

VERDICT_COLUMNS = (
    "addresses",
    "ttls",
    "cached",
    "tuple5s",
    "flow_hashes",
    "servers",
    "stages",
    "statuses",
)


def _twin_worlds(**kwargs):
    """Two independently-built but identically-seeded deployments."""
    return build_flow_world(**kwargs), build_flow_world(**kwargs)


def _counter_surface(world) -> dict:
    """Every counter the pipeline touches, as one comparable structure.

    Batch-only bookkeeping (``LookupPath.batches``/``batch_packets`` and
    the engine's own :class:`FlowStats`) is deliberately absent: those
    exist *because* of batching and have no scalar counterpart.
    """
    dc = world.dc
    cs = world.cache.stats
    eng = world.source.engine
    log = world.source.log
    l4 = dc.l4lb.stats
    return {
        "cache": (cs.hits, cs.misses, cs.expirations, cs.evictions, cs.insertions),
        "policy_engine": (eng.evaluations, eng.matches),
        "policy_hits": {p.name: p.hits for p in eng.policies()},
        "answers": (
            log.policy_answers,
            log.fallback_answers,
            log.refused,
            dict(log.by_policy),
        ),
        "ecmp": (dc.ecmp.stats.routed, dict(dc.ecmp.stats.per_server)),
        "l4lb": (l4.new_flows, l4.tracked_hits, l4.rehomed, l4.closed),
        "ingress": (dc.sheds, dc.syn_drops),
        "servers": {
            name: (
                dict(s.lookup_path.stage_counts),
                s.stats.connections,
                s.stats.tls_failures,
                s.stats.requests,
                s.stats.bytes_served,
                s.stats.refused_syns,
            )
            for name, s in dc.servers.items()
        },
        "traffic": {
            str(addr): (t.requests, t.bytes, t.connections)
            for addr, t in dc.traffic.by_address().items()
        },
    }


def _assert_batches_equal(batched: FlowBatch, scalar: FlowBatch, context: str) -> None:
    for column in VERDICT_COLUMNS:
        assert getattr(batched, column) == getattr(scalar, column), (
            f"{context}: column {column!r} diverged"
        )


class TestEndToEndParity:
    @pytest.mark.parametrize(("seed", "n", "batch_size"), CORPUS)
    def test_columns_and_counters_identical(self, seed, n, batch_size):
        world_a, world_b = _twin_worlds(num_hostnames=16, num_servers=4)
        columns = make_flow_columns(world_a, n, seed=seed, batch_size=batch_size)
        for k, (hostnames, src_addrs, src_ports) in enumerate(columns):
            batched = world_a.engine.run_batch(
                FlowBatch(list(hostnames), list(src_addrs), list(src_ports))
            )
            scalar = world_b.engine.run_scalar(hostnames, src_addrs, src_ports)
            _assert_batches_equal(
                batched, scalar, f"corpus seed={seed} batch={k} size={batch_size}"
            )
        assert _counter_surface(world_a) == _counter_surface(world_b)

    def test_ttl_zero_forces_mint_path_both_arms(self):
        """TTL-0 answers are use-once (never cached): every flow mints."""
        world_a, world_b = _twin_worlds(num_hostnames=8, num_servers=2, ttl=0)
        columns = make_flow_columns(world_a, 24, seed=606, batch_size=8)
        for hostnames, src_addrs, src_ports in columns:
            batched = world_a.engine.run_batch(
                FlowBatch(list(hostnames), list(src_addrs), list(src_ports))
            )
            scalar = world_b.engine.run_scalar(hostnames, src_addrs, src_ports)
            _assert_batches_equal(batched, scalar, "ttl=0")
            assert not any(batched.cached)
        assert world_a.cache.stats.insertions == 0
        assert _counter_surface(world_a) == _counter_surface(world_b)

    def test_obs_snapshots_identical_minus_batch_only_keys(self):
        """The two arms look the same through ``repro.obs`` too — except
        the keys that only exist because batching exists."""
        from repro.obs import MetricsRegistry
        from repro.obs.adapters import (
            watch_cache_stats,
            watch_ecmp,
            watch_lookup_path,
        )

        world_a, world_b = _twin_worlds(num_hostnames=16, num_servers=4)
        registries = {}
        for arm, world in (("batched", world_a), ("scalar", world_b)):
            registry = MetricsRegistry()
            watch_cache_stats(registry, "cache", world.cache.stats)
            watch_ecmp(registry, "ecmp", world.dc.ecmp)
            for name, server in world.dc.servers.items():
                watch_lookup_path(registry, f"lookup.{name}", server.lookup_path)
            registries[arm] = registry
        columns = make_flow_columns(world_a, 64, seed=707, batch_size=16)
        for hostnames, src_addrs, src_ports in columns:
            world_a.engine.run_batch(
                FlowBatch(list(hostnames), list(src_addrs), list(src_ports))
            )
            world_b.engine.run_scalar(hostnames, src_addrs, src_ports)

        def comparable(registry):
            counters = registry.snapshot()["counters"]
            return {
                key: value
                for key, value in counters.items()
                if not key.endswith((".batches", ".batch_packets"))
            }

        snap_a, snap_b = comparable(registries["batched"]), comparable(registries["scalar"])
        assert snap_a == snap_b
        assert snap_a["ecmp.routed"] > 0  # the comparison saw real traffic


class TestPartialFailureParity:
    def test_crashed_server_mid_batch_leaves_identical_counters(self):
        """A crash part-way through ``connect_batch`` must leave exactly
        the counters the scalar loop leaves when it dies at the same flow:
        ECMP choices through the failing flow, L4LB admits through the
        failing flow, traffic connections for successes only, one refused
        SYN — nothing silently lost, nothing double-counted."""
        world_a, world_b = _twin_worlds(num_hostnames=16, num_servers=4)
        victim = sorted(world_a.dc.servers)[1]
        world_a.dc.crash_server(victim)
        world_b.dc.crash_server(victim)
        columns = make_flow_columns(world_a, 64, seed=808, batch_size=64)
        (hostnames, src_addrs, src_ports) = columns[0]
        with pytest.raises(ConnectionRefusedError):
            world_a.engine.run_batch(
                FlowBatch(list(hostnames), list(src_addrs), list(src_ports))
            )
        with pytest.raises(ConnectionRefusedError):
            world_b.engine.run_scalar(hostnames, src_addrs, src_ports)
        surface_a = _counter_surface(world_a)
        assert surface_a == _counter_surface(world_b)
        assert surface_a["servers"][victim][5] == 1  # refused_syns
        # The failing flow's ECMP choice is still counted (the scalar path
        # counts the route before the handshake refuses).
        assert surface_a["ecmp"][1][victim] == 1


class TestCacheSeamParity:
    """``lookup_batch``/``store_batch`` versus scalar loops, including
    expiry, negative entries, duplicates, and serve-stale retention."""

    @staticmethod
    def _question(label: str) -> Question:
        return Question(DomainName.from_text(f"{label}.example.com"), RRType.A)

    @staticmethod
    def _records(question: Question, fourth_octet: int, ttl: int):
        rdata = A(parse_address(f"192.0.2.{fourth_octet}"))
        return (ResourceRecord(question.name, rdata, ttl=ttl),)

    def _load(self, cache: DNSCache, batched: bool) -> list[Question]:
        questions = [self._question(f"host{i}") for i in range(6)]
        items = [
            (q, self._records(q, i + 1, ttl=30 if i % 2 else 120))
            for i, q in enumerate(questions)
        ]
        if batched:
            cache.store_batch(items)
        else:
            for question, records in items:
                cache.store(question, records)
        cache.store_negative(self._question("gone"), soa_minimum=60)
        return questions

    def _probe(self, cache: DNSCache, questions, batched: bool):
        # Duplicates and a never-stored name ride along; the expired
        # entries make the second occurrence observe the first's deletion.
        probes = [*questions, questions[0], questions[1],
                  self._question("gone"), self._question("never")]
        if batched:
            return cache.lookup_batch(probes)
        return [cache.lookup(q) for q in probes]

    @pytest.mark.parametrize("serve_stale_window", [0.0, 600.0])
    def test_expiry_negative_and_stale_parity(self, serve_stale_window):
        clocks = (Clock(), Clock())
        caches = [
            DNSCache(clock, serve_stale_window=serve_stale_window)
            for clock in clocks
        ]
        results = {}
        for cache, clock, batched in zip(caches, clocks, (True, False)):
            questions = self._load(cache, batched)
            clock.advance(45)  # past the ttl=30 entries, not the ttl=120 ones
            results[batched] = self._probe(cache, questions, batched)
        assert results[True] == results[False]
        stats_a, stats_b = caches[0].stats, caches[1].stats
        assert (stats_a.hits, stats_a.misses, stats_a.expirations, stats_a.insertions) == (
            stats_b.hits, stats_b.misses, stats_b.expirations, stats_b.insertions
        )
        if serve_stale_window:
            # Retained-stale entries read as misses but are NOT deleted.
            assert stats_a.expirations == 0
        else:
            assert stats_a.expirations == 3  # host1/host3/host5, once each
        assert len(caches[0]) == len(caches[1])

    def test_store_batch_midway_failure_keeps_earlier_insertions(self):
        """Satellite-2 regression: the ``insertions`` fold runs in a
        ``finally``, so a poisoned item part-way through a batch still
        counts the entries that made it in — exactly like a scalar loop
        that dies on the same item."""
        q0, q1 = self._question("ok0"), self._question("ok1")
        poisoned = [
            (q0, self._records(q0, 1, ttl=60)),
            (q1, self._records(q1, 2, ttl=60)),
            (self._question("boom"), None),  # tuple(None) raises
        ]
        batched = DNSCache(Clock())
        with pytest.raises(TypeError):
            batched.store_batch(poisoned)
        scalar = DNSCache(Clock())
        with pytest.raises(TypeError):
            for question, records in poisoned:
                scalar.store(question, records)
        assert batched.stats.insertions == scalar.stats.insertions == 2
        assert batched.lookup(q0) is not None
        assert batched.lookup(q1) is not None


class TestPolicySeamParity:
    @staticmethod
    def _engine(seed: int) -> PolicyEngine:
        engine = PolicyEngine(random.Random(seed))
        ent_pool = AddressPool(parse_prefix("198.51.100.0/26"), name="ent")
        any_pool = AddressPool(parse_prefix("192.0.2.0/24"), name="any")
        engine.add(Policy("enterprise", ent_pool,
                          match={"account_type": {"enterprise"}},
                          ttl=30, priority=10))
        engine.add(Policy("catch-all", any_pool, match={}, ttl=300, priority=100))
        return engine

    @staticmethod
    def _attrs() -> list[PolicyAttributes]:
        accounts = ["free", "enterprise", "pro", "enterprise", "business", None]
        attrs = [
            PolicyAttributes(pop="pop1", account_type=acct, family=4,
                             hostname=f"h{i}.example.com")
            for i, acct in enumerate(accounts)
        ]
        # Family mismatch: v4 pools can never answer an AAAA query.
        attrs.append(PolicyAttributes(pop="pop1", account_type="enterprise", family=6))
        return attrs

    def test_evaluate_batch_rng_and_counter_parity(self):
        engine_a, engine_b = self._engine(99), self._engine(99)
        attrs = self._attrs()
        batched = engine_a.evaluate_batch(attrs)
        scalar = [engine_b.evaluate(a) for a in attrs]
        assert [
            None if d is None else (d.policy.name, d.address, d.ttl) for d in batched
        ] == [
            None if d is None else (d.policy.name, d.address, d.ttl) for d in scalar
        ]
        assert batched[-1] is None  # the AAAA mismatch matched nothing
        assert (engine_a.evaluations, engine_a.matches) == (
            engine_b.evaluations, engine_b.matches
        )
        assert {p.name: p.hits for p in engine_a.policies()} == {
            p.name: p.hits for p in engine_b.policies()
        }
        # RNG states converged too: the next draw is identical.
        assert engine_a._rng.random() == engine_b._rng.random()

    def test_answer_batch_parity_including_refusals(self):
        from repro.dns.server import QueryContext

        universe = HostnameUniverse(UniverseConfig(num_hostnames=12, seed=3))
        sources = []
        for _ in range(2):
            engine = PolicyEngine(random.Random(7))
            pool = AddressPool(parse_prefix("192.0.2.0/24"), name="ent-only")
            engine.add(Policy("ent-only", pool,
                              match={"account_type": {"enterprise"}}, ttl=30))
            sources.append(PolicyAnswerSource(engine, universe.registry))
        context = QueryContext(pop="pop1")
        questions = [
            Question(DomainName.from_text(h), RRType.A) for h in universe.sites
        ]
        # Non-address queries take the fallback arm (absent → REFUSED).
        questions.append(Question(DomainName.from_text(universe.sites[0]), RRType.TXT))
        batched = sources[0].answer_batch(questions, context)
        scalar = [sources[1].answer(q, context) for q in questions]
        assert [(a.rcode, a.records) for a in batched] == [
            (a.rcode, a.records) for a in scalar
        ]
        log_a, log_b = sources[0].log, sources[1].log
        assert (log_a.policy_answers, log_a.fallback_answers, log_a.refused) == (
            log_b.policy_answers, log_b.fallback_answers, log_b.refused
        )
        assert log_a.by_policy == log_b.by_policy
        assert log_a.refused > 0  # the corpus really exercised both arms


class TestTrafficLogSeamParity:
    def test_sampled_batches_flip_like_scalar_loops(self):
        dsts = [parse_address(f"192.0.2.{i % 5 + 1}") for i in range(40)]
        log_a = TrafficLog(sample_rate=0.5, rng=random.Random(42))
        log_b = TrafficLog(sample_rate=0.5, rng=random.Random(42))
        decisions_a = log_a.record_connection_batch(dsts)
        decisions_b = [log_b.record_connection(d) for d in dsts]
        assert decisions_a == decisions_b
        assert 0 < sum(decisions_a) < len(dsts)  # the coin really flipped

        # Requests inherit the connection decision; a few connectionless
        # ``None`` records flip the independent coin in order.
        items = [
            (dst, 1000 + i, decisions_a[i] if i % 4 else None)
            for i, dst in enumerate(dsts)
        ]
        log_a.record_request_batch(items)
        for dst, nbytes, sampled in items:
            log_b.record_request(dst, nbytes, sampled)

        def surface(log):
            return {
                str(addr): (t.requests, t.bytes, t.connections)
                for addr, t in log.by_address().items()
            }

        assert surface(log_a) == surface(log_b)
