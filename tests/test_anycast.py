"""Anycast networks: topology building, catchments, leak injection."""

import random

import pytest

from repro.netsim import (
    AnycastNetwork,
    ASGraph,
    PoP,
    build_regional_topology,
    diff_catchments,
    inject_hijack,
    inject_route_leak,
    parse_address,
    parse_prefix,
)
from repro.netsim.geo import WELL_KNOWN_CITIES

PFX = parse_prefix("192.0.2.0/24")


@pytest.fixture
def two_region_net():
    return build_regional_topology(
        {"us": ["ashburn", "chicago"], "eu": ["london", "frankfurt"]},
        clients_per_region=6,
        rng=random.Random(3),
    )


class TestTopologyBuilder:
    def test_pops_created(self, two_region_net):
        assert set(two_region_net.pops) == {"ashburn", "chicago", "london", "frankfurt"}

    def test_pop_nodes_peer_regionally_with_tier1_backstop(self, two_region_net):
        g = two_region_net.graph
        for pop in two_region_net.pops.values():
            peers = g.peers(pop.node)
            assert peers and all(str(p).startswith("transit:") for p in peers)
            providers = g.providers(pop.node)
            assert providers and all(str(p).startswith("t1:") for p in providers)

    def test_client_locations_recorded(self, two_region_net):
        eyeballs = [a for a in two_region_net.client_ases() if str(a).startswith("eyeball")]
        assert len(eyeballs) == 12
        for asn in eyeballs:
            assert asn in two_region_net.client_locations

    def test_unknown_city_rejected(self):
        with pytest.raises(KeyError):
            build_regional_topology({"us": ["atlantis"]})

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            build_regional_topology({})
        with pytest.raises(ValueError):
            build_regional_topology({"us": []})


class TestCatchments:
    def test_clients_land_in_their_region(self, two_region_net):
        two_region_net.announce_from_all(PFX)
        for asn in two_region_net.client_ases():
            label = str(asn)
            if not label.startswith("eyeball"):
                continue
            pop = two_region_net.pop_for(asn, PFX.first)
            region = label.split(":")[1]
            assert two_region_net.pops[pop].region == region

    def test_partial_announcement_moves_catchment(self, two_region_net):
        two_region_net.announce_from(PFX, ["london"])
        us_client = next(a for a in two_region_net.client_ases() if str(a).startswith("eyeball:us"))
        assert two_region_net.pop_for(us_client, PFX.first) == "london"

    def test_withdraw_shifts_clients(self, two_region_net):
        two_region_net.announce_from_all(PFX)
        eu_client = next(a for a in two_region_net.client_ases() if str(a).startswith("eyeball:eu"))
        before = two_region_net.pop_for(eu_client, PFX.first)
        assert two_region_net.pops[before].region == "eu"
        for name in ("london", "frankfurt"):
            two_region_net.withdraw_from(PFX, name)
        after = two_region_net.pop_for(eu_client, PFX.first)
        assert two_region_net.pops[after].region == "us"

    def test_client_rtt_is_finite_and_regional(self, two_region_net):
        us_client = next(a for a in two_region_net.client_ases() if str(a).startswith("eyeball:us"))
        near = two_region_net.client_rtt_ms(us_client, "ashburn")
        far = two_region_net.client_rtt_ms(us_client, "london")
        assert 0 < near < far

    def test_rtt_requires_location(self, two_region_net):
        with pytest.raises(KeyError):
            two_region_net.client_rtt_ms("transit:us:0", "ashburn")

    def test_duplicate_pop_names_rejected(self):
        pop = PoP("x", "r", WELL_KNOWN_CITIES["london"])
        with pytest.raises(ValueError):
            AnycastNetwork(ASGraph(), [pop, pop])

    def test_needs_at_least_one_pop(self):
        with pytest.raises(ValueError):
            AnycastNetwork(ASGraph(), [])


class TestLeakInjection:
    def test_leak_flips_catchments_and_heals(self, two_region_net):
        two_region_net.announce_from_all(PFX)
        clients = [a for a in two_region_net.client_ases() if str(a).startswith("eyeball")]
        before = two_region_net.catchment(PFX.first, clients)

        # A US transit leaking the prefix pulls far-side clients to the
        # other region's transit cone via the leak.
        scenario = inject_route_leak(two_region_net, "transit:us:0", PFX)
        after = two_region_net.catchment(PFX.first, clients)
        shifts = diff_catchments(before, after)
        # The leak may or may not flip anyone depending on topology; healing
        # must always restore the original state exactly.
        scenario.heal()
        healed = two_region_net.catchment(PFX.first, clients)
        assert healed == before
        assert isinstance(shifts, list)

    def test_hijack_steals_clients(self, two_region_net):
        two_region_net.announce_from(PFX, ["ashburn"])
        clients = [a for a in two_region_net.client_ases() if str(a).startswith("eyeball")]
        before = two_region_net.catchment(PFX.first, clients)
        assert set(before.values()) <= {"ashburn"}

        # Hijacker announces a more-specific from the EU: LPM steals all.
        specific = parse_prefix("192.0.2.0/25")
        inject_hijack(two_region_net, "transit:eu:0", specific)
        stolen = 0
        for client in clients:
            path = two_region_net.sim.forwarding_path(client, parse_address("192.0.2.1"))
            if path and path[-1] == "transit:eu:0":
                stolen += 1
        assert stolen == len(clients)  # /25 beats /24 everywhere

    def test_slash_24_resists_more_specific_hijack(self, two_region_net):
        """§4.3: /24 is the narrowest BGP-permitted IPv4 prefix, so a /24
        deployment cannot be fully hijacked by a more-specific — equal-
        length competition only wins where BGP prefers the hijacker."""
        two_region_net.announce_from_all(PFX)
        clients = [a for a in two_region_net.client_ases() if str(a).startswith("eyeball:us")]
        inject_hijack(two_region_net, "transit:eu:1", PFX)  # same length /24
        still_ok = sum(
            1 for c in clients
            if str(two_region_net.pop_for(c, PFX.first) or "") in two_region_net.pops
        )
        assert still_ok >= len(clients) // 2  # US cone keeps its shorter paths

    def test_unknown_leaker_rejected(self, two_region_net):
        with pytest.raises(KeyError):
            inject_route_leak(two_region_net, "not-an-as", PFX)
        with pytest.raises(KeyError):
            inject_hijack(two_region_net, "not-an-as", PFX)
