"""Pre-flight rebind-plan verification: verify_plan, CLI, monitor, chaos.

The acceptance behaviors: a shrink that would strand an established flow
is blocked (strict raises, the verdict lands on the timeline with phase
``"check"``), the same shrink without the stranding passes, a failover to
an unannounced pool is called out as a blackhole with the exact regions,
and the ``plan_safety`` chaos invariant catches a failover enacted on an
unsafe or unverified plan.
"""

import json
import os
import random
from types import SimpleNamespace

import pytest

from repro.check import CheckError, RebindPlan, verify_plan
from repro.check.cli import run_plan
from repro.chaos.invariants import INVARIANTS
from repro.cli import main
from repro.core import AddressPool
from repro.core.agility import AgilityController
from repro.core.pool import PoolError
from repro.deploy import Deployment, DeploymentConfig
from repro.edge import ListenMode
from repro.faults import FaultTimeline, HealthMonitor
from repro.netsim import parse_address, parse_prefix
from repro.netsim.packet import FiveTuple, Protocol
from repro.obs import MetricsRegistry
from repro.web.http import HTTPVersion
from repro.web.tls import ClientHello

from conftest import BACKUP_PREFIX, POOL_PREFIX, make_policy_cdn

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
BAD_PLAN = os.path.join(FIXTURES, "bad_plan.json")
BAD_PLAN_GOLDEN = os.path.join(FIXTURES, "bad_plan.golden")

KEEP = parse_prefix("192.0.0.0/21")      # the half the shrink keeps
VACATED = parse_prefix("192.0.8.0/21")   # the half it releases


@pytest.fixture()
def deployment():
    return Deployment.build(DeploymentConfig(num_hostnames=40))


def establish_flow(dep, dst="192.0.8.5", port=443):
    """Terminate one real connection on an edge server at ``dst``."""
    dc = dep.cdn.datacenters[sorted(dep.cdn.datacenters)[0]]
    server = dc.servers[sorted(dc.servers)[0]]
    tuple5 = FiveTuple(Protocol.TCP, parse_address("198.51.100.7"), 40_123,
                       parse_address(dst), port)
    server.handshake(tuple5, ClientHello(sni=dep.universe.hostnames[0]),
                     HTTPVersion.H2)
    return tuple5


class TestVerifyPlan:
    def test_stranding_shrink_is_blocked(self, deployment):
        establish_flow(deployment, dst="192.0.8.5")
        plan = RebindPlan(kind="shrink", policy="default", active=KEEP,
                          release=(VACATED,))
        timeline = FaultTimeline()
        with pytest.raises(CheckError) as exc:
            verify_plan(plan, deployment.cdn, deployment.engine,
                        timeline=timeline, strict=True)
        assert "SK103" in str(exc.value)

        # The verdict is on the record even though strict mode aborted.
        unsafe = timeline.events(kind="plan_unsafe")
        assert len(unsafe) == 1 and unsafe[0].phase == "check"
        assert "strands 1 established flow" in unsafe[0].detail

    def test_stranding_shrink_diff_details(self, deployment):
        establish_flow(deployment, dst="192.0.8.5")
        plan = RebindPlan(kind="shrink", policy="default", active=KEEP,
                          release=(VACATED,))
        diff = verify_plan(plan, deployment.cdn, deployment.engine)
        assert not diff.ok
        assert diff.stranded == ("tcp 192.0.8.5:443 <- 198.51.100.7:40123",)
        assert diff.blackholed.is_empty()  # releasing a /21 inside the /20
        # The vacated half is exactly the stale-binding window, for one TTL.
        assert diff.stale.equals(diff.before.subtract(diff.after))
        assert diff.exposure_s == 30.0
        assert "stranded flows: 1" in diff.render()

    def test_safe_shrink_passes_strict(self, deployment):
        establish_flow(deployment, dst="192.0.8.5")
        plan = RebindPlan(kind="shrink", policy="default", active=KEEP)
        diff = verify_plan(plan, deployment.cdn, deployment.engine, strict=True)
        assert diff.ok and not diff.stranded and diff.blackholed.is_empty()
        # Still informative: the vacated space is a TTL exposure window.
        assert not diff.stale.is_empty()
        assert [f.rule for f in diff.report.findings] == ["SK103"]

    def test_verified_plan_lands_on_the_timeline(self, deployment):
        timeline = FaultTimeline()
        plan = RebindPlan(kind="failover", policy="default",
                          pool=deployment.backup_pool)
        diff = verify_plan(plan, deployment.cdn, deployment.engine,
                           timeline=timeline, strict=True)
        assert diff.ok
        verified = timeline.events(kind="plan_verified")
        assert len(verified) == 1 and verified[0].phase == "check"
        assert "failover policy=default" in verified[0].detail

    def test_rogue_failover_is_a_blackhole(self, deployment):
        rogue = AddressPool(parse_prefix("198.51.100.0/24"), name="rogue")
        plan = RebindPlan(kind="failover", policy="default", pool=rogue)
        diff = verify_plan(plan, deployment.cdn, deployment.engine)
        assert not diff.ok
        assert [f.rule for f in diff.report.errors] == ["SK102"]
        # The whole candidate space is unreachable, both protocols.
        assert diff.blackholed.equals(diff.after)
        assert "198.51.100.0/24" in diff.report.errors[0].message

    def test_gauges_record_the_last_verdict(self, deployment):
        establish_flow(deployment, dst="192.0.8.5")
        registry = MetricsRegistry()
        plan = RebindPlan(kind="shrink", policy="default", active=KEEP,
                          release=(VACATED,))
        verify_plan(plan, deployment.cdn, deployment.engine, registry=registry)
        assert registry.gauge("check_plan_stranded_flows").value == 1
        assert registry.gauge("check_plan_blackholed_regions").value == 0

    def test_malformed_plans_fail_loudly(self, deployment):
        cdn, engine = deployment.cdn, deployment.engine
        with pytest.raises(KeyError):
            verify_plan(RebindPlan(kind="shrink", policy="nope", active=KEEP),
                        cdn, engine)
        with pytest.raises(ValueError):
            verify_plan(RebindPlan(kind="expand", policy="default"), cdn, engine)
        with pytest.raises(ValueError):
            verify_plan(RebindPlan(kind="shrink", policy="default"), cdn, engine)
        with pytest.raises(PoolError):  # active outside the advertisement
            verify_plan(RebindPlan(kind="shrink", policy="default",
                                   active=parse_prefix("10.0.0.0/24")),
                        cdn, engine)


class TestPlanCli:
    def test_bad_plan_fixture_fails_and_matches_golden(self):
        output, code = run_plan(BAD_PLAN)
        assert code == 1 and "SK102" in output
        with open(BAD_PLAN_GOLDEN, encoding="utf-8") as handle:
            assert output + "\n" == handle.read()

    def test_plan_runs_are_deterministic(self):
        assert run_plan(BAD_PLAN) == run_plan(BAD_PLAN)

    def test_safe_plan_file_passes(self, tmp_path):
        path = tmp_path / "shrink.json"
        path.write_text(json.dumps(
            {"kind": "shrink", "policy": "default", "active": "192.0.0.0/21"}))
        output, code = run_plan(str(path))
        assert code == 0
        assert "stale-binding window" in output

    def test_unreadable_or_malformed_plan_exits_2(self, tmp_path):
        assert run_plan(str(tmp_path / "missing.json"))[1] == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"policy": "default"}')  # no kind
        output, code = run_plan(str(bad))
        assert code == 2 and "plan error" in output

    def test_main_entry_propagates_the_code(self, capsys):
        assert main(["plan", BAD_PLAN]) == 1
        assert "SK102" in capsys.readouterr().out


def _monitored_cdn(clock, failover_pool):
    cdn, hostnames, engine, _pool = make_policy_cdn(clock)
    cdn.announce_pool(BACKUP_PREFIX, ports=(80, 443), mode=ListenMode.SK_LOOKUP)
    monitor = HealthMonitor(
        cdn, clock, AgilityController(engine, clock), "randomize-all",
        probe_hostname=hostnames[0],
        vantages=["eyeball:us:0", "eyeball:eu:0"],
        failover_pool=failover_pool,
        probe_interval=5.0,
        failure_threshold=1,
        rng=random.Random(9),
    )
    return cdn, monitor


class TestMonitorIntegration:
    def test_failover_is_plan_verified_first(self, clock):
        cdn, monitor = _monitored_cdn(
            clock, AddressPool(BACKUP_PREFIX, name="backup"))
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        monitor.tick()
        assert monitor.failed_over
        verified = monitor.timeline.events(kind="plan_verified")
        failover = monitor.timeline.first("failover_triggered")
        assert len(verified) == 1 and verified[0].phase == "check"
        assert verified[0].at <= failover.at
        result = SimpleNamespace(timeline=monitor.timeline)
        assert INVARIANTS["plan_safety"](result) == []

    def test_unsafe_plan_is_recorded_and_flagged(self, clock):
        rogue = AddressPool(parse_prefix("198.51.100.0/24"), name="rogue")
        cdn, monitor = _monitored_cdn(clock, rogue)
        for pop in list(cdn.pop_names()):
            cdn.network.withdraw_from(POOL_PREFIX, pop)
        monitor.tick()
        assert monitor.failed_over  # non-strict: warned, then proceeded
        unsafe = monitor.timeline.events(kind="plan_unsafe")
        assert len(unsafe) == 1 and "SK102" in unsafe[0].detail

        violations = INVARIANTS["plan_safety"](
            SimpleNamespace(timeline=monitor.timeline))
        assert len(violations) == 1
        assert "despite an unsafe plan verdict" in violations[0].detail


class TestPlanSafetyInvariant:
    def test_unverified_failover_is_a_violation(self):
        timeline = FaultTimeline()
        timeline.emit(10.0, "failover_triggered", "default", phase="react")
        violations = INVARIANTS["plan_safety"](SimpleNamespace(timeline=timeline))
        assert len(violations) == 1
        assert "no symbolic plan verification" in violations[0].detail

    def test_verified_then_enacted_is_clean(self):
        timeline = FaultTimeline()
        timeline.emit(9.0, "plan_verified", "default", phase="check")
        timeline.emit(10.0, "failover_triggered", "default", phase="react")
        assert INVARIANTS["plan_safety"](SimpleNamespace(timeline=timeline)) == []


class TestPlanSerialization:
    """RebindPlan artifacts survive the JSON round trip (satellite of the
    campaign work: ReaddressingSpec embeds plans, so checkpoint/resume
    leans on this being lossless)."""

    def test_migrate_plan_round_trips(self):
        plan = RebindPlan(
            kind="migrate",
            policy="enterprise",
            pool=AddressPool(parse_prefix("203.0.113.0/24"),
                             active=parse_prefix("203.0.113.0/26"),
                             name="accounts-b"),
            release=(parse_prefix("192.0.8.0/21"),),
            name="move-accounts",
        )
        again = RebindPlan.from_json(plan.to_json())
        assert (again.kind, again.policy, again.name) == (
            "migrate", "enterprise", "move-accounts")
        assert str(again.pool.advertised) == "203.0.113.0/24"
        assert str(again.pool.active_prefix) == "203.0.113.0/26"
        assert again.pool.name == "accounts-b"
        assert tuple(str(p) for p in again.release) == ("192.0.8.0/21",)
        # And the re-serialization is byte-stable.
        assert again.to_json() == plan.to_json()

    def test_shrink_plan_round_trips_without_pool(self):
        plan = RebindPlan(kind="shrink", policy="svc",
                          active=parse_prefix("192.0.2.0/24"))
        again = RebindPlan.from_json(plan.to_json())
        assert again.pool is None and str(again.active) == "192.0.2.0/24"

    def test_unknown_plan_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown plan kind"):
            RebindPlan.from_dict(
                {"kind": "teleport", "policy": "svc"})
