"""The latency model: per-fetch charging and page-load decomposition."""

import pytest

from repro.web.http import HTTPVersion
from repro.web.timing import FetchTiming, LatencyParams, PageLoadAccount, time_fetch

PARAMS = LatencyParams(client_edge_rtt_ms=20.0, client_resolver_rtt_ms=8.0,
                       bandwidth_bytes_per_ms=1000.0)


class TestTimeFetch:
    def test_cached_dns_reused_connection_is_transfer_only(self):
        t = time_fetch(PARAMS, HTTPVersion.H2, new_connection=False,
                       stub_missed=False, recursive_missed=False, body_len=1000)
        assert t.dns_ms == 0 and t.setup_ms == 0
        assert t.transfer_ms == pytest.approx(20.0 + 1.0)

    def test_full_cold_tcp_fetch(self):
        t = time_fetch(PARAMS, HTTPVersion.H2, new_connection=True,
                       stub_missed=True, recursive_missed=True, body_len=0)
        assert t.dns_ms == pytest.approx(8.0 + 20.0)   # stub→recursive→auth
        assert t.setup_ms == pytest.approx(20.0 * 2)   # TCP + TLS1.3
        assert t.total_ms == pytest.approx(28.0 + 40.0 + 20.0)

    def test_stub_miss_recursive_hit(self):
        t = time_fetch(PARAMS, HTTPVersion.H2, new_connection=False,
                       stub_missed=True, recursive_missed=False, body_len=0)
        assert t.dns_ms == pytest.approx(8.0)

    def test_quic_handshake_is_one_rtt(self):
        tcp = time_fetch(PARAMS, HTTPVersion.H2, True, False, False, 0)
        quic = time_fetch(PARAMS, HTTPVersion.H3, True, False, False, 0)
        assert quic.setup_ms == pytest.approx(20.0)
        assert tcp.setup_ms == pytest.approx(40.0)

    def test_tls12_costs_extra_rtt(self):
        params = LatencyParams(client_edge_rtt_ms=20.0, tls_rtts=2.0)
        t = time_fetch(params, HTTPVersion.H2, True, False, False, 0)
        assert t.setup_ms == pytest.approx(60.0)

    def test_transfer_scales_with_body(self):
        small = time_fetch(PARAMS, HTTPVersion.H2, False, False, False, 1_000)
        large = time_fetch(PARAMS, HTTPVersion.H2, False, False, False, 100_000)
        assert large.transfer_ms - small.transfer_ms == pytest.approx(99.0)

    def test_custom_resolver_auth_rtt(self):
        params = LatencyParams(client_edge_rtt_ms=20.0,
                               resolver_authoritative_rtt_ms=3.0)
        t = time_fetch(params, HTTPVersion.H2, False, True, True, 0)
        assert t.dns_ms == pytest.approx(8.0 + 3.0)


class TestPageLoadAccount:
    def test_accumulation_and_shares(self):
        account = PageLoadAccount()
        account.add(FetchTiming(dns_ms=10, setup_ms=30, transfer_ms=60))
        account.add(FetchTiming(dns_ms=0, setup_ms=0, transfer_ms=100))
        assert account.fetches == 2
        assert account.total_ms == 200
        assert account.share("dns") == pytest.approx(0.05)
        assert account.share("setup") == pytest.approx(0.15)
        assert account.share("transfer") == pytest.approx(0.80)

    def test_empty_account(self):
        account = PageLoadAccount()
        assert account.total_ms == 0 and account.share("dns") == 0.0
