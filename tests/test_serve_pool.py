"""Real sockets: bind parsing, shared counters, pool lifecycle, repoint.

These tests fork worker processes and exchange datagrams over loopback —
they are the tier-1 proof that ``repro.serve`` actually serves.  Kept
small (one or two workers, a handful of queries) so the suite stays fast.
"""

import pytest

from repro.dns.records import RRType
from repro.dns.wire import Rcode
from repro.obs import MetricsRegistry, watch_serve
from repro.serve import LoopbackClient, ServeCounters, build_pool, parse_bind
from repro.serve.app import AGILE_HOSTNAME, BIG_HOSTNAME, BIG_TXT_RECORDS
from repro.serve.counters import LATENCY_BUCKETS_US


class TestParseBind:
    def test_host_and_port(self):
        assert parse_bind("127.0.0.1:5300") == ("127.0.0.1", 5300)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_bind(":5300") == ("127.0.0.1", 5300)

    def test_port_zero_allowed(self):
        assert parse_bind("127.0.0.1:0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("spec", ["nocolon", "host:notaport", "host:70000"])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_bind(spec)


class TestServeCounters:
    def test_rows_are_independent_and_sum(self):
        counters = ServeCounters(workers=3)
        counters.row(0).inc("queries", 5)
        counters.row(2).inc("queries", 2)
        counters.row(2).inc("truncated")
        assert counters.worker_snapshot(0)["queries"] == 5
        assert counters.worker_snapshot(1)["queries"] == 0
        total = counters.snapshot()
        assert total["queries"] == 7
        assert total["truncated"] == 1

    def test_latency_buckets(self):
        counters = ServeCounters(workers=1)
        row = counters.row(0)
        row.observe_us(40)       # <= 50
        row.observe_us(50)       # <= 50 (inclusive bound)
        row.observe_us(51)       # <= 100
        row.observe_us(10**6)    # +Inf
        snap = counters.worker_snapshot(0)
        assert snap["latency_bucket_le_50us"] == 2
        assert snap["latency_bucket_le_100us"] == 1
        assert snap["latency_bucket_le_inf"] == 1
        assert snap["latency_count"] == 4
        assert snap["latency_sum_us"] == 40 + 50 + 51 + 10**6

    def test_bucket_bounds_are_sorted(self):
        assert list(LATENCY_BUCKETS_US) == sorted(LATENCY_BUCKETS_US)

    def test_index_checked(self):
        with pytest.raises(IndexError):
            ServeCounters(workers=1).row(1)


@pytest.fixture(scope="module")
def pool():
    with build_pool(workers=2, drain_s=2.0) as running:
        yield running


@pytest.fixture
def client(pool):
    return LoopbackClient(pool.address, timeout_s=5.0, retries=3)


class TestPoolServing:
    def test_policy_answer_over_udp(self, pool, client):
        outcome = client.query(AGILE_HOSTNAME)
        assert outcome.transport == "udp"
        assert outcome.message.flags.rcode == Rcode.NOERROR
        (answer,) = outcome.message.answers
        assert answer.rrtype == RRType.A
        assert str(answer.rdata.address).startswith("192.0.2.")

    def test_truncated_answer_completes_over_tcp(self, pool, client):
        outcome = client.query(BIG_HOSTNAME, RRType.TXT)
        assert outcome.truncated_first   # the UDP leg came back TC'd
        assert outcome.transport == "tcp"
        assert len(outcome.message.answers) == BIG_TXT_RECORDS
        assert client.stats.tcp_fallbacks >= 1

    def test_direct_tcp_query(self, pool, client):
        outcome = client.query_tcp(BIG_HOSTNAME, RRType.TXT)
        assert len(outcome.message.answers) == BIG_TXT_RECORDS

    def test_nxdomain_over_the_wire(self, pool, client):
        outcome = client.query("missing.example.com")
        assert outcome.message.flags.rcode == Rcode.NXDOMAIN

    def test_counters_track_served_queries(self, pool, client):
        import time

        before = pool.snapshot()["responses"]
        for _ in range(5):
            client.query(AGILE_HOSTNAME)
        # The worker increments its row just after sendto(); give the last
        # increment a moment to land before reading the shared block.
        deadline = time.monotonic() + 2.0  # repro: allow-wall-clock real-socket counter settling
        while time.monotonic() < deadline:  # repro: allow-wall-clock real-socket counter settling
            after = pool.snapshot()
            if after["responses"] >= before + 5:
                break
            time.sleep(0.01)  # repro: allow-wall-clock real-socket counter settling
        assert after["responses"] >= before + 5
        assert after["malformed"] == 0
        assert after["latency_count"] >= 5

    def test_load_is_visible_per_worker(self, pool, client):
        for _ in range(5):
            client.query(AGILE_HOSTNAME)
        rows = pool.worker_snapshots()
        assert len(rows) == 2
        # The module pool has served every query in this class so far; the
        # per-worker rows carry all of them (whichever worker the kernel
        # picked each time).
        assert sum(row["queries"] for row in rows) >= 5

    def test_watch_serve_exports_pool_metrics(self, pool, client):
        registry = MetricsRegistry()
        watch_serve(registry, "serve", pool)
        client.query(AGILE_HOSTNAME)
        collected = registry.collected()
        assert collected["serve.queries"] >= 1
        assert collected["serve.malformed"] == 0
        # Per-worker rows are exported under w<i>.
        assert "serve.w0.queries" in collected
        assert "serve.w1.queries" in collected


class TestRepointAndDrain:
    def test_repoint_swaps_generations_without_dropping_service(self):
        with build_pool(workers=2, drain_s=2.0) as pool:
            client = LoopbackClient(pool.address, timeout_s=5.0, retries=3)
            client.query(AGILE_HOSTNAME)
            first_gen = pool.snapshot()["queries"]
            generation = pool.repoint()
            assert generation >= 1
            assert pool.alive() == 2
            # The same address answers after the swap; no timeout needed.
            outcome = client.query(AGILE_HOSTNAME)
            assert outcome.message.flags.rcode == Rcode.NOERROR
            assert client.stats.timeouts == 0
            snap = pool.snapshot()
            # Totals fold the retired generation in rather than resetting.
            assert snap["queries"] > first_gen >= 1
            assert snap["drained"] == 2  # the old generation drained cleanly

    def test_stop_drains_every_worker_and_keeps_totals(self):
        pool = build_pool(workers=2, drain_s=2.0).start()
        client = LoopbackClient(pool.address, timeout_s=5.0, retries=3)
        client.query(AGILE_HOSTNAME)
        pool.stop()
        assert pool.alive() == 0
        snap = pool.snapshot()
        assert snap["drained"] == 2
        assert snap["queries"] >= 1
