"""Address pools: advertised vs active sets, the §4.2 timetable."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pool import AddressPool, PoolError
from repro.netsim.addr import parse_address, parse_prefix

SLASH20 = parse_prefix("192.0.0.0/20")
SLASH24 = parse_prefix("192.0.2.0/24")
SLASH32 = parse_prefix("192.0.2.1/32")


class TestActiveSets:
    def test_defaults_to_full_advertisement(self):
        pool = AddressPool(SLASH20)
        assert pool.size == 4096
        assert pool.active_prefix == SLASH20

    def test_timetable_shrink_20_24_32(self):
        """The deployment's §4.2 timetable as three control-plane ops."""
        pool = AddressPool(SLASH20)
        pool.set_active(SLASH24)
        assert pool.size == 256
        pool.set_active(SLASH32)
        assert pool.size == 1
        rng = random.Random(0)
        assert pool.random_address(rng) == SLASH32.first

    def test_generation_bumps_on_change(self):
        pool = AddressPool(SLASH20)
        g0 = pool.generation
        pool.set_active(SLASH24)
        assert pool.generation == g0 + 1

    def test_active_outside_advertisement_rejected(self):
        pool = AddressPool(SLASH24)
        with pytest.raises(PoolError):
            pool.set_active(parse_prefix("10.0.0.0/26"))

    def test_explicit_address_list(self):
        addrs = (parse_address("192.0.2.7"), parse_address("192.0.2.9"))
        pool = AddressPool(SLASH24, active=addrs)
        assert pool.size == 2
        assert pool.contains(addrs[0]) and not pool.contains(parse_address("192.0.2.8"))
        assert pool.address_at(1) == addrs[1]

    def test_empty_address_list_rejected(self):
        with pytest.raises(PoolError):
            AddressPool(SLASH24, active=())

    def test_address_list_outside_advertisement_rejected(self):
        with pytest.raises(PoolError):
            AddressPool(SLASH24, active=(parse_address("10.0.0.1"),))

    def test_reachability_spans_advertisement(self):
        """Shrinking the active set never shrinks reachability: the /20 is
        still routed and listened on even when DNS only hands out the /32."""
        pool = AddressPool(SLASH20, active=SLASH32)
        assert pool.reachable(parse_address("192.0.15.255"))
        assert not pool.contains(parse_address("192.0.15.255"))


class TestSelectionPrimitives:
    def test_random_address_in_active_set(self):
        pool = AddressPool(SLASH20, active=SLASH24)
        rng = random.Random(1)
        for _ in range(200):
            a = pool.random_address(rng)
            assert a in SLASH24

    def test_address_at_bounds(self):
        pool = AddressPool(SLASH24)
        assert pool.address_at(0) == SLASH24.first
        assert pool.address_at(255) == SLASH24.last
        with pytest.raises(IndexError):
            pool.address_at(256)

    def test_list_pool_index(self):
        addrs = tuple(parse_address(f"192.0.2.{i}") for i in (3, 5, 9))
        pool = AddressPool(SLASH24, active=addrs)
        with pytest.raises(IndexError):
            pool.address_at(3)


class TestReduction:
    def test_paper_reduction_numbers(self):
        """§4.2: '94.4 % for the /20, and 99.7 % for the /24' versus the
        18 /20s used by the rest of the network."""
        baseline = 18 * 4096
        slash20 = AddressPool(SLASH20)
        slash24 = AddressPool(SLASH20, active=SLASH24)
        slash32 = AddressPool(SLASH20, active=SLASH32)
        assert round(slash20.reduction_versus(baseline) * 100, 1) == 94.4
        assert round(slash24.reduction_versus(baseline) * 100, 1) == 99.7
        assert slash32.reduction_versus(baseline) > 0.9999

    def test_reduction_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            AddressPool(SLASH24).reduction_versus(0)


@settings(max_examples=100)
@given(length=st.integers(min_value=20, max_value=32), seed=st.integers(0, 1 << 16))
def test_property_active_subprefix_always_selectable(length, seed):
    pool = AddressPool(SLASH20)
    sub = parse_prefix(f"192.0.0.0/{length}")
    pool.set_active(sub)
    rng = random.Random(seed)
    address = pool.random_address(rng)
    assert pool.contains(address)
    assert pool.reachable(address)
    assert address in SLASH20
