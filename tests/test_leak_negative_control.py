"""Negative control for §6: without per-PoP addressing, the leak is blind.

The paper's framing — "the leak goes undetected" in the incident — is as
much a claim about the *old* world as the new one.  Under per-query random
addressing every PoP legitimately sees traffic on every pool address, so
address-based accounting carries zero signal about misdirection.  The
per-PoP policy is what *creates* the signal.  This test runs the same leak
under both policies and shows exactly that asymmetry.
"""

import random

from repro.agility.leaks import RouteLeakDetector
from repro.core import (
    AddressPool,
    PerPopAssignment,
    Policy,
    PolicyAnswerSource,
    PolicyEngine,
    RandomSelection,
)
from repro.dns import RecursiveResolver, StubResolver
from repro.edge import ListenMode
from repro.netsim import inject_route_leak
from repro.netsim.routeleak import attach_multihomed_leaker
from repro.web import BrowserClient

from conftest import POOL_PREFIX, make_cdn

POPS = ["ashburn", "london"]


def run_leak_scenario(clock, strategy, seed=11):
    cdn, hostnames = make_cdn(regions={"us": ["ashburn"], "eu": ["london"]},
                              clients_per_region=6)
    cdn.announce_pool(POOL_PREFIX, ports=(443,), mode=ListenMode.SK_LOOKUP)
    pool = AddressPool(POOL_PREFIX, name="pool")
    engine = PolicyEngine(random.Random(seed))
    engine.add(Policy("p", pool, strategy=strategy, ttl=30))
    cdn.set_answer_source(PolicyAnswerSource(engine, cdn.registry))

    attach_multihomed_leaker(cdn.network, "leaker", "transit:eu:0", "transit:us:0")
    inject_route_leak(cdn.network, "leaker", POOL_PREFIX)

    rng = random.Random(seed + 1)
    for region in ("us", "eu"):
        for i in range(4):
            asn = f"eyeball:{region}:{i}"
            resolver = RecursiveResolver(f"r-{asn}", clock, cdn.dns_transport(asn), asn=asn)
            client = BrowserClient(f"c-{asn}", StubResolver(f"s-{asn}", clock, resolver),
                                   cdn.transport_for(asn))
            for hostname in rng.sample(hostnames, 4):
                try:
                    client.fetch(hostname)
                except ConnectionRefusedError:
                    pass
    return cdn, pool


class TestDetectionRequiresPerPopPolicy:
    def test_per_pop_policy_sees_the_leak(self, clock):
        assignment = PerPopAssignment(POPS)
        cdn, pool = run_leak_scenario(clock, assignment)
        detector = RouteLeakDetector(pool, assignment, POPS,
                                     min_requests=3, min_share=0.01)
        alerts = detector.scan({p: cdn.datacenters[p].traffic for p in POPS})
        assert alerts, "per-PoP policy failed to surface the leak"

    def test_random_policy_is_blind_to_the_leak(self, clock):
        """Same leak, random addressing: the per-PoP detector (fed the
        same per-PoP expectations it would use for accounting) cannot
        distinguish misdirected traffic from normal randomization."""
        cdn, pool = run_leak_scenario(clock, RandomSelection())
        assignment = PerPopAssignment(POPS)
        detector = RouteLeakDetector(pool, assignment, POPS,
                                     min_requests=3, min_share=0.01)
        alerts = detector.scan({p: cdn.datacenters[p].traffic for p in POPS})
        # Any "alerts" here are random coincidences on 2 expected addresses
        # out of 256 — statistically negligible signal; with this sample
        # size the detector reports nothing, i.e. the leak goes undetected.
        assert alerts == []
        # Yet the leak is real: london received US-client traffic.
        london = cdn.datacenters["london"].traffic.total_requests()
        ashburn = cdn.datacenters["ashburn"].traffic.total_requests()
        assert london > ashburn  # the US transit cone was hauled to the EU
