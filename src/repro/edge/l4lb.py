"""Per-server L4 load balancer: connection tracking ahead of termination.

Figure 6 places "an additional L4 load balancer between [the ECMP router]
and connection termination".  Its production job is stateful affinity:
keeping established connections pinned to their terminating process even
as the stateless ECMP layer's decisions shift (server drain, process
restart).  The simulator's version tracks connections, detects flows the
ECMP layer re-homed mid-connection, and forwards them to the owning server
— the mechanism that makes server-set changes non-disruptive.

§4.3: L4LB complexity "is dominated by numbers of servers and not IP
addresses" — the table here is keyed by flow, never by which pool address
a connection used, and tests assert its size is invariant to pool width.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.packet import FiveTuple, Packet

__all__ = ["L4LoadBalancer", "L4Stats"]


@dataclass(slots=True)
class L4Stats:
    new_flows: int = 0
    tracked_hits: int = 0
    rehomed: int = 0
    closed: int = 0


class L4LoadBalancer:
    """Connection-table load balancer for one datacenter.

    ``admit(packet, ecmp_choice)`` returns the server that must terminate
    the packet's flow: the tracked owner if the flow is known, else the
    ECMP choice (which is then recorded as owner).
    """

    def __init__(self, name: str = "l4lb") -> None:
        self.name = name
        self.stats = L4Stats()
        self._flows: dict[FiveTuple, str] = {}

    def admit(self, packet: Packet, ecmp_choice: str) -> str:
        owner = self._flows.get(packet.tuple5)
        if owner is None:
            self._flows[packet.tuple5] = ecmp_choice
            self.stats.new_flows += 1
            return ecmp_choice
        self.stats.tracked_hits += 1
        if owner != ecmp_choice:
            self.stats.rehomed += 1
        return owner

    def conclude(self, tuple5: FiveTuple) -> None:
        """Flow ended; release its table entry."""
        if self._flows.pop(tuple5, None) is not None:
            self.stats.closed += 1

    def tracked_flows(self) -> int:
        return len(self._flows)
