"""Edge substrate: ECMP, L4LB, cache, servers, datacenters, the CDN."""

from .cache import CacheNode, CacheNodeStats, DistributedCache
from .cdn import CDN, DNS_ANYCAST_PREFIX, CDNTransport
from .customers import AccountType, Customer, CustomerRegistry
from .datacenter import AddressTraffic, Datacenter, TrafficLog
from .ecmp import ECMPRouter, EcmpStats
from .l4lb import L4LoadBalancer, L4Stats
from .server import DEFAULT_SERVICE_PORTS, EdgeServer, EdgeServerStats, ListenMode

__all__ = [
    "CacheNode",
    "CacheNodeStats",
    "DistributedCache",
    "CDN",
    "DNS_ANYCAST_PREFIX",
    "CDNTransport",
    "AccountType",
    "Customer",
    "CustomerRegistry",
    "AddressTraffic",
    "Datacenter",
    "TrafficLog",
    "ECMPRouter",
    "EcmpStats",
    "L4LoadBalancer",
    "L4Stats",
    "DEFAULT_SERVICE_PORTS",
    "EdgeServer",
    "EdgeServerStats",
    "ListenMode",
]
