"""The ECMP ingress router: stateless consistent-hash fan-out to servers.

Figure 6: "An ECMP router with consistent hashing fans connections out to
servers … the datacenter's first-pass stateless load balancer that hashes
packets in a consistent manner to spread connections between servers."

We use rendezvous (highest-random-weight) hashing: every flow hashes each
server with the flow key and picks the maximum.  This gives the two
properties the paper's architecture relies on:

* all packets of a flow reach the same server (no per-flow state), and
* adding/removing a server reshuffles only ~1/n of flows.

§4.3 notes ECMP "exists independently from" the addressing changes — its
hash covers the whole advertised prefix, so which address DNS returned is
irrelevant to fan-out correctness.  Tests assert exactly that.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..netsim.packet import Packet
from ..sockets.errors import BatchShapeError
from ..sockets.lookup import flow_hash

__all__ = ["ECMPRouter", "EcmpStats", "UnknownServerError"]


class UnknownServerError(LookupError):
    """Membership change targeting a server this ECMP group never had."""


_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x: int) -> int:
    """Finalizer with full avalanche — plain FNV mixing is not enough here:
    similar server names ("s7"/"s8") otherwise produce correlated weights
    and skew the HRW argmax."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _hrw_weight(server: str, fh: int) -> int:
    """Combine server identity with the flow hash."""
    h = 0xCBF29CE484222325
    for byte in server.encode():
        h ^= byte
        h = (h * 0x100000001B3) & _MASK64
    return _splitmix64(h ^ fh)


@dataclass(slots=True)
class EcmpStats:
    routed: int = 0
    per_server: dict[str, int] = field(default_factory=dict)

    def record(self, server: str) -> None:
        self.routed += 1
        self.per_server[server] = self.per_server.get(server, 0) + 1

    def fold(self, choices: Sequence[str]) -> None:
        """Fold a whole batch of routing decisions in at once — the hot
        loop makes stateless picks and accounting happens per batch, not
        per packet.  Equivalent to :meth:`record` per choice."""
        self.routed += len(choices)
        per_server = self.per_server
        for server, n in Counter(choices).items():
            per_server[server] = per_server.get(server, 0) + n


class ECMPRouter:
    """Rendezvous-hash router over a named server set.

    ``weight_fn`` is injectable (tests use degenerate weights to exercise
    tie handling deterministically); production callers take the default
    :func:`_hrw_weight`.
    """

    def __init__(
        self,
        servers: list[str] | None = None,
        weight_fn: Callable[[str, int], int] = _hrw_weight,
    ) -> None:
        self._servers: list[str] = []
        self._weight = weight_fn
        self.stats = EcmpStats()
        for s in servers or []:
            self.add_server(s)

    # -- membership ---------------------------------------------------------

    def add_server(self, server: str) -> None:
        if server in self._servers:
            raise ValueError(f"server {server!r} already in ECMP group")
        self._servers.append(server)

    def remove_server(self, server: str) -> None:
        """Drop a member; raises :class:`UnknownServerError` if absent.

        A bare ``list.remove`` ValueError leaked here before — opaque to
        callers draining servers during failover, and easy to mistake for
        a bad argument elsewhere.  Stats are untouched either way:
        ``EcmpStats`` is routing history, not membership."""
        try:
            self._servers.remove(server)
        except ValueError:
            raise UnknownServerError(
                f"server {server!r} not in ECMP group "
                f"(members: {', '.join(self._servers) or 'none'})"
            ) from None

    def servers(self) -> list[str]:
        return list(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    # -- routing -------------------------------------------------------------

    def choose(self, flow_hash_value: int) -> str:
        """The stateless HRW pick for one flow hash — no stats recorded.

        Batch drivers call this per flow and fold accounting once per
        batch (:meth:`EcmpStats.fold`); :meth:`route` composes pick and
        record for the scalar path.

        Weight ties break on the server *name*, never on list position:
        HRW's minimal-remap guarantee is a property of the (server, flow)
        weights alone, and a position-dependent tie-break silently
        reintroduced membership-order sensitivity — a remove-then-re-add
        (drain and restore, in failover terms) would reshuffle tied flows
        that should have stayed put.
        """
        if not self._servers:
            raise RuntimeError("ECMP group is empty")
        weight = self._weight
        return max(self._servers, key=lambda s: (weight(s, flow_hash_value), s))

    def route(self, packet: Packet, flow_hash_value: int | None = None) -> str:
        """Pick the server for a packet's flow; deterministic per 5-tuple.

        ``flow_hash_value`` reuses a hash the ingress pipeline already
        computed — the hot path hashes each packet exactly once.  This is
        :meth:`route_batch` of one: scalar routing delegates to the batch
        machinery so the two paths cannot drift.
        """
        fh = flow_hash(packet) if flow_hash_value is None else flow_hash_value
        chosen = self.choose(fh)
        self.stats.record(chosen)
        return chosen

    def route_batch(
        self,
        packets: Sequence[Packet],
        flow_hashes: Sequence[int] | None = None,
    ) -> list[str]:
        """Route a batch of packets; stats folded once per batch.

        ``flow_hashes`` — parallel to ``packets`` — reuses hashes the flow
        engine computed up front (one vectorised pass per batch); a
        mismatched column raises :class:`BatchShapeError`.  Identical
        decisions and identical final counters to :meth:`route` in a loop,
        including on partial failure: choices made before an exception are
        still folded in.
        """
        if flow_hashes is not None and len(flow_hashes) != len(packets):
            raise BatchShapeError(
                "ECMPRouter.route_batch", "flow_hashes must parallel packets",
                {"packets": len(packets), "flow_hashes": len(flow_hashes)},
            )
        choose = self.choose
        choices: list[str] = []
        append = choices.append
        try:
            if flow_hashes is None:
                for packet in packets:
                    append(choose(flow_hash(packet)))
            else:
                for fh in flow_hashes:
                    append(choose(fh))
        finally:
            self.stats.fold(choices)
        return choices

    def route_tuple(self, tuple5) -> str:
        """Route by 5-tuple without constructing a Packet."""
        return self.route(Packet(tuple5))
