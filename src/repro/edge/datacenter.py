"""One PoP/datacenter: ECMP ingress, L4LB, server rack, cache, DNS, accounting.

Assembles Figure 6's pipeline.  The datacenter also keeps the per-address
traffic log that Figure 7 is drawn from, and that the §6 leak detector
reads ("every CDN location [can] monitor requests on unexpected IPs").
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

from ..dns.server import AuthoritativeServer, QueryContext
from ..hashing import stable_hash
from ..netsim.addr import IPAddress, Prefix
from ..netsim.geo import GeoPoint
from ..netsim.packet import FiveTuple, Packet, Protocol
from ..sockets.errors import BatchShapeError
from ..sockets.lookup import flow_hash
from ..web.http import Connection, HTTPVersion, Request, Response
from ..web.origin import OriginPool
from ..web.tls import CertificateStore, ClientHello
from .cache import DistributedCache
from .customers import CustomerRegistry
from .ecmp import ECMPRouter
from .l4lb import L4LoadBalancer
from .server import DEFAULT_SERVICE_PORTS, EdgeServer, ListenMode

__all__ = ["AddressTraffic", "TrafficLog", "Datacenter"]


@dataclass(slots=True)
class AddressTraffic:
    """Accumulated load on one destination address."""

    requests: int = 0
    bytes: int = 0
    connections: int = 0


class TrafficLog:
    """Per-destination-address accounting, 1 %-sample style.

    ``sample_rate`` thins recording the way the paper's measurements do
    ("data is comprised of 1 % of all requests", Fig. 7 caption); analysis
    code scales counts back up via :meth:`scaled_by_address`, or, as the
    paper does, plots the sample.

    Sampling is **flow-coherent**: the coin is flipped once per connection
    (:meth:`record_connection` returns the decision) and every request on
    that connection inherits it.  The earlier per-record coin meant a
    sampled flow's connection and its requests landed in *different*
    samples — per-address connections, requests, and bytes were mutually
    incoherent, so ratios like requests-per-connection were garbage at any
    ``sample_rate < 1.0``.
    """

    def __init__(self, sample_rate: float = 1.0, rng: random.Random | None = None) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self._rng = rng or random.Random(0x10C)
        self._by_addr: dict[IPAddress, AddressTraffic] = {}

    def _flip(self) -> bool:
        return self.sample_rate >= 1.0 or self._rng.random() < self.sample_rate

    def record_connection(self, dst: IPAddress) -> bool:
        """Record (or skip) one connection; returns the sampling decision.

        Callers hold on to the returned flag and pass it back to
        :meth:`record_request` for every request the connection carries.
        :meth:`record_connection_batch` of one.
        """
        return self.record_connection_batch((dst,))[0]

    def record_connection_batch(self, dsts: Sequence[IPAddress]) -> list[bool]:
        """Flip per connection (in order, so batch and scalar sampling
        decisions are identical on the same RNG state) and fold the
        per-address connection counts in once."""
        flip = self._flip
        decisions: list[bool] = []
        append = decisions.append
        sampled_counts: Counter[IPAddress] = Counter()
        try:
            for dst in dsts:
                sampled = flip()
                append(sampled)
                if sampled:
                    sampled_counts[dst] += 1
        finally:
            for dst, n in sampled_counts.items():
                self._entry(dst).connections += n
        return decisions

    def record_request(self, dst: IPAddress, nbytes: int,
                       sampled: bool | None = None) -> None:
        """Record one request.  ``sampled`` is the owning connection's
        decision from :meth:`record_connection`; ``None`` (for
        connectionless callers, e.g. synthetic per-request feeds) flips an
        independent coin.  :meth:`record_request_batch` of one."""
        self.record_request_batch(((dst, nbytes, sampled),))

    def record_request_batch(
        self, items: Sequence[tuple[IPAddress, int, bool | None]]
    ) -> None:
        """Record many ``(dst, nbytes, sampled)`` requests with one fold.

        Independent coins (``sampled=None``) are still flipped per item in
        order; only the per-address counter writes are hoisted."""
        flip = self._flip
        request_counts: Counter[IPAddress] = Counter()
        byte_counts: Counter[IPAddress] = Counter()
        try:
            for dst, nbytes, sampled in items:
                if sampled is None:
                    sampled = flip()
                if not sampled:
                    continue
                request_counts[dst] += 1
                byte_counts[dst] += nbytes
        finally:
            for dst, n in request_counts.items():
                entry = self._entry(dst)
                entry.requests += n
                entry.bytes += byte_counts[dst]

    def _entry(self, dst: IPAddress) -> AddressTraffic:
        entry = self._by_addr.get(dst)
        if entry is None:
            entry = AddressTraffic()
            self._by_addr[dst] = entry
        return entry

    def by_address(self) -> dict[IPAddress, AddressTraffic]:
        return dict(self._by_addr)

    def scaled_by_address(self) -> dict[IPAddress, AddressTraffic]:
        """Counts scaled back up by 1/sample_rate (Horvitz–Thompson style).

        With flow-coherent sampling the same factor applies to connections,
        requests, and bytes, so scaled ratios are unbiased too."""
        factor = 1.0 / self.sample_rate
        return {
            addr: AddressTraffic(
                requests=round(t.requests * factor),
                bytes=round(t.bytes * factor),
                connections=round(t.connections * factor),
            )
            for addr, t in self._by_addr.items()
        }

    def addresses_seen(self) -> set[IPAddress]:
        return set(self._by_addr)

    def total_requests(self) -> int:
        return sum(t.requests for t in self._by_addr.values())

    def estimated_total_requests(self) -> int:
        """Sampled request count scaled up to an estimate of the true total."""
        return round(self.total_requests() / self.sample_rate)

    def clear(self) -> None:
        self._by_addr.clear()


class Datacenter:
    """A PoP's worth of uniform-stack servers behind ECMP + L4LB."""

    def __init__(
        self,
        name: str,
        location: GeoPoint,
        registry: CustomerRegistry,
        origins: OriginPool,
        certs: CertificateStore,
        num_servers: int = 8,
        cache_node_capacity: int = 1 << 30,
        sample_rate: float = 1.0,
    ) -> None:
        if num_servers <= 0:
            raise ValueError("datacenter needs at least one server")
        self.name = name
        self.location = location
        self.registry = registry
        self.origins = origins
        self.certs = certs
        self.cache = DistributedCache(origins, node_capacity_bytes=cache_node_capacity)
        self.traffic = TrafficLog(sample_rate=sample_rate)
        self.servers: dict[str, EdgeServer] = {}
        # RFC 2544 benchmarking space for internal service-socket binds.
        internal_base = IPAddress.from_text("198.18.0.1").value
        for i in range(num_servers):
            server_name = f"{name}-srv{i:02d}"
            internal = IPAddress.v4(internal_base + i)
            server = EdgeServer(server_name, registry, self.cache, certs, internal)
            self.servers[server_name] = server
            self.cache.add_node(server_name)
        self.ecmp = ECMPRouter(list(self.servers))
        self.l4lb = L4LoadBalancer(f"{name}-l4lb")
        self.dns: AuthoritativeServer | None = None
        # -- gray-failure knobs (driven by repro.faults.gray) ---------------
        #: Probability an arriving SYN is silently lost at this PoP's
        #: ingress (LossyLink fault).  Connection attempts surface it as a
        #: refusal, the visible face of an unanswered handshake.
        self.ingress_loss = 0.0
        #: Admission cap per capacity window (OverloadedPoP fault); ``None``
        #: is uncapped.  Scenario loops call :meth:`begin_capacity_window`
        #: once per tick to open a fresh window.
        self.capacity: int | None = None
        self._window_admitted = 0
        #: Connections refused because the PoP was over capacity.
        self.sheds = 0
        #: SYNs lost to ingress loss.
        self.syn_drops = 0
        self._chaos_rng = random.Random(stable_hash("dc-ingress", name) & 0xFFFFFFFF)
        #: Optional :class:`~repro.obs.trace.TraceRecorder` (set by
        #: ``CDN.attach_observability``): when present, every connection
        #: emits ecmp → dispatch spans and every request a serve span.
        self.tracer = None
        self._conn_owner: dict[int, str] = {}
        self._conn_trace: dict[int, str] = {}
        # Per-connection sampling decision: requests inherit it so the
        # traffic log stays flow-coherent (see TrafficLog).
        self._conn_sampled: dict[int, bool] = {}

    # -- configuration -----------------------------------------------------

    def configure_listening(
        self,
        pool: Prefix,
        ports: tuple[int, ...] = DEFAULT_SERVICE_PORTS,
        mode: str = ListenMode.SK_LOOKUP,
        protocols: tuple[Protocol, ...] = (Protocol.TCP, Protocol.UDP),
    ) -> None:
        for server in self.servers.values():
            server.configure_listening(pool, ports, mode, protocols)

    def add_listening_pool(self, pool: Prefix) -> None:
        """Terminate an additional prefix without touching existing setup."""
        for server in self.servers.values():
            server.add_pool(pool)

    def repoint_pool(self, new_pool: Prefix) -> None:
        for server in self.servers.values():
            server.repoint_pool(new_pool)

    def set_dns(self, server: AuthoritativeServer) -> None:
        self.dns = server

    # -- failure injection --------------------------------------------------------

    def crash_server(self, server_name: str) -> None:
        self.servers[server_name].crash()

    def restore_server(self, server_name: str) -> None:
        self.servers[server_name].restore()

    def crash_all_servers(self) -> None:
        """A whole-PoP outage (power/fabric failure): every rack dies."""
        for server in self.servers.values():
            server.crash()

    def restore_all_servers(self) -> None:
        for server in self.servers.values():
            server.restore()

    def healthy_server_count(self) -> int:
        return sum(1 for s in self.servers.values() if not s.crashed)

    def begin_capacity_window(self) -> None:
        """Open a fresh admission window (call once per scenario tick)."""
        self._window_admitted = 0

    def _admit_ingress(self, tuple5: FiveTuple) -> None:
        """Gray-failure gate ahead of ECMP: lossy ingress and load shedding.

        Both failure modes answer *some* SYNs and lose others — the partial
        degradation that makes gray failures hard to detect with binary
        probes."""
        if self.ingress_loss and self._chaos_rng.random() < self.ingress_loss:
            self.syn_drops += 1
            raise ConnectionRefusedError(
                f"{self.name}: SYN to {tuple5.dst} lost at ingress"
            )
        if self.capacity is not None:
            if self._window_admitted >= self.capacity:
                self.sheds += 1
                raise ConnectionRefusedError(
                    f"{self.name}: over capacity ({self.capacity}/window), load shed"
                )
            self._window_admitted += 1

    # -- DNS plane ------------------------------------------------------------

    def handle_dns(
        self,
        wire: bytes,
        resolver_address: IPAddress | None = None,
        transport: str = "udp",
    ) -> bytes | None:
        if self.dns is None:
            raise RuntimeError(f"datacenter {self.name} has no DNS service")
        context = QueryContext(
            pop=self.name, resolver_address=resolver_address, transport=transport
        )
        return self.dns.handle_wire(wire, context)

    # -- data plane ---------------------------------------------------------------

    def connect(self, tuple5: FiveTuple, hello: ClientHello, version: HTTPVersion) -> Connection:
        """Ingress pipeline for a new connection: ECMP → L4LB → server.

        The flow hash is computed exactly once per SYN and reused for both
        ECMP fan-out and (inside the server's handshake) listener
        selection; it used to be recomputed at each stage.
        """
        self._admit_ingress(tuple5)
        syn = Packet(tuple5, syn=True)
        fh = flow_hash(syn)
        if self.tracer is None:
            ecmp_choice = self.ecmp.route(syn, flow_hash_value=fh)
            owner = self.l4lb.admit(syn, ecmp_choice)
            connection = self.servers[owner].handshake(tuple5, hello, version, flow_hash=fh)
        else:
            trace = self.tracer.next_trace_id(f"conn@{self.name}")
            with self.tracer.span(trace, "ecmp"):
                ecmp_choice = self.ecmp.route(syn, flow_hash_value=fh)
            # sk_lookup steering and TLS termination both happen inside
            # the server's handshake — one span covers the dispatch hop.
            with self.tracer.span(trace, "dispatch", ecmp_choice):
                owner = self.l4lb.admit(syn, ecmp_choice)
                connection = self.servers[owner].handshake(tuple5, hello, version, flow_hash=fh)
            self._conn_trace[connection.conn_id] = trace
        self._conn_owner[connection.conn_id] = owner
        self._conn_sampled[connection.conn_id] = self.traffic.record_connection(tuple5.dst)
        return connection

    def connect_batch(
        self,
        requests: Sequence[tuple[FiveTuple, ClientHello, HTTPVersion]],
        flow_hashes: Sequence[int] | None = None,
    ) -> list[Connection]:
        """Batched ingress: one flow hash per SYN, shared across ECMP and
        listener selection, with ECMP and traffic-log accounting folded in
        once per batch rather than incremented per connection.

        ``flow_hashes`` — parallel to ``requests`` — reuses hashes the flow
        engine computed up front (one vectorised pass over the whole
        batch); a mismatched column raises :class:`BatchShapeError`.

        Semantics match :meth:`connect` in a loop, minus per-connection
        trace spans (batch callers are throughput experiments; span
        recording per packet would dominate what they measure).  Counter
        parity holds under partial failure too: the folds run in a
        ``finally``, and within each item accounting is ordered as the
        scalar path orders it — the ECMP choice counts even when the
        handshake then refuses, the connection sample flips only after the
        handshake succeeds.
        """
        if flow_hashes is not None and len(flow_hashes) != len(requests):
            raise BatchShapeError(
                "connect_batch", "flow_hashes must parallel requests",
                {"requests": len(requests), "flow_hashes": len(flow_hashes)},
            )
        choose = self.ecmp.choose
        admit = self.l4lb.admit
        servers = self.servers
        conn_owner = self._conn_owner
        choices: list[str] = []
        dsts: list[IPAddress] = []
        connections: list[Connection] = []
        append = connections.append
        try:
            for i, (tuple5, hello, version) in enumerate(requests):
                self._admit_ingress(tuple5)
                syn = Packet(tuple5, syn=True)
                fh = flow_hash(syn) if flow_hashes is None else flow_hashes[i]
                ecmp_choice = choose(fh)
                choices.append(ecmp_choice)
                owner = admit(syn, ecmp_choice)
                connection = servers[owner].handshake(tuple5, hello, version, flow_hash=fh)
                conn_owner[connection.conn_id] = owner
                dsts.append(tuple5.dst)
                append(connection)
        finally:
            self.ecmp.stats.fold(choices)
            sampled = self.traffic.record_connection_batch(dsts)
            conn_sampled = self._conn_sampled
            for connection, decision in zip(connections, sampled):
                conn_sampled[connection.conn_id] = decision
        return connections

    def serve(self, connection: Connection, request: Request) -> Response:
        owner = self._conn_owner.get(connection.conn_id)
        if owner is None:
            raise RuntimeError(
                f"connection {connection.conn_id} was not established at {self.name}"
            )
        trace = self._conn_trace.get(connection.conn_id) if self.tracer else None
        if trace is None:
            response = self.servers[owner].serve(connection, request)
        else:
            with self.tracer.span(trace, "serve", request.path):
                response = self.servers[owner].serve(connection, request)
        self.traffic.record_request(
            connection.remote_addr,
            response.body_len,
            sampled=self._conn_sampled.get(connection.conn_id),
        )
        return response

    def serve_batch(
        self, pairs: Sequence[tuple[Connection, Request]]
    ) -> list[Response]:
        """Serve many (connection, request) pairs; ``serve`` in a loop with
        the per-request dict probes and trace plumbing hoisted out and the
        traffic-log fold deferred to once per batch (in a ``finally``, so
        requests served before a mid-batch failure are still counted, as
        the scalar loop would have counted them)."""
        conn_owner = self._conn_owner
        conn_sampled = self._conn_sampled
        servers = self.servers
        records: list[tuple[IPAddress, int, bool | None]] = []
        responses: list[Response] = []
        append = responses.append
        try:
            for connection, request in pairs:
                owner = conn_owner.get(connection.conn_id)
                if owner is None:
                    raise RuntimeError(
                        f"connection {connection.conn_id} was not established at {self.name}"
                    )
                response = servers[owner].serve(connection, request)
                records.append(
                    (
                        connection.remote_addr,
                        response.body_len,
                        conn_sampled.get(connection.conn_id),
                    )
                )
                append(response)
        finally:
            self.traffic.record_request_batch(records)
        return responses

    # -- accounting ------------------------------------------------------------

    def total_socket_count(self) -> int:
        return sum(s.socket_count() for s in self.servers.values())

    def total_socket_memory(self) -> int:
        return sum(s.socket_memory_bytes() for s in self.servers.values())

    def connection_count(self) -> int:
        return len(self._conn_owner)

    def connection_owner(self, conn_id: int) -> str:
        """Which server owns an established connection.

        The flow engine groups request packets by owner so each server's
        lookup path sees one contiguous batch; a typed KeyError here beats
        a silent miss."""
        try:
            return self._conn_owner[conn_id]
        except KeyError:
            raise KeyError(
                f"connection {conn_id} was not established at {self.name}"
            ) from None
