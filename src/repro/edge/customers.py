"""Customer registry: hostnames, account types, and shared certificates.

The deployment's policy is expressed over "datacenter locations and account
type" (§4.3): a query matches the policy if it arrives at a participating
PoP *and* the queried hostname belongs to an account of the right type —
"hostnames are completely ignored" beyond that membership test.  The
registry is where hostname → account metadata lives.

It also mints the shared certificates that make SNI-based multiplexing
work: CDNs pack customer names into SAN lists (§2.3), and coalescing
breadth in Figure 8 depends on how names share certificates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..web.tls import Certificate

__all__ = ["AccountType", "Customer", "CustomerRegistry"]


class AccountType(enum.Enum):
    FREE = "free"
    PRO = "pro"
    BUSINESS = "business"
    ENTERPRISE = "enterprise"


@dataclass(slots=True)
class Customer:
    """One account: its hostnames and the certificate covering them."""

    name: str
    account_type: AccountType
    hostnames: set[str] = field(default_factory=set)
    certificate: Certificate | None = None

    def make_certificate(self, max_san: int = 100) -> Certificate:
        """Mint a shared cert over this customer's hostnames.

        Real CDN certs cap SAN lists (~100 names); hostnames beyond the cap
        simply don't share a certificate — which correctly *limits*
        coalescing for giant accounts, an effect Figure 8's "rest of world"
        population includes.
        """
        names = sorted(self.hostnames)
        if not names:
            raise ValueError(f"customer {self.name} has no hostnames")
        subject, san = names[0], tuple(names[1:max_san + 1])
        self.certificate = Certificate(subject=subject, san=san)
        return self.certificate

    def make_certificates(self, max_san: int = 100) -> list[Certificate]:
        """Mint as many shared certs as needed to cover every hostname.

        CDNs shard big accounts across multiple SAN-capped certificates;
        coalescing then works within a shard, not across — which the
        Figure 8 population inherits naturally.
        """
        names = sorted(self.hostnames)
        if not names:
            raise ValueError(f"customer {self.name} has no hostnames")
        chunk = max_san + 1
        certs = [
            Certificate(subject=names[i], san=tuple(names[i + 1:i + chunk]))
            for i in range(0, len(names), chunk)
        ]
        self.certificate = certs[0]
        return certs


class CustomerRegistry:
    """hostname → customer lookup plus account-type queries."""

    def __init__(self) -> None:
        self._customers: dict[str, Customer] = {}
        self._by_hostname: dict[str, Customer] = {}

    def add(self, customer: Customer) -> None:
        if customer.name in self._customers:
            raise ValueError(f"duplicate customer {customer.name!r}")
        self._customers[customer.name] = customer
        for hostname in customer.hostnames:
            self._index(hostname, customer)

    def add_hostname(self, customer_name: str, hostname: str) -> None:
        customer = self._customers[customer_name]
        customer.hostnames.add(hostname.lower().rstrip("."))
        self._index(hostname, customer)

    def _index(self, hostname: str, customer: Customer) -> None:
        key = hostname.lower().rstrip(".")
        existing = self._by_hostname.get(key)
        if existing is not None and existing is not customer:
            raise ValueError(f"hostname {hostname!r} already registered to {existing.name}")
        self._by_hostname[key] = customer

    def customer_for(self, hostname: str) -> Customer | None:
        return self._by_hostname.get(hostname.lower().rstrip("."))

    def account_type_for(self, hostname: str) -> AccountType | None:
        customer = self.customer_for(hostname)
        return customer.account_type if customer else None

    def is_hosted(self, hostname: str) -> bool:
        return hostname.lower().rstrip(".") in self._by_hostname

    def customers(self) -> list[Customer]:
        return list(self._customers.values())

    def hostnames(self) -> list[str]:
        return list(self._by_hostname)

    def __len__(self) -> int:
        return len(self._customers)

    def hostname_count(self) -> int:
        return len(self._by_hostname)
