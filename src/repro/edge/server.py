"""An edge server: socket stack, connection termination, application suite.

Figure 6: "each server mirrors a single software stack and offers all
services — every server executes DDoS [protection], layer-4 load balancers,
connection termination, and the full suite of application processes."

The part the paper changes is *how the server comes to be listening on the
pool addresses*.  Three configurations are supported, matching §3.3's
narrative:

``per_ip_binds``
    The naive model (Figure 4a): one listening socket per (address, port).
    Faithful — and measurably unscalable: a /20 on 13 ports costs 53 248
    TCP sockets per server.
``wildcard``
    INADDR_ANY per port (Figure 4b): one socket per port, every address —
    including addresses that should not be exposed.
``sk_lookup``
    The paper's design (Figure 4c): one internal-bound socket per port, an
    sk_lookup program steering (pool-prefix × port) onto it.  Pool changes
    are map/rule updates; sockets never rebind.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..netsim.addr import IPAddress, Prefix
from ..netsim.packet import FiveTuple, Packet, Protocol
from ..sockets.lookup import DispatchResult, LookupPath
from ..sockets.sklookup import MatchRule, SkLookupProgram, SockArray, Verdict
from ..sockets.socktable import SocketTable
from ..web.http import Connection, HTTPVersion, Request, Response, Status
from ..web.tls import CertificateStore, ClientHello, TLSError
from .cache import DistributedCache
from .customers import CustomerRegistry

__all__ = ["ListenMode", "EdgeServer", "EdgeServerStats", "BASE_SERVE_LATENCY_S"]

#: Nominal per-request service time of a healthy edge server, simulated
#: seconds.  Gray-failure faults multiply it; the health monitor's latency
#: baseline is built from it.
BASE_SERVE_LATENCY_S = 0.02

#: Cloudflare terminates on "ports 80, 443, and 11 others" (§4.2).
DEFAULT_SERVICE_PORTS = (
    80, 443, 2052, 2053, 2082, 2083, 2086, 2087, 2095, 2096, 8080, 8443, 8880,
)


class ListenMode:
    PER_IP_BINDS = "per_ip_binds"
    WILDCARD = "wildcard"
    SK_LOOKUP = "sk_lookup"

    ALL = (PER_IP_BINDS, WILDCARD, SK_LOOKUP)


@dataclass(slots=True)
class EdgeServerStats:
    connections: int = 0
    tls_failures: int = 0
    requests: int = 0
    bytes_served: int = 0
    refused_syns: int = 0


class EdgeServer:
    """One machine in the datacenter rack."""

    def __init__(
        self,
        name: str,
        registry: CustomerRegistry,
        cache: DistributedCache,
        certs: CertificateStore,
        internal_addr: IPAddress,
    ) -> None:
        self.name = name
        self.registry = registry
        self.cache = cache
        self.certs = certs
        self.internal_addr = internal_addr
        self.table = SocketTable()
        self.lookup_path = LookupPath(self.table)
        self.stats = EdgeServerStats()
        #: Current per-request service time.  A healthy box serves at
        #: :data:`BASE_SERVE_LATENCY_S`; a :class:`~repro.faults.gray.SlowServer`
        #: fault inflates it (and restores it on revert) without ever
        #: touching the success/failure surface.
        self.serve_latency_s = BASE_SERVE_LATENCY_S
        self.crashed = False
        self.listen_mode: str | None = None
        self._service_ports: tuple[int, ...] = ()
        self._protocols: tuple[Protocol, ...] = ()
        self._sk_program: SkLookupProgram | None = None
        self._sk_map: SockArray | None = None
        self._pool_rules_label = "service-pool"
        self._sk_keys: dict[tuple[int, Protocol], int] = {}
        self.pools: list[Prefix] = []

    # -- listening configuration ---------------------------------------------

    def configure_listening(
        self,
        pool: Prefix,
        ports: tuple[int, ...] = DEFAULT_SERVICE_PORTS,
        mode: str = ListenMode.SK_LOOKUP,
        protocols: tuple[Protocol, ...] = (Protocol.TCP, Protocol.UDP),
    ) -> None:
        """Arrange to accept connections on every (pool address, port).

        Idempotent per server: reconfiguring replaces the previous setup.
        """
        if mode not in ListenMode.ALL:
            raise ValueError(f"unknown listen mode {mode!r}")
        self._teardown_listening()
        self.listen_mode = mode
        self._service_ports = tuple(ports)
        self._protocols = tuple(protocols)
        self.pools = [pool]

        if mode == ListenMode.PER_IP_BINDS:
            for address in pool.addresses():  # raises for pools wider than 2^20
                for port in ports:
                    for proto in protocols:
                        self.table.bind_listen(proto, address, port, owner=self.name)
            return

        if mode == ListenMode.WILDCARD:
            for port in ports:
                for proto in protocols:
                    self.table.bind_listen(proto, None, port, owner=self.name)
            return

        # sk_lookup: one internally-bound socket per (port, proto); a single
        # program rule steers the whole pool prefix at each port to it.
        slots = len(ports) * len(protocols)
        self._sk_map = SockArray(size=slots, name=f"{self.name}-sockarray")
        self._sk_program = SkLookupProgram(f"{self.name}-svc", self._sk_map)
        self.lookup_path.attach(self._sk_program)
        key = 0
        for port in ports:
            for proto in protocols:
                sock = self.table.bind_listen(proto, self.internal_addr, port, owner=self.name)
                self._sk_map.update(key, sock)
                self._sk_keys[(port, proto)] = key
                self._sk_program.add_rule(
                    MatchRule(
                        Verdict.PASS,
                        protocol=proto,
                        prefixes=(pool,),
                        port_lo=port,
                        port_hi=port,
                        map_key=key,
                        label=self._pool_rules_label,
                    )
                )
                key += 1

    def add_pool(self, pool: Prefix) -> None:
        """Additionally terminate another prefix on the existing sockets.

        sk_lookup mode only — and this is the point of sk_lookup: taking on
        a whole new address range is a handful of rule insertions, with no
        new sockets and no service restart.  (A mitigation/backup prefix is
        provisioned exactly this way in the §6 scenarios.)
        """
        if self.listen_mode is None:
            raise RuntimeError("add_pool requires configure_listening first")
        if any(pool == existing for existing in self.pools):
            return
        if self.listen_mode == ListenMode.WILDCARD:
            self.pools.append(pool)  # INADDR_ANY already catches everything
            return
        if self.listen_mode == ListenMode.PER_IP_BINDS:
            protocols = {(s.protocol) for s in self.table.sockets()}
            for address in pool.addresses():
                for port in self._service_ports:
                    for proto in protocols:
                        self.table.bind_listen(proto, address, port, owner=self.name)
            self.pools.append(pool)
            return
        assert self._sk_program is not None
        for (port, proto), key in self._sk_keys.items():
            self._sk_program.add_rule(
                MatchRule(
                    Verdict.PASS,
                    protocol=proto,
                    prefixes=(pool,),
                    port_lo=port,
                    port_hi=port,
                    map_key=key,
                    label=self._pool_rules_label,
                )
            )
        self.pools.append(pool)

    def repoint_pool(self, new_pool: Prefix) -> None:
        """Runtime pool change (sk_lookup mode only): swap prefix rules.

        This is the §3.3 capability — "IP+port re-assignment to existing
        listening sockets" — exercised by the leak-mitigation experiment:
        no socket is closed, bound, or restarted.
        """
        if self.listen_mode != ListenMode.SK_LOOKUP or self._sk_program is None:
            raise RuntimeError("repoint_pool requires sk_lookup listening mode")
        old_rules = [
            r for r in self._sk_program.rules() if r.label == self._pool_rules_label
        ]
        self._sk_program.remove_rules(self._pool_rules_label)
        self.pools = [new_pool]
        seen: set[tuple] = set()
        old_rules = [
            r for r in old_rules
            if not ((r.port_lo, r.protocol) in seen or seen.add((r.port_lo, r.protocol)))
        ]
        for rule in old_rules:
            self._sk_program.add_rule(
                MatchRule(
                    rule.action,
                    protocol=rule.protocol,
                    prefixes=(new_pool,),
                    port_lo=rule.port_lo,
                    port_hi=rule.port_hi,
                    map_key=rule.map_key,
                    label=rule.label,
                )
            )

    def _teardown_listening(self) -> None:
        if self._sk_program is not None:
            self.lookup_path.detach(self._sk_program)
            self._sk_program = None
            self._sk_map = None
        self._sk_keys.clear()
        self.pools = []
        for sock in self.table.sockets():
            self.table.close(sock)
        self.listen_mode = None

    # -- failure injection --------------------------------------------------------

    def crash(self) -> None:
        """Simulate machine/process failure: every socket dies at once.

        New SYNs fall through the lookup path (connection refused) and
        requests on established connections are reset — the loud, abrupt
        failure mode a health monitor must detect from the outside.  The
        listening configuration is remembered so :meth:`restore` can bring
        the box back exactly as it was.
        """
        if self.crashed:
            return
        saved = (list(self.pools), self._service_ports, self.listen_mode, self._protocols)
        self._teardown_listening()
        self._saved_config = saved
        self.crashed = True

    def restore(self) -> None:
        """Recover from :meth:`crash`: rebind the saved listening config."""
        if not self.crashed:
            return
        pools, ports, mode, protocols = self._saved_config
        self.crashed = False
        del self._saved_config
        if mode is None:
            return  # crashed before ever listening; nothing to rebind
        self.configure_listening(pools[0], ports, mode, protocols)
        for extra in pools[1:]:
            self.add_pool(extra)

    # -- data path ---------------------------------------------------------------

    def dispatch(self, packet: Packet, deliver: bool = False,
                 flow_hash: int | None = None) -> DispatchResult:
        return self.lookup_path.dispatch(packet, deliver=deliver, flow_hash=flow_hash)

    def dispatch_batch(self, packets: list[Packet], deliver: bool = False,
                       flow_hashes: list[int] | None = None) -> list[DispatchResult]:
        """Batched lookup through this server's path (see
        :meth:`~repro.sockets.lookup.LookupPath.dispatch_batch`)."""
        return self.lookup_path.dispatch_batch(
            packets, deliver=deliver, flow_hashes=flow_hashes
        )

    def handshake(
        self,
        tuple5: FiveTuple,
        hello: ClientHello,
        version: HTTPVersion,
        flow_hash: int | None = None,
    ) -> Connection:
        """Terminate a new connection: SYN dispatch, accept, TLS select.

        ``flow_hash`` forwards the hash the datacenter's ECMP stage already
        computed for this SYN, so listener selection never re-hashes.
        """
        syn = Packet(tuple5, syn=True)
        result = self.dispatch(syn, flow_hash=flow_hash)
        if result.socket is None:
            self.stats.refused_syns += 1
            raise ConnectionRefusedError(
                f"{self.name}: no listener for {tuple5} (stage={result.stage.value})"
            )
        try:
            certificate = self.certs.select(hello)
        except TLSError:
            self.stats.tls_failures += 1
            raise
        self.table.establish(result.socket, tuple5)
        self.stats.connections += 1
        return Connection(
            version=version,
            remote_addr=tuple5.dst,
            remote_port=tuple5.dst_port,
            certificate=certificate,
            sni=hello.sni,
        )

    def serve(self, connection: Connection, request: Request) -> Response:
        """The application suite: Host-header routing through the cache.

        A request whose authority is outside the presented certificate is
        answered 421 Misdirected Request — the guard that keeps coalescing
        honest (RFC 7540 §9.1.2).  Unknown hostnames get 404.
        """
        if self.crashed:
            raise ConnectionResetError(
                f"{self.name}: server crashed; connection {connection.conn_id} reset"
            )
        self.stats.requests += 1
        if not connection.certificate.covers(request.authority):
            return self._timed(Response(Status.MISDIRECTED, served_by=self.name))
        if not self.registry.is_hosted(request.authority):
            return self._timed(Response(Status.NOT_FOUND, served_by=self.name))
        response = self.cache.fetch(request)
        self.stats.bytes_served += response.body_len
        return self._timed(response)

    def _timed(self, response: Response) -> Response:
        """Stamp this server's current service time onto the response."""
        return replace(response, latency_s=self.serve_latency_s)

    # -- accounting ------------------------------------------------------------

    def socket_count(self) -> int:
        return len(self.table.sockets())

    def socket_memory_bytes(self) -> int:
        return self.table.memory_bytes()
