"""The distributed edge cache: every server participates (Figure 6).

§4.3: "Our architecture and its addressing are isolated from cache
systems … every server participates in the distributed cache.  Both
internal addressing schemes, and distributed filesystems are untouched."

That isolation is a checkable property: the cache keys on *content
identity* — (hostname, path) — never on the connection's destination
address, so hit rates are identical under static, randomized, or
one-address policies.  Tests drive the same request stream through
different addressing policies and assert byte-identical cache behaviour.

Structure: a rendezvous-hash ring assigns each key a home node among the
datacenter's servers; each node runs an LRU store.  Misses fetch through
the origin gateway.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..web.http import Request, Response, Status
from ..web.origin import OriginPool

__all__ = ["CacheNode", "DistributedCache", "CacheNodeStats"]


@dataclass(slots=True)
class CacheNodeStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_stored: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheNode:
    """One server's LRU slice of the distributed cache."""

    def __init__(self, name: str, capacity_bytes: int = 1 << 30) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.stats = CacheNodeStats()
        self._store: OrderedDict[tuple[str, str], int] = OrderedDict()

    def get(self, key: tuple[str, str]) -> int | None:
        size = self._store.get(key)
        if size is None:
            self.stats.misses += 1
            return None
        self._store.move_to_end(key)
        self.stats.hits += 1
        return size

    def put(self, key: tuple[str, str], size: int) -> None:
        if size > self.capacity_bytes:
            return  # uncacheably large object
        if key in self._store:
            self.stats.bytes_stored -= self._store.pop(key)
        while self.stats.bytes_stored + size > self.capacity_bytes and self._store:
            _, evicted = self._store.popitem(last=False)
            self.stats.bytes_stored -= evicted
            self.stats.evictions += 1
        self._store[key] = size
        self.stats.bytes_stored += size

    def __len__(self) -> int:
        return len(self._store)


def _hrw(node: str, key: tuple[str, str]) -> int:
    h = 0xCBF29CE484222325
    for piece in (node, key[0], key[1]):
        for byte in piece.encode():
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        h ^= 0xFF
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    # Avalanche finalizer: similar node names must not correlate weights.
    from .ecmp import _splitmix64
    return _splitmix64(h)


class DistributedCache:
    """The datacenter-wide cache: HRW home-node selection over LRU nodes."""

    def __init__(self, origin_gateway: OriginPool, node_capacity_bytes: int = 1 << 30) -> None:
        self.origin_gateway = origin_gateway
        self.node_capacity_bytes = node_capacity_bytes
        self._nodes: dict[str, CacheNode] = {}

    # -- membership ----------------------------------------------------------

    def add_node(self, name: str) -> CacheNode:
        if name in self._nodes:
            raise ValueError(f"cache node {name!r} already present")
        node = CacheNode(name, self.node_capacity_bytes)
        self._nodes[name] = node
        return node

    def remove_node(self, name: str) -> None:
        del self._nodes[name]

    def nodes(self) -> dict[str, CacheNode]:
        return dict(self._nodes)

    def home_node(self, key: tuple[str, str]) -> CacheNode:
        if not self._nodes:
            raise RuntimeError("distributed cache has no nodes")
        name = max(self._nodes, key=lambda n: _hrw(n, key))
        return self._nodes[name]

    # -- the serve path ---------------------------------------------------------

    def fetch(self, request: Request) -> Response:
        """Serve a request through the cache; fills from origin on miss.

        Note the key: content identity only.  The caller's connection,
        destination address, and addressing policy are invisible here —
        the §4.3 isolation property.
        """
        key = (request.authority.lower().rstrip("."), request.path)
        node = self.home_node(key)
        size = node.get(key)
        if size is not None:
            return Response(Status.OK, body_len=size, served_by=node.name, cache_hit=True)
        response = self.origin_gateway.fetch(request)
        if response.status is Status.OK:
            node.put(key, response.body_len)
        return Response(
            response.status,
            body_len=response.body_len,
            served_by=node.name,
            cache_hit=False,
        )

    # -- aggregate stats -----------------------------------------------------

    def total_hit_rate(self) -> float:
        hits = sum(n.stats.hits for n in self._nodes.values())
        misses = sum(n.stats.misses for n in self._nodes.values())
        total = hits + misses
        return hits / total if total else 0.0
