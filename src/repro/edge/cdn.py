"""The whole CDN: anycast PoPs, shared registry, DNS plane, client transports.

This is the top of the substrate stack.  It owns no addressing policy —
the authoritative answer source is plugged in (conventional
:class:`~repro.dns.server.ZoneAnswerSource` or the paper's policy engine
from :mod:`repro.core`), keeping the §4.2 claim honest: swapping the
answering strategy touches nothing else in this file or below it.

Routing realism: a client (or resolver) reaches whichever PoP its AS's BGP
best path selects for the destination address — computed by the
:class:`~repro.netsim.anycast.AnycastNetwork`.  This is what makes the §6
measurement experiment (resolver near DC1, client near DC2) fall out of
the model instead of being scripted.
"""

from __future__ import annotations

import itertools

from ..dns.server import AnswerSource, AuthoritativeServer
from ..hashing import stable_hash
from ..netsim.addr import IPAddress, Prefix, parse_prefix
from ..netsim.anycast import AnycastNetwork
from ..netsim.packet import FiveTuple
from ..web.client import EdgeTransport
from ..web.http import Connection, HTTPVersion, Request, Response
from ..web.origin import OriginPool
from ..web.tls import CertificateStore, ClientHello
from .customers import CustomerRegistry
from .datacenter import Datacenter
from .server import DEFAULT_SERVICE_PORTS, ListenMode

__all__ = ["CDN", "CDNTransport", "DNS_ANYCAST_PREFIX"]

#: The anycast prefix carrying the CDN's own authoritative DNS service
#: (cf. Cloudflare's narrow /24 advertisements for resolver reachability).
DNS_ANYCAST_PREFIX = parse_prefix("198.51.100.0/24")


class CDN:
    """A multi-PoP CDN instance over an anycast BGP substrate."""

    def __init__(
        self,
        network: AnycastNetwork,
        registry: CustomerRegistry | None = None,
        origins: OriginPool | None = None,
        servers_per_dc: int = 4,
        sample_rate: float = 1.0,
        cache_node_capacity: int = 1 << 30,
    ) -> None:
        self.network = network
        self.registry = registry or CustomerRegistry()
        self.origins = origins or OriginPool()
        self.certs = CertificateStore()
        self.datacenters: dict[str, Datacenter] = {}
        for pop in network.pops.values():
            self.datacenters[pop.name] = Datacenter(
                name=pop.name,
                location=pop.location,
                registry=self.registry,
                origins=self.origins,
                certs=self.certs,
                num_servers=servers_per_dc,
                sample_rate=sample_rate,
                cache_node_capacity=cache_node_capacity,
            )
        self.dns_address = DNS_ANYCAST_PREFIX.address_at(1)
        self.network.announce_from_all(DNS_ANYCAST_PREFIX)
        self._listen_config: dict[str, tuple[tuple[int, ...], str]] = {}
        self._conn_home: dict[int, str] = {}
        self._src_ports = itertools.count(20_000)

    # -- provisioning --------------------------------------------------------

    def provision_certificates(self, max_san: int = 100) -> None:
        """Mint and install shared certificates covering every hostname.

        Accounts larger than one SAN list get sharded across several
        certificates, as production CDNs do."""
        for customer in self.registry.customers():
            if customer.certificate is not None:
                self.certs.add(customer.certificate)
                continue
            for cert in customer.make_certificates(max_san=max_san):
                self.certs.add(cert)

    def announce_pool(
        self,
        pool: Prefix,
        ports: tuple[int, ...] = DEFAULT_SERVICE_PORTS,
        mode: str = ListenMode.SK_LOOKUP,
        pops: list[str] | None = None,
        listen_pops: list[str] | None = None,
    ) -> None:
        """Advertise ``pool`` via BGP and configure servers to terminate it.

        ``pops`` limits the BGP announcement; ``listen_pops`` limits which
        datacenters configure listening (defaults to all — §6's
        measurement scenario wants DC2 *listening but not announcing its
        own DNS answers*, which corresponds to listening everywhere while
        DNS policy differs).
        """
        announce_at = pops if pops is not None else list(self.datacenters)
        self.network.announce_from(pool, announce_at)
        for name in (listen_pops if listen_pops is not None else list(self.datacenters)):
            dc = self.datacenters[name]
            configured = self._listen_config.get(name)
            if configured is None:
                dc.configure_listening(pool, ports, mode)
                self._listen_config[name] = (tuple(ports), mode)
            else:
                if configured != (tuple(ports), mode):
                    raise ValueError(
                        f"{name}: additional pools must reuse the existing "
                        f"ports/mode {configured}, got {(tuple(ports), mode)}"
                    )
                dc.add_listening_pool(pool)

    def set_answer_source(self, source: AnswerSource) -> None:
        """Install the authoritative answering strategy at every PoP."""
        for dc in self.datacenters.values():
            dc.set_dns(AuthoritativeServer(source, name=f"authdns-{dc.name}"))

    def attach_observability(self, registry=None, tracer=None) -> None:
        """Wire this deployment into a metrics registry and/or tracer.

        ``registry`` (a :class:`~repro.obs.MetricsRegistry`) gets a
        collector per edge-side stats surface — ECMP, per-server sk_lookup
        programs, edge-cache nodes, plus a rollup — via
        :func:`~repro.obs.adapters.watch_cdn`.  ``tracer`` (a
        :class:`~repro.obs.TraceRecorder`) turns on per-connection
        ecmp → dispatch → serve spans at every datacenter.
        """
        if registry is not None:
            from ..obs.adapters import watch_cdn

            watch_cdn(registry, self)
        if tracer is not None:
            for dc in self.datacenters.values():
                dc.tracer = tracer

    # -- DNS plane -------------------------------------------------------------

    def pop_for_dns(self, resolver_asn: object) -> str | None:
        """Which PoP answers DNS queries from ``resolver_asn``."""
        return self.network.pop_for(resolver_asn, self.dns_address)

    def dns_transport(
        self,
        resolver_asn: object,
        resolver_address: IPAddress | None = None,
        protocol: str = "udp",
    ):
        """A resolver-side transport: bytes in, bytes out, anycast-routed.

        ``protocol="tcp"`` models the RFC 7766 stream path the resolver
        falls back to on truncation: same anycast routing, no payload cap.
        """

        def transport(wire: bytes) -> bytes | None:
            pop = self.pop_for_dns(resolver_asn)
            if pop is None:
                return None  # resolver has no route to the DNS anycast
            return self.datacenters[pop].handle_dns(wire, resolver_address, protocol)

        return transport

    # -- data plane ----------------------------------------------------------------

    def transport_for(self, client_asn: object, client_address: IPAddress | None = None) -> "CDNTransport":
        """An :class:`EdgeTransport` that routes via the client AS's catchments."""
        if client_address is None:
            # Synthesize a stable client address in CGNAT space (100.64/10).
            h = stable_hash("client", str(client_asn)) % (1 << 22)
            client_address = IPAddress.v4(IPAddress.from_text("100.64.0.0").value + h)
        return CDNTransport(self, client_asn, client_address)

    def serve(self, connection: Connection, request: Request) -> Response:
        pop = self._conn_home.get(connection.conn_id)
        if pop is None:
            raise RuntimeError(f"connection {connection.conn_id} unknown to this CDN")
        return self.datacenters[pop].serve(connection, request)

    # -- introspection ---------------------------------------------------------

    def pop_names(self) -> list[str]:
        return list(self.datacenters)

    def total_requests(self) -> int:
        return sum(dc.traffic.total_requests() for dc in self.datacenters.values())


class CDNTransport(EdgeTransport):
    """Client-side adapter: anycast-routes dials and requests to PoPs."""

    def __init__(self, cdn: CDN, client_asn: object, client_address: IPAddress) -> None:
        self.cdn = cdn
        self.client_asn = client_asn
        self.client_address = client_address

    def handshake(
        self,
        client_name: str,
        dst: IPAddress,
        port: int,
        hello: ClientHello,
        version: HTTPVersion,
    ) -> Connection:
        pop = self.cdn.network.pop_for(self.client_asn, dst)
        if pop is None:
            raise ConnectionRefusedError(
                f"{client_name}: AS {self.client_asn!r} has no route to {dst}"
            )
        tuple5 = FiveTuple(
            version.transport,
            self.client_address,
            next(self.cdn._src_ports) % 45_000 + 20_000,
            dst,
            port,
        )
        connection = self.cdn.datacenters[pop].connect(tuple5, hello, version)
        self.cdn._conn_home[connection.conn_id] = pop
        return connection

    def serve(self, connection: Connection, request: Request) -> Response:
        return self.cdn.serve(connection, request)
