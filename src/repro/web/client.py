"""A browser-model HTTP client: DNS, connections, and coalescing decisions.

This is the measurement instrument for Figure 8.  A client owns a stub
resolver and a pool of open connections; each ``fetch`` either rides an
existing connection (when the RFC 7540 §9.1.1 conditions allow — see
:meth:`~repro.web.http.Connection.can_coalesce`) or resolves the hostname
and dials a new one.  Under per-query random addressing the IP-match
condition almost always fails across hostnames; under one-address it always
holds — that contrast is the paper's coalescing result.

The server side is abstracted as :class:`EdgeTransport` so the same client
drives a single in-process server in unit tests and the full simulated CDN
in benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol as TypingProtocol

from ..dns.records import RRType
from ..dns.resolver import ResolveError
from ..dns.stub import StubResolver
from ..hashing import stable_hash
from ..netsim.addr import IPAddress
from .http import Connection, HTTPVersion, Request, Response
from .tls import ClientHello

__all__ = ["EdgeTransport", "BrowserClient", "FetchOutcome", "ClientStats"]


class EdgeTransport(TypingProtocol):
    """What a client needs from the network+server side."""

    def handshake(self, client_name: str, dst: IPAddress, port: int,
                  hello: ClientHello, version: HTTPVersion) -> Connection:
        """TLS-establish a connection to ``dst``; raises TLSError on failure."""
        ...

    def serve(self, connection: Connection, request: Request) -> Response:
        """Issue one request over an established connection."""
        ...


@dataclass(frozen=True, slots=True)
class FetchOutcome:
    response: Response
    connection: Connection
    coalesced: bool
    dns_lookups: int


@dataclass(slots=True)
class ClientStats:
    fetches: int = 0
    connections_opened: int = 0
    coalesced_requests: int = 0
    dns_lookups: int = 0
    errors: int = 0
    connect_retries: int = 0    # extra addresses tried after a refused dial
    connect_failures: int = 0   # dials where every resolved address failed
    dead_connections: int = 0   # pooled connections found reset mid-use

    @property
    def requests_per_connection(self) -> float:
        if not self.connections_opened:
            return 0.0
        return self.fetches / self.connections_opened


class BrowserClient:
    """One browser (or process context — §4.4 notes reuse is often
    per-process/tab).

    Parameters
    ----------
    ip_match:
        The coalescing address rule variant: ``"exact"``, ``"intersect"``,
        or ``"none"`` (see :meth:`Connection.can_coalesce`).
    max_connections:
        Pool cap; dialling beyond it closes the least-used connection,
        mimicking browser per-host/process pool limits.
    """

    def __init__(
        self,
        name: str,
        stub: StubResolver,
        transport: EdgeTransport,
        version: HTTPVersion = HTTPVersion.H2,
        ip_match: str = "exact",
        port: int = 443,
        max_connections: int = 32,
        rrtype: RRType = RRType.A,
        rng: random.Random | None = None,
    ) -> None:
        self.name = name
        self.stub = stub
        self.transport = transport
        self.version = version
        self.ip_match = ip_match
        self.port = port
        self.max_connections = max_connections
        self.rrtype = rrtype
        self.stats = ClientStats()
        self._rng = rng or random.Random(stable_hash(name) & 0xFFFFFFFF)
        self._pool: list[Connection] = []

    # -- public API ----------------------------------------------------------

    def fetch(self, hostname: str, path: str = "/") -> FetchOutcome:
        """Fetch one resource, coalescing onto open connections when legal."""
        self.stats.fetches += 1
        request = Request(authority=hostname, path=path)
        lookups = 0

        # Try to coalesce.  For h2, condition 2 requires the authority's
        # current resolution; the stub cache makes repeat resolutions free.
        candidates = [c for c in self._pool if not c.closed and c.version.multiplexes]
        if candidates:
            resolved: list[IPAddress] | None = None
            needs_ip = self.version.requires_ip_match_for_coalescing and self.ip_match != "none"
            if needs_ip:
                resolved, did_lookup = self._resolve(hostname)
                lookups += did_lookup
            for conn in candidates:
                if conn.can_coalesce(hostname, resolved or [], ip_match=self.ip_match):
                    response = self._serve_pooled(conn, request)
                    if response is None:
                        continue  # connection was dead; try the next one
                    conn.record(request, response)
                    self.stats.coalesced_requests += 1
                    return FetchOutcome(response, conn, coalesced=True, dns_lookups=lookups)

        # H1 reuse: same-authority keep-alive only.
        if self.version is HTTPVersion.H1:
            for conn in self._pool:
                if not conn.closed and hostname in conn.authorities:
                    response = self._serve_pooled(conn, request)
                    if response is None:
                        continue
                    conn.record(request, response)
                    return FetchOutcome(response, conn, coalesced=False, dns_lookups=lookups)

        resolved, did_lookup = self._resolve(hostname)
        lookups += did_lookup
        if not resolved:
            self.stats.errors += 1
            raise ResolveError(f"{hostname}: no addresses")
        conn = self._dial_any(resolved, hostname)
        response = self.transport.serve(conn, request)
        conn.record(request, response)
        return FetchOutcome(response, conn, coalesced=False, dns_lookups=lookups)

    def close_all(self) -> None:
        for conn in self._pool:
            conn.close()
        self._pool.clear()

    def open_connections(self) -> list[Connection]:
        return [c for c in self._pool if not c.closed]

    # -- internals -------------------------------------------------------------

    def _resolve(self, hostname: str) -> tuple[list[IPAddress], int]:
        """Resolve via the stub; returns (addresses, upstream-lookup count)."""
        before = self.stub.cache.stats.misses
        addresses = self.stub.lookup(hostname, self.rrtype)
        missed = self.stub.cache.stats.misses > before
        if missed:
            self.stats.dns_lookups += 1
        return addresses, int(missed)

    def _serve_pooled(self, conn: Connection, request: Request) -> Response | None:
        """Serve over a pooled connection; None if it turned out dead.

        A crashed server resets established connections — the client
        evicts the corpse from the pool and falls back to a fresh dial
        instead of surfacing the reset (what real browsers do on a stale
        keep-alive connection)."""
        try:
            return self.transport.serve(conn, request)
        except ConnectionResetError:
            conn.close()
            self.stats.dead_connections += 1
            return None

    def _dial_any(self, addresses: list[IPAddress], sni: str) -> Connection:
        """Dial the resolved addresses in order until one accepts.

        §4.4's resilience assumption made real: every address in a pool is
        equivalent, so connection setup failing on one address retries the
        next before reporting failure.  TLS failures are not retried — the
        handshake reached a server; another address changes nothing.
        """
        last_error: ConnectionRefusedError | None = None
        for i, address in enumerate(addresses):
            if i:
                self.stats.connect_retries += 1
            try:
                return self._dial(address, sni)
            except ConnectionRefusedError as exc:
                last_error = exc
        self.stats.connect_failures += 1
        self.stats.errors += 1
        assert last_error is not None
        raise last_error

    def _dial(self, address: IPAddress, sni: str) -> Connection:
        if len([c for c in self._pool if not c.closed]) >= self.max_connections:
            victim = min((c for c in self._pool if not c.closed), key=lambda c: c.requests)
            victim.close()
        self._pool = [c for c in self._pool if not c.closed]
        conn = self.transport.handshake(
            self.name, address, self.port, ClientHello(sni=sni), self.version
        )
        self._pool.append(conn)
        self.stats.connections_opened += 1
        return conn
