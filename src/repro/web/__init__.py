"""Web substrate: TLS/SNI, HTTP connections and coalescing, clients, origins."""

from .client import BrowserClient, ClientStats, EdgeTransport, FetchOutcome
from .http import Connection, HTTPVersion, Request, Response, Status
from .origin import OriginPool, OriginServer, SizeModel, fixed_size
from .ssh import HostKeyChangedError, KnownHostsClient, SSHConnectResult
from .timing import FetchTiming, LatencyParams, PageLoadAccount
from .tls import Certificate, CertificateStore, ClientHello, TLSError

__all__ = [
    "BrowserClient",
    "ClientStats",
    "EdgeTransport",
    "FetchOutcome",
    "Connection",
    "HTTPVersion",
    "Request",
    "Response",
    "Status",
    "OriginPool",
    "OriginServer",
    "SizeModel",
    "fixed_size",
    "HostKeyChangedError",
    "KnownHostsClient",
    "SSHConnectResult",
    "FetchTiming",
    "LatencyParams",
    "PageLoadAccount",
    "Certificate",
    "CertificateStore",
    "ClientHello",
    "TLSError",
]
