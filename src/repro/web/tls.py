"""TLS-lite: certificates, SNI, and handshakes at the level the paper needs.

§2.3: "the Server Name Indication (SNI) field in TLS allows a server to
host multiple HTTPS certificates on the same IP+port … servers can now
safely assume support for SNI."  The reproduction needs exactly the
name-selection semantics — which certificate a server presents for a given
SNI, and which hostnames a presented certificate covers (that set gates
HTTP/2 connection coalescing, Figure 8).  No cryptography is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Certificate", "ClientHello", "CertificateStore", "TLSError"]


class TLSError(Exception):
    """Handshake failure (no certificate for the requested name)."""


def _hostname_matches(pattern: str, hostname: str) -> bool:
    """RFC 6125 matching: exact, or single-label left-most wildcard."""
    pattern = pattern.lower().rstrip(".")
    hostname = hostname.lower().rstrip(".")
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        head, sep, rest = hostname.partition(".")
        return bool(sep) and rest == suffix and head != ""
    return False


@dataclass(frozen=True, slots=True)
class Certificate:
    """A served certificate: subject plus subjectAltName entries.

    CDNs pack many customer hostnames (or wildcards) into shared certs;
    ``covers`` is the check browsers run both at handshake time and when
    deciding whether an existing connection's certificate authorises a new
    request's authority (coalescing condition 1, §4.4).
    """

    subject: str
    san: tuple[str, ...] = ()
    issuer: str = "Repro CA"

    def names(self) -> tuple[str, ...]:
        return (self.subject, *self.san)

    def covers(self, hostname: str) -> bool:
        return any(_hostname_matches(p, hostname) for p in self.names())


@dataclass(frozen=True, slots=True)
class ClientHello:
    """The handshake fields the server dispatches on."""

    sni: str | None
    alpn: tuple[str, ...] = ("h2", "http/1.1")


class CertificateStore:
    """Server-side SNI → certificate selection.

    Lookup order: exact hostname, then wildcard match over stored certs,
    then the default certificate (if configured).  Clients without SNI get
    the default or are rejected — the paper notes some providers now
    mandate SNI; ``require_sni=True`` models that stance.
    """

    def __init__(self, default: Certificate | None = None, require_sni: bool = False) -> None:
        self._exact: dict[str, Certificate] = {}
        self._wildcards: list[Certificate] = []
        self.default = default
        self.require_sni = require_sni

    def add(self, cert: Certificate) -> None:
        for name in cert.names():
            name = name.lower().rstrip(".")
            if name.startswith("*."):
                if cert not in self._wildcards:
                    self._wildcards.append(cert)
            else:
                self._exact[name] = cert

    def __len__(self) -> int:
        return len(self._exact) + len(self._wildcards)

    def select(self, hello: ClientHello) -> Certificate:
        """Pick the certificate to present for a ClientHello."""
        if hello.sni is None:
            if self.require_sni or self.default is None:
                raise TLSError("no SNI and no default certificate")
            return self.default
        sni = hello.sni.lower().rstrip(".")
        cert = self._exact.get(sni)
        if cert is not None:
            return cert
        for candidate in self._wildcards:
            if candidate.covers(sni):
                return candidate
        if self.default is not None:
            return self.default
        raise TLSError(f"no certificate for SNI {hello.sni!r}")
