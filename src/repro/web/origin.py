"""Origin servers: the ground truth behind the reverse proxy.

§2.1: "Origin servers hold the ground truth.  Edge servers sit on the path
between client and origin, typically inserted as reverse proxies."  The
edge cache (``repro.edge.cache``) consults an :class:`OriginPool` on miss;
content is synthetic — a deterministic per-(hostname, path) object size —
because the experiments only account bytes, never payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from .http import Request, Response, Status

__all__ = ["OriginServer", "OriginPool", "SizeModel", "fixed_size"]

#: Given (hostname, path), produce the object's size in bytes.
SizeModel = Callable[[str, str], int]


def fixed_size(nbytes: int) -> SizeModel:
    def model(hostname: str, path: str) -> int:
        return nbytes
    return model


@dataclass(slots=True)
class OriginServer:
    """One customer origin, hosting some set of hostnames."""

    name: str
    hostnames: set[str]
    size_model: SizeModel
    requests: int = 0
    bytes_served: int = 0

    def serve(self, request: Request) -> Response:
        self.requests += 1
        if request.authority not in self.hostnames:
            return Response(Status.NOT_FOUND, served_by=self.name)
        size = self.size_model(request.authority, request.path)
        self.bytes_served += size
        return Response(Status.OK, body_len=size, served_by=self.name)


class OriginPool:
    """Routes an edge's origin-bound fetch to the right customer origin."""

    def __init__(self) -> None:
        self._by_hostname: dict[str, OriginServer] = {}
        self._origins: list[OriginServer] = []

    def add(self, origin: OriginServer) -> None:
        self._origins.append(origin)
        for hostname in origin.hostnames:
            self._by_hostname[hostname.lower().rstrip(".")] = origin

    def add_hostnames(self, origin: OriginServer, hostnames: set[str]) -> None:
        origin.hostnames |= hostnames
        for hostname in hostnames:
            self._by_hostname[hostname.lower().rstrip(".")] = origin

    def origin_for(self, hostname: str) -> OriginServer | None:
        return self._by_hostname.get(hostname.lower().rstrip("."))

    def fetch(self, request: Request) -> Response:
        origin = self.origin_for(request.authority)
        if origin is None:
            return Response(Status.UNAVAILABLE, served_by="no-origin")
        return origin.serve(request)

    def origins(self) -> list[OriginServer]:
        return list(self._origins)

    def __len__(self) -> int:
        return len(self._origins)
