"""Page-load latency accounting: what coalescing actually buys clients.

§5.2: "Standard tasks like DNS lookups and establishing TCP connections
can comprise large fraction of page load times (7 % and 53 %,
respectively).  When all content is served from the same IP address, a
client can potentially avoid these performance hits."

The model charges each fetch its protocol-accurate round trips:

* a DNS lookup that misses every cache costs one RTT to the recursive
  (plus one recursive→authoritative RTT on *its* miss);
* a new TCP+TLS1.3 connection costs 1 RTT (SYN/SYNACK) + 1 RTT (TLS) = 2;
* a new QUIC connection costs 1 RTT;
* a coalesced/reused connection costs 0 setup RTTs;
* every request then costs 1 RTT for request/response plus a
  bandwidth-proportional transfer term.

RTTs come from the geo substrate.  The output decomposes page-load time
into DNS / connection-setup / transfer shares — the same decomposition the
paper cites — so experiments can show the one-address shift.
"""

from __future__ import annotations

from dataclasses import dataclass

from .http import HTTPVersion

__all__ = ["LatencyParams", "FetchTiming", "PageLoadAccount"]


@dataclass(frozen=True, slots=True)
class LatencyParams:
    """Tunable constants for the latency model."""

    client_edge_rtt_ms: float          # from the anycast/geo substrate
    client_resolver_rtt_ms: float = 8.0
    resolver_authoritative_rtt_ms: float | None = None  # default: edge RTT
    bandwidth_bytes_per_ms: float = 1_250.0  # ~10 Mbit/s
    tls_rtts: float = 1.0              # TLS 1.3; add 1.0 for TLS 1.2

    def resolver_auth_rtt(self) -> float:
        if self.resolver_authoritative_rtt_ms is not None:
            return self.resolver_authoritative_rtt_ms
        return self.client_edge_rtt_ms


@dataclass(frozen=True, slots=True)
class FetchTiming:
    """One fetch, decomposed."""

    dns_ms: float
    setup_ms: float
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        return self.dns_ms + self.setup_ms + self.transfer_ms


def time_fetch(
    params: LatencyParams,
    version: HTTPVersion,
    new_connection: bool,
    stub_missed: bool,
    recursive_missed: bool,
    body_len: int,
) -> FetchTiming:
    """Charge one fetch its components."""
    dns = 0.0
    if stub_missed:
        dns += params.client_resolver_rtt_ms
        if recursive_missed:
            dns += params.resolver_auth_rtt()

    setup = 0.0
    if new_connection:
        if version.transport.name == "QUIC":
            setup = params.client_edge_rtt_ms  # 1-RTT QUIC handshake
        else:
            setup = params.client_edge_rtt_ms * (1.0 + params.tls_rtts)

    transfer = params.client_edge_rtt_ms + body_len / params.bandwidth_bytes_per_ms
    return FetchTiming(dns_ms=dns, setup_ms=setup, transfer_ms=transfer)


@dataclass(slots=True)
class PageLoadAccount:
    """Accumulates fetch timings into the paper's decomposition."""

    dns_ms: float = 0.0
    setup_ms: float = 0.0
    transfer_ms: float = 0.0
    fetches: int = 0

    def add(self, timing: FetchTiming) -> None:
        self.dns_ms += timing.dns_ms
        self.setup_ms += timing.setup_ms
        self.transfer_ms += timing.transfer_ms
        self.fetches += 1

    @property
    def total_ms(self) -> float:
        return self.dns_ms + self.setup_ms + self.transfer_ms

    def share(self, component: str) -> float:
        """Fraction of load time spent in 'dns' | 'setup' | 'transfer'."""
        total = self.total_ms
        if total == 0:
            return 0.0
        return {
            "dns": self.dns_ms,
            "setup": self.setup_ms,
            "transfer": self.transfer_ms,
        }[component] / total
