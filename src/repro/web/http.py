"""HTTP-lite: requests, responses, and multiplexed connections.

What matters to the reproduction:

* the ``Host`` header / ``:authority`` carries the hostname, so one
  connection can serve many hostnames (name-based virtual hosting, §2.3);
* HTTP/2 permits requests for *other* authorities on an existing connection
  under RFC 7540 §9.1.1's two conditions (certificate covers the authority;
  the authority's address matches the connection) — the mechanism behind
  Figure 8;
* HTTP/3 (QUIC) drops the IP-match condition (§4.4), which the client
  model honours;
* HTTP/1.1 reuses connections only for the same authority.

Connections count their requests; requests-per-connection is Figure 8's
y-axis.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from ..netsim.addr import IPAddress
from ..netsim.packet import Protocol
from .tls import Certificate

__all__ = ["HTTPVersion", "Request", "Response", "Connection", "Status"]

_conn_ids = itertools.count(1)


class HTTPVersion(enum.Enum):
    H1 = "http/1.1"
    H2 = "h2"
    H3 = "h3"

    @property
    def transport(self) -> Protocol:
        return Protocol.QUIC if self is HTTPVersion.H3 else Protocol.TCP

    @property
    def multiplexes(self) -> bool:
        """Can the connection carry concurrent streams for many authorities?"""
        return self is not HTTPVersion.H1

    @property
    def requires_ip_match_for_coalescing(self) -> bool:
        """RFC 7540 §9.1.1 condition 2 applies to h2 only; h3 waives it."""
        return self is HTTPVersion.H2


class Status(enum.IntEnum):
    OK = 200
    MOVED = 301
    NOT_FOUND = 404
    MISDIRECTED = 421  # served when a coalesced request reaches the wrong box
    UNAVAILABLE = 503


@dataclass(frozen=True, slots=True)
class Request:
    """One HTTP request: authority (hostname), path, and size accounting."""

    authority: str
    path: str = "/"
    method: str = "GET"

    def __post_init__(self) -> None:
        if not self.authority:
            raise ValueError("request needs an authority (Host/:authority)")
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/': {self.path!r}")


@dataclass(frozen=True, slots=True)
class Response:
    status: Status
    body_len: int = 0
    served_by: str = ""
    cache_hit: bool = False
    #: Simulated server-side service time for this response.  Gray-failure
    #: faults (:class:`~repro.faults.gray.SlowServer`) inflate it, and the
    #: health monitor's latency-aware detection reads it back out — a slow
    #: server answers *correctly but late*, which no status code shows.
    latency_s: float = 0.0


@dataclass(slots=True, eq=False)
class Connection:
    """A client↔edge connection after TLS establishment.

    ``certificate`` is what the server presented; ``remote_addr`` is the IP
    the client dialled.  ``authorities`` records every hostname that has
    been requested over it — breadth of coalescing in practice.
    """

    version: HTTPVersion
    remote_addr: IPAddress
    remote_port: int
    certificate: Certificate
    sni: str | None = None
    conn_id: int = field(default_factory=lambda: next(_conn_ids))
    requests: int = 0
    bytes: int = 0
    authorities: set[str] = field(default_factory=set)
    closed: bool = False

    @property
    def transport(self) -> Protocol:
        return self.version.transport

    def record(self, request: Request, response: Response) -> None:
        if self.closed:
            raise RuntimeError(f"connection {self.conn_id} is closed")
        self.requests += 1
        self.bytes += response.body_len
        self.authorities.add(request.authority)

    def can_coalesce(self, authority: str, resolved: list[IPAddress],
                     ip_match: str = "exact") -> bool:
        """RFC 7540 §9.1.1: may ``authority`` ride this connection?

        Condition 1: the presented certificate must cover the authority.
        Condition 2 (h2 only): the authority's resolved addresses must
        match the connection.  Browsers disagree on "match" (paper
        footnote 5): ``ip_match="exact"`` requires the connection's address
        to appear in the new resolution; ``ip_match="intersect"`` models
        browsers that accept any transitive intersection — here equivalent
        to exact since we compare against one connection address;
        ``ip_match="none"`` disables the check (h3 semantics).
        """
        if self.closed or not self.version.multiplexes:
            return False
        if not self.certificate.covers(authority):
            return False
        if not self.version.requires_ip_match_for_coalescing or ip_match == "none":
            return True
        if not resolved:
            return False
        return self.remote_addr in resolved

    def close(self) -> None:
        self.closed = True
