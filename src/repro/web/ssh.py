"""An ssh-like client: the known_hosts concern of §4.4/§5.1.

§4.4: "One service that might be adversely affected by randomized IPs is
ssh, which maintains a known_hosts file that stores the hostname-to-IP
address mapping, and issues a warning when the IP address used to connect
is different than is stored in the file."  §5.1 adds that one-address
"preserves any semantics ascribed to IP addresses such as SSH's
known_hosts".

The model implements the relevant slice of OpenSSH behaviour: per
(hostname, address) host-key pinning, the `CheckHostIP`-style warning when
a known host shows up on a new address, and hard failure when a *key*
changes (a real MITM signal, which addressing agility must never produce —
the edge's key is per-hostname, not per-address).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.addr import IPAddress

__all__ = ["HostKeyChangedError", "SSHConnectResult", "KnownHostsClient"]


class HostKeyChangedError(Exception):
    """The host presented a different key — the real alarm."""


@dataclass(frozen=True, slots=True)
class SSHConnectResult:
    hostname: str
    address: IPAddress
    new_host: bool
    ip_warning: bool  # known host, previously unseen address


class KnownHostsClient:
    """Tracks hostname→{addresses} and hostname→key like a known_hosts file."""

    def __init__(self, check_host_ip: bool = True) -> None:
        self.check_host_ip = check_host_ip
        self._addresses: dict[str, set[IPAddress]] = {}
        self._keys: dict[str, str] = {}
        self.warnings = 0

    def connect(self, hostname: str, address: IPAddress, host_key: str) -> SSHConnectResult:
        """One connection attempt; records the binding it observes."""
        hostname = hostname.lower().rstrip(".")
        known_key = self._keys.get(hostname)
        if known_key is not None and known_key != host_key:
            raise HostKeyChangedError(
                f"{hostname}: host key changed (was {known_key!r}, got {host_key!r})"
            )
        new_host = known_key is None
        self._keys[hostname] = host_key

        seen = self._addresses.setdefault(hostname, set())
        ip_warning = (
            self.check_host_ip and not new_host and address not in seen
        )
        if ip_warning:
            self.warnings += 1
        seen.add(address)
        return SSHConnectResult(
            hostname=hostname, address=address, new_host=new_host, ip_warning=ip_warning
        )

    def known_addresses(self, hostname: str) -> set[IPAddress]:
        return set(self._addresses.get(hostname.lower().rstrip("."), ()))
