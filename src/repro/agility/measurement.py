"""The §6 measurement experiment: DC2 spillover from resolver–client mismatch.

The incident the paper reports: DC1 ran the test policy; the prefix *p*
was also advertised from failover DC2 (600 km away), whose own DNS was
unaltered.  "Despite DC2's intended purpose as a failover, DC2 received
significant legitimate traffic on the IP addresses that could only be
learned via DNS queries to DC1 … because the DNS queries of some clients
closest to DC2 are handled by ISP resolvers that are closest to DC1."

The mechanism is a catchment mismatch between a client and its resolver.
This module builds such mismatched client/resolver pairs explicitly and
measures how much traffic lands at each DC on the test-pool addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import Clock
from ..dns.resolver import RecursiveResolver
from ..dns.stub import StubResolver
from ..edge.cdn import CDN
from ..netsim.addr import Prefix
from ..web.client import BrowserClient
from ..web.http import HTTPVersion

__all__ = ["SpilloverReport", "build_mismatched_client", "measure_spillover"]


@dataclass(frozen=True, slots=True)
class SpilloverReport:
    """Per-DC traffic on the test pool's addresses."""

    requests_on_pool: dict[str, int]   # datacenter → requests on pool addrs
    total_requests: dict[str, int]     # datacenter → all requests
    pool: Prefix

    def share_at(self, datacenter: str) -> float:
        total = self.total_requests.get(datacenter, 0)
        if total == 0:
            return 0.0
        return self.requests_on_pool.get(datacenter, 0) / total

    def spillover_share(self, dns_pop: str) -> float:
        """Fraction of all pool traffic that did NOT land at ``dns_pop``.

        Under perfect catchment alignment this is ~0; the paper found it
        "significant" — and higher for IPv6 than IPv4.
        """
        on_pool = sum(self.requests_on_pool.values())
        if on_pool == 0:
            return 0.0
        return 1.0 - self.requests_on_pool.get(dns_pop, 0) / on_pool


def build_mismatched_client(
    cdn: CDN,
    clock: Clock,
    client_asn: object,
    resolver_asn: object,
    name: str | None = None,
    version: HTTPVersion = HTTPVersion.H2,
) -> BrowserClient:
    """A browser whose DNS goes via ``resolver_asn`` but whose packets
    route from ``client_asn`` — the catchment-mismatch client.

    With ``resolver_asn == client_asn`` this builds an aligned client,
    handy for control groups.
    """
    resolver = RecursiveResolver(
        name=f"res-{resolver_asn}",
        clock=clock,
        transport=cdn.dns_transport(resolver_asn),
        tcp_transport=cdn.dns_transport(resolver_asn, protocol="tcp"),
        asn=resolver_asn,
    )
    client_name = name or f"client-{client_asn}-via-{resolver_asn}"
    stub = StubResolver(f"stub-{client_name}", clock, resolver)
    return BrowserClient(
        name=client_name,
        stub=stub,
        transport=cdn.transport_for(client_asn),
        version=version,
    )


def measure_spillover(cdn: CDN, pool: Prefix) -> SpilloverReport:
    """Read every DC's traffic log and split it by pool membership."""
    on_pool: dict[str, int] = {}
    totals: dict[str, int] = {}
    for name, dc in cdn.datacenters.items():
        total = 0
        hits = 0
        for address, traffic in dc.traffic.by_address().items():
            total += traffic.requests
            if address in pool:
                hits += traffic.requests
        totals[name] = total
        on_pool[name] = hits
    return SpilloverReport(requests_on_pool=on_pool, total_requests=totals, pool=pool)
