"""Agility-enabled systems from the paper's §6: leaks, DoS, colouring,
measurement."""

from .coloring import (
    ColoringResult,
    build_conflict_graph,
    color_datacenters,
    verify_coloring,
)
from .dos import (
    AttackObserver,
    DoSVerdict,
    KarySearchMitigator,
    L7Attacker,
    L34Attacker,
    ResolvingL7Attacker,
    isolation_time_bound,
)
from .leaks import LeakAlert, LeakMitigator, RouteLeakDetector
from .measurement import SpilloverReport, build_mismatched_client, measure_spillover

__all__ = [
    "ColoringResult",
    "build_conflict_graph",
    "color_datacenters",
    "verify_coloring",
    "AttackObserver",
    "DoSVerdict",
    "KarySearchMitigator",
    "L7Attacker",
    "L34Attacker",
    "ResolvingL7Attacker",
    "isolation_time_bound",
    "LeakAlert",
    "LeakMitigator",
    "RouteLeakDetector",
    "SpilloverReport",
    "build_mismatched_client",
    "measure_spillover",
]
