"""Route-leak detection and mitigation for anycast (§6, Figure 9).

The design, per the paper: every PoP announces the same prefix; a DNS
policy gives each PoP a *unique* address within it ("*.25 for PoP-A, *.26
for PoP-B, *.78 for PoP-X").  All ensuing request traffic at a PoP should
arrive on its own address — traffic on another PoP's address, in either
direction, indicates misdirection.  Detection is at DNS-TTL timescales;
mitigation is "keep the policy, but change the prefix" to a backup that is
already advertised.

:class:`RouteLeakDetector` consumes per-PoP traffic logs (the counters
every PoP already keeps) and the expected per-PoP address map;
:class:`LeakMitigator` executes the pool swap through the agility
controller and reports the propagation horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..clock import Clock
from ..core.agility import AgilityController, AgilityOperation
from ..core.pool import AddressPool
from ..core.strategies import PerPopAssignment
from ..edge.datacenter import TrafficLog
from ..netsim.addr import IPAddress

__all__ = ["LeakAlert", "RouteLeakDetector", "LeakMitigator"]


@dataclass(frozen=True, slots=True)
class LeakAlert:
    """Misdirected traffic observed at one PoP.

    ``observed_at`` received ``requests`` requests on ``address`` — the
    address that DNS only ever hands to queries landing at ``expected_pop``.
    """

    observed_at: str
    address: IPAddress
    expected_pop: str
    requests: int
    share_of_pop_traffic: float


class RouteLeakDetector:
    """Catchment-consistency monitor over per-PoP unique addresses."""

    def __init__(
        self,
        pool: AddressPool,
        assignment: PerPopAssignment,
        pops: list[str],
        min_requests: int = 5,
        min_share: float = 0.01,
    ) -> None:
        """``min_requests``/``min_share`` suppress the small legitimate
        bleed the paper expects ("PoP-A may see a small amount of traffic
        arrive on *.26") from resolver/client catchment mismatch."""
        self.pool = pool
        self.assignment = assignment
        self.pops = list(pops)
        self.min_requests = min_requests
        self.min_share = min_share

    def expected_addresses(self) -> dict[str, IPAddress]:
        return {pop: self.assignment.address_for_pop(self.pool, pop) for pop in self.pops}

    def scan(self, traffic_by_pop: dict[str, TrafficLog]) -> list[LeakAlert]:
        """Compare observed per-address traffic against expectations."""
        expectations = self.expected_addresses()
        owner_of = {address: pop for pop, address in expectations.items()}
        alerts: list[LeakAlert] = []
        for pop, log in traffic_by_pop.items():
            own_address = expectations.get(pop)
            total = log.total_requests()
            if total == 0:
                continue
            for address, traffic in log.by_address().items():
                owner = owner_of.get(address)
                if owner is None or owner == pop or address == own_address:
                    continue
                share = traffic.requests / total
                if traffic.requests >= self.min_requests and share >= self.min_share:
                    alerts.append(
                        LeakAlert(
                            observed_at=pop,
                            address=address,
                            expected_pop=owner,
                            requests=traffic.requests,
                            share_of_pop_traffic=share,
                        )
                    )
        alerts.sort(key=lambda a: a.requests, reverse=True)
        return alerts

    def victims(self, alerts: list[LeakAlert]) -> set[str]:
        """PoPs whose clients are being misdirected elsewhere."""
        return {a.expected_pop for a in alerts}


class LeakMitigator:
    """Mitigation: keep the policy, change the prefix (§6).

    The backup pool's prefix must already be advertised ("if the
    mitigation prefix is already advertised and known to the Internet,
    then mitigation is complete also at DNS TTL timescales") — enforced by
    requiring the caller to pass a ready :class:`AddressPool`.
    """

    def __init__(self, controller: AgilityController, clock: Clock) -> None:
        self.controller = controller
        self.clock = clock

    def mitigate(self, policy_name: str, backup_pool: AddressPool) -> AgilityOperation:
        """Swap the leaked policy onto the backup pool; returns the op,
        whose ``propagation_horizon`` is the paper's TTL-bounded completion
        time."""
        return self.controller.swap_pool(policy_name, backup_pool)
