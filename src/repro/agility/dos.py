"""DoS mitigation at the speed of TTLs: the §6 k-ary search.

The paper's procedure, verbatim:

1. an attack is detected; set DNS TTL to a small value *t*;
2. partition the n affected services randomly into k disjoint sets of
   size ⌈n/k⌉;
3. map each set to the i-th address in the range.

"If the attack follows a slice then there is a named target; repeat from
(2) on the affected slice.  Otherwise the attack continues on the starting
address, meaning that it is layer 3/4.  Assuming DNS caches respect TTL
values, then the worst case time to isolate the attack from services is
TTL + t·⌈log_k n⌉."

The search runs against an :class:`AttackObserver` — the DDoS telemetry
that reports which addresses are absorbing attack traffic each round.  Two
observers model the two attacker classes: :class:`L7Attacker` re-resolves
its target hostnames every round (follows DNS), :class:`L34Attacker`
floods fixed addresses and never re-resolves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol as TypingProtocol

from ..clock import Clock
from ..core.agility import AgilityController
from ..core.policy import PolicyEngine
from ..core.pool import AddressPool
from ..core.strategies import MappedAssignment
from ..netsim.addr import IPAddress

__all__ = [
    "AttackObserver",
    "L7Attacker",
    "L34Attacker",
    "DoSVerdict",
    "KarySearchMitigator",
    "isolation_time_bound",
]


def isolation_time_bound(n: int, k: int, initial_ttl: int, probe_ttl: int) -> float:
    """The paper's worst case: TTL + t·⌈log_k n⌉."""
    if n <= 0 or k <= 1:
        raise ValueError("need n >= 1 services and k >= 2 slices")
    rounds = math.ceil(math.log(max(n, 2), k))
    return initial_ttl + probe_ttl * rounds


class AttackObserver(TypingProtocol):
    """DDoS telemetry: which addresses drew attack traffic this round?

    The mitigator publishes the current hostname→address mapping (what a
    DNS-following attacker would observe after caches expire) and receives
    the set of addresses under attack.
    """

    def attacked_addresses(self, mapping: dict[str, IPAddress]) -> set[IPAddress]:
        ...


@dataclass(slots=True)
class L7Attacker:
    """An application-layer attacker that resolves its targets each round."""

    targets: set[str]

    def attacked_addresses(self, mapping: dict[str, IPAddress]) -> set[IPAddress]:
        return {mapping[t] for t in self.targets if t in mapping}


@dataclass(slots=True)
class L34Attacker:
    """A volumetric attacker aimed at fixed addresses (SYN/UDP flood)."""

    addresses: set[IPAddress]

    def attacked_addresses(self, mapping: dict[str, IPAddress]) -> set[IPAddress]:
        return set(self.addresses)


class ResolvingL7Attacker:
    """An L7 attacker that *actually resolves* its targets through DNS.

    Unlike :class:`L7Attacker` (which reads the published mapping — an
    oracle), this attacker holds a real resolver with a real TTL cache, so
    the search only observes movement after caches expire: the TTL
    dynamics in the paper's bound are exercised rather than assumed.  It
    ignores the mapping argument entirely.
    """

    def __init__(self, targets: set[str], resolver) -> None:
        """``resolver`` is any object with ``resolve_addresses(name)``
        (e.g. :class:`repro.dns.resolver.RecursiveResolver`)."""
        self.targets = set(targets)
        self.resolver = resolver

    def attacked_addresses(self, mapping: dict[str, IPAddress]) -> set[IPAddress]:
        attacked: set[IPAddress] = set()
        for target in self.targets:
            try:
                attacked.update(self.resolver.resolve_addresses(target))
            except Exception:
                continue  # a target that stops resolving just drops out
        return attacked


@dataclass(frozen=True, slots=True)
class DoSVerdict:
    """Outcome of a k-ary search."""

    kind: str                       # "L7" or "L3/4"
    isolated: frozenset[str]        # named targets (empty for L3/4)
    rounds: int
    elapsed: float                  # simulated seconds from detection
    bound: float                    # the paper's worst-case formula

    @property
    def within_bound(self) -> bool:
        return self.elapsed <= self.bound + 1e-9


class KarySearchMitigator:
    """Runs the §6 k-ary search over a policy's hostname set.

    The policy must use a :class:`MappedAssignment` strategy (the search
    *is* bulk map updates).  Slices map onto consecutive pool addresses
    starting at index 1; index 0 is the "starting address" where unsliced
    services remain — an attack that stays there while slices move is, by
    the paper's logic, layer 3/4.
    """

    def __init__(
        self,
        controller: AgilityController,
        policy_name: str,
        clock: Clock,
        k: int = 8,
        probe_ttl: int = 5,
        rng: random.Random | None = None,
    ) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        if probe_ttl <= 0:
            raise ValueError("probe TTL must be positive")
        self.controller = controller
        self.policy_name = policy_name
        self.clock = clock
        self.k = k
        self.probe_ttl = probe_ttl
        self._rng = rng or random.Random(0xD05)

    def run(self, services: list[str], observer: AttackObserver, max_rounds: int = 64) -> DoSVerdict:
        """Execute the search; returns the verdict with timing."""
        engine: PolicyEngine = self.controller.engine
        policy = engine.get(self.policy_name)
        strategy = policy.strategy
        if not isinstance(strategy, MappedAssignment):
            raise TypeError("k-ary search requires a MappedAssignment strategy")
        pool: AddressPool = policy.pool
        if pool.size < self.k + 1:
            raise ValueError(
                f"pool has {pool.size} addresses; k={self.k} search needs k+1"
            )

        start = self.clock.now()
        initial_ttl = policy.ttl
        home = pool.address_at(0)
        bound = isolation_time_bound(len(services), self.k, initial_ttl, self.probe_ttl)

        # Step 1: detection → drop TTL; old cached answers drain for
        # initial_ttl before the first probe round is observable.
        self.controller.set_ttl(self.policy_name, self.probe_ttl)
        self.clock.advance(initial_ttl)

        candidates = sorted(services)
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            slices = self._partition(candidates)
            mapping: dict[str, IPAddress] = {}
            strategy.clear()
            strategy.assign_many(set(), home)  # no-op; keeps intent explicit
            for i, chunk in enumerate(slices):
                address = pool.address_at(1 + (i % (pool.size - 1)))
                strategy.assign_many(chunk, address)
                for hostname in chunk:
                    mapping[hostname] = address

            # Wait one probe TTL for caches to turn over, then observe.
            self.clock.advance(self.probe_ttl)
            attacked = observer.attacked_addresses(mapping)

            hit_slices = [
                chunk
                for i, chunk in enumerate(slices)
                if pool.address_at(1 + (i % (pool.size - 1))) in attacked
            ]
            if not hit_slices:
                # Attack did not follow any slice: volumetric, address-pinned.
                return DoSVerdict(
                    kind="L3/4",
                    isolated=frozenset(),
                    rounds=rounds,
                    elapsed=self.clock.now() - start,
                    bound=bound,
                )
            candidates = sorted(set().union(*[set(c) for c in hit_slices]))
            if len(candidates) <= 1 or all(len(c) == 1 for c in hit_slices):
                isolated = frozenset(
                    h for chunk in hit_slices for h in chunk
                ) if all(len(c) == 1 for c in hit_slices) else frozenset(candidates)
                return DoSVerdict(
                    kind="L7",
                    isolated=isolated,
                    rounds=rounds,
                    elapsed=self.clock.now() - start,
                    bound=bound,
                )
        raise RuntimeError("k-ary search did not converge")

    def _partition(self, candidates: list[str]) -> list[list[str]]:
        """Step 2: random disjoint slices of size ⌈n/k⌉."""
        shuffled = list(candidates)
        self._rng.shuffle(shuffled)
        size = math.ceil(len(shuffled) / self.k)
        return [shuffled[i:i + size] for i in range(0, len(shuffled), size)]
