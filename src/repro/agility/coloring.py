"""Traffic tuning across anycast datacenters via map colouring (§6).

"A colour is equivalent to a BGP prefix announcement, such that each
datacenter in an anycast network advertises only one colour (or prefix)
from the set" — neighbouring/conflicting datacenters must advertise
different prefixes so their catchments can be steered independently.

The conflict graph's edges encode "these two DCs must be distinguishable"
(default: geographic proximity — nearby DCs fight over the same clients).
Colouring is networkx's greedy heuristics, taking the best result across
strategies; the module also verifies a colouring and derives the per-DC
prefix assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..netsim.anycast import AnycastNetwork
from ..netsim.addr import Prefix
from ..netsim.geo import great_circle_km

__all__ = ["ColoringResult", "build_conflict_graph", "color_datacenters", "verify_coloring"]

_GREEDY_STRATEGIES = (
    "largest_first",
    "smallest_last",
    "independent_set",
    "connected_sequential_bfs",
    "saturation_largest_first",
)


@dataclass(frozen=True, slots=True)
class ColoringResult:
    """A prefix-per-datacenter assignment."""

    colors: dict[str, int]            # datacenter → colour index
    num_colors: int
    prefix_of: dict[str, Prefix]      # datacenter → advertised prefix

    def datacenters_of_color(self, color: int) -> list[str]:
        return sorted(dc for dc, c in self.colors.items() if c == color)


def build_conflict_graph(network: AnycastNetwork, conflict_km: float = 2500.0) -> nx.Graph:
    """Edges between PoPs closer than ``conflict_km`` (contended catchments)."""
    graph = nx.Graph()
    pops = list(network.pops.values())
    graph.add_nodes_from(p.name for p in pops)
    for i, a in enumerate(pops):
        for b in pops[i + 1:]:
            if great_circle_km(a.location, b.location) <= conflict_km:
                graph.add_edge(a.name, b.name)
    return graph


def color_datacenters(graph: nx.Graph, prefixes: list[Prefix]) -> ColoringResult:
    """Colour the conflict graph and assign one prefix per colour.

    Tries several greedy strategies and keeps the fewest-colours result
    (the paper wants "the smallest number of colours needed").  Raises if
    the available prefixes cannot cover the chromatic upper bound found.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("conflict graph has no datacenters")
    best: dict[str, int] | None = None
    for strategy in _GREEDY_STRATEGIES:
        coloring = nx.greedy_color(graph, strategy=strategy)
        if best is None or max(coloring.values(), default=0) < max(best.values(), default=0):
            best = coloring
    assert best is not None
    num_colors = max(best.values()) + 1
    if num_colors > len(prefixes):
        raise ValueError(
            f"colouring needs {num_colors} prefixes but only {len(prefixes)} provided"
        )
    prefix_of = {dc: prefixes[color] for dc, color in best.items()}
    return ColoringResult(colors=dict(best), num_colors=num_colors, prefix_of=prefix_of)


def verify_coloring(graph: nx.Graph, result: ColoringResult) -> bool:
    """No conflicting pair shares a colour (region isolation holds)."""
    return all(result.colors[u] != result.colors[v] for u, v in graph.edges)
