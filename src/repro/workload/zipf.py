"""Zipf popularity: the reason Figure 7a spans orders of magnitude.

Web requests concentrate on few hostnames: the paper's pre-agility per-IP
load differs by "~4–6 orders of magnitude" across 8192 addresses precisely
because per-IP load inherits hostname popularity under static binding.
A bounded Zipf distribution with exponent ``s`` reproduces that shape; the
exponent is the ablation knob of experiment A2.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["ZipfDistribution"]


class ZipfDistribution:
    """Bounded Zipf over ranks ``0 .. n-1`` with exponent ``s``.

    ``P(rank=k) ∝ 1/(k+1)^s``.  Sampling uses inverse-CDF over the exact
    normalised weights (numpy), so small universes are exact and large
    ones cost O(n) setup + O(log n) per draw.
    """

    def __init__(self, n: int, s: float = 1.0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if s < 0:
            raise ValueError("exponent must be non-negative")
        self.n = n
        self.s = s
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
        self._cdf = np.cumsum(weights)
        self._total = float(self._cdf[-1])
        self._cdf /= self._total
        self._weights = weights / self._total

    def pmf(self, rank: int) -> float:
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} outside 0..{self.n - 1}")
        return float(self._weights[rank])

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return int(np.searchsorted(self._cdf, rng.random(), side="right"))

    def sample_many(self, k: int, seed: int) -> np.ndarray:
        """Draw ``k`` ranks vectorised (numpy RNG seeded for determinism)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        npr = np.random.default_rng(seed)
        u = npr.random(k)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def expected_counts(self, total_requests: int) -> np.ndarray:
        """E[requests] per rank for a given request volume."""
        return self._weights * total_requests

    def head_share(self, top: int) -> float:
        """Fraction of traffic owned by the ``top`` most popular ranks."""
        if not 0 < top <= self.n:
            raise ValueError(f"top must be in 1..{self.n}")
        return float(self._cdf[top - 1])
