"""Request and query traffic generation.

Two generators feed the experiments:

* :class:`RequestStream` — flat per-request sampling (Zipf over sites),
  used for the Figure 7 load-distribution runs where only (hostname,
  bytes) matter and volume is large;
* :class:`SessionGenerator` — page-view sessions (a site plus its asset
  hosts, several pages per session) for the Figure 8 coalescing runs,
  where *sequencing within a browsing context* is what creates reuse
  opportunities.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterator

from ..netsim.addr import IPAddress
from .hostnames import HostnameUniverse
from .zipf import ZipfDistribution

__all__ = [
    "RequestStream",
    "PageView",
    "Session",
    "SessionGenerator",
    "batched",
]

#: Client sources are synthesised in CGNAT space (RFC 6598, 100.64/10),
#: matching how the CDN transport fabricates eyeball addresses.
_CLIENT_SRC_BASE = 0x64400000  # 100.64.0.0


def batched(items: Iterator[str] | list[str], batch_size: int) -> Iterator[list[str]]:
    """Chunk any iterable into lists of ``batch_size`` (last may be short).

    The batching primitive under every batched driver: generators stay
    lazy, so a million-request workload never materialises at once — each
    batch is built, pushed through a ``*_batch`` API, and dropped.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch: list = []
    append = batch.append
    for item in items:
        append(item)
        if len(batch) >= batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


@dataclass(frozen=True, slots=True)
class PageView:
    """One page load: the primary site and the resources it pulls."""

    site: str
    resources: tuple[tuple[str, str], ...]  # (hostname, path) pairs


@dataclass(frozen=True, slots=True)
class Session:
    """A browsing session: ordered page views by one client."""

    client_id: int
    pages: tuple[PageView, ...]


class RequestStream:
    """Zipf-popularity request sampling over a universe's sites."""

    def __init__(self, universe: HostnameUniverse, zipf_s: float = 1.1) -> None:
        self.universe = universe
        self.zipf = ZipfDistribution(universe.num_sites, zipf_s)

    def sample_hostnames(self, n: int, seed: int, include_assets: bool = True) -> Iterator[str]:
        """Yield ``n`` request hostnames.

        With ``include_assets`` each sampled page view emits its asset
        hostnames too (asset requests inherit the site's popularity), so
        the hostname-level distribution matches real traffic where one
        popular site fans into several hot hostnames.
        """
        rng = random.Random(seed)
        ranks = self.zipf.sample_many(max(1, n // (1 + self.universe.config.assets_per_site)), seed)
        emitted = 0
        for rank in ranks:
            site = self.universe.site(int(rank))
            for hostname in self.universe.page_resources(site):
                yield hostname
                emitted += 1
                if emitted >= n:
                    return
        # Top up with pure site samples if pages under-filled the quota.
        while emitted < n:
            yield self.universe.site(self.zipf.sample(rng))
            emitted += 1

    def sample_batches(
        self,
        n: int,
        seed: int,
        batch_size: int = 1024,
        include_assets: bool = True,
    ) -> Iterator[list[str]]:
        """Yield ``n`` request hostnames in ``batch_size`` chunks.

        The batched workload driver: experiments push each chunk through
        the edge's ``connect_batch``/``serve_batch`` (or the lookup path's
        ``dispatch_batch``) so runs of millions of requests pay per-batch,
        not per-request, orchestration overhead — and never hold more than
        one batch in memory.
        """
        return batched(self.sample_hostnames(n, seed, include_assets), batch_size)

    def sample_flow_batches(
        self,
        n: int,
        seed: int,
        batch_size: int = 1024,
        include_assets: bool = True,
    ) -> Iterator[tuple[list[str], list[IPAddress], list[int]]]:
        """Yield struct-of-arrays flow columns: ``(hostnames, src_addrs,
        src_ports)``, each batch's columns parallel.

        The flow-engine feed: hostnames follow the Zipf workload exactly
        like :meth:`sample_batches`, while source addresses (CGNAT space)
        and ephemeral ports are drawn per flow from a second seeded RNG —
        distinct 5-tuples, deterministic corpus.  Columns stay plain lists
        so the caller can hand them straight to
        ``FlowBatch(hostnames, src_addrs, src_ports)`` (or any scalar
        loop) without reshaping.
        """
        rng = random.Random(seed ^ 0x5F10)
        for hostnames in self.sample_batches(n, seed, batch_size, include_assets):
            src_addrs = [
                IPAddress.v4(_CLIENT_SRC_BASE + rng.randrange(1 << 22))
                for _ in hostnames
            ]
            src_ports = [20_000 + rng.randrange(40_000) for _ in hostnames]
            yield hostnames, src_addrs, src_ports


class SessionGenerator:
    """Browsing sessions for the coalescing experiment.

    Each session: ``pages_mean`` page views (geometric), mostly within one
    site's ecosystem with occasional navigation to another Zipf-sampled
    site — the revisit structure that makes connection reuse valuable.
    """

    def __init__(
        self,
        universe: HostnameUniverse,
        zipf_s: float = 1.1,
        pages_mean: float = 4.0,
        paths_per_page: int = 6,
        same_site_stickiness: float = 0.6,
    ) -> None:
        if pages_mean < 1:
            raise ValueError("pages_mean must be >= 1")
        if not 0 <= same_site_stickiness <= 1:
            raise ValueError("stickiness must be in [0, 1]")
        self.universe = universe
        self.zipf = ZipfDistribution(universe.num_sites, zipf_s)
        self.pages_mean = pages_mean
        self.paths_per_page = paths_per_page
        self.stickiness = same_site_stickiness

    def _page(self, site: str, rng: random.Random) -> PageView:
        resources: list[tuple[str, str]] = [(site, "/")]
        hosts = self.universe.page_resources(site)
        for i in range(self.paths_per_page - 1):
            host = rng.choice(hosts)
            resources.append((host, f"/r/{rng.randrange(1_000_000)}"))
        return PageView(site=site, resources=tuple(resources))

    def session(self, client_id: int, seed: int) -> Session:
        rng = random.Random(seed)
        # Geometric page count with mean pages_mean.
        p = 1.0 / self.pages_mean
        pages: list[PageView] = []
        site = self.universe.site(self.zipf.sample(rng))
        while True:
            pages.append(self._page(site, rng))
            if rng.random() < p:
                break
            if rng.random() > self.stickiness:
                site = self.universe.site(self.zipf.sample(rng))
        return Session(client_id=client_id, pages=tuple(pages))

    def sessions(self, n: int, seed: int) -> Iterator[Session]:
        for i in range(n):
            yield self.session(client_id=i, seed=seed * 1_000_003 + i)
