"""Client populations: eyeball ASes, shared resolvers, browser mixes.

§4.4's point — traffic per returned address depends on "the number and
behaviour of downstream resolvers and clients" — means the experiments
need a *population*: many clients behind few shared recursive resolvers,
a share of TTL-violating resolvers, and a browser mix (H2 / H3 / legacy
H1, matching Figure 8's note that samples include "connections from
HTTP/1 and older browsers that do not support connection reuse").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..clock import Clock
from ..dns.cache import TTLPolicy
from ..dns.resolver import RecursiveResolver
from ..dns.stub import StubResolver
from ..edge.cdn import CDN
from ..web.client import BrowserClient
from ..web.http import HTTPVersion

__all__ = ["PopulationConfig", "ClientPopulation"]


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    clients_per_resolver: int = 10
    ttl_violator_share: float = 0.15   # resolvers that clamp TTLs up
    ttl_clamp_min: int = 300
    h3_share: float = 0.25
    h1_share: float = 0.10
    seed: int = 42


class ClientPopulation:
    """Browser clients attached to a CDN through shared resolvers.

    One recursive resolver per eyeball AS; ``clients_per_resolver``
    browsers behind each, with per-browser stub caches.  Version and
    TTL-policy mixes are drawn deterministically from the config seed.
    """

    def __init__(
        self,
        cdn: CDN,
        clock: Clock,
        eyeball_ases: list[object],
        config: PopulationConfig | None = None,
    ) -> None:
        if not eyeball_ases:
            raise ValueError("population needs at least one eyeball AS")
        self.cdn = cdn
        self.clock = clock
        self.config = config or PopulationConfig()
        self.resolvers: dict[object, RecursiveResolver] = {}
        self.clients: list[BrowserClient] = []
        self._client_asn: dict[str, object] = {}
        rng = random.Random(self.config.seed)

        for asn in eyeball_ases:
            policy = (
                TTLPolicy.clamping(self.config.ttl_clamp_min)
                if rng.random() < self.config.ttl_violator_share
                else TTLPolicy.honest()
            )
            resolver = RecursiveResolver(
                name=f"res-{asn}",
                clock=clock,
                transport=cdn.dns_transport(asn),
                tcp_transport=cdn.dns_transport(asn, protocol="tcp"),
                ttl_policy=policy,
                asn=asn,
            )
            self.resolvers[asn] = resolver
            for i in range(self.config.clients_per_resolver):
                name = f"client-{asn}-{i}"
                version = self._pick_version(rng)
                stub = StubResolver(f"stub-{name}", clock, resolver)
                client = BrowserClient(
                    name=name,
                    stub=stub,
                    transport=cdn.transport_for(asn),
                    version=version,
                )
                self.clients.append(client)
                self._client_asn[name] = asn

    def _pick_version(self, rng: random.Random) -> HTTPVersion:
        u = rng.random()
        if u < self.config.h3_share:
            return HTTPVersion.H3
        if u < self.config.h3_share + self.config.h1_share:
            return HTTPVersion.H1
        return HTTPVersion.H2

    # -- access ----------------------------------------------------------------

    def asn_of(self, client: BrowserClient) -> object:
        return self._client_asn[client.name]

    def clients_by_version(self, version: HTTPVersion) -> list[BrowserClient]:
        return [c for c in self.clients if c.version is version]

    def close_all_connections(self) -> None:
        for client in self.clients:
            client.close_all()

    def flush_dns(self) -> None:
        for resolver in self.resolvers.values():
            resolver.cache.flush()
        for client in self.clients:
            client.stub.cache.flush()

    def __len__(self) -> int:
        return len(self.clients)
