"""Hostname universes: synthetic stand-ins for the 20M+ production zones.

The deployment serves "20+ million hostnames" across customer accounts of
varying account types.  A :class:`HostnameUniverse` builds a scaled-down
but structurally matching population: customers with heavy-tailed site
counts, account types in realistic proportions (free tiers dominate), one
origin per customer, and subdomain "asset" hostnames that pages pull from
— the multi-hostname structure HTTP/2 coalescing (Figure 8) feeds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..edge.customers import AccountType, Customer, CustomerRegistry
from ..hashing import stable_hash
from ..web.origin import OriginPool, OriginServer, SizeModel

__all__ = ["UniverseConfig", "HostnameUniverse", "lognormal_sizes"]

#: Account-type mix: free tiers dominate real CDN populations.
_ACCOUNT_MIX = (
    (AccountType.FREE, 0.80),
    (AccountType.PRO, 0.12),
    (AccountType.BUSINESS, 0.06),
    (AccountType.ENTERPRISE, 0.02),
)


def lognormal_sizes(median_bytes: float = 20_000.0, sigma: float = 1.2, seed: int = 7) -> SizeModel:
    """Deterministic per-(hostname, path) object sizes, log-normal shaped.

    Web object sizes are famously log-normal-ish with a heavy tail; bytes
    per IP in Figure 7 sweeps ~5 orders of magnitude partly because of it.
    Each (hostname, path) hashes to its own stable draw.
    """
    import math

    mu = math.log(median_bytes)

    def model(hostname: str, path: str) -> int:
        rng = random.Random(stable_hash(seed, hostname, path) & 0xFFFFFFFFFFFF)
        return max(64, int(rng.lognormvariate(mu, sigma)))

    return model


@dataclass(frozen=True, slots=True)
class UniverseConfig:
    """Shape of the synthetic hostname population."""

    num_hostnames: int = 10_000
    assets_per_site: int = 3          # img./static./cdn. style subdomains
    customer_site_zipf: float = 1.2   # heavy tail of sites per customer
    max_sites_per_customer: int = 500
    domain_suffix: str = "example"
    seed: int = 1701


class HostnameUniverse:
    """Builds and owns the registry, origins, and hostname list."""

    def __init__(self, config: UniverseConfig | None = None) -> None:
        self.config = config or UniverseConfig()
        self.registry = CustomerRegistry()
        self.origins = OriginPool()
        self.sites: list[str] = []       # primary hostnames (zipf-ranked)
        self.hostnames: list[str] = []   # all hostnames incl. assets
        self._assets_of: dict[str, list[str]] = {}
        self._build()

    def _build(self) -> None:
        cfg = self.config
        rng = random.Random(cfg.seed)
        size_model = lognormal_sizes(seed=cfg.seed)

        site_index = 0
        customer_index = 0
        while site_index < cfg.num_hostnames:
            account = self._pick_account(rng)
            # Heavy-tailed sites per customer, truncated.
            n_sites = min(
                cfg.max_sites_per_customer,
                max(1, int(rng.paretovariate(cfg.customer_site_zipf))),
                cfg.num_hostnames - site_index,
            )
            customer = Customer(f"cust{customer_index:06d}", account)
            names: set[str] = set()
            for _ in range(n_sites):
                site = f"site{site_index:07d}.{cfg.domain_suffix}.com"
                assets = [
                    f"{prefix}.site{site_index:07d}.{cfg.domain_suffix}.com"
                    for prefix in ("img", "static", "api", "media", "assets")[: cfg.assets_per_site]
                ]
                names.add(site)
                names.update(assets)
                self.sites.append(site)
                self._assets_of[site] = assets
                site_index += 1
            customer.hostnames = names
            self.registry.add(customer)
            self.origins.add(OriginServer(f"origin-{customer.name}", set(names), size_model))
            customer_index += 1

        self.hostnames = sorted(
            h for customer in self.registry.customers() for h in customer.hostnames
        )

    @staticmethod
    def _pick_account(rng: random.Random) -> AccountType:
        u = rng.random()
        acc = 0.0
        for account, share in _ACCOUNT_MIX:
            acc += share
            if u < acc:
                return account
        return _ACCOUNT_MIX[-1][0]

    # -- access ------------------------------------------------------------

    def site(self, rank: int) -> str:
        """The ``rank``-th most popular site (rank 0 = most popular)."""
        return self.sites[rank]

    def assets_of(self, site: str) -> list[str]:
        return list(self._assets_of.get(site, ()))

    def page_resources(self, site: str) -> list[str]:
        """Hostnames a page view touches: the site plus its asset hosts."""
        return [site, *self._assets_of.get(site, ())]

    def customer_of(self, hostname: str) -> Customer | None:
        return self.registry.customer_for(hostname)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def num_hostnames(self) -> int:
        return len(self.hostnames)
