"""Workload generation: popularity, hostname universes, traffic, clients."""

from .clients import ClientPopulation, PopulationConfig
from .hostnames import HostnameUniverse, UniverseConfig, lognormal_sizes
from .traffic import PageView, RequestStream, Session, SessionGenerator, batched
from .zipf import ZipfDistribution

__all__ = [
    "ClientPopulation",
    "PopulationConfig",
    "HostnameUniverse",
    "UniverseConfig",
    "lognormal_sizes",
    "PageView",
    "RequestStream",
    "Session",
    "SessionGenerator",
    "ZipfDistribution",
    "batched",
]
