"""Adapters: build a CheckContext from live deployment objects.

The checkers consume value types (:class:`~repro.check.core.PolicyInfo`,
:class:`~repro.check.core.ProgramView`); these helpers extract them from a
running :class:`~repro.deploy.Deployment` or a bare CDN + engine pair, and
implement the *precheck a rebind* pattern: substitute the candidate pool
into the extracted state and verify the hypothetical configuration before
the controller enacts it — the control-plane equivalent of the BPF
verifier rejecting a program at attach time rather than at run time.
"""

from __future__ import annotations

from ..core.pool import AddressPool
from ..netsim.addr import Prefix
from .controlplane import ControlPlaneChecker
from .core import CheckContext, PolicyInfo, ProgramView, Report, run_checkers

__all__ = [
    "context_from_cdn",
    "context_from_deployment",
    "precheck_rebind",
]


def context_from_cdn(
    cdn,
    engine,
    standby_pools: list[AddressPool] | None = None,
    service_ports: tuple[int, ...] | None = None,
    deployment=None,
) -> CheckContext:
    """Extract checker state from a CDN and a policy engine.

    ``deployment`` (optional) enables the live end-to-end dispatch probe;
    without it the reachability check walks announcements + program rules
    statically.
    """
    policies = [PolicyInfo.from_policy(p) for p in engine.policies()] if engine else []
    announced = list(cdn.network.announced_prefixes())
    listening: list[Prefix] = []
    programs: list[ProgramView] = []
    ports: set[int] = set(service_ports or ())
    for dc in cdn.datacenters.values():
        for server in dc.servers.values():
            for pool in server.pools:
                if pool not in listening:
                    listening.append(pool)
            for program in server.lookup_path.programs():
                programs.append(ProgramView.from_program(program, path=server.name))
            if service_ports is None:
                ports.update(
                    sock.local_port for sock in server.table.sockets()
                    if sock.local_port is not None
                )
    return CheckContext(
        policies=policies,
        standby_pools=list(standby_pools or []),
        announced=announced,
        listening=listening,
        programs=programs,
        service_ports=tuple(sorted(ports)) or (80, 443),
        deployment=deployment,
    )


def context_from_deployment(dep, live: bool = True) -> CheckContext:
    """Checker state for a full :class:`~repro.deploy.Deployment`."""
    standby = [dep.backup_pool] if dep.backup_pool is not None else []
    return context_from_cdn(
        dep.cdn,
        dep.engine,
        standby_pools=standby,
        service_ports=tuple(dep.config.ports),
        deployment=dep if live else None,
    )


def precheck_rebind(
    cdn,
    engine,
    policy_name: str,
    new_pool: AddressPool,
    standby_pools: list[AddressPool] | None = None,
    service_ports: tuple[int, ...] | None = None,
    deployment=None,
    symbolic: bool = False,
) -> Report:
    """Verify the control plane *as it would be* after a rebind.

    Substitutes ``new_pool`` for ``policy_name``'s pool in the extracted
    state and runs the control-plane checker — plus, with ``symbolic``,
    the exact packet-space pass (:class:`~repro.check.symbolic
    .SymbolicChecker`), which upgrades the sampled reachability check to
    a proof over the hypothetical state.  The live engine is never
    touched; an error finding means the maneuver would mint unroutable,
    unterminated, or undispatched addresses — reject it like a bad BPF
    program instead of blackholing at TTL timescales.
    """
    ctx = context_from_cdn(
        cdn, engine,
        standby_pools=standby_pools,
        service_ports=service_ports,
        deployment=deployment,
    )
    replaced = False
    for i, info in enumerate(ctx.policies):
        if info.name == policy_name:
            ctx.policies[i] = PolicyInfo(
                name=info.name, pool=new_pool, ttl=info.ttl, priority=info.priority,
            )
            replaced = True
    if not replaced:
        raise KeyError(f"no policy named {policy_name!r} to precheck")
    checkers: list = [ControlPlaneChecker()]
    if symbolic:
        from .symbolic import SymbolicChecker

        checkers.append(SymbolicChecker())
    return run_checkers(ctx, checkers)
