"""Pass 2: the policy/pool control-plane checker.

§3.1–§3.2 turn addresses into a schedulable resource minted per-query by
policies; nothing in the runtime stops a policy from minting addresses
nobody routes (no BGP announcement covers them), nobody terminates (no
edge server listens), or nobody dispatches (no sk_lookup rule steers
them).  Each of those is a silent blackhole — DNS answers flow, packets
die.  This pass cross-validates the policy layer against the routing and
socket layers *before* a config (or a rebind) goes live, the same
reject-at-attach-time discipline the BPF verifier gives programs.

Checks:

* ``CP001 unrouted-pool``      — pool outside every announced prefix;
* ``CP002 unlistened-pool``    — pool no edge server terminates;
* ``CP003 pool-overlap``       — distinct policies minting from overlapping
  address space (load accounting and DoS attribution become ambiguous);
* ``CP004 standby-undispatched`` — a failover pool the monitor would swap
  in that no program's redirect rules cover: the §6 mitigation move would
  itself blackhole;
* ``CP005/CP006`` — TTL sanity: TTL 0 disables caching (DNS load, §5.2),
  TTLs past the horizon defeat TTL-bounded agility (§4.4);
* ``CP007 soa-minimum``        — negative-TTL sanity for the zone;
* ``CP008 unreachable-address`` — sampled end-to-end reachability: every
  address a policy can mint must route to a PoP and dispatch to a
  listening socket (live deployment), or be covered by announcement +
  redirect rules (config mode).
"""

from __future__ import annotations

import random

from ..core.pool import AddressPool
from ..netsim.addr import IPAddress, Prefix
from ..netsim.packet import FiveTuple, Packet, Protocol
from ..sockets.sklookup import Verdict
from .core import Checker, CheckContext, Finding, PolicyInfo, ProgramView, Severity

__all__ = ["ControlPlaneChecker", "sample_pool_addresses"]

#: Deterministic seed for address sampling — findings must be reproducible.
_SAMPLE_SEED = 0xC3EC


def sample_pool_addresses(pool: AddressPool, samples: int) -> list[IPAddress]:
    """A deterministic probe set from a pool's *active* (mintable) set.

    Corners first (first/last of the active prefix) plus seeded uniform
    draws; explicit address lists are taken verbatim up to a cap.  The
    same pool always yields the same probes, so check output is stable.
    """
    explicit = pool.active_addresses()
    if explicit is not None:
        return list(explicit[: max(samples, 2)])
    prefix = pool.active_prefix
    assert prefix is not None
    rng = random.Random(_SAMPLE_SEED ^ prefix.network ^ prefix.length)
    out = [prefix.first, prefix.last]
    for _ in range(samples):
        out.append(prefix.random_address(rng))
    seen: set[IPAddress] = set()
    unique = []
    for addr in out:
        if addr not in seen:
            seen.add(addr)
            unique.append(addr)
    return unique


class ControlPlaneChecker(Checker):
    """Cross-layer validation of policies, pools, routes, and dispatch."""

    name = "controlplane"

    def run(self, ctx: CheckContext) -> list[Finding]:
        findings: list[Finding] = []
        for policy in ctx.policies:
            findings.extend(self._check_coverage(ctx, policy.pool, f"policy:{policy.name}"))
            findings.extend(self._check_ttl(ctx, policy))
        findings.extend(self._check_overlaps(ctx))
        for pool in ctx.standby_pools:
            where = f"standby:{pool.name}"
            findings.extend(self._check_coverage(ctx, pool, where))
            findings.extend(self._check_standby_dispatch(ctx, pool, where))
        findings.extend(self._check_soa_minimum(ctx))
        for policy in ctx.policies:
            findings.extend(self._check_end_to_end(ctx, policy))
        return findings

    # -- CP001/CP002: route + termination coverage --------------------------------

    def _check_coverage(self, ctx: CheckContext, pool: AddressPool, where: str) -> list[Finding]:
        findings = []
        if ctx.announced and not ctx.covered_by_announced(pool.advertised):
            findings.append(Finding(
                "CP001", "unrouted-pool", Severity.ERROR,
                f"pool {pool.advertised} is outside every announced prefix; "
                "minted answers are unroutable",
                where, "announce the covering prefix via BGP, or re-home the pool",
            ))
        if ctx.listening and not ctx.covered_by_listening(pool.advertised):
            findings.append(Finding(
                "CP002", "unlistened-pool", Severity.ERROR,
                f"no edge server terminates {pool.advertised}; connections to "
                "minted addresses are refused",
                where, "add the prefix to the servers' listening config "
                       "(announce_pool / add_pool)",
            ))
        return findings

    # -- CP003: pools overlapping across policies ----------------------------------

    def _check_overlaps(self, ctx: CheckContext) -> list[Finding]:
        findings = []
        for i, a in enumerate(ctx.policies):
            for b in ctx.policies[i + 1:]:
                if a.pool is b.pool:
                    continue  # sharing one pool object is a deliberate choice
                if a.pool.advertised.overlaps(b.pool.advertised):
                    findings.append(Finding(
                        "CP003", "pool-overlap", Severity.WARNING,
                        f"pool {a.pool.advertised} overlaps policy {b.name!r}'s "
                        f"pool {b.pool.advertised}; per-address load attribution "
                        "and DoS isolation become ambiguous",
                        f"policy:{a.name}",
                        "give each policy disjoint space, or share one pool object",
                    ))
        return findings

    # -- CP005/CP006: TTL sanity ------------------------------------------------------

    def _check_ttl(self, ctx: CheckContext, policy: PolicyInfo) -> list[Finding]:
        findings = []
        where = f"policy:{policy.name}"
        if policy.ttl == 0:
            findings.append(Finding(
                "CP005", "ttl-zero", Severity.WARNING,
                "TTL 0 disables downstream caching: every client fetch becomes an "
                "authoritative query (the §5.2 DNS-load regime)",
                where, "use a small positive TTL (the deployment ran 30 s)",
            ))
        elif policy.ttl > ctx.ttl_horizon_max:
            findings.append(Finding(
                "CP006", "ttl-horizon", Severity.WARNING,
                f"TTL {policy.ttl}s exceeds the agility horizon "
                f"({ctx.ttl_horizon_max}s): rebinds/failovers stay blackholed in "
                "caches for that long (§4.4 bound)",
                where, "lower the TTL, or raise ttl_horizon_max if this is deliberate",
            ))
        return findings

    # -- CP007: negative-TTL sanity -----------------------------------------------------

    def _check_soa_minimum(self, ctx: CheckContext) -> list[Finding]:
        if ctx.soa_minimum is None:
            return []
        findings = []
        if ctx.soa_minimum == 0:
            findings.append(Finding(
                "CP007", "soa-minimum-zero", Severity.WARNING,
                "SOA minimum 0 disables negative caching: NXDOMAIN storms hit the "
                "authoritative directly",
                "zone", "set a small positive SOA minimum (minutes)",
            ))
        elif ctx.soa_minimum > ctx.ttl_horizon_max:
            findings.append(Finding(
                "CP007", "soa-minimum-horizon", Severity.WARNING,
                f"SOA minimum {ctx.soa_minimum}s pins negative answers past the "
                f"agility horizon ({ctx.ttl_horizon_max}s): a hostname brought up "
                "after a miss stays dark that long",
                "zone", "lower the SOA minimum",
            ))
        return findings

    # -- CP004: standby pools the failover monitor would swap in ---------------------------

    def _check_standby_dispatch(
        self, ctx: CheckContext, pool: AddressPool, where: str
    ) -> list[Finding]:
        if not ctx.programs:
            return []
        if self._any_program_dispatches(ctx, pool.advertised):
            return []
        return [Finding(
            "CP004", "standby-undispatched", Severity.ERROR,
            f"standby pool {pool.advertised} is not covered by any sk_lookup "
            "redirect rule with a live socket: failing over to it would "
            "blackhole exactly when the monitor fires",
            where, "install redirect rules for the standby prefix on every "
                   "server (add_pool) before arming the monitor",
        )]

    def _any_program_dispatches(self, ctx: CheckContext, prefix: Prefix) -> bool:
        for program in ctx.programs:
            for rule in program.rules:
                if not (rule.is_redirect and rule.map_key in program.live_slots):
                    continue
                if ctx.service_ports and not any(
                    rule.port_lo <= p <= rule.port_hi for p in ctx.service_ports
                ):
                    continue
                if not rule.prefixes or any(p.overlaps(prefix) for p in rule.prefixes):
                    return True
        return False

    # -- CP008: sampled end-to-end reachability ----------------------------------------------

    def _check_end_to_end(self, ctx: CheckContext, policy: PolicyInfo) -> list[Finding]:
        probes = sample_pool_addresses(policy.pool, ctx.samples_per_pool)
        if ctx.deployment is not None:
            failures = self._probe_live(ctx, probes)
        elif ctx.programs or ctx.announced:
            failures = self._probe_static(ctx, probes)
        else:
            return []
        if not failures:
            return []
        addr, reason = failures[0]
        return [Finding(
            "CP008", "unreachable-address", Severity.ERROR,
            f"{len(failures)}/{len(probes)} sampled mintable addresses do not "
            f"reach a listening socket end-to-end; first: {addr} ({reason})",
            f"policy:{policy.name}",
            "every address a policy can mint must be announced, steered by a "
            "redirect rule, and terminate on a live socket",
        )]

    def _probe_static(
        self, ctx: CheckContext, probes: list[IPAddress]
    ) -> list[tuple[IPAddress, str]]:
        """Config mode: walk announcement coverage + program first-match."""
        failures = []
        for addr in probes:
            if ctx.announced and not any(addr in p for p in ctx.announced):
                failures.append((addr, "no announced prefix covers it"))
                continue
            if ctx.programs:
                verdict = self._static_dispatch(ctx, addr)
                if verdict is not None:
                    failures.append((addr, verdict))
        return failures

    def _static_dispatch(self, ctx: CheckContext, addr: IPAddress) -> str | None:
        """First-match walk of every program for (addr, each service port).

        Returns a failure description, or ``None`` when every service port
        dispatches somewhere.
        """
        for port in ctx.service_ports or (443,):
            outcome = "miss"
            for program in ctx.programs:
                outcome = self._program_outcome(program, addr, port)
                if outcome != "miss":
                    break
            if outcome == "drop":
                return f"a DROP rule swallows port {port}"
            if outcome == "miss":
                return f"no program dispatches port {port}"
        return None

    @staticmethod
    def _program_outcome(program: ProgramView, addr: IPAddress, port: int) -> str:
        for rule in program.rules:
            if rule.protocol is not None and rule.protocol.wire_protocol is not Protocol.TCP:
                continue
            if not rule.port_lo <= port <= rule.port_hi:
                continue
            if rule.prefixes and not any(addr in p for p in rule.prefixes):
                continue
            if rule.action is Verdict.DROP:
                return "drop"
            if rule.is_redirect:
                if rule.map_key in program.live_slots:
                    return "redirect"
                continue  # empty slot falls through to the next rule
            return "pass"  # explicit pass-through: normal lookup proceeds
        return "miss"

    def _probe_live(
        self, ctx: CheckContext, probes: list[IPAddress]
    ) -> list[tuple[IPAddress, str]]:
        """Deployment mode: real catchment + real socket dispatch, no DNS.

        Probes the data path the way a minted answer would be used: pick a
        vantage per region, route via BGP catchments, then run the SYN
        through a server's lookup path at the caught PoP.
        """
        dep = ctx.deployment
        network = dep.cdn.network
        vantages = _one_vantage_per_region(network)
        src = IPAddress.from_text("100.64.0.9")
        failures = []
        for addr in probes:
            reason = None
            for vantage in vantages:
                pop = network.pop_for(vantage, addr)
                if pop is None:
                    reason = f"AS {vantage} has no route (blackhole)"
                    break
                dc = dep.cdn.datacenters[pop]
                server = next(
                    (s for s in dc.servers.values() if not s.crashed), None
                )
                if server is None:
                    reason = f"PoP {pop} has no healthy server"
                    break
                port = (ctx.service_ports or (443,))[0]
                packet = Packet(FiveTuple(Protocol.TCP, src, 40_001, addr, port), syn=True)
                result = server.dispatch(packet, deliver=False)
                if result.socket is None:
                    reason = (f"PoP {pop} lookup path returns no socket "
                              f"(stage={result.stage.value}) for port {port}")
                    break
            if reason is not None:
                failures.append((addr, reason))
        return failures


def _one_vantage_per_region(network) -> list[object]:
    """First eyeball AS per region, sorted — deterministic and cheap."""
    by_region: dict[str, object] = {}
    for asn in sorted(network.client_ases(), key=str):
        name = str(asn)
        if not name.startswith("eyeball:"):
            continue
        region = name.split(":")[1] if ":" in name else ""
        by_region.setdefault(region, asn)
    return [by_region[r] for r in sorted(by_region)]
