"""Pass 4: the symbolic packet-space verifier — proofs, not samples.

CP008 samples a handful of mintable addresses and probes them end-to-end;
a rebind that blackholes a /28 *between* the samples ships silently.  This
module closes that gap with a header-space-style exact set algebra over
``(dst-prefix × wire-protocol × port-interval)`` rectangles: every
checkable claim becomes set arithmetic over :class:`PacketSpace` values,
and every failed claim carries a *witness* — a concrete packet inside the
offending region that replays the failure on the real engines.

Two checker passes ride on the algebra (plan verification — SK102/SK103 —
lives in :mod:`repro.check.plan`):

* ``SK100 unproven-reachability`` — compute the full mintable space from
  the policy layer and prove every point either resolves through routing
  and sk_lookup to a live socket (or an explicit DROP / pass-through to
  the normal listener lookup), or report the exact uncovered rectangles.
  This *proves* what CP008 samples; CP008 stays on as a cross-check that
  the model matches the live data path.
* ``SK101 engine-divergence`` — symbolically prove the compiled dispatch
  index (:class:`~repro.sockets.compiled.CompiledProgram`) equivalent to
  the rule-list interpreter for every attached program, and across attach
  order on each lookup path.  The compiled index is evaluated from its
  *own* description (:meth:`CompiledProgram.describe`), so a corrupted
  index yields a counterexample packet rather than a vacuous pass.

Equivalence is relative to a sock-array snapshot: both engines read the
same live map, so verdicts are compared at redirect-*slot* granularity
with liveness frozen at check time — exactly the state either engine
would see on the next packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..netsim.addr import IPAddress, IPv4, IPv6, Prefix
from ..netsim.packet import FiveTuple, Packet, Protocol
from ..sockets.sklookup import MatchRule, Verdict
from .core import Checker, CheckContext, Finding, ProgramView, Severity

__all__ = [
    "Rect",
    "PacketSpace",
    "Divergence",
    "SymbolicChecker",
    "mintable_space",
    "announced_space",
    "program_verdicts",
    "compiled_verdicts",
    "path_verdicts",
    "resolved_space",
    "equivalence_counterexample",
    "port_intervals",
]

_BITS = {IPv4: 32, IPv6: 128}
_MASK_CACHE: dict[tuple[int, int], int] = {}
_PROTO_NAMES = {Protocol.TCP.value: "tcp", Protocol.UDP.value: "udp"}
#: Wire protocols a packet can carry (QUIC rides UDP — see Protocol).
WIRE_PROTOCOLS = (Protocol.TCP.value, Protocol.UDP.value)
PORT_MIN, PORT_MAX = 1, 0xFFFF


@dataclass(frozen=True, slots=True)
class Rect:
    """One axis-aligned packet-space rectangle.

    ``proto`` is the *wire* protocol number (6/17); ``network``/``length``
    are an exact CIDR prefix, ``port_lo..port_hi`` an inclusive interval.
    A rectangle is the unit the algebra never has to approximate: prefix
    subtraction splits along the trie, port subtraction along the line.
    """

    family: int
    network: int
    length: int
    proto: int
    port_lo: int
    port_hi: int

    @property
    def bits(self) -> int:
        return _BITS[self.family]

    def net_mask(self) -> int:
        key = (self.family, self.length)
        mask = _MASK_CACHE.get(key)
        if mask is None:
            if self.length == 0:
                mask = 0
            else:
                mask = ((1 << self.length) - 1) << (self.bits - self.length)
            _MASK_CACHE[key] = mask
        return mask

    @property
    def points(self) -> int:
        """Exact number of (address, port) points under this rectangle."""
        return (1 << (self.bits - self.length)) * (self.port_hi - self.port_lo + 1)

    def contains_point(self, family: int, value: int, proto: int, port: int) -> bool:
        return (
            family == self.family
            and proto == self.proto
            and self.port_lo <= port <= self.port_hi
            and (value & self.net_mask()) == self.network
        )

    def render(self) -> str:
        proto = _PROTO_NAMES.get(self.proto, str(self.proto))
        addr = IPAddress(self.family, self.network)
        ports = (
            str(self.port_lo)
            if self.port_lo == self.port_hi
            else f"{self.port_lo}..{self.port_hi}"
        )
        return f"{addr}/{self.length} {proto} {ports}"


def _rect_key(r: Rect) -> tuple:
    return (r.family, r.proto, r.network, r.length, r.port_lo, r.port_hi)


def _prefixes_overlap(a: Rect, b: Rect) -> bool:
    if a.length <= b.length:
        return (b.network & a.net_mask()) == a.network
    return (a.network & b.net_mask()) == b.network


def _rect_intersect(a: Rect, b: Rect) -> Rect | None:
    if a.family != b.family or a.proto != b.proto:
        return None
    lo, hi = max(a.port_lo, b.port_lo), min(a.port_hi, b.port_hi)
    if lo > hi or not _prefixes_overlap(a, b):
        return None
    if a.length >= b.length:
        network, length = a.network, a.length
    else:
        network, length = b.network, b.length
    return Rect(a.family, network, length, a.proto, lo, hi)


def _rect_subtract(a: Rect, b: Rect) -> list[Rect]:
    """``a − b`` as disjoint rectangles (possibly just ``[a]``)."""
    if a.family != b.family or a.proto != b.proto or not _prefixes_overlap(a, b):
        return [a]
    lo, hi = max(a.port_lo, b.port_lo), min(a.port_hi, b.port_hi)
    if lo > hi:
        return [a]
    out: list[Rect] = []
    # Trie split: peel sibling prefixes off a until only b's prefix remains.
    net, length = a.network, a.length
    if b.length > a.length:
        bits = a.bits
        while length < b.length:
            length += 1
            branch = 1 << (bits - length)
            if b.network & branch:
                sibling, net = net, net | branch
            else:
                sibling = net | branch
            out.append(Rect(a.family, sibling, length, a.proto, a.port_lo, a.port_hi))
        net, length = b.network, b.length
    # Port remainder on the prefix both rectangles share.
    if a.port_lo < lo:
        out.append(Rect(a.family, net, length, a.proto, a.port_lo, lo - 1))
    if hi < a.port_hi:
        out.append(Rect(a.family, net, length, a.proto, hi + 1, a.port_hi))
    return out


class PacketSpace:
    """An exact set of packets: a normalised union of disjoint rectangles.

    Construction keeps rectangles pairwise disjoint (add-by-subtraction)
    and coalesced (adjacent port intervals merge; sibling prefixes fold
    into their parent), then sorts — so equal sets render identically and
    check output is byte-deterministic.  All operations return new spaces;
    instances are immutable by convention.
    """

    __slots__ = ("rects",)

    def __init__(self, rects: Iterable[Rect] = ()) -> None:
        disjoint: list[Rect] = []
        for rect in rects:
            pieces = [rect]
            for existing in disjoint:
                pieces = [p for piece in pieces for p in _rect_subtract(piece, existing)]
                if not pieces:
                    break
            disjoint.extend(pieces)
        self.rects: tuple[Rect, ...] = tuple(_coalesce(disjoint))

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_disjoint(cls, rects: Iterable[Rect]) -> "PacketSpace":
        """Build from rectangles the caller *guarantees* pairwise disjoint
        (results of this algebra's own subtract/intersect/partitioning),
        skipping the quadratic add-by-subtraction normalisation.  Still
        coalesces and sorts, so the canonical-form guarantees hold."""
        space = cls.__new__(cls)
        space.rects = tuple(_coalesce(list(rects)))
        return space

    @classmethod
    def empty(cls) -> "PacketSpace":
        return cls(())

    @classmethod
    def for_prefix(
        cls,
        prefix: Prefix,
        protos: Iterable[int] = WIRE_PROTOCOLS,
        ports: Iterable[tuple[int, int]] = ((PORT_MIN, PORT_MAX),),
    ) -> "PacketSpace":
        """``ports`` must be disjoint inclusive intervals (see
        :func:`port_intervals`)."""
        return cls.from_disjoint(
            Rect(prefix.family, prefix.network, prefix.length, proto, lo, hi)
            for proto in protos
            for lo, hi in ports
        )

    @classmethod
    def universe(cls, protos: Iterable[int] = WIRE_PROTOCOLS) -> "PacketSpace":
        return cls.from_disjoint(
            Rect(family, 0, 0, proto, PORT_MIN, PORT_MAX)
            for family in (IPv4, IPv6)
            for proto in protos
        )

    # -- algebra ------------------------------------------------------------

    def union(self, other: "PacketSpace") -> "PacketSpace":
        return PacketSpace((*self.rects, *other.rects))

    def intersect(self, other: "PacketSpace") -> "PacketSpace":
        # Disjoint × disjoint intersections are pairwise disjoint.
        out = []
        for a in self.rects:
            for b in other.rects:
                hit = _rect_intersect(a, b)
                if hit is not None:
                    out.append(hit)
        return PacketSpace.from_disjoint(out)

    def subtract(self, other: "PacketSpace") -> "PacketSpace":
        pieces = list(self.rects)
        for b in other.rects:
            pieces = [p for piece in pieces for p in _rect_subtract(piece, b)]
            if not pieces:
                break
        return PacketSpace.from_disjoint(pieces)

    def is_empty(self) -> bool:
        return not self.rects

    def covers(self, other: "PacketSpace") -> bool:
        return other.subtract(self).is_empty()

    def equals(self, other: "PacketSpace") -> bool:
        """Semantic equality: mutual coverage, independent of rect shape."""
        return self.covers(other) and other.covers(self)

    @property
    def points(self) -> int:
        return sum(r.points for r in self.rects)

    def contains_point(self, family: int, value: int, proto: int, port: int) -> bool:
        return any(r.contains_point(family, value, proto, port) for r in self.rects)

    # -- witnesses ----------------------------------------------------------

    def witness(self) -> tuple[int, int, int, int] | None:
        """A concrete ``(family, address value, proto, port)`` inside the
        space — the lowest corner of the first rectangle — or ``None``."""
        if not self.rects:
            return None
        r = self.rects[0]
        return (r.family, r.network, r.proto, r.port_lo)

    def witness_packet(self, src: str = "198.18.0.9", src_port: int = 40_000) -> Packet | None:
        point = self.witness()
        if point is None:
            return None
        family, value, proto, port = point
        return Packet(
            FiveTuple(
                Protocol(proto), IPAddress.from_text(src), src_port,
                IPAddress(family, value), port,
            ),
            syn=True,
        )

    # -- presentation -------------------------------------------------------

    def render(self, limit: int | None = None) -> str:
        shown = self.rects if limit is None else self.rects[:limit]
        text = ", ".join(r.render() for r in shown)
        extra = len(self.rects) - len(shown)
        if extra > 0:
            text += f", +{extra} more"
        return text

    def __iter__(self):
        return iter(self.rects)

    def __len__(self) -> int:
        return len(self.rects)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PacketSpace[{self.render(limit=6)}]"


def _coalesce(rects: list[Rect]) -> list[Rect]:
    """Canonicalise a disjoint rect list: merge port-adjacent rectangles,
    fold complete sibling pairs into their parent prefix, to fixpoint."""
    current = sorted(rects, key=_rect_key)
    while True:
        merged: list[Rect] = []
        for rect in current:
            prev = merged[-1] if merged else None
            if (
                prev is not None
                and (prev.family, prev.proto, prev.network, prev.length)
                == (rect.family, rect.proto, rect.network, rect.length)
                and prev.port_hi + 1 == rect.port_lo
            ):
                merged[-1] = Rect(prev.family, prev.network, prev.length,
                                  prev.proto, prev.port_lo, rect.port_hi)
            else:
                merged.append(rect)
        by_shape: dict[tuple, Rect] = {}
        folded: list[Rect] = []
        changed = False
        for rect in merged:
            if rect.length == 0:
                folded.append(rect)
                continue
            branch = 1 << (rect.bits - rect.length)
            sibling_key = (rect.family, rect.proto, rect.network ^ branch,
                           rect.length, rect.port_lo, rect.port_hi)
            mate = by_shape.pop(sibling_key, None)
            if mate is not None:
                folded.remove(mate)
                parent_net = rect.network & ~branch
                folded.append(Rect(rect.family, parent_net, rect.length - 1,
                                   rect.proto, rect.port_lo, rect.port_hi))
                changed = True
            else:
                by_shape[_rect_key(rect)] = rect
                folded.append(rect)
        folded.sort(key=_rect_key)
        if not changed and folded == current:
            return folded
        current = folded


def port_intervals(ports: Iterable[int]) -> tuple[tuple[int, int], ...]:
    """Distinct ports collapsed into maximal inclusive intervals."""
    ordered = sorted(set(ports))
    out: list[list[int]] = []
    for port in ordered:
        if out and out[-1][1] + 1 == port:
            out[-1][1] = port
        else:
            out.append([port, port])
    return tuple((lo, hi) for lo, hi in out)


# -- spaces from the control plane ------------------------------------------


def mintable_space(pool, service_ports: Iterable[int]) -> PacketSpace:
    """Every packet a policy answer can induce: the pool's *active* set
    crossed with the service ports on both wire protocols (the edge
    terminates TCP and UDP alike — see ``EdgeServer.configure_listening``)."""
    ports = port_intervals(service_ports) or ((PORT_MIN, PORT_MAX),)
    explicit = pool.active_addresses()
    if explicit is not None:
        rects = [
            Rect(a.family, a.value, _BITS[a.family], proto, lo, hi)
            for a in explicit
            for proto in WIRE_PROTOCOLS
            for lo, hi in ports
        ]
        return PacketSpace(rects)
    prefix = pool.active_prefix
    assert prefix is not None
    return PacketSpace.for_prefix(prefix, WIRE_PROTOCOLS, ports)


def announced_space(announced: Iterable[Prefix]) -> PacketSpace:
    """The routable space: announced prefixes, any port, any protocol."""
    out = PacketSpace.empty()
    for prefix in announced:
        out = out.union(PacketSpace.for_prefix(prefix))
    return out


# -- symbolic program evaluation --------------------------------------------

#: Verdict-map keys: ``"drop"``, ``"pass"``, ``"miss"``, ``("redirect", slot)``.
VerdictSpaces = dict


def _rule_space(rule: MatchRule) -> PacketSpace:
    protos = WIRE_PROTOCOLS if rule._wire_protocol is None else (rule._wire_protocol.value,)
    ports = ((rule.port_lo, rule.port_hi),)
    if not rule.prefixes:
        return PacketSpace(
            Rect(family, 0, 0, proto, rule.port_lo, rule.port_hi)
            for family in (IPv4, IPv6)
            for proto in protos
        )
    return PacketSpace(
        Rect(p.family, p.network, p.length, proto, lo, hi)
        for p in rule.prefixes
        for proto in protos
        for lo, hi in ports
    )


def _merge(out: VerdictSpaces, key, space: PacketSpace) -> None:
    """Accumulate into a verdict partition.  The pieces merged under one
    key always come from disjoint slices of the evaluation domain (distinct
    consumed portions, segments, protocols, or pipeline stages), so the
    cheap disjoint constructor is sound here."""
    if space.is_empty():
        return
    prev = out.get(key)
    if prev is None:
        out[key] = space
    else:
        out[key] = PacketSpace.from_disjoint((*prev.rects, *space.rects))


def program_verdicts(
    rules: Iterable[MatchRule],
    live_slots: frozenset[int] | set[int],
    domain: PacketSpace,
) -> VerdictSpaces:
    """The interpreter's verdict partition of ``domain``, symbolically.

    First match wins; a redirect through an empty/stale slot consumes
    nothing (the kernel fall-through), so its matched space flows on to
    the next rule exactly as :meth:`SkLookupProgram.run` would send the
    packet there.
    """
    out: VerdictSpaces = {}
    remaining = domain
    for rule in rules:
        if remaining.is_empty():
            break
        matched = remaining.intersect(_rule_space(rule))
        if matched.is_empty():
            continue
        if rule.action is Verdict.DROP:
            _merge(out, "drop", matched)
        elif rule.is_redirect:
            if rule.map_key in live_slots:
                _merge(out, ("redirect", rule.map_key), matched)
            else:
                continue  # dead slot: fall through, space not consumed
        else:
            _merge(out, "pass", matched)
        remaining = remaining.subtract(matched)
    _merge(out, "miss", remaining)
    return out


def compiled_verdicts(
    description: dict,
    live_slots: frozenset[int] | set[int],
    domain: PacketSpace,
) -> VerdictSpaces:
    """The compiled index's verdict partition of ``domain``, from its own
    :meth:`~repro.sockets.compiled.CompiledProgram.describe` output.

    Within one (protocol, port-segment) slice the index yields candidate
    rule indices in ascending order and applies actions with the same
    dead-slot fall-through as the interpreter — so the slice reduces to a
    first-match walk over each index's prefix set.  Deliberate or
    accidental index corruption (missing networks, shifted breakpoints,
    wrong actions) shows up as a different partition, never as a crash.
    """
    out: VerdictSpaces = {}
    actions = description["actions"]
    for proto, segments in sorted(description["protocols"].items()):
        proto_domain = domain.intersect(PacketSpace(
            Rect(family, 0, 0, proto, PORT_MIN, PORT_MAX) for family in (IPv4, IPv6)
        ))
        if proto_domain.is_empty():
            continue
        covered = PacketSpace.empty()
        for port_lo, port_hi, always, lpm in segments:
            seg_domain = proto_domain.intersect(PacketSpace(
                Rect(family, 0, 0, proto, port_lo, port_hi) for family in (IPv4, IPv6)
            ))
            covered = covered.union(seg_domain)
            _segment_verdicts(out, seg_domain, proto, always, lpm, actions, live_slots)
        # Ports below the first breakpoint bisect to the *last* segment —
        # an impossible state for a faithful compile (breakpoints always
        # include port 1) but exactly what a corrupted index would do.
        leftovers = proto_domain.subtract(covered)
        if not leftovers.is_empty() and segments:
            _, _, always, lpm = segments[-1]
            _segment_verdicts(out, leftovers, proto, always, lpm, actions, live_slots)
        elif not leftovers.is_empty():
            _merge(out, "miss", leftovers)
    stray = domain
    for key in out:
        stray = stray.subtract(out[key])
    _merge(out, "miss", stray)  # protocols absent from the index entirely
    return out


def _segment_verdicts(
    out: VerdictSpaces,
    seg_domain: PacketSpace,
    proto: int,
    always: tuple[int, ...],
    lpm: dict,
    actions: tuple,
    live_slots,
) -> None:
    if seg_domain.is_empty():
        return
    per_index: dict[int, list[Rect]] = {}
    for family, groups in lpm.items():
        for length, nets in groups:
            for network, indices in nets.items():
                rect = Rect(family, network, length, proto, PORT_MIN, PORT_MAX)
                for index in indices:
                    per_index.setdefault(index, []).append(rect)
    remaining = seg_domain
    for index in sorted(set(per_index) | set(always)):
        if remaining.is_empty():
            break
        if index in always:
            matched = remaining
        else:
            matched = remaining.intersect(PacketSpace(per_index[index]))
        if matched.is_empty():
            continue
        op, key = actions[index]
        if op == "drop":
            _merge(out, "drop", matched)
        elif op == "redirect":
            if key in live_slots:
                _merge(out, ("redirect", key), matched)
            else:
                continue  # dead slot falls through inside the segment too
        else:
            _merge(out, "pass", matched)
        remaining = remaining.subtract(matched)
    _merge(out, "miss", remaining)


def path_verdicts(stage_fns, domain: PacketSpace) -> VerdictSpaces:
    """Compose per-program verdict functions along a lookup path.

    ``stage_fns`` are callables ``domain -> VerdictSpaces`` in attach
    order; a program's *miss* space (SK_PASS, no socket) flows to the next
    program, exactly as :meth:`LookupPath.dispatch` consults stage-2
    programs in order.
    """
    out: VerdictSpaces = {}
    remaining = domain
    for fn in stage_fns:
        if remaining.is_empty():
            break
        verdicts = fn(remaining)
        for key, space in verdicts.items():
            if key != "miss":
                _merge(out, key, space)
        remaining = verdicts.get("miss", PacketSpace.empty())
    _merge(out, "miss", remaining)
    return out


def resolved_space(verdicts: VerdictSpaces) -> PacketSpace:
    """The subset of a verdict partition that *resolves*: an explicit DROP,
    a redirect to a live socket, or an explicit pass-through (which defers
    to the normal listener lookup — the same stance CP008 takes)."""
    rects: list[Rect] = []
    for key, space in verdicts.items():
        if key == "miss":
            continue
        rects.extend(space.rects)  # partition keys are pairwise disjoint
    return PacketSpace.from_disjoint(rects)


# -- engine equivalence ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Divergence:
    """One point where interpreter and compiled index disagree."""

    program: str
    family: int
    value: int
    proto: int
    port: int
    interpreter: object  # verdict-map key
    compiled: object

    def packet(self, src: str = "198.18.0.9", src_port: int = 40_000) -> Packet:
        return Packet(
            FiveTuple(
                Protocol(self.proto), IPAddress.from_text(src), src_port,
                IPAddress(self.family, self.value), self.port,
            ),
            syn=True,
        )

    def render(self) -> str:
        proto = _PROTO_NAMES.get(self.proto, str(self.proto))
        return (
            f"packet dst={IPAddress(self.family, self.value)} {proto} "
            f"port {self.port}: interpreter={_verdict_name(self.interpreter)} "
            f"compiled={_verdict_name(self.compiled)}"
        )


def _verdict_name(key) -> str:
    if isinstance(key, tuple):
        return f"redirect[{key[1]}]"
    return str(key)


def _outcome_at(verdicts: VerdictSpaces, point: tuple[int, int, int, int]):
    family, value, proto, port = point
    for key, space in verdicts.items():
        if space.contains_point(family, value, proto, port):
            return key
    return "miss"


def equivalence_counterexample(
    program,
    domain: PacketSpace | None = None,
    description: dict | None = None,
) -> Divergence | None:
    """Prove ``program``'s compiled index ≡ its interpreter over ``domain``
    (default: the full packet universe), or produce a counterexample.

    ``description`` defaults to the live compiled form's — pass a saved or
    deliberately corrupted description to test the index as-deployed.
    """
    domain = domain if domain is not None else PacketSpace.universe()
    if description is None:
        description = program.compiled().describe()
    live = {
        key for key in range(program.map.size) if program.map.lookup(key) is not None
    }
    interp = program_verdicts(program.rules(), live, domain)
    comp = compiled_verdicts(description, live, domain)
    for key in sorted(interp, key=_verdict_name):
        diff = interp[key].subtract(comp.get(key, PacketSpace.empty()))
        if diff.is_empty():
            continue
        point = diff.witness()
        assert point is not None
        family, value, proto, port = point
        return Divergence(
            program=program.name, family=family, value=value, proto=proto,
            port=port, interpreter=key, compiled=_outcome_at(comp, point),
        )
    for key in sorted(comp, key=_verdict_name):
        diff = comp[key].subtract(interp.get(key, PacketSpace.empty()))
        if diff.is_empty():
            continue
        point = diff.witness()
        assert point is not None
        family, value, proto, port = point
        return Divergence(
            program=program.name, family=family, value=value, proto=proto,
            port=port, interpreter=_outcome_at(interp, point), compiled=key,
        )
    return None


# -- the checker pass --------------------------------------------------------


class SymbolicChecker(Checker):
    """SK100 exhaustive reachability + SK101 engine equivalence."""

    name = "symbolic"

    def run(self, ctx: CheckContext) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_reachability(ctx))
        findings.extend(self._check_equivalence(ctx))
        return findings

    # -- SK100 ---------------------------------------------------------------

    def _check_reachability(self, ctx: CheckContext) -> list[Finding]:
        if not ctx.policies or not ctx.programs:
            return []
        findings: list[Finding] = []
        mintable = PacketSpace.empty()
        for policy in ctx.policies:
            mintable = mintable.union(mintable_space(policy.pool, ctx.service_ports))
        routable = mintable
        if ctx.announced:
            routed = announced_space(ctx.announced)
            unrouted = mintable.subtract(routed)
            routable = mintable.intersect(routed)
            if not unrouted.is_empty():
                findings.append(Finding(
                    "SK100", "unproven-reachability", Severity.ERROR,
                    f"{len(unrouted)} mintable region(s) outside every announced "
                    f"prefix: {unrouted.render(limit=4)}",
                    "routing",
                    "announce covering prefixes or shrink the active sets; this is "
                    "the exact region CP001/CP008 can only sample",
                ))
        paths: dict[str, list[ProgramView]] = {}
        for view in ctx.programs:
            paths.setdefault(view.path, []).append(view)
        for path in sorted(paths):
            views = paths[path]
            verdicts = path_verdicts(
                [
                    lambda d, v=view: program_verdicts(v.rules, v.live_slots, d)
                    for view in views
                ],
                routable,
            )
            uncovered = routable.subtract(resolved_space(verdicts))
            if uncovered.is_empty():
                continue
            findings.append(Finding(
                "SK100", "unproven-reachability", Severity.ERROR,
                f"{len(uncovered)} mintable region(s) reach no live socket and "
                f"no explicit DROP via this path: {uncovered.render(limit=4)}",
                f"path:{path}",
                "add redirect rules (or explicit DROPs) covering the exact "
                "rectangles above — the sampled CP008 probe can miss them",
            ))
        self._record_regions(ctx, mintable, findings)
        return findings

    def _record_regions(self, ctx: CheckContext, mintable: PacketSpace,
                        findings: list[Finding]) -> None:
        registry = getattr(ctx, "registry", None)
        if registry is None:
            return
        registry.gauge(
            "check_symbolic_mintable_regions",
            help="Rectangles in the policies' mintable packet space",
        ).set(len(mintable))
        registry.gauge(
            "check_symbolic_uncovered_regions",
            help="Rectangles SK100 could not prove reachable",
        ).set(sum(1 for f in findings if f.rule == "SK100"))

    # -- SK101 ---------------------------------------------------------------

    def _check_equivalence(self, ctx: CheckContext) -> list[Finding]:
        dep = ctx.deployment
        if dep is None:
            return []  # config-described programs have no compiled form
        findings: list[Finding] = []
        domain = PacketSpace.universe()
        for dc_name in sorted(dep.cdn.datacenters):
            dc = dep.cdn.datacenters[dc_name]
            for server_name in sorted(dc.servers):
                server = dc.servers[server_name]
                programs = server.lookup_path.programs()
                for program in programs:
                    divergence = equivalence_counterexample(program, domain)
                    if divergence is not None:
                        findings.append(self._divergence_finding(
                            divergence, f"{server_name}#{program.name}"))
                if len(programs) > 1:
                    findings.extend(self._check_path_equivalence(
                        server_name, programs, domain))
        return findings

    def _check_path_equivalence(self, server_name, programs, domain) -> list[Finding]:
        """Attach-order composition: interpreter chain vs compiled chain."""
        def interp_stage(program):
            live = {k for k in range(program.map.size)
                    if program.map.lookup(k) is not None}
            return lambda d: program_verdicts(program.rules(), live, d)

        def compiled_stage(program):
            live = {k for k in range(program.map.size)
                    if program.map.lookup(k) is not None}
            description = program.compiled().describe()
            return lambda d: compiled_verdicts(description, live, d)

        interp = path_verdicts([interp_stage(p) for p in programs], domain)
        comp = path_verdicts([compiled_stage(p) for p in programs], domain)
        for key in sorted(set(interp) | set(comp), key=_verdict_name):
            diff = interp.get(key, PacketSpace.empty()).subtract(
                comp.get(key, PacketSpace.empty()))
            if diff.is_empty():
                continue
            point = diff.witness()
            family, value, proto, port = point
            divergence = Divergence(
                program="+".join(p.name for p in programs),
                family=family, value=value, proto=proto, port=port,
                interpreter=_outcome_at(interp, point),
                compiled=_outcome_at(comp, point),
            )
            return [self._divergence_finding(divergence, f"path:{server_name}")]
        return []

    @staticmethod
    def _divergence_finding(divergence: Divergence, where: str) -> Finding:
        return Finding(
            "SK101", "engine-divergence", Severity.ERROR,
            f"compiled index disagrees with the interpreter: {divergence.render()}",
            where,
            "recompile the program (stale or corrupted index); replay the "
            "counterexample packet on both engines to confirm",
        )
