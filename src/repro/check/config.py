"""Check-config loader: describe a control plane as JSON, get a context.

A check-config is the operator-facing input to ``python -m repro check``:
a declarative description of what *should* be deployed — announced space,
listening space, policies (the :mod:`repro.core.spec` shape), standby
pools, and sk_lookup programs — that the passes cross-validate without
standing anything up.  Because programs are described as plain rule dicts,
deliberately broken rule sets (the kind ``add_rule`` would reject at
attach time) can still be expressed and diagnosed.

Shape::

    {
      "advertised":    ["192.0.0.0/20"],          # BGP-announced space
      "listening":     ["192.0.0.0/20"],          # optional; default: advertised
      "service_ports": [80, 443],                 # optional
      "soa_minimum":   300,                       # optional
      "policies":      [{... repro.core.spec policy spec ...}],
      "standby_pools": [{"advertised": "...", "active": "...", "name": "..."}],
      "programs": [
        {"name": "edge", "map_size": 4, "live_slots": [0, 1], "path": "default",
         "rules": [{"action": "pass", "protocol": "tcp",
                    "prefixes": ["192.0.2.0/24"],
                    "port_lo": 443, "port_hi": 443,
                    "map_key": 0, "label": "svc"}]}
      ],
      "lint": ["src/repro"]                       # paths, relative to this file
    }
"""

from __future__ import annotations

import json
import os

from ..core.pool import AddressPool
from ..core.spec import PolicySpecError, compile_policy
from ..netsim.packet import Protocol
from ..netsim.addr import parse_prefix
from ..sockets.sklookup import MatchRule, Verdict
from .core import CheckContext, PolicyInfo, ProgramView

__all__ = ["CheckConfigError", "load_check_config"]

_TOP_KEYS = {
    "advertised", "listening", "service_ports", "soa_minimum",
    "policies", "standby_pools", "programs", "lint",
}
_RULE_KEYS = {"action", "protocol", "prefixes", "port_lo", "port_hi", "map_key", "label"}
_PROGRAM_KEYS = {"name", "map_size", "live_slots", "rules", "path"}

_PROTOCOLS = {"tcp": Protocol.TCP, "udp": Protocol.UDP, "quic": Protocol.QUIC}


class CheckConfigError(ValueError):
    """The config file itself is malformed (vs. describing a broken system)."""


def _parse_rule(raw: dict, where: str) -> MatchRule:
    unknown = set(raw) - _RULE_KEYS
    if unknown:
        raise CheckConfigError(f"{where}: unknown rule keys {sorted(unknown)}")
    action_text = raw.get("action", "pass")
    try:
        action = {"pass": Verdict.PASS, "drop": Verdict.DROP}[action_text]
    except KeyError:
        raise CheckConfigError(f"{where}: action must be 'pass' or 'drop', "
                               f"got {action_text!r}") from None
    protocol_text = raw.get("protocol")
    if protocol_text is not None and protocol_text not in _PROTOCOLS:
        raise CheckConfigError(f"{where}: unknown protocol {protocol_text!r}")
    try:
        prefixes = tuple(parse_prefix(p) for p in raw.get("prefixes", []))
    except ValueError as exc:
        raise CheckConfigError(f"{where}: {exc}") from exc
    return MatchRule(
        action=action,
        protocol=_PROTOCOLS[protocol_text] if protocol_text else None,
        prefixes=prefixes,
        port_lo=int(raw.get("port_lo", 1)),
        port_hi=int(raw.get("port_hi", 0xFFFF)),
        map_key=raw.get("map_key"),
        label=raw.get("label", ""),
    )


def _parse_program(raw: dict, index: int) -> ProgramView:
    unknown = set(raw) - _PROGRAM_KEYS
    if unknown:
        raise CheckConfigError(f"programs[{index}]: unknown keys {sorted(unknown)}")
    name = raw.get("name", f"program{index}")
    rules = tuple(
        _parse_rule(rule, f"{name}#rule{i}") for i, rule in enumerate(raw.get("rules", []))
    )
    return ProgramView(
        name=name,
        rules=rules,
        map_size=int(raw.get("map_size", 64)),
        live_slots=frozenset(int(k) for k in raw.get("live_slots", [])),
        path=raw.get("path", "default"),
    )


def _parse_pool(raw: dict, where: str) -> AddressPool:
    try:
        advertised = parse_prefix(raw["advertised"])
        active = raw.get("active")
        return AddressPool(
            advertised,
            active=parse_prefix(active) if active is not None else None,
            name=raw.get("name", ""),
        )
    except KeyError as exc:
        raise CheckConfigError(f"{where}: missing key {exc}") from exc
    except ValueError as exc:
        raise CheckConfigError(f"{where}: {exc}") from exc


def load_check_config(path: str) -> CheckContext:
    """Parse a check-config JSON file into a :class:`CheckContext`.

    Raises :class:`CheckConfigError` for malformed files; a well-formed
    file describing a broken system loads fine — diagnosing it is the
    checkers' job.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except OSError as exc:
        raise CheckConfigError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckConfigError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise CheckConfigError(f"{path}: top level must be a JSON object")
    unknown = set(raw) - _TOP_KEYS
    if unknown:
        raise CheckConfigError(f"{path}: unknown top-level keys {sorted(unknown)}")

    try:
        announced = [parse_prefix(p) for p in raw.get("advertised", [])]
        listening = [parse_prefix(p) for p in raw.get("listening", raw.get("advertised", []))]
    except ValueError as exc:
        raise CheckConfigError(f"{path}: {exc}") from exc

    policies = []
    for i, spec in enumerate(raw.get("policies", [])):
        try:
            policies.append(PolicyInfo.from_policy(compile_policy(spec)))
        except PolicySpecError as exc:
            raise CheckConfigError(f"{path}: policies[{i}]: {exc}") from exc

    standby = [
        _parse_pool(p, f"standby_pools[{i}]")
        for i, p in enumerate(raw.get("standby_pools", []))
    ]
    programs = [_parse_program(p, i) for i, p in enumerate(raw.get("programs", []))]

    base = os.path.dirname(os.path.abspath(path))
    lint = [
        entry if os.path.isabs(entry) else os.path.join(base, entry)
        for entry in raw.get("lint", [])
    ]

    ports = tuple(int(p) for p in raw.get("service_ports", (80, 443)))
    soa = raw.get("soa_minimum")
    return CheckContext(
        policies=policies,
        standby_pools=standby,
        announced=announced,
        listening=listening,
        programs=programs,
        service_ports=ports,
        soa_minimum=int(soa) if soa is not None else None,
        lint_paths=lint,
    )
