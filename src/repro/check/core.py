"""The Finding/Checker framework every static pass reports through.

Modelled on the role the kernel BPF verifier plays for sk_lookup programs
(§3.3): a checker examines a *description* of the system — never the live
traffic — and either blesses it or explains precisely what is wrong and
how to fix it.  All three passes (program verifier, control-plane checker,
determinism lint) emit :class:`Finding`s; callers decide whether errors
abort (strict mode, like an attach-time ``-EINVAL``) or are logged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..core.pool import AddressPool
from ..netsim.addr import Prefix
from ..sockets.sklookup import MatchRule, SkLookupProgram

__all__ = [
    "Severity",
    "Finding",
    "CheckError",
    "PolicyInfo",
    "ProgramView",
    "CheckContext",
    "Checker",
    "Report",
    "run_checkers",
]


class Severity(enum.Enum):
    """Finding severity, ordered: errors block, warnings inform."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True, slots=True)
class Finding:
    """One verifier/checker/lint result.

    ``rule`` is a short stable identifier (``SK002``, ``CP001``,
    ``DT003``); ``location`` names where (program#rule index, policy name,
    or ``file:line``); ``hint`` says how to fix it.
    """

    rule: str
    name: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def render(self) -> str:
        where = f" {self.location}:" if self.location else ""
        line = f"{self.severity.value:<7} {self.rule} [{self.name}]{where} {self.message}"
        if self.hint:
            line += f"\n        hint: {self.hint}"
        return line


class CheckError(RuntimeError):
    """Raised in strict mode when a check pass reports errors."""

    def __init__(self, message: str, findings: list[Finding]) -> None:
        super().__init__(message)
        self.findings = list(findings)


@dataclass(frozen=True, slots=True)
class PolicyInfo:
    """The slice of a live :class:`~repro.core.policy.Policy` the
    control-plane checker consumes.

    Using a value type instead of the live object lets a rebind be
    *prechecked*: substitute the candidate pool here and verify the
    hypothetical state without touching the serving engine.
    """

    name: str
    pool: AddressPool
    ttl: int
    priority: int = 100

    @classmethod
    def from_policy(cls, policy) -> "PolicyInfo":
        return cls(name=policy.name, pool=policy.pool, ttl=policy.ttl,
                   priority=policy.priority)


@dataclass(frozen=True, slots=True)
class ProgramView:
    """A verifier's-eye view of one sk_lookup program.

    ``live_slots`` is the set of SOCKARRAY keys that currently hold a
    listening socket; ``path`` identifies the lookup path the program is
    attached to (programs sharing a path are checked against each other,
    in attach order).  Views are built either from a live program or
    directly from a JSON check-config, so broken rule sets that
    ``add_rule`` would reject at construction can still be described and
    diagnosed.
    """

    name: str
    rules: tuple[MatchRule, ...]
    map_size: int
    live_slots: frozenset[int]
    path: str = ""

    @classmethod
    def from_program(cls, program: SkLookupProgram, path: str = "") -> "ProgramView":
        live = frozenset(
            key for key in range(program.map.size) if program.map.lookup(key) is not None
        )
        return cls(
            name=program.name,
            rules=program.rules(),
            map_size=program.map.size,
            live_slots=live,
            path=path or program.name,
        )


@dataclass(slots=True)
class CheckContext:
    """Everything the passes cross-validate, in one place.

    Built from a live :class:`~repro.deploy.Deployment`
    (:func:`~repro.check.deployment.context_from_deployment`) or from a
    JSON config (:func:`~repro.check.config.load_check_config`).  Any
    field may be empty; each checker skips what it cannot see.
    """

    policies: list[PolicyInfo] = field(default_factory=list)
    standby_pools: list[AddressPool] = field(default_factory=list)
    announced: list[Prefix] = field(default_factory=list)
    listening: list[Prefix] = field(default_factory=list)
    programs: list[ProgramView] = field(default_factory=list)
    service_ports: tuple[int, ...] = (80, 443)
    soa_minimum: int | None = None
    deployment: object | None = None  # live Deployment for end-to-end dispatch
    lint_paths: list[str] = field(default_factory=list)
    #: TTLs above this defeat TTL-bounded agility (§4.4's rebind bound).
    ttl_horizon_max: int = 3600
    #: Addresses sampled per pool for end-to-end reachability (plus corners).
    samples_per_pool: int = 6
    #: Optional MetricsRegistry; passes record region counts / durations here.
    registry: object | None = None

    def covered_by_announced(self, prefix: Prefix) -> bool:
        return any(a.contains(prefix) for a in self.announced)

    def covered_by_listening(self, prefix: Prefix) -> bool:
        return any(p.contains(prefix) for p in self.listening)


class Checker:
    """Base class: one static pass over a :class:`CheckContext`."""

    name = "checker"

    def run(self, ctx: CheckContext) -> list[Finding]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(slots=True)
class Report:
    """The combined result of a check run."""

    findings: list[Finding] = field(default_factory=list)
    checkers_run: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No errors (warnings tolerated — the compile_and_verify contract)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def render(self) -> str:
        ordered = sorted(
            self.findings,
            key=lambda f: (f.severity.rank, f.rule, f.location, f.message),
        )
        lines = [f.render() for f in ordered]
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.findings) - len(self.errors) - len(self.warnings)} info "
            f"from {self.checkers_run} checker(s)"
        )
        if not lines:
            return f"ok — no findings ({summary})"
        return "\n".join([*lines, summary])


def run_checkers(ctx: CheckContext, checkers: list[Checker] | None = None) -> Report:
    """Run a set of checkers (default: all three passes) over ``ctx``."""
    if checkers is None:
        from .controlplane import ControlPlaneChecker
        from .determinism import DeterminismChecker
        from .program import ProgramChecker

        checkers = [ProgramChecker(), ControlPlaneChecker()]
        if ctx.lint_paths:
            checkers.append(DeterminismChecker())
    report = Report(checkers_run=len(checkers))
    registry = ctx.registry
    for checker in checkers:
        if registry is None:
            report.findings.extend(checker.run(ctx))
            continue
        import time

        start = time.perf_counter()  # repro: allow-wall-clock pass-duration metric only
        found = checker.run(ctx)
        elapsed = time.perf_counter() - start  # repro: allow-wall-clock pass-duration metric only
        report.findings.extend(found)
        registry.histogram(
            "check_pass_duration_seconds",
            help="Wall-clock duration of one checker pass",
        ).observe(elapsed)
        registry.counter(
            f"check_pass_findings_total_{checker.name}",
            help="Findings emitted by this checker pass",
        ).inc(len(found))
    return report
