"""``python -m repro check``: the static-analysis front door.

Two modes:

* **no config argument** — build the default in-memory deployment
  (:meth:`repro.deploy.Deployment.build`), verify its programs and control
  plane, and run the determinism lint over the installed ``repro``
  package sources.  This is the CI gate: the shipped configuration and
  the shipped code must both come back clean.
* **a check-config JSON path** — load the described control plane
  (:mod:`repro.check.config`) and verify *it*, plus any ``lint`` paths it
  names.  Broken configs exit non-zero with one finding per defect.

Exit status: 0 when no error findings (``--strict``: no findings at all),
1 otherwise; 2 for an unreadable/malformed config file.
"""

from __future__ import annotations

import os

from .config import CheckConfigError, load_check_config
from .core import Report, run_checkers
from .deployment import context_from_deployment

__all__ = ["run_check"]


def _default_lint_paths() -> list[str]:
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def run_check(
    config: str | None = None,
    lint: list[str] | None = None,
    no_lint: bool = False,
    strict: bool = False,
    no_deployment: bool = False,
) -> tuple[str, int]:
    """Run the requested passes; returns (rendered report, exit code)."""
    if config is not None:
        try:
            ctx = load_check_config(config)
        except CheckConfigError as exc:
            return f"check-config error: {exc}", 2
    elif no_deployment:
        from .core import CheckContext

        ctx = CheckContext(service_ports=())
    else:
        from ..deploy import Deployment

        ctx = context_from_deployment(Deployment.build())
    if lint:
        ctx.lint_paths = [*ctx.lint_paths, *lint]
    elif config is None and not ctx.lint_paths:
        ctx.lint_paths = _default_lint_paths()
    if no_lint:
        ctx.lint_paths = []
    report: Report = run_checkers(ctx)
    return report.render(), report.exit_code(strict=strict)
