"""``python -m repro check`` / ``python -m repro plan``: static analysis.

Check modes:

* **no config argument** — build the default in-memory deployment
  (:meth:`repro.deploy.Deployment.build`), verify its programs and control
  plane, and run the determinism lint over the installed ``repro``
  package sources.  This is the CI gate: the shipped configuration and
  the shipped code must both come back clean.
* **a check-config JSON path** — load the described control plane
  (:mod:`repro.check.config`) and verify *it*, plus any ``lint`` paths it
  names.  Broken configs exit non-zero with one finding per defect.

``--symbolic`` adds the exact packet-space passes (SK100/SK101);
``--only <name>`` restricts the run to named checkers — an unknown name
is a typed :class:`UnknownCheckerError` and exit code 2, never a silent
no-op run.  ``python -m repro plan <plan.json>`` verifies a rebind plan
against the default deployment (:func:`repro.check.plan.verify_plan`).

Exit status: 0 when no error findings (``--strict``: no findings at all),
1 otherwise; 2 for an unreadable/malformed config or plan file, or an
unknown ``--only`` checker name.
"""

from __future__ import annotations

import json
import os

from ..core.pool import AddressPool, PoolError
from ..netsim.addr import parse_prefix
from .config import CheckConfigError, load_check_config
from .core import Checker, Report, run_checkers
from .deployment import context_from_deployment

__all__ = ["run_check", "run_plan", "UnknownCheckerError", "CHECKERS"]


def _make_program() -> Checker:
    from .program import ProgramChecker

    return ProgramChecker()


def _make_controlplane() -> Checker:
    from .controlplane import ControlPlaneChecker

    return ControlPlaneChecker()


def _make_determinism() -> Checker:
    from .determinism import DeterminismChecker

    return DeterminismChecker()


def _make_symbolic() -> Checker:
    from .symbolic import SymbolicChecker

    return SymbolicChecker()


#: name -> factory; the vocabulary ``--only`` accepts.
CHECKERS = {
    "program": _make_program,
    "controlplane": _make_controlplane,
    "determinism": _make_determinism,
    "symbolic": _make_symbolic,
}


class UnknownCheckerError(ValueError):
    """``--only`` named a checker that does not exist."""

    def __init__(self, checker: str, known: tuple[str, ...]) -> None:
        self.checker = checker
        self.known = known
        super().__init__(
            f"unknown checker {checker!r}; known checkers: {', '.join(known)}"
        )


def _default_lint_paths() -> list[str]:
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def run_check(
    config: str | None = None,
    lint: list[str] | None = None,
    no_lint: bool = False,
    strict: bool = False,
    no_deployment: bool = False,
    only: list[str] | None = None,
    symbolic: bool = False,
) -> tuple[str, int]:
    """Run the requested passes; returns (rendered report, exit code)."""
    selected: list[Checker] | None = None
    if only:
        known = tuple(sorted(CHECKERS))
        for name in only:
            if name not in CHECKERS:
                raise UnknownCheckerError(name, known)
        selected = []
        seen: set[str] = set()
        for name in only:
            if name in seen:
                continue
            seen.add(name)
            selected.append(CHECKERS[name]())
    if config is not None:
        try:
            ctx = load_check_config(config)
        except CheckConfigError as exc:
            return f"check-config error: {exc}", 2
    elif no_deployment:
        from .core import CheckContext

        ctx = CheckContext(service_ports=())
    else:
        from ..deploy import Deployment

        ctx = context_from_deployment(Deployment.build())
    if lint:
        ctx.lint_paths = [*ctx.lint_paths, *lint]
    elif config is None and not ctx.lint_paths:
        ctx.lint_paths = _default_lint_paths()
    if no_lint:
        ctx.lint_paths = []
    if selected is None and symbolic:
        selected = [_make_program(), _make_controlplane(), _make_symbolic()]
        if ctx.lint_paths:
            selected.append(_make_determinism())
    report: Report = run_checkers(ctx, selected)
    return report.render(), report.exit_code(strict=strict)


def _load_plan(path: str):
    from .plan import RebindPlan

    with open(path, encoding="utf-8") as handle:
        raw = json.load(handle)
    if not isinstance(raw, dict):
        raise ValueError("plan file must hold a JSON object")
    kind = raw.get("kind")
    policy = raw.get("policy")
    if not isinstance(kind, str) or not isinstance(policy, str):
        raise ValueError("plan needs string 'kind' and 'policy' fields")
    active = parse_prefix(raw["active"]) if "active" in raw else None
    pool = None
    if "pool" in raw:
        spec = raw["pool"]
        if not isinstance(spec, dict) or "advertised" not in spec:
            raise ValueError("plan 'pool' must be an object with 'advertised'")
        pool = AddressPool(
            parse_prefix(spec["advertised"]),
            active=parse_prefix(spec["active"]) if spec.get("active") else None,
            name=spec.get("name", ""),
        )
    release = tuple(parse_prefix(p) for p in raw.get("release", ()))
    return RebindPlan(
        kind=kind, policy=policy, active=active, pool=pool,
        release=release, name=raw.get("name", ""),
    )


def run_plan(path: str, strict: bool = False) -> tuple[str, int]:
    """Verify one rebind-plan file against the default deployment."""
    from ..deploy import Deployment
    from .plan import verify_plan

    try:
        plan = _load_plan(path)
    except (OSError, ValueError, KeyError) as exc:
        return f"plan error: {exc}", 2
    dep = Deployment.build()
    try:
        diff = verify_plan(
            plan, dep.cdn, dep.engine,
            service_ports=tuple(dep.config.ports),
        )
    except (KeyError, ValueError, PoolError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        return f"plan error: {message}", 2
    return diff.render(), diff.report.exit_code(strict=strict)
