"""repro.check: static analysis for the addressing-agility control plane.

The paper's socket-dispatch layer only works because the BPF verifier
rejects malformed programs *at attach time* (§3.3); nothing equivalent
guarded the policy/pool control plane that mints addresses (§3.1–§3.2),
or the determinism discipline the simulator's reproducibility rests on.
This package is that missing static pass, three checkers behind one
:class:`~repro.check.core.Finding` framework:

* :mod:`repro.check.program` — an sk_lookup program verifier: shadowed and
  unreachable rules, conflicting redirects across programs on one lookup
  path, port/prefix sanity, dead SOCKARRAY slots, DROP rules that swallow
  addresses a policy can still mint;
* :mod:`repro.check.controlplane` — cross-validates policies/pools against
  the BGP/listening layer: unrouted pools, unterminated pools, overlapping
  pools, undispatched standby pools, TTL sanity, and sampled end-to-end
  policy → route → dispatch reachability;
* :mod:`repro.check.determinism` — an AST lint over simulation code for
  wall-clock reads, unseeded/global randomness, salted ``hash()`` seeds,
  unordered-set iteration, and mutable shared state.

Run everything with ``python -m repro check`` (see :mod:`repro.check.cli`),
or programmatically::

    from repro.check import context_from_deployment, run_checkers
    report = run_checkers(context_from_deployment(deployment))
    assert report.ok, report.render()
"""

from .controlplane import ControlPlaneChecker
from .core import (
    CheckContext,
    CheckError,
    Checker,
    Finding,
    PolicyInfo,
    ProgramView,
    Report,
    Severity,
    run_checkers,
)
from .deployment import (
    context_from_cdn,
    context_from_deployment,
    precheck_rebind,
)
from .determinism import DeterminismChecker, lint_paths
from .program import ProgramChecker

__all__ = [
    "CheckContext",
    "CheckError",
    "Checker",
    "Finding",
    "PolicyInfo",
    "ProgramView",
    "Report",
    "Severity",
    "run_checkers",
    "ProgramChecker",
    "ControlPlaneChecker",
    "DeterminismChecker",
    "lint_paths",
    "context_from_cdn",
    "context_from_deployment",
    "precheck_rebind",
]
