"""repro.check: static analysis for the addressing-agility control plane.

The paper's socket-dispatch layer only works because the BPF verifier
rejects malformed programs *at attach time* (§3.3); nothing equivalent
guarded the policy/pool control plane that mints addresses (§3.1–§3.2),
or the determinism discipline the simulator's reproducibility rests on.
This package is that missing static pass, three checkers behind one
:class:`~repro.check.core.Finding` framework:

* :mod:`repro.check.program` — an sk_lookup program verifier: shadowed and
  unreachable rules, conflicting redirects across programs on one lookup
  path, port/prefix sanity, dead SOCKARRAY slots, DROP rules that swallow
  addresses a policy can still mint;
* :mod:`repro.check.controlplane` — cross-validates policies/pools against
  the BGP/listening layer: unrouted pools, unterminated pools, overlapping
  pools, undispatched standby pools, TTL sanity, and sampled end-to-end
  policy → route → dispatch reachability;
* :mod:`repro.check.determinism` — an AST lint over simulation code for
  wall-clock reads, unseeded/global randomness, salted ``hash()`` seeds,
  unordered-set iteration, environment reads, and mutable shared state;
* :mod:`repro.check.symbolic` — an exact packet-space engine (prefix ×
  protocol × port-interval rectangles) that upgrades the sampled
  reachability check to a proof (SK100) and proves the compiled dispatch
  engine equivalent to the interpreter (SK101), with concrete witness
  packets on failure;
* :mod:`repro.check.plan` — pre-flight rebind-plan analysis
  (:func:`~repro.check.plan.verify_plan`): symbolically diffs the packet
  space across a shrink/failover/migration, reporting blackholed space,
  stranded established flows, and the stale-binding exposure window.

Run everything with ``python -m repro check`` (see :mod:`repro.check.cli`),
or programmatically::

    from repro.check import context_from_deployment, run_checkers
    report = run_checkers(context_from_deployment(deployment))
    assert report.ok, report.render()
"""

from .controlplane import ControlPlaneChecker
from .core import (
    CheckContext,
    CheckError,
    Checker,
    Finding,
    PolicyInfo,
    ProgramView,
    Report,
    Severity,
    run_checkers,
)
from .deployment import (
    context_from_cdn,
    context_from_deployment,
    precheck_rebind,
)
from .determinism import DeterminismChecker, lint_paths
from .plan import PlanDiff, RebindPlan, verify_plan
from .program import ProgramChecker
from .symbolic import PacketSpace, Rect, SymbolicChecker

__all__ = [
    "CheckContext",
    "CheckError",
    "Checker",
    "Finding",
    "PolicyInfo",
    "ProgramView",
    "Report",
    "Severity",
    "run_checkers",
    "ProgramChecker",
    "ControlPlaneChecker",
    "DeterminismChecker",
    "lint_paths",
    "context_from_cdn",
    "context_from_deployment",
    "precheck_rebind",
    "SymbolicChecker",
    "PacketSpace",
    "Rect",
    "RebindPlan",
    "PlanDiff",
    "verify_plan",
]
