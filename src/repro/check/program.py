"""Pass 1: the sk_lookup program verifier.

The attach-time checks in :func:`repro.sockets.sklookup.verify_program`
are the moral equivalent of the BPF verifier's *safety* checks — they stop
a program that cannot run.  This pass is the next tier, the one a CDN
actually needs before shipping a dispatch program fleet-wide: rules that
can never fire, redirects into empty map slots, sockets no rule reaches,
programs on the same lookup path fighting over the same packets, and DROP
rules that silently blackhole addresses the policy control plane can still
mint (the fCDN failure mode: misdirected dispatch drops traffic with no
error anywhere).

Every check is decided from the rule set alone — no packets needed —
because a :class:`~repro.sockets.sklookup.MatchRule`'s match space is a
product of finite boxes: protocol × port interval × prefix set.
"""

from __future__ import annotations

from ..netsim.addr import Prefix
from ..sockets.sklookup import MatchRule, Verdict
from .core import Checker, CheckContext, Finding, ProgramView, Severity

__all__ = ["ProgramChecker", "rule_covers", "rules_overlap"]


def _proto_covers(earlier: MatchRule, later: MatchRule) -> bool:
    if earlier.protocol is None:
        return True
    if later.protocol is None:
        return False
    return earlier.protocol.wire_protocol is later.protocol.wire_protocol


def _proto_overlap(a: MatchRule, b: MatchRule) -> bool:
    if a.protocol is None or b.protocol is None:
        return True
    return a.protocol.wire_protocol is b.protocol.wire_protocol


def _ports_cover(earlier: MatchRule, later: MatchRule) -> bool:
    return earlier.port_lo <= later.port_lo and later.port_hi <= earlier.port_hi


def _ports_overlap(a: MatchRule, b: MatchRule) -> bool:
    return a.port_lo <= b.port_hi and b.port_lo <= a.port_hi


def _prefixes_cover(earlier: MatchRule, later: MatchRule) -> bool:
    if not earlier.prefixes:
        return True  # match-any address
    if not later.prefixes:
        return False  # later matches everything; a constrained rule cannot cover it
    return all(any(ep.contains(lp) for ep in earlier.prefixes) for lp in later.prefixes)


def _prefixes_overlap(a: MatchRule, b: MatchRule) -> bool:
    if not a.prefixes or not b.prefixes:
        return True
    return any(ap.overlaps(bp) for ap in a.prefixes for bp in b.prefixes)


def rule_covers(earlier: MatchRule, later: MatchRule) -> bool:
    """Is ``later``'s entire match space inside ``earlier``'s?"""
    return (
        _proto_covers(earlier, later)
        and _ports_cover(earlier, later)
        and _prefixes_cover(earlier, later)
    )


def rules_overlap(a: MatchRule, b: MatchRule) -> bool:
    """Do the two match spaces share at least one packet?"""
    return _proto_overlap(a, b) and _ports_overlap(a, b) and _prefixes_overlap(a, b)


def _is_terminal(rule: MatchRule, live_slots: frozenset[int]) -> bool:
    """Does a match on ``rule`` always end evaluation?

    DROP and plain PASS rules are terminal; a redirect is terminal only
    while its slot holds a live socket (an empty/stale slot falls through
    at dispatch, exactly like ``bpf_sk_assign`` failing on NULL).
    """
    if rule.action is Verdict.DROP:
        return True
    if rule.is_redirect:
        return rule.map_key in live_slots
    return True  # explicit pass-through


def _where(program: ProgramView, index: int, rule: MatchRule) -> str:
    label = f" ({rule.label})" if rule.label else ""
    return f"{program.name}#rule{index}{label}"


class ProgramChecker(Checker):
    """Static verification of every :class:`ProgramView` in the context."""

    name = "program"

    def run(self, ctx: CheckContext) -> list[Finding]:
        findings: list[Finding] = []
        for program in ctx.programs:
            findings.extend(self._check_sanity(program))
            findings.extend(self._check_shadowing(program))
            findings.extend(self._check_slots(program))
            findings.extend(self._check_drops_vs_policies(program, ctx))
        findings.extend(self._check_cross_program(ctx))
        return findings

    # -- SK001: per-rule sanity ------------------------------------------------

    def _check_sanity(self, program: ProgramView) -> list[Finding]:
        findings = []
        for i, rule in enumerate(program.rules):
            where = _where(program, i, rule)
            if not 1 <= rule.port_lo <= rule.port_hi <= 0xFFFF:
                findings.append(Finding(
                    "SK001", "bad-port-range", Severity.ERROR,
                    f"port range {rule.port_lo}..{rule.port_hi} is not within 1..65535 "
                    "in ascending order",
                    where, "fix the range; ports are an inclusive 1..65535 interval",
                ))
            if len({p.family for p in rule.prefixes}) > 1:
                findings.append(Finding(
                    "SK001", "mixed-family", Severity.ERROR,
                    "rule mixes IPv4 and IPv6 prefixes; a packet has one family",
                    where, "split into one rule per address family",
                ))
            if rule.action is Verdict.DROP and rule.map_key is not None:
                findings.append(Finding(
                    "SK001", "drop-with-map-key", Severity.ERROR,
                    "DROP rules cannot carry a map key",
                    where, "remove the map_key or make the rule a redirect",
                ))
            if rule.is_redirect and not 0 <= rule.map_key < program.map_size:
                findings.append(Finding(
                    "SK001", "map-key-range", Severity.ERROR,
                    f"map key {rule.map_key} outside SOCKARRAY size {program.map_size}",
                    where, f"use a key in 0..{program.map_size - 1} or grow the map",
                ))
        return findings

    # -- SK002: shadowed / unreachable rules ------------------------------------

    def _check_shadowing(self, program: ProgramView) -> list[Finding]:
        findings = []
        for j, later in enumerate(program.rules):
            for i in range(j):
                earlier = program.rules[i]
                if not _is_terminal(earlier, program.live_slots):
                    continue
                if rule_covers(earlier, later):
                    note = ""
                    if earlier.is_redirect:
                        note = (f" (while slot {earlier.map_key} stays populated;"
                                " an emptied slot would un-shadow it)")
                    findings.append(Finding(
                        "SK002", "shadowed-rule", Severity.ERROR,
                        f"never matches: fully shadowed by rule {i}"
                        f" [{earlier.action.value}"
                        + (f" -> slot {earlier.map_key}" if earlier.is_redirect else "")
                        + f"]{note}",
                        _where(program, j, later),
                        "remove the dead rule, or reorder/narrow the earlier one",
                    ))
                    break  # one shadowing witness per rule is enough
        return findings

    # -- SK004/SK005: map-slot hygiene -------------------------------------------

    def _check_slots(self, program: ProgramView) -> list[Finding]:
        findings = []
        referenced: set[int] = set()
        for i, rule in enumerate(program.rules):
            if not rule.is_redirect:
                continue
            referenced.add(rule.map_key)
            if 0 <= rule.map_key < program.map_size and rule.map_key not in program.live_slots:
                findings.append(Finding(
                    "SK004", "empty-slot-redirect", Severity.WARNING,
                    f"redirects to SOCKARRAY slot {rule.map_key} which holds no "
                    "listening socket; dispatch falls through at runtime",
                    _where(program, i, rule),
                    "populate the slot via the socket-activation service, or drop the rule",
                ))
        for slot in sorted(program.live_slots - referenced):
            findings.append(Finding(
                "SK005", "dead-slot", Severity.WARNING,
                f"SOCKARRAY slot {slot} holds a listening socket no rule redirects to",
                f"{program.name}[{slot}]",
                "add a redirect rule for it or release the socket",
            ))
        return findings

    # -- SK006: DROP rules vs. mintable addresses ---------------------------------

    def _check_drops_vs_policies(self, program: ProgramView, ctx: CheckContext) -> list[Finding]:
        findings = []
        service_ports = ctx.service_ports
        for i, rule in enumerate(program.rules):
            if rule.action is not Verdict.DROP:
                continue
            if service_ports and not any(
                rule.port_lo <= port <= rule.port_hi for port in service_ports
            ):
                continue  # drop outside the service ports cannot eat minted traffic
            for policy in ctx.policies:
                if self._drop_hits_pool(rule, policy.pool):
                    findings.append(Finding(
                        "SK006", "drop-shadows-pool", Severity.ERROR,
                        f"DROP rule swallows addresses policy {policy.name!r} can "
                        f"still mint from pool {policy.pool.name!r} — minted answers "
                        "would blackhole silently",
                        _where(program, i, rule),
                        "shrink the policy's active set away from the dropped "
                        "prefix, or narrow the DROP rule",
                    ))
        return findings

    @staticmethod
    def _drop_hits_pool(rule: MatchRule, pool) -> bool:
        """Can the policy's *active* set mint an address the DROP matches?"""
        active: Prefix | None = pool.active_prefix
        if active is not None:
            if not rule.prefixes:
                return True
            return any(p.overlaps(active) for p in rule.prefixes)
        # Explicit address list: test each minted address directly.
        addresses = pool.active_addresses() or ()
        if not rule.prefixes:
            return bool(addresses)
        return any(addr in p for addr in addresses for p in rule.prefixes)

    # -- SK003: conflicting redirects across programs on one path -----------------

    def _check_cross_program(self, ctx: CheckContext) -> list[Finding]:
        findings = []
        by_path: dict[str, list[ProgramView]] = {}
        for program in ctx.programs:
            by_path.setdefault(program.path, []).append(program)
        for path, programs in by_path.items():
            if len(programs) < 2:
                continue
            for a_idx, first in enumerate(programs):
                for second in programs[a_idx + 1:]:
                    findings.extend(self._conflicts_between(path, first, second))
        return findings

    def _conflicts_between(
        self, path: str, first: ProgramView, second: ProgramView
    ) -> list[Finding]:
        """Programs run in attach order; the first to return a socket or a
        drop wins.  A later program whose redirect overlaps an earlier
        program's live redirect with a *different* target never sees those
        packets — dispatch silently depends on attach order."""
        findings = []
        for i, early in enumerate(first.rules):
            if not (early.is_redirect and early.map_key in first.live_slots):
                continue
            for j, late in enumerate(second.rules):
                if not late.is_redirect:
                    continue
                if rules_overlap(early, late):
                    findings.append(Finding(
                        "SK003", "conflicting-redirect", Severity.WARNING,
                        f"overlaps {_where(first, i, early)} (attached earlier on "
                        f"path {path!r}) which redirects to a different socket; "
                        "the earlier program claims the shared packets",
                        _where(second, j, late),
                        "disjoint the match spaces, or merge the programs so one "
                        "rule order decides",
                    ))
        return findings
