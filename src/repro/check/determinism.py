"""Pass 3: the determinism lint — a race detector for seeded simulations.

Every experiment in this repository promises bit-reproducibility: same
seed, same tables.  That promise dies quietly the moment simulation code
reads the wall clock, draws from the process-global RNG, seeds anything
from salted ``hash()``, lets ``set`` iteration order feed the event
scheduler, or shares mutable state across simulated actors through a
default argument or class attribute.  None of those crash; they just make
run N+1 differ from run N — the concurrency-bug shape of simulator bugs.

This pass walks the AST (stdlib :mod:`ast`, no new dependencies) of every
``.py`` file under the configured roots and flags:

* ``DT001 wall-clock``          — ``time.time``/``monotonic``/…,
  ``datetime.now``/``utcnow``/``today`` (use the sim ``Clock``);
* ``DT002 unseeded-random``     — module-level ``random.*`` calls,
  ``random.Random()``/``numpy.random.default_rng()`` with no seed,
  ``random.SystemRandom`` (use a seeded ``random.Random`` instance);
* ``DT003 salted-hash``         — builtin ``hash()``: salted per process
  for str/bytes (use :func:`repro.hashing.stable_hash`);
* ``DT004 unordered-iteration`` — ``for``/comprehension iteration or
  ``list()``/``tuple()`` materialisation of a set expression (sort first);
* ``DT005 mutable-default``     — list/dict/set default arguments shared
  across every simulated actor that calls the function;
* ``DT006 mutable-class-state`` — list/dict/set class attributes shared
  across every instance;
* ``DT008 env-dependence``      — ``os.environ`` / ``os.getenv`` /
  ``os.urandom`` reads: the same seed gives different runs on different
  hosts (inject configuration explicitly; pragma spelling ``allow-env``).

False positives are suppressed — and justified — in place with a pragma::

    t = time.time()  # repro: allow-wall-clock benchmarks measure real time

A pragma with no justification text is itself flagged (``DT007``), so
"runs clean" means every exception is explained where it stands.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

from .core import Checker, CheckContext, Finding, Severity

__all__ = ["DeterminismChecker", "lint_paths", "lint_file", "RULES"]

#: rule id -> (name, severity, hint)
RULES: dict[str, tuple[str, Severity, str]] = {
    "DT000": ("parse-error", Severity.ERROR,
              "fix the syntax error so the file can be analysed"),
    "DT001": ("wall-clock", Severity.ERROR,
              "thread the simulated repro.clock.Clock through instead"),
    "DT002": ("unseeded-random", Severity.ERROR,
              "use a random.Random(seed) instance plumbed from the caller"),
    "DT003": ("salted-hash", Severity.ERROR,
              "use repro.hashing.stable_hash — builtin hash() is salted per process"),
    "DT004": ("unordered-iteration", Severity.WARNING,
              "iterate sorted(...) so event order is independent of hash seeds"),
    "DT005": ("mutable-default", Severity.WARNING,
              "default to None and create the object inside the function"),
    "DT006": ("mutable-class-state", Severity.WARNING,
              "initialise per-instance state in __init__ (or use a field factory)"),
    "DT007": ("unjustified-pragma", Severity.WARNING,
              "say *why* the rule does not apply, on the same line"),
    "DT008": ("env-dependence", Severity.ERROR,
              "pass configuration in explicitly — environment reads make the "
              "same seed behave differently across hosts"),
}

#: Pragma shorthand: ``# repro: allow-env <why>`` spells DT008.
_PRAGMA_ALIASES = {"env": "DT008"}

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.localtime", "time.gmtime", "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_GLOBAL_RANDOM_FNS = {
    "random", "uniform", "randint", "randrange", "getrandbits", "choice",
    "choices", "shuffle", "sample", "seed", "betavariate", "expovariate",
    "gauss", "normalvariate", "lognormvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "randbytes",
}

_NUMPY_RANDOM_FNS = {
    "rand", "randn", "random", "random_sample", "randint", "choice",
    "shuffle", "permutation", "seed", "uniform", "normal", "standard_normal",
}

_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque", "collections.Counter",
    "collections.OrderedDict", "defaultdict", "deque", "Counter", "OrderedDict",
}

_PRAGMA = re.compile(r"#\s*repro:\s*allow-([A-Za-z0-9_-]+)\s*(.*)$")


@dataclass(frozen=True, slots=True)
class _Pragma:
    rule: str       # rule id ("DT003") or name ("salted-hash") or "all"
    justified: bool


def _collect_pragmas(source: str) -> dict[int, list[_Pragma]]:
    pragmas: dict[int, list[_Pragma]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match:
            pragmas.setdefault(lineno, []).append(
                _Pragma(rule=match.group(1), justified=bool(match.group(2).strip()))
            )
    return pragmas


class _NameTable:
    """Resolve names to dotted module paths via the file's imports."""

    def __init__(self) -> None:
        self.modules: dict[str, str] = {}  # local name -> module path
        self.names: dict[str, str] = {}    # local name -> module.attr path

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.modules[alias.asname] = alias.name
            else:
                # "import numpy.random" binds the top-level name "numpy".
                root = alias.name.split(".")[0]
                self.modules[root] = root

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative import: package-internal, not a stdlib source
        for alias in node.names:
            self.names[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path for a call target, or the bare builtin name."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.reverse()
        base = cur.id
        if base in self.modules:
            return ".".join([self.modules[base], *parts])
        if base in self.names:
            return ".".join([self.names[base], *parts])
        if not parts:
            return base  # plausibly a builtin: hash, set, list, ...
        return None


class _FileVisitor(ast.NodeVisitor):
    def __init__(self, display: str, table: _NameTable) -> None:
        self.display = display
        self.table = table
        self.findings: list[Finding] = []
        self._env_lines: set[int] = set()  # one DT008 per line, however written

    # -- helpers ------------------------------------------------------------

    def _flag(self, rule: str, lineno: int, message: str) -> None:
        name, severity, hint = RULES[rule]
        self.findings.append(Finding(
            rule, name, severity, message, f"{self.display}:{lineno}", hint,
        ))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self.table.resolve(node.func) in ("set", "frozenset")
        return False

    def _is_mutable_literal(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self.table.resolve(node.func) in _MUTABLE_CALLS
        return False

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.table.add_import(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.table.add_import_from(node)
        self.generic_visit(node)

    # -- calls: wall clock, global randomness, salted hash ------------------------

    def visit_Call(self, node: ast.Call) -> None:
        path = self.table.resolve(node.func)
        if path is not None:
            self._check_call(node, path)
        # list(set(...)) / tuple(set(...)) materialise unordered state.
        if path in ("list", "tuple") and node.args and self._is_set_expr(node.args[0]):
            self._flag("DT004", node.lineno,
                       f"{path}() over a set materialises hash-seed-dependent order")
        self.generic_visit(node)

    def _flag_env(self, lineno: int, message: str) -> None:
        if lineno in self._env_lines:
            return
        self._env_lines.add(lineno)
        self._flag("DT008", lineno, message)

    def _check_call(self, node: ast.Call, path: str) -> None:
        if path == "os.urandom":
            self._flag_env(node.lineno,
                           "os.urandom() draws OS entropy inside simulation code")
            return
        if path in ("os.getenv", "os.environ") or path.startswith("os.environ."):
            self._flag_env(node.lineno,
                           f"{path}() reads the process environment inside simulation code")
            return
        if path in _WALL_CLOCK:
            self._flag("DT001", node.lineno,
                       f"{path}() reads the wall clock inside simulation code")
            return
        if path.startswith("random."):
            fn = path.removeprefix("random.")
            if fn in _GLOBAL_RANDOM_FNS:
                self._flag("DT002", node.lineno,
                           f"{path}() draws from the shared module-level RNG")
            elif fn == "Random" and not node.args and not node.keywords:
                self._flag("DT002", node.lineno,
                           "random.Random() with no seed is seeded from the OS")
            elif fn == "SystemRandom":
                self._flag("DT002", node.lineno,
                           "random.SystemRandom is nondeterministic by design")
            return
        if path.startswith("numpy.random."):
            fn = path.removeprefix("numpy.random.")
            if fn in _NUMPY_RANDOM_FNS:
                self._flag("DT002", node.lineno,
                           f"{path}() draws from numpy's shared global RNG")
            elif fn == "default_rng" and not node.args and not node.keywords:
                self._flag("DT002", node.lineno,
                           "numpy.random.default_rng() with no seed is entropy-seeded")
            return
        if path == "hash":
            self._flag("DT003", node.lineno,
                       "builtin hash() is salted per process (PYTHONHASHSEED); "
                       "its value is not reproducible across runs")

    # -- environment reads -----------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.table.resolve(node.value) == "os.environ":
            self._flag_env(node.lineno,
                           "os.environ[...] reads the process environment "
                           "inside simulation code")
        self.generic_visit(node)

    # -- iteration order ------------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag("DT004", node.iter.lineno,
                       "for-loop iterates a set: order depends on the hash seed")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_set_expr(gen.iter):
                self._flag("DT004", gen.iter.lineno,
                           "comprehension iterates a set: order depends on the hash seed")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set stays orderless — no finding.
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    # -- shared mutable state ----------------------------------------------------------

    def _check_function(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *[d for d in args.kw_defaults if d is not None]]:
            if self._is_mutable_literal(default):
                self._flag("DT005", default.lineno,
                           f"mutable default argument in {node.name}(): one object "
                           "is shared by every simulated actor that calls it")
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            value = None
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                value, target = stmt.value, stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, target = stmt.value, stmt.target
            if value is None or not isinstance(target, ast.Name):
                continue
            if self._is_mutable_literal(value):
                self._flag("DT006", value.lineno,
                           f"class attribute {node.name}.{target.id} is mutable and "
                           "shared by every instance")
        self.generic_visit(node)


def lint_file(path: str, display: str | None = None) -> list[Finding]:
    """Lint one file; pragma-suppressed findings are dropped, unjustified
    pragmas are themselves flagged."""
    display = display if display is not None else path
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        name, severity, hint = RULES["DT000"]
        return [Finding("DT000", name, severity, f"cannot read file: {exc}", display, hint)]
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        name, severity, hint = RULES["DT000"]
        return [Finding("DT000", name, severity, f"syntax error: {exc.msg}",
                        f"{display}:{exc.lineno or 0}", hint)]

    visitor = _FileVisitor(display, _NameTable())
    visitor.visit(tree)
    pragmas = _collect_pragmas(source)

    findings: list[Finding] = []
    used: set[tuple[int, int]] = set()  # (lineno, index of pragma used)
    for finding in visitor.findings:
        lineno = int(finding.location.rsplit(":", 1)[-1])
        suppressed = False
        for idx, pragma in enumerate(pragmas.get(lineno, [])):
            if (
                pragma.rule in (finding.rule, finding.name, "all")
                or _PRAGMA_ALIASES.get(pragma.rule) == finding.rule
            ):
                suppressed = True
                used.add((lineno, idx))
                if not pragma.justified:
                    name, severity, hint = RULES["DT007"]
                    findings.append(Finding(
                        "DT007", name, severity,
                        f"pragma allow-{pragma.rule} suppresses {finding.rule} "
                        "without an in-line justification",
                        f"{display}:{lineno}", hint,
                    ))
                break
        if not suppressed:
            findings.append(finding)
    return findings


def _display_for(file_path: str, root: str) -> str:
    """Stable display path: the root's basename plus the relative path."""
    root = os.path.abspath(root)
    file_path = os.path.abspath(file_path)
    if os.path.isfile(root):
        return os.path.basename(root)
    rel = os.path.relpath(file_path, root)
    return os.path.join(os.path.basename(root), rel)


def lint_paths(paths: list[str]) -> list[Finding]:
    """Lint every ``.py`` file under each path (file or directory)."""
    findings: list[Finding] = []
    for root in paths:
        if os.path.isfile(root):
            findings.extend(lint_file(root, _display_for(root, root)))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d not in ("__pycache__", ".git")]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                full = os.path.join(dirpath, filename)
                findings.extend(lint_file(full, _display_for(full, root)))
    return findings


class DeterminismChecker(Checker):
    """Checker adapter: lints ``ctx.lint_paths``."""

    name = "determinism"

    def run(self, ctx: CheckContext) -> list[Finding]:
        return lint_paths(ctx.lint_paths)
