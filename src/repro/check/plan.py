"""Pre-flight rebind-plan analysis: diff the packet space, then decide.

``precheck_rebind`` answers "is the *end state* of a rebind coherent?";
this module answers the sharper operational question: "what happens to
packets and live connections *during and after* the maneuver?"  A
:class:`RebindPlan` describes an intended shrink / failover / migration;
:func:`verify_plan` computes the exact before/after mintable spaces with
the symbolic algebra and reports:

* **SK102 plan-blackhole** — packets the post-plan policy can mint that
  either leave the announced space (once ``release`` withdrawals take
  effect) or reach no sk_lookup disposition on any edge server.  These
  are addresses the paper's §3.1 invariant says must never be minted.
* **SK103 plan-stranded-flows** — established connections whose local
  address lies inside a prefix the plan *releases*: routing withdrawal
  strands them mid-flight even though the connected-socket lookup (§3.3)
  would still dispatch the packets that no longer arrive.
* **SK103 stale-binding-window** — the space the *old* policy minted
  that the new one no longer will: resolvers may keep handing it out for
  up to one TTL (§4.4's exposure bound), reported as an informational
  window, not an error, because the addresses stay routed and served.

The verdict is recorded on the fault timeline (phase ``"check"``) before
strict mode raises, so a chaos campaign can assert — via the
``plan_safety`` invariant — that no failover was enacted on an unsafe or
unverified plan.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..core.pool import AddressPool, PoolError
from ..netsim.addr import Prefix, parse_prefix
from ..sockets.socktable import SocketState
from .core import CheckError, Finding, Report, Severity
from .symbolic import PacketSpace, announced_space, mintable_space, program_verdicts, resolved_space

__all__ = ["PlanError", "RebindPlan", "PlanDiff", "verify_plan"]

PLAN_KINDS = ("shrink", "failover", "migrate")


class PlanError(PoolError):
    """A manoeuvre whose target is not derived from the pool it rebinds.

    Subclasses :class:`~repro.core.pool.PoolError` (itself a
    ``ValueError``) so existing callers that catch the broad classes keep
    working, while new code can catch the typed plan-shape error
    precisely.  Messages always name *both* prefixes involved.
    """


@dataclass(frozen=True, slots=True)
class RebindPlan:
    """One intended control-plane maneuver, as data.

    ``kind`` selects the move: ``shrink`` re-scopes the current pool's
    active set to ``active``; ``failover``/``migrate`` move the policy to
    ``pool``.  ``release`` lists prefixes whose announcements the plan
    withdraws afterwards (the vacated space of §4.2's timetable) — the
    part that can strand established flows.
    """

    kind: str
    policy: str
    active: Prefix | None = None
    pool: AddressPool | None = None
    release: tuple[Prefix, ...] = ()
    name: str = ""

    def describe(self) -> str:
        bits = [f"{self.kind} policy={self.policy}"]
        if self.active is not None:
            bits.append(f"active={self.active}")
        if self.pool is not None:
            bits.append(f"pool={self.pool.advertised}")
        if self.release:
            bits.append("release=" + ",".join(str(p) for p in self.release))
        return " ".join(bits)

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "policy": self.policy}
        if self.active is not None:
            payload["active"] = str(self.active)
        if self.pool is not None:
            pool: dict = {"advertised": str(self.pool.advertised)}
            if self.pool.active_prefix is not None:
                pool["active"] = str(self.pool.active_prefix)
            if self.pool.name:
                pool["name"] = self.pool.name
            payload["pool"] = pool
        if self.release:
            payload["release"] = [str(p) for p in self.release]
        if self.name:
            payload["name"] = self.name
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RebindPlan":
        if not isinstance(payload, dict):
            raise ValueError("plan must be a JSON object")
        kind = payload.get("kind")
        policy = payload.get("policy")
        if not isinstance(kind, str) or not isinstance(policy, str):
            raise ValueError("plan needs string 'kind' and 'policy' fields")
        if kind not in PLAN_KINDS:
            raise ValueError(
                f"unknown plan kind {kind!r} (expected one of {PLAN_KINDS})"
            )
        active = payload.get("active")
        pool_spec = payload.get("pool")
        pool = None
        if pool_spec is not None:
            if not isinstance(pool_spec, dict) or "advertised" not in pool_spec:
                raise ValueError("plan 'pool' must be an object with 'advertised'")
            pool_active = pool_spec.get("active")
            pool = AddressPool(
                parse_prefix(pool_spec["advertised"]),
                active=parse_prefix(pool_active) if pool_active else None,
                name=pool_spec.get("name", ""),
            )
        return cls(
            kind=kind,
            policy=policy,
            active=parse_prefix(active) if active else None,
            pool=pool,
            release=tuple(parse_prefix(p) for p in payload.get("release", ())),
            name=payload.get("name", ""),
        )

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RebindPlan":
        return cls.from_dict(json.loads(text))


@dataclass(slots=True)
class PlanDiff:
    """The symbolic before/after of one plan, plus the verdict."""

    plan: RebindPlan
    before: PacketSpace
    after: PacketSpace
    blackholed: PacketSpace
    stale: PacketSpace
    stranded: tuple[str, ...] = ()
    exposure_s: float = 0.0
    report: Report = field(default_factory=Report)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def render(self) -> str:
        lines = [
            f"plan: {self.plan.describe()}",
            f"before: {len(self.before)} region(s): {self.before.render(limit=4)}",
            f"after:  {len(self.after)} region(s): {self.after.render(limit=4)}",
        ]
        if not self.blackholed.is_empty():
            lines.append(f"blackholed: {self.blackholed.render(limit=4)}")
        if self.stranded:
            lines.append(f"stranded flows: {len(self.stranded)}")
        if not self.stale.is_empty():
            lines.append(
                f"stale-binding window: {self.exposure_s:g}s over "
                f"{self.stale.render(limit=4)}"
            )
        lines.append(self.report.render())
        return "\n".join(lines)


def _candidate_pool(plan: RebindPlan, current_pool: AddressPool) -> AddressPool:
    if plan.kind == "shrink":
        if plan.active is None:
            raise ValueError("shrink plan needs an 'active' prefix")
        return AddressPool(
            current_pool.advertised, active=plan.active, name=current_pool.name,
        )
    if plan.kind in ("failover", "migrate"):
        if plan.pool is None:
            raise ValueError(f"{plan.kind} plan needs a 'pool'")
        return plan.pool
    raise ValueError(f"unknown plan kind {plan.kind!r} (expected one of {PLAN_KINDS})")


def _service_ports(cdn, service_ports) -> tuple[int, ...]:
    if service_ports:
        return tuple(sorted(set(service_ports)))
    ports: set[int] = set()
    for dc in cdn.datacenters.values():
        for server in dc.servers.values():
            ports.update(
                sock.local_port for sock in server.table.sockets()
                if sock.local_port is not None
            )
    return tuple(sorted(ports)) or (80, 443)


def _stranded_flows(cdn, release: tuple[Prefix, ...]) -> tuple[str, ...]:
    if not release:
        return ()
    flows: list[str] = []
    for dc in cdn.datacenters.values():
        for server in dc.servers.values():
            for sock in server.table.sockets():
                if sock.state is not SocketState.CONNECTED:
                    continue
                if sock.local_addr is None or sock.remote is None:
                    continue
                if not any(p.contains(sock.local_addr) for p in release):
                    continue
                raddr, rport = sock.remote
                flows.append(
                    f"{sock.protocol.name.lower()} "
                    f"{sock.local_addr}:{sock.local_port} <- {raddr}:{rport}"
                )
    return tuple(sorted(flows))


def verify_plan(
    plan: RebindPlan,
    cdn,
    engine,
    *,
    service_ports: tuple[int, ...] | None = None,
    timeline=None,
    clock=None,
    strict: bool = False,
    registry=None,
) -> PlanDiff:
    """Symbolically diff the packet space across ``plan`` and judge it.

    Reads the live CDN and policy engine but mutates neither.  Returns a
    :class:`PlanDiff`; in strict mode raises
    :class:`~repro.check.core.CheckError` when the diff contains errors —
    *after* recording the verdict on ``timeline`` (phase ``"check"``), so
    the record survives the abort.  Raises :class:`KeyError` for an
    unknown policy and :class:`ValueError`/:class:`PoolError` for a plan
    that is malformed on its face.
    """
    policy = next((p for p in engine.policies() if p.name == plan.policy), None)
    if policy is None:
        raise KeyError(f"no policy named {plan.policy!r} to verify a plan for")
    candidate = _candidate_pool(plan, policy.pool)  # may raise PoolError

    ports = _service_ports(cdn, service_ports)
    before = mintable_space(policy.pool, ports)
    after = mintable_space(candidate, ports)

    announced_after = [
        prefix for prefix in cdn.network.announced_prefixes()
        if not any(r.contains(prefix) for r in plan.release)
    ]
    findings: list[Finding] = []

    blackholed = after.subtract(announced_space(announced_after))
    routable_after = after.subtract(blackholed)
    programs = [
        program
        for dc in cdn.datacenters.values()
        for server in dc.servers.values()
        for program in server.lookup_path.programs()
    ]
    if programs:
        # Lenient union across every edge program (mirrors CP008's static
        # dispatch stance): the plan is safe if *some* server disposes of
        # the packet — per-server coverage is SK100's stricter job.
        dispatched = PacketSpace.empty()
        for program in programs:
            live = {
                key for key in range(program.map.size)
                if program.map.lookup(key) is not None
            }
            dispatched = dispatched.union(
                resolved_space(program_verdicts(program.rules(), live, routable_after))
            )
        blackholed = blackholed.union(routable_after.subtract(dispatched))
    if not blackholed.is_empty():
        findings.append(Finding(
            "SK102", "plan-blackhole", Severity.ERROR,
            f"plan mints {len(blackholed)} unreachable region(s): "
            f"{blackholed.render(limit=4)}",
            f"plan:{plan.policy}",
            "announce + dispatch the candidate space before rebinding, or "
            "pick a pool the edge already serves",
        ))

    stranded = _stranded_flows(cdn, plan.release)
    if stranded:
        shown = "; ".join(stranded[:4])
        extra = len(stranded) - min(len(stranded), 4)
        if extra > 0:
            shown += f"; +{extra} more"
        findings.append(Finding(
            "SK103", "plan-stranded-flows", Severity.ERROR,
            f"releasing {', '.join(str(p) for p in plan.release)} strands "
            f"{len(stranded)} established flow(s): {shown}",
            f"plan:{plan.policy}",
            "drain connections off the released space first (the §4.2 "
            "timetable holds announcements until flows age out)",
        ))

    stale = before.subtract(after)
    exposure_s = float(policy.ttl)
    if not stale.is_empty():
        findings.append(Finding(
            "SK103", "stale-binding-window", Severity.INFO,
            f"resolvers may mint {stale.render(limit=4)} for up to "
            f"{exposure_s:g}s after the rebind (TTL exposure window)",
            f"plan:{plan.policy}",
            "keep the vacated space announced and dispatched for one TTL",
        ))

    report = Report(findings=findings, checkers_run=1)
    diff = PlanDiff(
        plan=plan, before=before, after=after, blackholed=blackholed,
        stale=stale, stranded=stranded, exposure_s=exposure_s, report=report,
    )

    if registry is not None:
        registry.gauge(
            "check_plan_blackholed_regions",
            help="Rectangles the last verified plan would blackhole",
        ).set(len(blackholed))
        registry.gauge(
            "check_plan_stranded_flows",
            help="Established flows the last verified plan would strand",
        ).set(len(stranded))

    if timeline is not None:
        if clock is not None:
            at = clock.now()
        else:
            events = timeline.events()
            at = events[-1].at if events else 0.0
        if report.ok:
            timeline.emit(at, "plan_verified", plan.policy,
                          detail=plan.describe(), phase="check")
        else:
            first = report.errors[0]
            timeline.emit(at, "plan_unsafe", plan.policy,
                          detail=f"{first.rule} {first.message}", phase="check")
    if strict and not report.ok:
        raise CheckError(
            f"rebind plan rejected: {plan.describe()}\n{report.render()}",
            report.errors,
        )
    return diff
