"""Run a re-addressing campaign inside the chaos world and judge it.

This is a thin composition over :func:`repro.chaos.runner.run_campaign`:
the same per-tick loop (capacity windows → injections → monitor → one
fetch per client) with a :class:`~repro.campaign.engine.CampaignEngine`
ticked in between and fed the traffic tallies the gate judges.  The
chaos-layer determinism contract carries over unchanged — a drill is a
pure function of (spec, seed, fault schedule), so the checkpoint
artifact :func:`resume_readdressing` replays is byte-identical evidence,
not a best-effort restart.
"""

from __future__ import annotations

from ..chaos.generator import Campaign, FaultSpec
from ..chaos.runner import CampaignResult, run_campaign
from ..chaos.world import ChaosConfig, build_world
from ..check.plan import RebindPlan
from ..netsim.addr import parse_prefix
from ..obs.adapters import watch_campaign
from .engine import CampaignEngine
from .spec import CampaignStep, ReaddressingSpec

__all__ = [
    "default_readdressing_spec",
    "run_readdressing",
    "resume_readdressing",
    "minimize_rollback_faults",
]


def default_readdressing_spec(policy: str = "svc") -> ReaddressingSpec:
    """The E20 drill: §4.2's staged shrink, /20 → /24 → /32, then the
    §5.2 cadence change — against the chaos world re-homed on a /20."""
    return ReaddressingSpec(
        name="shrink-20-24-32",
        policy=policy,
        overrides={"horizon": 240.0, "primary_prefix": "192.0.0.0/20"},
        start_at=20.0,
        steps=(
            CampaignStep(0, "shrink-to-24", plan=RebindPlan(
                kind="shrink", policy=policy,
                active=parse_prefix("192.0.2.0/24"),
            )),
            CampaignStep(1, "shrink-to-32", plan=RebindPlan(
                kind="shrink", policy=policy,
                active=parse_prefix("192.0.2.1/32"),
            )),
            CampaignStep(2, "halve-cadence", ttl=10),
        ),
    )


def migration_spec(policy: str = "svc") -> ReaddressingSpec:
    """A per-account migration drill: the policy's pool moves wholesale to
    a sibling block inside the same announced /20 (the paper's
    account-to-address remapping at pool granularity), draining the old
    block's established flows on the way."""
    from ..core.pool import AddressPool

    return ReaddressingSpec(
        name="migrate-accounts",
        policy=policy,
        overrides={"horizon": 120.0, "primary_prefix": "192.0.0.0/20"},
        start_at=15.0,
        steps=(
            CampaignStep(0, "move-to-sibling-24", plan=RebindPlan(
                kind="migrate", policy=policy,
                pool=AddressPool(parse_prefix("192.0.4.0/24"),
                                 name="accounts-b"),
            )),
        ),
    )


def run_readdressing(
    spec: ReaddressingSpec,
    seed: int = 7,
    *,
    faults: tuple[FaultSpec, ...] = (),
    base_config: ChaosConfig | None = None,
) -> CampaignResult:
    """Deterministically run ``spec`` under ``faults`` and judge every
    invariant (the chaos nine plus the three campaign ones)."""
    campaign = Campaign(
        name=spec.name,
        seed=seed,
        faults=tuple(faults),
        overrides=dict(spec.overrides),
    )
    config = (base_config or ChaosConfig()).apply(campaign.overrides)
    world = build_world(config, seed)
    engine = CampaignEngine(
        spec,
        clock=world.clock,
        cdn=world.cdn,
        engine=world.engine,
        controller=world.controller,
        clients=world.clients,
        monitor=world.monitor,
        timeline=world.timeline,
        registry=world.registry,
        service_ports=(443,),
    )
    watch_campaign(world.registry, "campaign", engine)
    return run_campaign(campaign, world=world, campaign_engine=engine)


def checkpoint_payload(
    spec: ReaddressingSpec, seed: int, faults: tuple[FaultSpec, ...] = (),
    *, result: CampaignResult | None = None,
) -> dict:
    """The resume artifact: every input that determines the run, plus —
    when a (possibly interrupted) result is at hand — where it got to."""
    payload = {
        "kind": "readdressing-checkpoint",
        "spec": spec.to_dict(),
        "seed": seed,
        "faults": [f.to_dict() for f in faults],
    }
    if result is not None and result.readdressing is not None:
        payload["state"] = result.readdressing["state"]
        payload["steps_completed"] = result.readdressing["steps_completed"]
    return payload


def resume_readdressing(
    payload: dict, *, base_config: ChaosConfig | None = None,
) -> CampaignResult:
    """Replay a checkpoint artifact.

    Resume *is* replay: the artifact pins spec, seed, and fault schedule,
    and the whole stack is deterministic in those inputs, so the resumed
    run reproduces the interrupted one byte-for-byte up to wherever it
    stopped — and then keeps going to the horizon.
    """
    if payload.get("kind") != "readdressing-checkpoint":
        raise ValueError(
            f"not a readdressing checkpoint: kind={payload.get('kind')!r}"
        )
    spec = ReaddressingSpec.from_dict(payload["spec"])
    faults = tuple(FaultSpec.from_dict(f) for f in payload.get("faults", []))
    return run_readdressing(
        spec, int(payload["seed"]), faults=faults, base_config=base_config,
    )


def minimize_rollback_faults(
    campaign: Campaign,
    spec: ReaddressingSpec | None = None,
    base_config: ChaosConfig | None = None,
) -> Campaign:
    """ddmin a fault schedule down to the minimal subset that still makes
    the campaign roll back — the re-addressing analogue of
    :func:`repro.chaos.minimizer.minimize_campaign`."""
    from ..chaos.minimizer import ddmin

    spec = spec if spec is not None else default_readdressing_spec()

    def rolls_back(faults) -> bool:
        result = run_readdressing(
            spec, campaign.seed, faults=tuple(faults), base_config=base_config,
        )
        return result.readdressing["state"] == "rolled_back"

    if not rolls_back(campaign.faults):
        raise ValueError(
            f"campaign {campaign.name!r} does not roll back under its own "
            f"fault schedule — nothing to minimize"
        )
    minimal = ddmin(list(campaign.faults), rolls_back)
    return campaign.with_faults(tuple(minimal))
