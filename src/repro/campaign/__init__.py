"""Staged re-addressing campaigns: the §4.2/§6 timetable as a machine.

A :class:`~repro.campaign.spec.ReaddressingSpec` is an ordered sequence
of :class:`~repro.check.plan.RebindPlan` steps (pool shrinks, account
migrations, re-randomization cadence changes) plus the gate tunables
that decide when a step may advance.  The
:class:`~repro.campaign.engine.CampaignEngine` executes the spec as a
state machine on the simulated clock — pre-flight verifying each step
symbolically, draining established connections off vacated space, and
pausing → holding → rolling back when the world disagrees — while
:func:`~repro.campaign.runner.run_readdressing` replays the whole drill
inside the chaos world and judges it with the campaign invariants.
"""

from .engine import CampaignEngine, StepRecord
from .runner import (
    checkpoint_payload,
    default_readdressing_spec,
    migration_spec,
    minimize_rollback_faults,
    resume_readdressing,
    run_readdressing,
)
from .spec import CampaignStep, GateConfig, ReaddressingSpec

__all__ = [
    "CampaignEngine",
    "CampaignStep",
    "GateConfig",
    "ReaddressingSpec",
    "StepRecord",
    "checkpoint_payload",
    "default_readdressing_spec",
    "migration_spec",
    "minimize_rollback_faults",
    "resume_readdressing",
    "run_readdressing",
]
