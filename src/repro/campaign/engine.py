"""The campaign state machine: enact → drain → settle → gate → advance.

One :class:`CampaignEngine` drives one
:class:`~repro.campaign.spec.ReaddressingSpec` against a live world on
the simulated clock.  Each step follows the §4.2 timetable:

* **preflight** — the step's :class:`~repro.check.plan.RebindPlan` is
  verified symbolically (SK102 blackhole / SK103 stranded-flow checks)
  *before* anything mutates; an unsafe plan aborts the campaign.
* **enact** — the agility controller applies the rebind.  The vacated
  space stays announced: only the DNS-minted active set moved.
* **drain** — established connections whose remote address sits in the
  vacated space are tracked until they close on their own, or until the
  propagation horizon (``enact + old TTL``) passes and the stragglers
  are force-migrated with a clean close.  If the operator's
  ``drain_timeout_s`` expires *first* (a mis-tuned gate), the remainder
  is dropped — recorded so the ``no_dropped_established`` invariant can
  convict the spec.  Once drained, server-side flows on the vacated
  space are closed and any ``release`` prefixes are withdrawn.
* **settle / gate** — traffic and health are judged over a settle
  window: availability, monitor state, drops, ECMP coherence.  A
  failing gate pauses the campaign (**hold**); after ``max_holds``
  failed re-checks the step **rolls back** — withdrawn space is
  re-announced and the rebind is compensated, restoring the
  fingerprint the step started from.

Everything the engine does is a pure function of (spec, seed, fault
schedule): no wall clock, no unseeded randomness, worklists iterated in
sorted order.  That is what makes checkpoint/resume a byte-identical
replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..check.plan import RebindPlan, verify_plan
from ..sockets.socktable import SocketState

__all__ = ["CampaignEngine", "StepRecord", "STATE_CODES"]

#: Numeric encoding of engine states for the obs gauge.
STATE_CODES = {
    "idle": 0,
    "draining": 1,
    "settling": 2,
    "holding": 3,
    "complete": 4,
    "rolled_back": 5,
    "aborted": 6,
}

#: States from which the engine will not move again.
TERMINAL_STATES = ("complete", "rolled_back", "aborted")


@dataclass(slots=True)
class StepRecord:
    """What one campaign step did — the audit row in the JSON artifact."""

    index: int
    name: str
    kind: str
    started_at: float
    enacted_at: float | None = None
    horizon: float | None = None
    completed_at: float | None = None
    outcome: str = ""  # "" while live; advanced | rolled_back | aborted
    holds: int = 0
    gate_failures: list[str] = field(default_factory=list)
    old_active: str | None = None
    new_active: str | None = None
    stranded_at_enact: int = 0
    drained_completed: int = 0
    drained_migrated: int = 0
    drain_latencies: list[float] = field(default_factory=list)
    #: (t, client asn, remote address) for every established connection
    #: force-dropped by an expired drain timeout.  Non-empty means the
    #: ``no_dropped_established`` invariant fires.
    dropped: list[tuple[float, str, str]] = field(default_factory=list)
    fingerprint_before: dict = field(default_factory=dict)
    fingerprint_after: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "step": self.index,
            "name": self.name,
            "kind": self.kind,
            "started_at": round(self.started_at, 3),
            "enacted_at": _opt_round(self.enacted_at),
            "horizon": _opt_round(self.horizon),
            "completed_at": _opt_round(self.completed_at),
            "outcome": self.outcome,
            "holds": self.holds,
            "gate_failures": list(self.gate_failures),
            "old_active": self.old_active,
            "new_active": self.new_active,
            "stranded_at_enact": self.stranded_at_enact,
            "drained_completed": self.drained_completed,
            "drained_migrated": self.drained_migrated,
            "drain_latencies": [round(v, 3) for v in self.drain_latencies],
            "dropped": [[round(t, 3), asn, addr] for t, asn, addr in self.dropped],
            "fingerprint_before": self.fingerprint_before,
            "fingerprint_after": self.fingerprint_after,
        }


def _opt_round(value: float | None) -> float | None:
    return None if value is None else round(value, 3)


class CampaignEngine:
    """Executes a ReaddressingSpec against a live (possibly chaotic) world.

    Call :meth:`tick` once per simulated second and :meth:`note_traffic`
    with that second's fetch tallies; the engine owns nothing else about
    the event loop, so it composes with the chaos runner unchanged.
    """

    def __init__(self, spec, *, clock, cdn, engine, controller,
                 clients=(), monitor=None, timeline=None, registry=None,
                 tracer=None, service_ports=None):
        self.spec = spec
        self.clock = clock
        self.cdn = cdn
        self.engine = engine
        self.controller = controller
        self.clients = list(clients)
        self.monitor = monitor
        self.timeline = timeline
        self.registry = registry
        self.tracer = tracer
        self.service_ports = service_ports
        self._policy = engine.get(spec.policy)

        self.state = "idle"
        self.step_index = 0
        self.records: list[StepRecord] = []
        self.rollbacks = 0
        self.total_holds = 0
        #: Callables fed each drain latency (seconds from enactment to the
        #: connection leaving vacated space) — obs histograms hook in here,
        #: the same observer-append pattern as ``watch_speakers``.
        self.drain_observers: list = []

        self._traffic: list[tuple[float, int, int]] = []
        self._gate_window_start = 0.0
        self._settle_until = 0.0
        self._hold_until = 0.0
        self._drain_deadline = 0.0
        #: conn_id → (client asn, connection) for established flows still
        #: occupying vacated space.  Re-scanned every drain tick: TTL-stale
        #: resolver answers keep minting the old space, so new arrivals
        #: join the worklist until the horizon closes it.
        self._tracked: dict[int, tuple[str, object]] = {}
        self._step_pool = None
        self._old_space = None
        self._new_space = None
        self._withdrawn: list = []
        self._compensate = None
        self._current: StepRecord | None = None

    # -- event-loop surface ---------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def note_traffic(self, successes: int, failures: int) -> None:
        """Record one tick's fetch tallies; the gate judges availability
        over the settle/hold window from these."""
        self._traffic.append((self.clock.now(), successes, failures))

    def tick(self) -> None:
        if self.done:
            return
        now = self.clock.now()
        if self.state == "idle":
            if now >= self.spec.start_at:
                self._begin_step(now)
        elif self.state == "draining":
            self._tick_drain(now)
        elif self.state == "settling":
            if now >= self._settle_until:
                self._judge_gate(now)
        elif self.state == "holding":
            if now >= self._hold_until:
                self._judge_gate(now)

    # -- step lifecycle -------------------------------------------------------

    def _begin_step(self, now: float) -> None:
        step = self.spec.steps[self.step_index]
        rec = StepRecord(index=step.step, name=step.name,
                         kind=step.kind, started_at=now)
        self.records.append(rec)
        self._current = rec
        self._step_pool = self._policy.pool
        self._withdrawn = []
        rec.fingerprint_before = self._fingerprint(self._step_pool)
        detail = step.plan.describe() if step.plan else f"ttl={step.ttl}"
        self._emit(now, "campaign_step", f"{self.spec.name}/{step.name}", detail)

        if step.plan is None:
            self._enact_cadence(now, rec, step.ttl)
            return

        # Preflight with ``release`` stripped: the enactment itself keeps
        # the vacated space announced and serving until the drain finishes,
        # so live flows there are the drain's job, not a symbolic ERROR.
        preflight = replace(step.plan, release=())
        try:
            diff = verify_plan(preflight, self.cdn, self.engine,
                               service_ports=self.service_ports,
                               timeline=self.timeline, clock=self.clock,
                               registry=self.registry)
        except (KeyError, ValueError) as exc:
            self._abort(now, f"preflight rejected: {exc}")
            return
        if not diff.ok:
            why = "; ".join(f.message for f in diff.report.errors)
            self._abort(now, f"preflight unsafe: {why}")
            return

        self._enact_plan(now, rec, step.plan)

    def _enact_cadence(self, now: float, rec: StepRecord, ttl: int) -> None:
        old_ttl = self._policy.ttl
        op = self.controller.set_ttl(self.spec.policy, ttl)
        rec.old_active = f"ttl={old_ttl}"
        rec.new_active = f"ttl={ttl}"
        rec.enacted_at = now
        rec.horizon = op.propagation_horizon
        policy_name = self.spec.policy
        self._compensate = lambda: self.controller.set_ttl(policy_name, old_ttl)
        # Nothing to drain: cached bindings simply age out on the old TTL.
        self._enter_settle(now)

    def _enact_plan(self, now: float, rec: StepRecord, plan: RebindPlan) -> None:
        pool = self._policy.pool
        if plan.kind == "shrink":
            old_active = pool.active_prefix
            self._old_space = old_active if old_active is not None else pool.advertised
            self._new_space = plan.active
            op = self.controller.set_active(self.spec.policy, plan.active)
            restored, step_pool = self._old_space, pool
            policy_name = self.spec.policy

            def compensate():
                # If the health monitor failed the policy over to another
                # pool mid-step, its mitigation outranks the campaign: fix
                # the old pool's active set in place, don't clobber the
                # live policy.
                if self._policy.pool is step_pool:
                    self.controller.set_active(policy_name, restored)
                else:
                    step_pool.set_active(restored)
        else:  # failover | migrate: the whole pool moves
            self._old_space = pool.advertised
            self._new_space = plan.pool.advertised
            op = self.controller.swap_pool(self.spec.policy, plan.pool)
            old_pool, new_pool = pool, plan.pool
            policy_name = self.spec.policy

            def compensate():
                if self._policy.pool is new_pool:
                    self.controller.swap_pool(policy_name, old_pool)

        self._compensate = compensate
        rec.old_active = str(self._old_space)
        rec.new_active = str(self._new_space)
        rec.enacted_at = now
        rec.horizon = op.propagation_horizon
        self._tracked = {}
        self._scan_connections()
        rec.stranded_at_enact = len(self._tracked)
        self._drain_deadline = now + self.spec.gate.drain_timeout_s
        self.state = "draining"

    # -- draining -------------------------------------------------------------

    def _vacated(self, address) -> bool:
        return address in self._old_space and address not in self._new_space

    def _scan_connections(self) -> None:
        for asn, client in self.clients:
            for conn in client.open_connections():
                if conn.conn_id in self._tracked:
                    continue
                if self._vacated(conn.remote_addr):
                    self._tracked[conn.conn_id] = (asn, conn)

    def _tick_drain(self, now: float) -> None:
        rec = self._current
        self._scan_connections()
        for conn_id in sorted(self._tracked):
            asn, conn = self._tracked[conn_id]
            if conn.closed:
                del self._tracked[conn_id]
                rec.drained_completed += 1
                self._observe_drain(rec, now - rec.enacted_at)
        if now >= rec.horizon:
            # Past the horizon no resolver cache mints the vacated space;
            # the stragglers are migrated with a clean close (the client
            # redials onto fresh space on its next request).
            for conn_id in sorted(self._tracked):
                asn, conn = self._tracked.pop(conn_id)
                conn.close()
                rec.drained_migrated += 1
                self._observe_drain(rec, now - rec.enacted_at)
            self._finish_drain(now)
        elif now >= self._drain_deadline:
            # The operator's patience expired before the TTL did — a
            # mis-tuned gate.  The remainder is *dropped*, and each drop
            # is evidence for the no_dropped_established invariant.
            for conn_id in sorted(self._tracked):
                asn, conn = self._tracked.pop(conn_id)
                conn.close()
                rec.dropped.append((now, asn, str(conn.remote_addr)))
                self._emit(now, "established_dropped", asn,
                           f"{conn.remote_addr} (drain timeout before horizon)")
            self._finish_drain(now)

    def _finish_drain(self, now: float) -> None:
        rec = self._current
        closed = self._close_server_flows()
        step = self.spec.steps[self.step_index]
        release = step.plan.release if step.plan is not None else ()
        if release:
            self._withdrawn = self._withdraw_releases(release, now)
        self._emit(now, "campaign_drained", f"{self.spec.name}/{rec.name}",
                   f"completed={rec.drained_completed} "
                   f"migrated={rec.drained_migrated} "
                   f"dropped={len(rec.dropped)} server_flows_closed={closed}")
        self._enter_settle(now)

    def _close_server_flows(self) -> int:
        """Close every server-side CONNECTED socket bound in vacated space.

        Server sockets spawned by ``establish()`` are never closed in
        normal operation; sweeping them once the client side has drained
        is what makes a subsequent release-withdrawal SK103-clean.
        """
        closed = 0
        for dc_name in sorted(self.cdn.datacenters):
            dc = self.cdn.datacenters[dc_name]
            for server_name in sorted(dc.servers):
                server = dc.servers[server_name]
                for sock in list(server.table.sockets()):
                    if (sock.state is SocketState.CONNECTED
                            and sock.local_addr is not None
                            and self._vacated(sock.local_addr)):
                        server.table.close(sock)
                        closed += 1
        return closed

    def _withdraw_releases(self, release, now: float) -> list:
        withdrawn = []
        announced = self.cdn.network.announced_prefixes()
        for prefix in sorted(announced, key=str):
            if not any(prefix in r for r in release):
                continue
            pops = sorted(announced[prefix])
            for pop in pops:
                self.cdn.network.withdraw_from(prefix, pop)
            withdrawn.append((prefix, pops))
            self._emit(now, "release_withdrawn", str(prefix),
                       f"from {', '.join(pops)}")
        return withdrawn

    # -- gate / hold / rollback ----------------------------------------------

    def _enter_settle(self, now: float) -> None:
        self.state = "settling"
        self._gate_window_start = now
        self._settle_until = now + self.spec.gate.settle_s

    def _judge_gate(self, now: float) -> None:
        rec = self._current
        why = self._gate_verdict()
        if why is None:
            self._advance(now)
            return
        rec.gate_failures.append(why)
        if rec.holds >= self.spec.gate.max_holds:
            self._rollback(now, why)
        else:
            self._hold(now, why)

    def _gate_verdict(self) -> str | None:
        """None when the step may advance, else the reason it may not."""
        rec = self._current
        if rec.dropped:
            return (f"{len(rec.dropped)} established connection(s) dropped "
                    "during drain")
        if self.monitor is not None:
            if self.monitor.failed_over:
                return "health monitor failed the policy over to standby"
            if self.monitor.consecutive_failures > 0:
                return (f"probe round failing "
                        f"({self.monitor.consecutive_failures} consecutive)")
        window = [(s, f) for t, s, f in self._traffic
                  if t >= self._gate_window_start]
        total = sum(s + f for s, f in window)
        if total:
            availability = sum(s for s, _ in window) / total
            if availability < self.spec.gate.min_availability:
                return (f"availability {availability:.3f} below gate "
                        f"{self.spec.gate.min_availability:.3f}")
        for dc_name in sorted(self.cdn.datacenters):
            stats = self.cdn.datacenters[dc_name].ecmp.stats
            if stats.routed != sum(stats.per_server.values()):
                return f"ECMP accounting incoherent at {dc_name}"
        return None

    def _hold(self, now: float, why: str) -> None:
        rec = self._current
        rec.holds += 1
        self.total_holds += 1
        self._emit(now, "campaign_hold", f"{self.spec.name}/{rec.name}",
                   f"hold {rec.holds}/{self.spec.gate.max_holds}: {why}")
        self.state = "holding"
        # The re-check judges traffic served *during* the hold, not the
        # window that already failed.
        self._gate_window_start = now
        self._hold_until = now + self.spec.gate.hold_s

    def _advance(self, now: float) -> None:
        rec = self._current
        rec.outcome = "advanced"
        rec.completed_at = now
        rec.fingerprint_after = self._fingerprint(self._policy.pool)
        self._span(rec, now, "advanced")
        self._emit(now, "campaign_advanced", f"{self.spec.name}/{rec.name}",
                   f"{rec.old_active} -> {rec.new_active}")
        self._compensate = None
        self._current = None
        self.step_index += 1
        if self.step_index >= len(self.spec.steps):
            self.state = "complete"
            self._emit(now, "campaign_complete", self.spec.name,
                       f"{len(self.spec.steps)} step(s), "
                       f"{self.total_holds} hold(s)")
        else:
            self.state = "idle"

    def _rollback(self, now: float, why: str) -> None:
        rec = self._current
        # Re-announce withdrawn space *before* re-binding onto it, so no
        # DNS answer ever points at an unrouted prefix (SK102 in reverse).
        for prefix, pops in self._withdrawn:
            self.cdn.network.announce_from(prefix, pops)
            self._emit(now, "release_reannounced", str(prefix),
                       f"to {', '.join(pops)}")
        self._withdrawn = []
        if self._compensate is not None:
            self._compensate()
            self._compensate = None
        rec.outcome = "rolled_back"
        rec.completed_at = now
        rec.fingerprint_after = self._fingerprint(self._step_pool)
        self.rollbacks += 1
        self._span(rec, now, "rolled back")
        self._emit(now, "campaign_rollback", f"{self.spec.name}/{rec.name}", why)
        self.state = "rolled_back"

    def _abort(self, now: float, why: str) -> None:
        rec = self._current
        rec.outcome = "aborted"
        rec.completed_at = now
        rec.fingerprint_after = self._fingerprint(self._step_pool)
        self._emit(now, "campaign_aborted", f"{self.spec.name}/{rec.name}", why)
        self.state = "aborted"

    # -- evidence -------------------------------------------------------------

    def _fingerprint(self, pool) -> dict:
        """The campaign-scope world state a rollback must restore:
        policy binding, pool shape, and the announcements overlapping it."""
        active = pool.active_prefix
        if active is not None:
            active_repr = str(active)
        else:
            active_repr = sorted(str(a) for a in pool.active_addresses() or ())
        announced = self.cdn.network.announced_prefixes()
        return {
            "policy": self.spec.policy,
            "ttl": self._policy.ttl,
            "pool": pool.name,
            "advertised": str(pool.advertised),
            "active": active_repr,
            "announced": {
                str(prefix): sorted(announced[prefix])
                for prefix in sorted(announced, key=str)
                if prefix.overlaps(pool.advertised)
            },
        }

    def _observe_drain(self, rec: StepRecord, latency: float) -> None:
        rec.drain_latencies.append(latency)
        for observe in self.drain_observers:
            observe(latency)

    def _span(self, rec: StepRecord, now: float, outcome: str) -> None:
        if self.tracer is None:
            return
        trace = self.tracer.next_trace_id(f"campaign:{self.spec.name}")
        self.tracer.record(trace, f"step:{rec.name}", rec.started_at, now,
                           outcome)

    def _emit(self, at: float, kind: str, target: str, detail: str = "") -> None:
        if self.timeline is not None:
            self.timeline.emit(at, kind, target, detail, phase="campaign")

    # -- reporting ------------------------------------------------------------

    def status(self) -> dict:
        """Numbers-only snapshot for the obs collector."""
        return {
            "state": STATE_CODES[self.state],
            "step": self.step_index,
            "steps_total": len(self.spec.steps),
            "holds": self.total_holds,
            "rollbacks": self.rollbacks,
            "draining": len(self._tracked),
            "dropped": sum(len(r.dropped) for r in self.records),
            "drained_completed": sum(r.drained_completed for r in self.records),
            "drained_migrated": sum(r.drained_migrated for r in self.records),
        }

    def report(self) -> dict:
        """The campaign section of the run artifact (JSON-stable)."""
        return {
            "name": self.spec.name,
            "policy": self.spec.policy,
            "state": self.state,
            "steps_completed": sum(1 for r in self.records
                                   if r.outcome == "advanced"),
            "holds": self.total_holds,
            "rollbacks": self.rollbacks,
            "steps": [r.to_dict() for r in self.records],
        }

    def checkpoint(self, seed: int, faults=()) -> dict:
        """A self-contained resume artifact: everything that determines
        the run.  Resuming is a byte-identical replay from these inputs."""
        return {
            "kind": "readdressing-checkpoint",
            "spec": self.spec.to_dict(),
            "seed": seed,
            "faults": [f.to_dict() for f in faults],
            "state": self.state,
            "steps_completed": sum(1 for r in self.records
                                   if r.outcome == "advanced"),
        }
