"""Campaign specs: ordered rebind steps plus gate tunables, as JSON.

A spec is pure data — the same discipline as
:class:`~repro.chaos.generator.Campaign`: everything needed to replay a
drill byte-deterministically lives in the artifact, and importing one
re-validates it (malformed or out-of-order steps are rejected at load
time, mirroring :class:`~repro.faults.events.FaultTimeline`'s
append-in-order rule).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from ..check.plan import RebindPlan

__all__ = ["GateConfig", "CampaignStep", "ReaddressingSpec"]

#: Step kinds a campaign understands: the three RebindPlan kinds plus a
#: TTL change (re-randomization cadence, the §5.2 knob).
STEP_KINDS = ("shrink", "failover", "migrate", "cadence")


@dataclass(frozen=True, slots=True)
class GateConfig:
    """When a step may advance — and how patient the campaign is.

    ``min_availability`` is judged over the settle window that follows a
    completed drain; ``hold_s``/``max_holds`` bound how long a failing
    gate pauses the campaign before it rolls the step back;
    ``drain_timeout_s`` is the operator's patience with established
    connections — expiring it force-releases the space and *drops* the
    remainder, which the ``no_dropped_established`` invariant treats as
    the violation it is (the well-tuned value exceeds the policy TTL, so
    the drain horizon always arrives first).
    """

    min_availability: float = 0.90
    settle_s: float = 10.0
    hold_s: float = 10.0
    max_holds: int = 2
    drain_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_availability <= 1.0:
            raise ValueError("min_availability must be in [0, 1]")
        if self.settle_s < 0 or self.hold_s < 0 or self.drain_timeout_s <= 0:
            raise ValueError("gate windows must be non-negative "
                             "(drain_timeout_s strictly positive)")
        if self.max_holds < 0:
            raise ValueError("max_holds must be non-negative")

    def to_dict(self) -> dict:
        return {
            "min_availability": self.min_availability,
            "settle_s": self.settle_s,
            "hold_s": self.hold_s,
            "max_holds": self.max_holds,
            "drain_timeout_s": self.drain_timeout_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GateConfig":
        if not isinstance(payload, dict):
            raise ValueError("gate must be a JSON object")
        unknown = set(payload) - {
            "min_availability", "settle_s", "hold_s", "max_holds",
            "drain_timeout_s",
        }
        if unknown:
            raise ValueError(f"unknown gate field(s): {sorted(unknown)}")
        return cls(**payload)


@dataclass(frozen=True, slots=True)
class CampaignStep:
    """One stage of a campaign: a rebind plan, or a cadence change.

    ``step`` is the explicit position in the campaign — carried in the
    JSON artifact so a reordered or truncated import is detectable, the
    way a :class:`~repro.faults.events.FaultTimeline` rejects events
    appended out of time order.
    """

    step: int
    name: str
    plan: RebindPlan | None = None
    ttl: int | None = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step index must be non-negative, got {self.step}")
        if (self.plan is None) == (self.ttl is None):
            raise ValueError(
                f"step {self.step} ({self.name!r}) needs exactly one of "
                "'plan' or 'ttl'"
            )
        if self.ttl is not None and self.ttl < 0:
            raise ValueError(f"step {self.step}: TTL must be non-negative")

    @property
    def kind(self) -> str:
        return self.plan.kind if self.plan is not None else "cadence"

    def to_dict(self) -> dict:
        payload: dict = {"step": self.step, "name": self.name}
        if self.plan is not None:
            payload["plan"] = self.plan.to_dict()
        else:
            payload["ttl"] = self.ttl
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignStep":
        if not isinstance(payload, dict):
            raise ValueError("step must be a JSON object")
        if "step" not in payload or "name" not in payload:
            raise ValueError("step needs 'step' (index) and 'name' fields")
        plan_spec = payload.get("plan")
        return cls(
            step=int(payload["step"]),
            name=str(payload["name"]),
            plan=RebindPlan.from_dict(plan_spec) if plan_spec is not None else None,
            ttl=payload.get("ttl"),
        )


@dataclass(frozen=True, slots=True)
class ReaddressingSpec:
    """A whole campaign: named, ordered steps against one policy."""

    name: str
    steps: tuple[CampaignStep, ...]
    policy: str = "svc"
    gate: GateConfig = field(default_factory=GateConfig)
    #: ChaosConfig overrides the drill needs from its world — e.g. the
    #: /20 shrink spec pins ``primary_prefix`` to the /20 it shrinks.
    #: Same role as :class:`~repro.chaos.generator.Campaign.overrides`.
    overrides: dict = field(default_factory=dict)
    #: Simulated seconds of warmup before step 0 begins: caches fill and
    #: connection pools form on the pre-campaign addressing, so the first
    #: shrink actually has established flows to drain.
    start_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a campaign needs at least one step")
        for position, step in enumerate(self.steps):
            if step.step != position:
                raise ValueError(
                    f"steps must be imported in order (expected step "
                    f"{position}, got step {step.step} at position {position})"
                )

    def with_gate(self, **overrides) -> "ReaddressingSpec":
        return replace(self, gate=replace(self.gate, **overrides))

    def truncated(self, completed: int) -> "ReaddressingSpec":
        """The spec minus its first ``completed`` steps, re-indexed — the
        resume artifact's view of the remaining work."""
        remaining = tuple(
            replace(step, step=i)
            for i, step in enumerate(self.steps[completed:])
        )
        return replace(self, steps=remaining)

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "policy": self.policy,
            "start_at": self.start_at,
            "gate": self.gate.to_dict(),
            "steps": [step.to_dict() for step in self.steps],
        }
        if self.overrides:
            payload["overrides"] = {k: self.overrides[k]
                                    for k in sorted(self.overrides)}
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "ReaddressingSpec":
        if not isinstance(payload, dict):
            raise ValueError("spec must be a JSON object")
        if "name" not in payload or "steps" not in payload:
            raise ValueError("spec needs 'name' and 'steps' fields")
        steps = payload["steps"]
        if not isinstance(steps, list):
            raise ValueError("'steps' must be a list")
        gate = payload.get("gate")
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ValueError("'overrides' must be a JSON object")
        return cls(
            name=str(payload["name"]),
            steps=tuple(CampaignStep.from_dict(s) for s in steps),
            policy=str(payload.get("policy", "svc")),
            gate=GateConfig.from_dict(gate) if gate is not None else GateConfig(),
            overrides=overrides,
            start_at=float(payload.get("start_at", 0.0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ReaddressingSpec":
        return cls.from_dict(json.loads(text))
