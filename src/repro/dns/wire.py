"""RFC 1035 wire-format codec: messages, headers, and name compression.

The deployment answers "100 % of DNS responses for 20+ million hostnames"
(§4.2) — real DNS packets on the wire.  The simulator carries *bytes*
between stubs, resolvers and the authoritative server, so changes to the
answering logic (conventional zone vs. the paper's policy engine) are
provably invisible at the protocol layer: same codec, same message shapes.

Implemented: the 12-octet header with its flag fields, QD/AN/NS/AR
sections, pointer-based name compression on encode and decode (with loop
and forward-pointer protection), and the RDATA formats from
:mod:`repro.dns.records`.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, replace

from ..netsim.addr import IPAddress
from .records import (
    A,
    AAAA,
    CNAME,
    NS,
    OPTPseudo,
    SOA,
    TXT,
    DomainName,
    Question,
    RData,
    ResourceRecord,
    RRClass,
    RRType,
)

__all__ = ["Opcode", "Rcode", "Flags", "Message", "WireError", "encode_name", "decode_name"]

_HEADER = struct.Struct("!HHHHHH")
_MAX_UDP_PAYLOAD = 65535
_POINTER_MASK = 0xC0


class WireError(ValueError):
    """Raised on malformed wire data."""


class Opcode(enum.IntEnum):
    QUERY = 0
    STATUS = 2
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


def _lenient(enum_cls, value: int):
    """Map a wire value into ``enum_cls``, keeping unknown values as ints.

    A query with opcode IQUERY or qtype MX is *well-formed* — a server must
    answer it (NOTIMP), not crash decoding it.  IntEnum members compare and
    hash equal to their values, so downstream ``==``/``in`` checks behave
    identically whether the field decoded to a member or a raw int.
    """
    try:
        return enum_cls(value)
    except ValueError:
        return value


@dataclass(frozen=True, slots=True)
class Flags:
    """The header's second 16-bit word, unpacked."""

    qr: bool = False  # response?
    opcode: Opcode = Opcode.QUERY
    aa: bool = False  # authoritative answer
    tc: bool = False  # truncated
    rd: bool = True   # recursion desired
    ra: bool = False  # recursion available
    rcode: Rcode = Rcode.NOERROR

    def pack(self) -> int:
        word = 0
        if self.qr:
            word |= 1 << 15
        word |= (self.opcode & 0xF) << 11
        if self.aa:
            word |= 1 << 10
        if self.tc:
            word |= 1 << 9
        if self.rd:
            word |= 1 << 8
        if self.ra:
            word |= 1 << 7
        word |= self.rcode & 0xF
        return word

    @classmethod
    def unpack(cls, word: int) -> "Flags":
        return cls(
            qr=bool(word & (1 << 15)),
            opcode=_lenient(Opcode, (word >> 11) & 0xF),
            aa=bool(word & (1 << 10)),
            tc=bool(word & (1 << 9)),
            rd=bool(word & (1 << 8)),
            ra=bool(word & (1 << 7)),
            rcode=_lenient(Rcode, word & 0xF),
        )


def encode_name(name: DomainName, out: bytearray, offsets: dict[tuple[str, ...], int]) -> None:
    """Append ``name`` to ``out`` using RFC 1035 §4.1.4 compression.

    ``offsets`` maps previously emitted name suffixes to their buffer
    offsets.  Invariant: only suffixes starting at or below 0x3FFF — the
    14-bit pointer horizon — are ever registered, so every table entry is a
    legal pointer target and lookup needs no second validation.  A suffix
    first emitted beyond the horizon is written uncompressed and left
    unregistered (it could never be pointed at); an already-registered
    suffix is never overwritten, so a pointer always targets the earliest
    — and therefore pointable — occurrence.  Suffix keys are the
    (already case-normalised) label tuples of :class:`DomainName`, so two
    registrations can only collide when the wire bytes are identical;
    pointers never alias case-folded variants of different on-wire names.
    """
    labels = name.labels
    for i in range(len(labels)):
        suffix = labels[i:]
        at = offsets.get(suffix)
        if at is not None and at <= 0x3FFF:
            out += struct.pack("!H", 0xC000 | at)
            return
        if at is None and len(out) <= 0x3FFF:
            offsets[suffix] = len(out)
        label = labels[i].encode("ascii")
        out.append(len(label))
        out += label
    out.append(0)


def decode_name(data: bytes, offset: int) -> tuple[DomainName, int]:
    """Decode a (possibly compressed) name; returns (name, next offset).

    Guards against pointer loops (each pointer must go strictly backwards)
    and over-long names.
    """
    labels: list[str] = []
    jumped = False
    next_offset = offset
    seen_limit = offset  # pointers must target earlier bytes than any we've followed
    total = 0
    for _ in range(256):  # hard cap on label count — also bounds pointer chains
        if offset >= len(data):
            raise WireError("truncated name")
        length = data[offset]
        if length & _POINTER_MASK == _POINTER_MASK:
            if offset + 1 >= len(data):
                raise WireError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if pointer >= seen_limit:
                raise WireError("compression pointer does not go backwards")
            if not jumped:
                next_offset = offset + 2
                jumped = True
            seen_limit = pointer
            offset = pointer
            continue
        if length & _POINTER_MASK:
            raise WireError(f"reserved label type {length:#04x}")
        if length == 0:
            if not jumped:
                next_offset = offset + 1
            return DomainName(tuple(labels)), next_offset
        start = offset + 1
        end = start + length
        if end > len(data):
            raise WireError("label runs past end of message")
        total += length + 1
        if total + 1 > 255:
            raise WireError("name exceeds 255 octets")
        try:
            labels.append(data[start:end].decode("ascii", errors="strict").lower())
        except UnicodeDecodeError as exc:
            # The object model is ASCII hostnames (the only names this
            # system mints or serves); binary labels are malformed here.
            raise WireError(f"label contains non-ASCII bytes at offset {start}") from exc
        offset = end
    raise WireError("name has too many labels/pointers")


def _encode_rdata(rdata: RData, out: bytearray, offsets: dict) -> None:
    """Append RDATA preceded by its 16-bit length."""
    len_at = len(out)
    out += b"\x00\x00"  # placeholder
    start = len(out)
    if isinstance(rdata, (A, AAAA)):
        out += rdata.address.packed()
    elif isinstance(rdata, (CNAME, NS)):
        target = rdata.target if isinstance(rdata, CNAME) else rdata.nameserver
        # RFC 3597 discourages compression inside newer RDATA; CNAME/NS may
        # legally compress, and we do, matching common server behaviour.
        encode_name(target, out, offsets)
    elif isinstance(rdata, SOA):
        encode_name(rdata.mname, out, offsets)
        encode_name(rdata.rname, out, offsets)
        out += struct.pack(
            "!IIIII", rdata.serial, rdata.refresh, rdata.retry, rdata.expire, rdata.minimum
        )
    elif isinstance(rdata, TXT):
        for s in rdata.strings:
            raw = s.encode()
            out.append(len(raw))
            out += raw
    else:
        raise WireError(f"cannot encode RDATA type {type(rdata).__name__}")
    rdlen = len(out) - start
    out[len_at:len_at + 2] = struct.pack("!H", rdlen)


def _decode_rdata(rrtype: RRType, data: bytes, start: int, rdlen: int) -> RData:
    end = start + rdlen
    if end > len(data):
        raise WireError("RDATA runs past end of message")
    if rrtype == RRType.A:
        if rdlen != 4:
            raise WireError(f"A RDATA must be 4 bytes, got {rdlen}")
        return A(IPAddress.from_packed(data[start:end]))
    if rrtype == RRType.AAAA:
        if rdlen != 16:
            raise WireError(f"AAAA RDATA must be 16 bytes, got {rdlen}")
        return AAAA(IPAddress.from_packed(data[start:end]))
    if rrtype in (RRType.CNAME, RRType.NS):
        name, used = decode_name(data, start)
        if used > end:
            raise WireError("name RDATA overruns declared length")
        return CNAME(name) if rrtype == RRType.CNAME else NS(name)
    if rrtype == RRType.SOA:
        mname, off = decode_name(data, start)
        rname, off = decode_name(data, off)
        if off + 20 > end:
            raise WireError("SOA RDATA too short")
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", data, off)
        return SOA(mname, rname, serial, refresh, retry, expire, minimum)
    if rrtype == RRType.TXT:
        strings: list[str] = []
        off = start
        while off < end:
            slen = data[off]
            off += 1
            if off + slen > end:
                raise WireError("TXT character-string overruns RDATA")
            strings.append(data[off:off + slen].decode(errors="replace"))
            off += slen
        return TXT(tuple(strings))
    raise WireError(f"cannot decode RDATA for type {rrtype!r}")


@dataclass(frozen=True, slots=True)
class Message:
    """A complete DNS message with all four sections."""

    id: int
    flags: Flags
    questions: tuple[Question, ...] = ()
    answers: tuple[ResourceRecord, ...] = ()
    authority: tuple[ResourceRecord, ...] = ()
    additional: tuple[ResourceRecord, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.id <= 0xFFFF:
            raise ValueError("message ID must fit 16 bits")

    # -- constructors ------------------------------------------------------

    @classmethod
    def query(cls, qid: int, name: DomainName | str, rrtype: RRType, rd: bool = True) -> "Message":
        if isinstance(name, str):
            name = DomainName.from_text(name)
        return cls(id=qid, flags=Flags(qr=False, rd=rd), questions=(Question(name, rrtype),))

    def response(
        self,
        answers: tuple[ResourceRecord, ...] = (),
        rcode: Rcode = Rcode.NOERROR,
        aa: bool = True,
        authority: tuple[ResourceRecord, ...] = (),
        additional: tuple[ResourceRecord, ...] = (),
        ra: bool = False,
    ) -> "Message":
        """Build the response skeleton for this query (echoes id+opcode+question)."""
        return Message(
            id=self.id,
            flags=Flags(qr=True, opcode=self.flags.opcode, aa=aa, rd=self.flags.rd,
                        ra=ra, rcode=rcode),
            questions=self.questions,
            answers=answers,
            authority=authority,
            additional=additional,
        )

    @property
    def question(self) -> Question:
        if not self.questions:
            raise WireError("message has no question")
        return self.questions[0]

    def with_answers(self, answers: tuple[ResourceRecord, ...]) -> "Message":
        return replace(self, answers=answers)

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        out = bytearray()
        out += _HEADER.pack(
            self.id,
            self.flags.pack(),
            len(self.questions),
            len(self.answers),
            len(self.authority),
            len(self.additional),
        )
        offsets: dict[tuple[str, ...], int] = {}
        for q in self.questions:
            encode_name(q.name, out, offsets)
            out += struct.pack("!HH", q.rrtype, q.rrclass)
        for rr in (*self.answers, *self.authority, *self.additional):
            encode_name(rr.name, out, offsets)
            if isinstance(rr.rdata, OPTPseudo):
                # RFC 6891: CLASS carries UDP payload size, TTL the
                # extended flags; RDATA is the raw option TLVs.
                out += struct.pack(
                    "!HHIH",
                    RRType.OPT,
                    rr.rdata.udp_payload_size,
                    rr.rdata.ttl_word,
                    len(rr.rdata.data),
                )
                out += rr.rdata.data
                continue
            out += struct.pack("!HHI", rr.rrtype, rr.rrclass, rr.ttl)
            _encode_rdata(rr.rdata, out, offsets)
        if len(out) > _MAX_UDP_PAYLOAD:
            raise WireError("encoded message exceeds 64 KiB")
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        """Decode wire bytes; malformed input raises :class:`WireError`, only.

        The real-socket serving loop (:mod:`repro.serve`) feeds attacker-
        controlled datagrams straight through here — any non-WireError
        escape would take a worker down, so stray ``ValueError``/
        ``struct.error`` from enum coercion or unpacking are converted at
        this boundary.
        """
        try:
            return cls._decode(data)
        except WireError:
            raise
        except (ValueError, struct.error, IndexError) as exc:
            raise WireError(f"malformed message: {exc}") from exc

    @classmethod
    def _decode(cls, data: bytes) -> "Message":
        if len(data) < _HEADER.size:
            raise WireError("message shorter than header")
        qid, flagword, qd, an, ns, ar = _HEADER.unpack_from(data, 0)
        offset = _HEADER.size
        questions: list[Question] = []
        for _ in range(qd):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise WireError("truncated question")
            rrtype, rrclass = struct.unpack_from("!HH", data, offset)
            offset += 4
            questions.append(
                Question(name, _lenient(RRType, rrtype), _lenient(RRClass, rrclass))
            )

        def read_rrs(count: int, offset: int) -> tuple[list[ResourceRecord], int]:
            records: list[ResourceRecord] = []
            for _ in range(count):
                name, offset = decode_name(data, offset)
                if offset + 10 > len(data):
                    raise WireError("truncated RR fixed fields")
                rrtype_raw, rrclass_raw, ttl, rdlen = struct.unpack_from("!HHIH", data, offset)
                offset += 10
                if offset + rdlen > len(data):
                    raise WireError("RDATA runs past end of message")
                if rrtype_raw == RRType.OPT:
                    rdata: RData = OPTPseudo(
                        udp_payload_size=rrclass_raw,
                        ttl_word=ttl,
                        data=data[offset:offset + rdlen],
                    )
                    offset += rdlen
                    records.append(ResourceRecord(name, rdata, ttl=0))
                    continue
                rdata = _decode_rdata(_lenient(RRType, rrtype_raw), data, offset, rdlen)
                offset += rdlen
                records.append(
                    ResourceRecord(name, rdata, ttl & 0x7FFFFFFF, _lenient(RRClass, rrclass_raw))
                )
            return records, offset

        answers, offset = read_rrs(an, offset)
        authority, offset = read_rrs(ns, offset)
        additional, offset = read_rrs(ar, offset)
        return cls(
            id=qid,
            flags=Flags.unpack(flagword),
            questions=tuple(questions),
            answers=tuple(answers),
            authority=tuple(authority),
            additional=tuple(additional),
        )
